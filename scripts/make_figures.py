"""Regenerate every paper figure/table into the figures/ directory.

Runs the same experiments as the benchmark suite but writes artifacts
to disk: plain-text tables, ASCII bar charts, and CSVs suitable for
external plotting.

Usage:  python scripts/make_figures.py [--out figures] [--quick]

``--quick`` limits the sweeps to the two smallest model sizes so a
full artifact set builds in about a minute.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis.plotting import grouped_bars
from repro.analysis.reporting import format_series, format_table
from repro.analysis.sweep import pivot, run_sweep, save_csv
from repro.baselines.zero import run_zero
from repro.core.profiler import Profiler
from repro.hardware import dgx1_server, dgx2_server
from repro.hardware.bandwidth import effective_bandwidth
from repro.hardware.links import NVLINK2, PCIE3_X16
from repro.job import dapple_job, pipedream_job
from repro.models import bert_variant, gpt_variant
from repro.units import GB, GBps, KB, MB


def write(out_dir: str, name: str, text: str) -> None:
    path = os.path.join(out_dir, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print(f"wrote {path}")


def figure4(out_dir: str) -> None:
    sizes = [64 * KB, 1 * MB, 16 * MB, 256 * MB, 1 * GB]
    labels = ["64KB", "1MB", "16MB", "256MB", "1GB"]
    lines = ["Figure 4: effective unidirectional bandwidth (GB/s)"]
    curves = {"PCIe": PCIE3_X16}
    for lanes in (2, 4, 6):
        values = [effective_bandwidth(s, NVLINK2, lanes=lanes) / GBps for s in sizes]
        lines.append(format_series(f"NV{lanes}", labels, values))
    lines.insert(1, format_series(
        "PCIe", labels, [effective_bandwidth(s, PCIE3_X16) / GBps for s in sizes]
    ))
    write(out_dir, "figure4_bandwidth.txt", "\n".join(lines))


def table2(out_dir: str, quick: bool) -> None:
    server = dgx1_server()
    bert_sizes = (0.35, 0.64) if quick else (0.35, 0.64, 1.67, 4.0, 6.2)
    gpt_sizes = (5.3,) if quick else (5.3, 10.3, 15.4, 20.4, 25.5)
    rows = []
    for billions in bert_sizes:
        profile = Profiler(pipedream_job(bert_variant(billions), server)).run()
        peaks = [p / 1e9 for p in profile.stage_peaks]
        rows.append([f"Bert-{billions}B", f"{sum(peaks):.1f}",
                     f"{max(peaks):.1f}", f"{min(peaks):.1f}"])
    for billions in gpt_sizes:
        profile = Profiler(dapple_job(gpt_variant(billions), server)).run()
        peaks = [p / 1e9 for p in profile.stage_peaks]
        rows.append([f"GPT-{billions}B", f"{sum(peaks):.1f}",
                     f"{max(peaks):.1f}", f"{min(peaks):.1f}"])
    write(out_dir, "table2_memory_demand.txt", format_table(
        ["job", "total GB", "max/stage", "min/stage"], rows,
        title="Table II: GPU memory demands",
    ))


def figure7(out_dir: str, quick: bool) -> None:
    server = dgx1_server()
    sizes = (0.35, 0.64) if quick else (0.35, 0.64, 1.67, 4.0, 6.2)
    systems = ["none", "recomputation", "gpu-cpu-swap", "mpress"]
    jobs = {
        f"Bert-{billions}B": pipedream_job(bert_variant(billions), server)
        for billions in sizes
    }
    cells = run_sweep(jobs, systems)
    save_csv(cells, os.path.join(out_dir, "figure7_bert.csv"))
    table = pivot(cells)
    series = {
        system: [
            table[model][system].tflops if table[model][system].ok else None
            for model in jobs
        ]
        for system in systems
    }
    write(out_dir, "figure7_bert.txt", grouped_bars(
        list(jobs), series, unit=" TF",
        title="Figure 7: Bert + PipeDream on DGX-1 (TFLOPS)",
    ))


def figure8(out_dir: str, quick: bool) -> None:
    sizes = (5.3,) if quick else (5.3, 10.3, 15.4, 20.4, 25.5)
    for tag, server in (("a_dgx1", dgx1_server()), ("b_dgx2", dgx2_server())):
        jobs = {
            f"GPT-{billions}B": dapple_job(gpt_variant(billions), server)
            for billions in sizes
        }
        cells = run_sweep(jobs, ["none", "recomputation", "mpress"])
        save_csv(cells, os.path.join(out_dir, f"figure8{tag}.csv"))
        table = pivot(cells)
        series = {
            system: [
                table[model][system].tflops if table[model][system].ok else None
                for model in jobs
            ]
            for system in ("none", "recomputation", "mpress")
        }
        for model_name, job in jobs.items():
            for variant in ("offload", "infinity"):
                zero = run_zero(job.model, server, variant, job.samples_per_minibatch)
                series.setdefault(f"zero-{variant}", []).append(
                    zero.tflops if zero.ok else None
                )
        write(out_dir, f"figure8{tag}.txt", grouped_bars(
            list(jobs), series, unit=" TF",
            title=f"Figure 8{tag[0]}: GPT + DAPPLE on {server.name} (TFLOPS)",
        ))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="figures")
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)
    os.makedirs(args.out, exist_ok=True)
    figure4(args.out)
    table2(args.out, args.quick)
    figure7(args.out, args.quick)
    figure8(args.out, args.quick)
    print("done")
    return 0


if __name__ == "__main__":
    sys.exit(main())
