"""End-to-end smoke of the unified auto-parallel planner (the CI
``autoplan-smoke`` job), on the golden 2x-DGX-1 workload.

Asserts the tentpole acceptance criteria on real hardware scale:

* the CLI (``repro autoplan --json``) runs end-to-end and reports
  its pruning counters;
* the frontier fully simulates at most 30% of the valid shape grid;
* the chosen shape matches the winner of the exhaustive
  ``analysis.cluster_scaling`` grid sweep over the same shapes;
* the frontier's cluster tasks are content-addressed identically to
  the exhaustive sweep's cells, so a cache warmed by autoplan
  resolves those cells of the exhaustive grid without simulating.

Usage: ``PYTHONPATH=src python scripts/autoplan_smoke.py``
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile


def run_cli(cache_dir: str) -> dict:
    out = subprocess.run(
        [sys.executable, "-m", "repro", "autoplan",
         "--model", "gpt-5.3", "--server", "dgx1", "--nodes", "2",
         "--cache", cache_dir, "--quiet", "--json"],
        check=True, capture_output=True, text=True,
    ).stdout
    return json.loads(out)


def main() -> int:
    from repro.analysis.cluster_scaling import (
        cluster_scaling_sweep,
        cluster_scaling_tasks,
        full_shape_grid,
        grid_winner,
    )
    from repro.hardware.cluster import dgx1_cluster
    from repro.job import dapple_job
    from repro.models import gpt_variant
    from repro.parallel.cluster import shared_chain_memo
    from repro.runtime import ResultCache, RuntimeConfig, SweepRuntime

    with tempfile.TemporaryDirectory() as cache_dir:
        report = run_cli(cache_dir)
        counters = report["counters"]
        best = report["best"]
        print(f"autoplan: {counters['n_valid']} valid shapes, "
              f"{counters['n_simulated']} simulated "
              f"({100 * counters['simulated_fraction']:.0f}%), best "
              f"(tp={best['tp']}, dp={best['dp']}, pp={best['pp']})")
        assert counters["n_simulated"] > 0, "frontier must simulate"
        assert counters["simulated_fraction"] <= 0.30, (
            f"frontier simulated {counters['simulated_fraction']:.0%} "
            f"of the valid grid (cap 30%)")
        assert best["simulated"] and best["ok"], "winner must be simulated"

        # The exhaustive grid over the same cache: every frontier cell
        # autoplan already simulated must resolve as a cache hit.
        cluster = dgx1_cluster(2)
        job = dapple_job(gpt_variant(5.3), cluster.servers[0],
                         n_minibatches=2)
        shapes = full_shape_grid(job, cluster)
        assert len(shapes) == counters["n_valid"], (shapes, counters)
        runtime = SweepRuntime(RuntimeConfig(cache=ResultCache(cache_dir)))
        tasks = cluster_scaling_tasks(job, cluster, shapes=shapes)
        with shared_chain_memo():
            stats = runtime.run(tasks).summary()
        print(f"exhaustive grid: {len(tasks)} shapes ({stats})")
        assert f"cached={counters['n_simulated']}" in stats, (
            "frontier cells must warm the exhaustive sweep's cache: "
            + stats)
        # Re-read the (now fully warmed) cache into scaling cells.
        cells = cluster_scaling_sweep(job, cluster, shapes=shapes,
                                      runtime=runtime)

        winner = grid_winner(cells)
        print(f"exhaustive winner: (tp={winner.tp}, dp={winner.dp}, "
              f"pp={winner.pp}) at {winner.samples_per_second:.2f} "
              f"samples/s")
        assert (best["tp"], best["dp"], best["pp"]) == \
            (winner.tp, winner.dp, winner.pp), (
            f"autoplan chose ({best['tp']},{best['dp']},{best['pp']}) "
            f"but the exhaustive winner is "
            f"({winner.tp},{winner.dp},{winner.pp})")
        assert abs(best["samples_per_second"]
                   - winner.samples_per_second) < 1e-9

    print("autoplan smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
