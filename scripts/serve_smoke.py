"""End-to-end smoke of ``repro serve`` (the CI ``serve-smoke`` job).

Boots the real CLI server as a subprocess, drives the same sweep
cold and warm over HTTP, and asserts the service contract:

* cold run simulates everything (``executed == n``, no hits);
* warm run is served entirely from the shared cache
  (``executed == 0``) with a nonzero hit rate in ``/v1/stats``;
* the two runs' records are byte-identical.

Usage: ``PYTHONPATH=src python scripts/serve_smoke.py``
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import tempfile
import time

TASKS = [
    {"model": "bert-0.35", "server": "dgx1", "system": "none"},
    {"model": "bert-0.35", "server": "dgx1", "system": "recomputation"},
]


def boot(cache_dir: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--jobs", "2", "--cache", cache_dir, "--quiet"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def read_url(proc: subprocess.Popen, timeout: float = 30.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit("server exited before announcing its URL")
        sys.stdout.write(line)
        match = re.search(r"listening on (http://\S+)", line)
        if match:
            return match.group(1)
    raise SystemExit("timed out waiting for the server URL")


def main() -> int:
    from repro.serve import ServeClient

    with tempfile.TemporaryDirectory() as cache_dir:
        proc = boot(cache_dir)
        try:
            client = ServeClient(read_url(proc), timeout=60.0)
            assert client.health()["ok"] is True

            cold = client.wait(
                client.submit(tasks=TASKS, tenant="ci-cold"),
                timeout=300.0, results="full")
            assert cold["status"] == "done" and cold["failed"] == 0, cold
            assert cold["executed"] == len(TASKS), cold
            assert cold["cached"] == 0, cold

            warm = client.wait(
                client.submit(tasks=TASKS, tenant="ci-warm"),
                timeout=300.0, results="full")
            assert warm["executed"] == 0, warm
            assert warm["cached"] == len(TASKS), warm
            assert (json.dumps(cold["records"], sort_keys=True)
                    == json.dumps(warm["records"], sort_keys=True)), \
                "warm records differ from cold records"

            stats = client.stats()
            assert stats["cache"]["hits"] >= len(TASKS), stats
            assert stats["cache"]["hit_rate"] > 0, stats
            assert stats["tenants"]["ci-warm"]["cached"] == len(TASKS)
            print(f"serve smoke ok: cold executed={cold['executed']}, "
                  f"warm cached={warm['cached']}, "
                  f"hit_rate={stats['cache']['hit_rate']:.2f}")
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
    return 0


if __name__ == "__main__":
    sys.exit(main())
