"""Design-choice ablations beyond the paper's figures (DESIGN.md list).

* D2D in the mix vs CPU-swap/recompute only (what D2D itself buys),
* swap-in prefetch lead distance,
* microbatches per minibatch (pipeline bubble vs memory pressure).
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core.mpress import MPress
from repro.core.planner import PlannerConfig
from repro.hardware import dgx1_server
from repro.job import dapple_job, pipedream_job
from repro.models import bert_variant, gpt_variant
from repro.sim.executor import simulate


@pytest.mark.benchmark(group="ablation")
def test_d2d_contribution(once):
    """MPress with and without D2D in the technique mix."""

    def measure():
        job = pipedream_job(bert_variant(1.67), dgx1_server())
        with_d2d = MPress(job, PlannerConfig()).run()
        without = MPress(
            job, PlannerConfig(allow_d2d=False, mapping_mode="identity")
        ).run()
        return with_d2d, without

    with_d2d, without = once(measure)
    print()
    print(format_table(
        ["variant", "TFLOPS"],
        [["recompute+cpu-swap", f"{without.tflops:.1f}"],
         [" + d2d swap", f"{with_d2d.tflops:.1f}"]],
        title="Ablation: D2D swap in the technique mix (Bert-1.67B)",
    ))
    assert with_d2d.ok and without.ok
    assert with_d2d.tflops >= without.tflops * 0.999


@pytest.mark.benchmark(group="ablation")
def test_prefetch_lead(once):
    """Swap-in prefetch distance: too late exposes transfer time."""

    def measure():
        job = dapple_job(gpt_variant(10.3), dgx1_server())
        plan = MPress(job).build_plan()
        rows = []
        for lead in (1, 3, 6):
            result = simulate(job, plan, strict=False, prefetch_lead=lead)
            rows.append((lead, result.minibatch_time))
        return rows

    rows = once(measure)
    print()
    print(format_table(
        ["prefetch lead", "minibatch s"],
        [[lead, f"{t:.2f}"] for lead, t in rows],
        title="Ablation: swap-in prefetch lead (GPT-10.3B)",
    ))
    times = [t for _, t in rows]
    # Earlier prefetch never slows the pipeline down materially.
    assert times[-1] <= times[0] * 1.05


@pytest.mark.benchmark(group="ablation")
def test_microbatches_per_minibatch(once):
    """DAPPLE bubble amortization: more microbatches, higher TFLOPS —
    at the price of deeper in-flight memory."""

    def measure():
        server = dgx1_server()
        rows = []
        for mpm in (4, 8, 16):
            job = dapple_job(gpt_variant(5.3), server,
                             microbatches_per_minibatch=mpm)
            result = simulate(job, strict=False)
            rows.append((mpm, result.tflops, max(result.peak_memory_per_gpu)))
        return rows

    rows = once(measure)
    print()
    print(format_table(
        ["microbatches", "TFLOPS", "max peak GiB"],
        [[m, f"{t:.0f}", f"{p / 2**30:.1f}"] for m, t, p in rows],
        title="Ablation: microbatches per minibatch (GPT-5.3B)",
    ))
    tflops = [t for _, t, _ in rows]
    assert tflops == sorted(tflops)  # bubble amortization
