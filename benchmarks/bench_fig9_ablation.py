"""Figure 9: impact of device mapping and data striping on MPress.

Paper (GPT-15.4B, microbatch 2, normalized to the default setting —
suggested mapping, D2D without striping): DGX-1 gains +17.4% from
device mapping and +33.3% from striping; DGX-2 gains nothing from
mapping (symmetric topology) and +11% from striping.

The ablation grid is the runtime preset ``fig9`` — the same grid
``repro sweep --preset fig9`` runs — executed through the session
``runtime`` fixture (parallelism and caching via REPRO_BENCH_*).
"""

import pytest

from repro.analysis.reporting import format_table
from repro.hardware import dgx1_server, dgx2_server
from repro.runtime.presets import FIG9_VARIANTS, fig9_tasks

VARIANTS = FIG9_VARIANTS


def _measure(runtime, server):
    records = runtime.run(fig9_tasks(servers=(server,))).records()
    results = {}
    for name, record in zip(VARIANTS, records):
        assert record is not None, f"fig9 variant {name} failed"
        results[name] = record
    return results


def _print(results, title):
    base = results["default"]["tflops"]
    rows = [
        [name, f"{r['tflops']:.0f}",
         f"{r['tflops'] / base:.3f}" if base else "-"]
        for name, r in results.items()
    ]
    print(format_table(["variant", "TFLOPS", "normalized"], rows, title=title))


@pytest.mark.benchmark(group="figure9")
def test_fig9_dgx1(once, runtime):
    results = once(lambda: _measure(runtime, dgx1_server()))
    print()
    _print(results, "Figure 9 (DGX-1-V100): GPT-15.4B, normalized to default")
    assert all(r["ok"] for r in results.values())
    # Directional claim: the combined optimizations do not lose to
    # the default, and device mapping helps on the asymmetric
    # topology.  (Magnitudes are smaller than the paper's +17%/+33%
    # because our planner leans more on recomputation at this size —
    # see EXPERIMENTS.md.)
    base = results["default"]["tflops"]
    # Each variant replans from scratch, so greedy-search variance of
    # a few percent is expected; the claim is directional.
    assert results["+dev-mapping"]["tflops"] >= base * 0.95
    assert results["+both"]["tflops"] >= base * 0.95
    assert results["+both"]["tflops"] >= results["+striping"]["tflops"] * 0.95


@pytest.mark.benchmark(group="figure9")
def test_fig9_dgx2(once, runtime):
    results = once(lambda: _measure(runtime, dgx2_server()))
    print()
    _print(results, "Figure 9 (DGX-2-A100): GPT-15.4B, normalized to default")
    assert all(r["ok"] for r in results.values())
    base = results["default"]["tflops"]
    # Symmetric topology: device mapping is a no-op (paper).
    assert results["+dev-mapping"]["tflops"] == pytest.approx(base, rel=0.02)
    assert results["+striping"]["tflops"] >= base * 0.999
