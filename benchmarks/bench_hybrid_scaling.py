"""Hybrid DP x PP scaling curve (topology-aware extension).

Not a paper figure: MPress trains one pipeline per server.  This
benchmark splits the server into data-parallel replicas, prices the
gradient all-reduce with the topology-aware collective models, and
reports weak-scaling throughput as replicas are added — the curve
that tells an operator when shorter pipelines plus all-reduce beat
one long pipeline.
"""

import pytest

from repro.analysis.dp_scaling import dp_scaling_sweep
from repro.analysis.reporting import format_table
from repro.hardware import dgx1_server
from repro.job import pipedream_job
from repro.models import bert_variant


@pytest.mark.benchmark(group="hybrid")
def test_dp_scaling_curve(once, runtime):
    """Samples/s vs. replica count for Bert-0.35B/PipeDream (DGX-1)."""

    def measure():
        job = pipedream_job(bert_variant(0.35), dgx1_server())
        return dp_scaling_sweep(
            job,
            dp_grid=(1, 2, 4),
            system="recomputation",
            runtime=runtime,
        )

    cells = once(measure)
    rows = []
    for cell in cells:
        rows.append([
            str(cell.dp),
            f"{cell.samples_per_second:.1f}",
            f"{cell.tflops:.1f}",
            f"{1000 * cell.exposed_allreduce:.2f}",
            f"{cell.peak_gib:.1f}",
            f"{100 * cell.scaling_efficiency:.1f}%",
        ])
    print()
    print(format_table(
        ["dp", "samples/s", "TFLOPS", "exposed all-reduce (ms)",
         "peak GiB", "scaling eff."],
        rows,
        title="Hybrid DP x PP weak scaling (Bert-0.35B, recomputation)",
    ))
    assert all(cell.ok for cell in cells)
    assert cells[0].dp == 1 and cells[0].scaling_efficiency == pytest.approx(1.0)
    # Replication costs an all-reduce: efficiency stays below perfect.
    for cell in cells[1:]:
        assert 0.0 < cell.scaling_efficiency <= 1.0 + 1e-9
