"""Figure 9 companion: striping and mapping effects on raw D2D time.

The end-to-end Figure 9 runs replan per variant, which dilutes the
effect when the plan leans on recomputation.  This microbenchmark
isolates what the paper's two optimizations do to the D2D transfer
itself: the round-trip time of swapping one overflowing stage's
tensor under each (mapping, striping) combination.

Expected shapes: on the asymmetric DGX-1, a good mapping roughly
doubles reachable lane count and striping multiplies bandwidth by
the lane count; on the symmetric DGX-2, mapping changes nothing and
striping still helps (the paper's +11%).
"""

from repro.analysis.reporting import format_table
from repro.core.striping import build_stripe_plan
from repro.hardware.bandwidth import transfer_time
from repro.hardware.links import PCIE3_X16
from repro.hardware.topology import dgx1_topology, dgx2_topology
from repro.units import MB


def _round_trip(topology, exporter, importers, size, striping):
    budgets = {dev: size for dev in importers}
    plan = build_stripe_plan(topology, exporter, budgets, size, striping=striping)
    return plan.round_trip_time(topology)


def _pcie_staged_round_trip(size):
    """Swap to an NVLink-unreachable peer: D2H + H2D each way."""
    return 2.0 * 2.0 * transfer_time(size, PCIE3_X16, lanes=1)


def _measure():
    size = 384 * MB  # the paper's t4/t5 tensor scale
    rows = []

    dgx1 = dgx1_topology()
    # Default mapping: the light-loaded peer (GPU5) shares no NVLink
    # with exporter GPU0, so the swap stages through host memory.
    default = _pcie_staged_round_trip(size)
    with_striping = default  # striping cannot rescue a PCIe route
    # Device mapping places the spare on reachable GPU3 instead.
    with_mapping = _round_trip(dgx1, 0, [3], size, striping=False)
    both = _round_trip(dgx1, 0, [3, 4], size, striping=True)
    rows.append(["DGX-1", f"{default * 1e3:.1f}", f"{with_striping * 1e3:.1f}",
                 f"{with_mapping * 1e3:.1f}", f"{both * 1e3:.1f}"])

    dgx2 = dgx2_topology()
    sym_default = _round_trip(dgx2, 0, [1], size, striping=False)
    sym_striping = _round_trip(dgx2, 0, [1, 2, 3], size, striping=True)
    sym_mapping = _round_trip(dgx2, 0, [4], size, striping=False)
    sym_both = _round_trip(dgx2, 0, [4, 5, 6], size, striping=True)
    rows.append(["DGX-2", f"{sym_default * 1e3:.1f}", f"{sym_striping * 1e3:.1f}",
                 f"{sym_mapping * 1e3:.1f}", f"{sym_both * 1e3:.1f}"])
    return rows, (default, with_striping, with_mapping, both,
                  sym_default, sym_striping, sym_mapping, sym_both)


def test_fig9_micro_d2d_transfer(once):
    rows, times = once(_measure)
    print()
    print(format_table(
        ["topology", "default ms", "+striping", "+mapping", "+both"],
        rows,
        title="Figure 9 companion: 384 MB D2D round trip",
    ))
    (default, with_striping, with_mapping, both,
     sym_default, sym_striping, sym_mapping, sym_both) = times
    # DGX-1: mapping rescues the transfer from the PCIe detour, and
    # striping across both 2-lane partners compounds it (the paper's
    # +17.4% / +33.3% effects operate here at full strength).
    assert with_mapping < 0.5 * default
    assert both < 0.5 * with_mapping
    # DGX-2: the destination choice is irrelevant (mapping no-op)...
    assert abs(sym_default - sym_mapping) < 1e-9
    # ...while striping over the egress lanes still multiplies
    # bandwidth (the paper's +11%).
    assert sym_striping < 0.5 * sym_default
    assert sym_both < 0.5 * sym_mapping
