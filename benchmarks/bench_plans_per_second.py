"""Planner throughput: coarse-to-fine sweep vs simulating everything.

The coarse-to-fine search (``PlannerConfig(search="coarse2fine")``,
docs/fastpath.md) prices every candidate plan with the analytic
collective/cost model and only lowers + simulates the profitable
frontier.  This benchmark measures the end-to-end effect as **plans
per second** over one candidate sweep:

* **full** — lower and simulate *every* candidate on the reference
  interpreter (what a search without the analytic tier pays);
* **coarse2fine** — price every candidate analytically, then lower
  and simulate only the top-``FRONTIER`` through the incremental
  fast-path simulator.

Both pipelines evaluate the same candidate set; the committed
``BENCH_plans_per_second.json`` at the repository root records the
rates, and the CI ``perf-smoke`` job re-measures the small preset
against it with a generous regression gate (tests/README.md).

Run from the repository root::

    python benchmarks/bench_plans_per_second.py --preset all \
        --out BENCH_plans_per_second.json
    python benchmarks/bench_plans_per_second.py --preset small \
        --check BENCH_plans_per_second.json --gate 3.0
"""

from __future__ import annotations

import argparse
import dataclasses
import itertools
import json
import sys
import time

import pytest

FRONTIER = 5
MAX_CANDIDATES = 60


def _small_job():
    """The memory-pressure miniature used across the unit tests."""
    from repro.hardware.device import GPUSpec, HostSpec, NVMeSpec
    from repro.hardware.links import NVLINK2
    from repro.hardware.server import Server
    from repro.hardware.topology import Topology
    from repro.job import TrainingJob
    from repro.models.config import TransformerConfig
    from repro.models.layers import build_model
    from repro.units import GBps, GiB, MiB, TFLOP

    gpu = GPUSpec(name="tiny-gpu", memory_bytes=64 * MiB,
                  peak_fp32=10 * TFLOP, peak_fp16=80 * TFLOP,
                  hbm_bandwidth=500 * GBps)
    topology = Topology(n_gpus=4, kind="direct", nvlink=NVLINK2, adjacency={
        frozenset((0, 1)): 2, frozenset((0, 2)): 1, frozenset((0, 3)): 1,
        frozenset((1, 2)): 1, frozenset((1, 3)): 1, frozenset((2, 3)): 2,
    })
    server = Server(
        name="small-4gpu", gpus=[gpu] * 4, topology=topology,
        host=HostSpec(memory_bytes=64 * GiB, vcpus=16),
        nvme=NVMeSpec(capacity_bytes=512 * GiB, read_bandwidth=4 * GBps,
                      write_bandwidth=3 * GBps),
    )
    model = build_model(TransformerConfig(
        name="Tiny-12x512", n_layers=12, hidden=512, heads=4,
        vocab=1000, seq_len=64, max_positions=128,
    ))
    return TrainingJob(model=model, server=server, system="dapple",
                       microbatch_size=2, microbatches_per_minibatch=6,
                       n_minibatches=2, precision="fp16", mfu=0.5)


def _dgx1_job():
    from repro.hardware.server import dgx1_server
    from repro.job import pipedream_job
    from repro.models import bert_variant

    return pipedream_job(bert_variant(0.64), dgx1_server(), n_minibatches=6)


def _cluster_job():
    """One TP-sharded pipeline chain of a 2-server TP x DP x PP run —
    exactly what ``repro plan --nodes 2 --tp 2`` plans."""
    from repro.hardware.cluster import dgx1_cluster
    from repro.job import dapple_job
    from repro.models import gpt_variant
    from repro.parallel.cluster import ClusterConfig, plan_chain_job

    cluster = dgx1_cluster(2)
    job = dapple_job(gpt_variant(15.4), cluster.servers[0], n_minibatches=2)
    chain, _ = plan_chain_job(job, cluster, ClusterConfig(tp=2, dp=2, pp=4))
    return chain


PRESETS = {"small": _small_job, "dgx1": _dgx1_job, "cluster": _cluster_job}


def _autoplan_workload():
    """A tiny 2-box cluster and job for the shape-search preset."""
    from repro.hardware.cluster import Cluster
    from repro.hardware.device import GPUSpec, HostSpec, NVMeSpec
    from repro.hardware.links import NVLINK2
    from repro.hardware.server import Server
    from repro.hardware.topology import Topology
    from repro.job import TrainingJob
    from repro.models.config import TransformerConfig
    from repro.models.layers import build_model
    from repro.units import GBps, GiB, TFLOP

    gpu = GPUSpec(name="tiny-gpu", memory_bytes=2 * GiB,
                  peak_fp32=10 * TFLOP, peak_fp16=80 * TFLOP,
                  hbm_bandwidth=500 * GBps)
    topology = Topology(n_gpus=4, kind="direct", nvlink=NVLINK2, adjacency={
        frozenset((0, 1)): 2, frozenset((0, 2)): 1, frozenset((0, 3)): 1,
        frozenset((1, 2)): 1, frozenset((1, 3)): 1, frozenset((2, 3)): 2,
    })

    def box() -> Server:
        return Server(
            name="small-4gpu", gpus=[gpu] * 4, topology=topology,
            host=HostSpec(memory_bytes=64 * GiB, vcpus=16),
            nvme=NVMeSpec(capacity_bytes=512 * GiB,
                          read_bandwidth=4 * GBps,
                          write_bandwidth=3 * GBps),
        )

    cluster = Cluster(name="2x-small", servers=(box(), box()))
    model = build_model(TransformerConfig(
        name="Tiny-6x256", n_layers=6, hidden=256, heads=4,
        vocab=1000, seq_len=64, max_positions=128,
    ))
    job = TrainingJob(model=model, server=cluster.servers[0],
                      system="dapple", microbatch_size=2,
                      microbatches_per_minibatch=4, n_minibatches=2,
                      precision="fp16", mfu=0.5)
    return job, cluster


def _sweep_autoplan() -> dict:
    """Shape search throughput: exhaustive grid vs pruned frontier.

    Same row schema as the plan-candidate presets — ``full`` fully
    simulates every valid (tp, dp, pp) shape, ``fast`` runs
    ``repro.autoplan`` (analytic pricing everywhere, simulation only
    on the frontier) — so the perf-smoke gate applies unchanged.
    """
    from repro.analysis.cluster_scaling import (
        cluster_scaling_sweep,
        full_shape_grid,
        grid_winner,
    )
    from repro.autoplan import autoplan

    job, cluster = _autoplan_workload()

    start = time.perf_counter()
    shapes = full_shape_grid(job, cluster)
    winner = grid_winner(cluster_scaling_sweep(job, cluster, shapes=shapes))
    full_seconds = time.perf_counter() - start

    start = time.perf_counter()
    report = autoplan(job, cluster)
    fast_seconds = time.perf_counter() - start

    n = len(shapes)
    return {
        "preset": "autoplan",
        "n_candidates": n,
        "frontier": report.n_simulated,
        "full_seconds": round(full_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "full_plans_per_second": round(n / full_seconds, 2),
        "fast_plans_per_second": round(n / fast_seconds, 2),
        "speedup": round(full_seconds / fast_seconds, 2),
        "full_best_minibatch_time": winner.minibatch_time,
        "fast_best_minibatch_time": report.best.minibatch_time,
    }


def _sweep_inference() -> dict:
    """Serving replay throughput: reference interpreter vs fast path.

    Same row schema as the plan-candidate presets — the candidates are
    lowered continuous-batching serving programs (KV overflow policies
    x workload seeds); ``full`` replays each on the event-driven
    reference interpreter and ``fast`` through
    ``repro.sim.fastpath.run_program``.  The two produce bit-identical
    traces (tests/test_inference_serving.py), so the columns differ
    only in replay speed.
    """
    from repro.hardware.server import dgx1_server
    from repro.inference import InferenceConfig, build_serving_program
    from repro.models import gpt_variant
    from repro.sim.fastpath import run_program
    from repro.sim.interpreter import Interpreter

    model = gpt_variant(5.3)
    server = dgx1_server()
    base = InferenceConfig(
        n_requests=10, arrival_rate=32.0, prompt_mean=128, prompt_max=256,
        output_mean=24, output_max=64, max_batch=6, kv_pool_mib=199)
    programs = [
        build_serving_program(
            model, server,
            dataclasses.replace(base, seed=seed, kv_swap=mode))[0]
        for mode in ("d2d", "pcie", "none")
        for seed in range(4)
    ]

    start = time.perf_counter()
    full_best = min(
        Interpreter(program).run().minibatch_time for program in programs)
    full_seconds = time.perf_counter() - start

    start = time.perf_counter()
    fast_best = min(
        run_program(program).minibatch_time for program in programs)
    fast_seconds = time.perf_counter() - start

    n = len(programs)
    return {
        "preset": "inference",
        "n_candidates": n,
        "frontier": n,
        "full_seconds": round(full_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "full_plans_per_second": round(n / full_seconds, 2),
        "fast_plans_per_second": round(n / fast_seconds, 2),
        "speedup": round(full_seconds / fast_seconds, 2),
        "full_best_minibatch_time": full_best,
        "fast_best_minibatch_time": fast_best,
    }


def _candidate_plans(plan, limit: int = MAX_CANDIDATES):
    """Plan variants around the planner's chosen plan: single-entry
    action flips (recompute <-> cpu-swap) plus single and pair entry
    drops — the neighborhood a refine round would explore."""
    from repro.core.plan import Action, PlanEntry

    keys = list(plan.entries)
    out = []
    for key in keys:
        entry = plan.entries[key]
        flipped = None
        if entry.action is Action.RECOMPUTE:
            flipped = PlanEntry(cls=entry.cls, action=Action.CPU_SWAP)
        elif entry.action is Action.CPU_SWAP and entry.cls.recomputable:
            flipped = PlanEntry(cls=entry.cls, action=Action.RECOMPUTE)
        if flipped is not None:
            out.append(dataclasses.replace(
                plan, entries={**plan.entries, key: flipped}))
    for width in (1, 2):
        for combo in itertools.combinations(keys, width):
            out.append(dataclasses.replace(
                plan,
                entries={k: v for k, v in plan.entries.items()
                         if k not in combo},
            ))
            if len(out) >= limit:
                return out[:limit]
    return out[:limit]


def sweep(preset: str) -> dict:
    """Evaluate one candidate sweep both ways and report plans/sec."""
    if preset == "autoplan":
        return _sweep_autoplan()
    if preset == "inference":
        return _sweep_inference()
    from repro.core.mpress import MPress
    from repro.core.planner import CostModel
    from repro.core.profiler import Profiler
    from repro.sim.incremental import IncrementalSimulator
    from repro.sim.interpreter import Interpreter
    from repro.sim.ir import ExecOptions
    from repro.sim.lowering import Lowering

    job = PRESETS[preset]()
    plan = MPress(job).build_plan()
    candidates = _candidate_plans(plan)
    options = ExecOptions(strict=False, prefetch_lead=2)

    start = time.perf_counter()
    lowering = Lowering(job, options)
    full_best = min(
        Interpreter(lowering.lower(candidate)).run().minibatch_time
        for candidate in candidates
    )
    full_seconds = time.perf_counter() - start

    start = time.perf_counter()
    profile = Profiler(job).run()
    cost_model = CostModel(job, plan.device_map, profile.intervals)

    def price(candidate) -> float:
        return sum(
            cost_model.extra_overhead(entry.cls, entry.action.value)
            for entry in candidate.entries.values()
        )

    lowering = Lowering(job, options)
    simulator = IncrementalSimulator()
    frontier = sorted(candidates, key=price)[:FRONTIER]
    fast_best = min(
        simulator.run(lowering.lower(candidate)).minibatch_time
        for candidate in frontier
    )
    fast_seconds = time.perf_counter() - start

    n = len(candidates)
    return {
        "preset": preset,
        "n_candidates": n,
        "frontier": FRONTIER,
        "full_seconds": round(full_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "full_plans_per_second": round(n / full_seconds, 2),
        "fast_plans_per_second": round(n / fast_seconds, 2),
        "speedup": round(full_seconds / fast_seconds, 2),
        "full_best_minibatch_time": full_best,
        "fast_best_minibatch_time": fast_best,
    }


def _format(row: dict) -> str:
    return (
        f"{row['preset']}: {row['n_candidates']} candidates  "
        f"full {row['full_plans_per_second']} plans/s  "
        f"coarse2fine {row['fast_plans_per_second']} plans/s  "
        f"speedup {row['speedup']}x"
    )


@pytest.mark.benchmark(group="fastpath")
def test_plans_per_second(once):
    """Coarse-to-fine beats simulate-everything on the small preset."""
    row = once(lambda: sweep("small"))
    print()
    print(_format(row))
    assert row["speedup"] > 1.5
    # The frontier winner can only be as good as the global winner.
    assert row["fast_best_minibatch_time"] >= row["full_best_minibatch_time"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", default="all",
                        choices=sorted(PRESETS) + ["autoplan", "inference",
                                                   "all"])
    parser.add_argument("--out", default=None,
                        help="write results as JSON to this path")
    parser.add_argument("--check", default=None,
                        help="compare against a committed baseline JSON")
    parser.add_argument("--gate", type=float, default=3.0,
                        help="fail if fast plans/sec fell by more than this "
                             "factor vs the baseline")
    args = parser.parse_args(argv)

    names = (sorted(PRESETS) + ["autoplan", "inference"]
             if args.preset == "all" else [args.preset])
    rows = {}
    for name in names:
        rows[name] = sweep(name)
        print(_format(rows[name]))

    if args.out:
        payload = {"benchmark": "plans_per_second", "presets": rows}
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")

    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)["presets"]
        ok = True
        for name, row in rows.items():
            pinned = baseline.get(name)
            if pinned is None:
                print(f"{name}: no baseline entry, skipping")
                continue
            floor = pinned["fast_plans_per_second"] / args.gate
            verdict = "ok" if row["fast_plans_per_second"] >= floor else "REGRESSED"
            print(f"{name}: measured {row['fast_plans_per_second']} plans/s, "
                  f"floor {floor:.2f} (baseline "
                  f"{pinned['fast_plans_per_second']} / gate {args.gate}): "
                  f"{verdict}")
            if verdict != "ok":
                ok = False
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
