"""Section IV-D: device-mapping search wall time.

Paper: an extreme stress case completes within 47 s single-threaded;
the evaluation's real cases take a few seconds.  Our exact search
enumerates all 40320 mappings of an 8-GPU server.
"""

from repro.core.device_mapping import search_device_mapping
from repro.hardware.topology import dgx1_topology
from repro.units import GiB


def _stress_case():
    topology = dgx1_topology()
    # Every stage overflowing or spare — the densest assignment work.
    overflow = [int(x * GiB) for x in (30, 24, 18, 12, 0, 0, 0, 0)]
    spare = [int(x * GiB) for x in (0, 0, 0, 0, 8, 12, 20, 28)]
    return search_device_mapping(topology, overflow, spare, mode="exact")


def test_mapping_search_wall_time(benchmark):
    result = benchmark.pedantic(_stress_case, rounds=3, iterations=1)
    print()
    print(f"exact search: {result.mappings_evaluated} mappings, "
          f"placed {result.placed_fraction:.2f}, map {result.device_map}")
    assert result.mappings_evaluated == 40320
    # Overflow (84 GiB) exceeds spare (68 GiB); the search must place
    # everything the spare can hold.
    assert result.placed_fraction > 0.78


def test_greedy_search_is_cheaper(benchmark):
    topology = dgx1_topology()
    overflow = [int(30 * GiB)] + [0] * 7
    spare = [0] * 4 + [int(12 * GiB)] * 4

    def greedy():
        return search_device_mapping(topology, overflow, spare, mode="greedy")

    result = benchmark.pedantic(greedy, rounds=3, iterations=1)
    assert result.mappings_evaluated == 5040
