"""Table I: GPU memory consumption by data type.

Paper rows (percent): Bert-0.64B -> 39 / 46 / 15 and GPT-5.3B ->
42 / 44 / 14 for activation / optimizer / params+grads.  Our
breakdown uses peak-resident accounting from the profiler; the
optimizer:params+grads 3:1 split is reproduced exactly by the
mixed-precision state model, while the activation share is larger
(see EXPERIMENTS.md).
"""

from repro.analysis.reporting import format_table
from repro.core.profiler import Profiler
from repro.hardware import dgx1_server
from repro.job import dapple_job, pipedream_job
from repro.models import bert_variant, gpt_variant

PAPER = {
    "Bert-0.64B": (39, 46, 15),
    "GPT-5.3B": (42, 44, 14),
}


def _breakdown_rows():
    server = dgx1_server()
    jobs = {
        "Bert-0.64B": pipedream_job(bert_variant(0.64), server),
        "GPT-5.3B": dapple_job(gpt_variant(5.3), server),
    }
    rows = []
    for name, job in jobs.items():
        percent = Profiler(job).run().memory_breakdown_percent()
        paper = PAPER[name]
        rows.append([
            name,
            f"{percent['activation']:.0f}%",
            f"{percent['optimizer']:.0f}%",
            f"{percent['params+grads']:.0f}%",
            f"{paper[0]}% / {paper[1]}% / {paper[2]}%",
        ])
    return rows


def test_table1_memory_breakdown(once):
    rows = once(_breakdown_rows)
    print()
    print(format_table(
        ["model", "activation", "optimizer", "params+grads", "paper (a/o/pg)"],
        rows,
        title="Table I: memory consumption by data type",
    ))
    # Every category contributes materially (the paper's point that
    # recomputation alone cannot win: 58-61% is not activations).
    for row in rows:
        for column in (1, 2, 3):
            assert float(row[column].rstrip("%")) > 1.0
    # Under mixed-precision accounting (the GPT/DAPPLE row), optimizer
    # state is ~3x params+grads — the Table I 46% vs 15% split.
    gpt = rows[1]
    optimizer = float(gpt[2].rstrip("%"))
    params_grads = float(gpt[3].rstrip("%"))
    assert 2.0 < optimizer / params_grads < 4.0
