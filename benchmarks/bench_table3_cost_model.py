"""Table III: per-tensor time costs of the three optimizations.

The paper samples six tensors; e.g. t1 (Bert, 216 MB, interval
78 ms): recompute 4 ms, GPU-CPU swap 42 ms, D2D swap (4 NVLinks)
6 ms.  We price same-sized tensors with the cost model and check the
orderings the planner relies on: D2D ~7x faster than PCIe swap and
comparable to recomputation.
"""

from repro.analysis.reporting import format_table
from repro.core.cost_model import CostModel
from repro.core.profiler import Profiler
from repro.hardware import dgx1_server
from repro.job import dapple_job, pipedream_job
from repro.models import bert_variant, gpt_variant
from repro.graph.tensor import TensorKind
from repro.units import MB

# (paper tensor, model, size MB, paper recompute/cpu/d2d ms)
PAPER_ROWS = [
    ("t1", "bert", 216, (4, 42, 6)),
    ("t2", "bert", 115, (3, 22, 3)),
    ("t4", "gpt", 384, (8, 74, 9)),
    ("t6", "gpt", 1152, (14, 222, 27)),
]


def _models():
    server = dgx1_server()
    bert = pipedream_job(bert_variant(0.64), server)
    gpt = dapple_job(gpt_variant(5.3), server)
    result = {}
    for name, job in (("bert", bert), ("gpt", gpt)):
        profile = Profiler(job).run()
        model = CostModel(job, list(range(job.n_stages)), profile.intervals)
        acts = [
            c for c in profile.classes
            if c.kind is TensorKind.ACTIVATION and c.layer > 0
        ]
        # Only transformer-layer tensors (the paper's samples are
        # layer tensors); boundary-sized embedding/head activations
        # would be picked as spurious "closest" matches.
        largest = max(c.size for c in acts)
        acts = [c for c in acts if c.size >= largest // 2]
        result[name] = (job, model, acts)
    return result


def _measure():
    models = _models()
    rows = []
    for label, family, size_mb, paper in PAPER_ROWS:
        job, cost_model, acts = models[family]
        # Price the class whose size is closest to the paper tensor.
        cls = min(acts, key=lambda c: abs(c.size - size_mb * MB))
        budgets = {dev: cls.size * 8 for dev in range(8)}
        stripe = cost_model.candidate_stripe(cls, budgets)
        costs = cost_model.costs_for(cls, stripe)
        rows.append([
            label,
            f"{cls.size / MB:.0f} MB",
            f"{costs.recompute * 1e3:.1f}",
            f"{costs.cpu_swap * 1e3:.1f}",
            f"{costs.d2d_swap * 1e3:.1f}",
            f"{paper[0]} / {paper[1]} / {paper[2]}",
        ])
    return rows


def test_table3_cost_model(once):
    rows = once(_measure)
    print()
    print(format_table(
        ["tensor", "size", "recompute ms", "cpu-swap ms", "d2d ms", "paper (r/c/d)"],
        rows,
        title="Table III: memory reduction time costs",
    ))
    for row in rows:
        recompute, cpu, d2d = (float(row[i]) for i in (2, 3, 4))
        # GPU-CPU swap is by far the slowest; D2D within ~3x of
        # recomputation (paper shows them the same order).
        assert cpu > 4 * d2d
        assert d2d < 4 * recompute + 1.0
