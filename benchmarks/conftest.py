"""Shared benchmark helpers.

Every benchmark regenerates one of the paper's tables or figures and
prints the corresponding rows/series.  Heavy experiments run exactly
once per benchmark (``rounds=1``) — the interesting output is the
experiment's result, not micro-timing jitter.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark and return it."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def runner(func):
        return run_once(benchmark, func)

    return runner
