"""Shared benchmark helpers.

Every benchmark regenerates one of the paper's tables or figures and
prints the corresponding rows/series.  Heavy experiments run exactly
once per benchmark (``rounds=1``) — the interesting output is the
experiment's result, not micro-timing jitter.

Grid-shaped benchmarks execute through :mod:`repro.runtime` via the
session ``runtime`` fixture, so they parallelize and cache like any
other sweep.  Two environment variables configure it:

* ``REPRO_BENCH_JOBS`` — worker processes (default 1);
* ``REPRO_BENCH_CACHE`` — result-cache directory (default: no cache;
  point it somewhere persistent to make benchmark re-runs instant).
"""

from __future__ import annotations

import os

import pytest


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark and return it."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def runner(func):
        return run_once(benchmark, func)

    return runner


@pytest.fixture(scope="session")
def runtime():
    """The sweep runtime every grid benchmark routes through."""
    from repro.runtime import ResultCache, RuntimeConfig, SweepRuntime

    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    cache_dir = os.environ.get("REPRO_BENCH_CACHE")
    cache = ResultCache(cache_dir) if cache_dir else None
    return SweepRuntime(RuntimeConfig(jobs=jobs, cache=cache))
