"""Table IV: strategies chosen by MPress and per-technique savings.

Paper: recomputation contributes the most savings (51.2-90.6%),
GPU-CPU swap 0-42.2%, D2D swap 3.9-23.4% and applied to early
stages.  We run the planner on the same four jobs and print the
chosen mix.
"""

from repro.analysis.reporting import format_table
from repro.core.mpress import MPress
from repro.core.plan import Action
from repro.hardware import dgx1_server
from repro.job import dapple_job, pipedream_job
from repro.models import bert_variant, gpt_variant

PAPER_SHARES = {
    "Bert-1.67B": (76.6, 0.0, 23.4),
    "Bert-6.2B": (90.6, 5.5, 3.9),
    "GPT-10.3B": (82.5, 3.2, 14.3),
    "GPT-20.4B": (51.2, 42.2, 6.6),
}


def _jobs():
    server = dgx1_server()
    return {
        "Bert-1.67B": pipedream_job(bert_variant(1.67), server),
        "Bert-6.2B": pipedream_job(bert_variant(6.2), server),
        "GPT-10.3B": dapple_job(gpt_variant(10.3), server),
        "GPT-20.4B": dapple_job(gpt_variant(20.4), server),
    }


def _fmt_stages(stages):
    if not stages:
        return "N/A"
    return f"stage {min(stages)}-{max(stages)}"


def _measure():
    rows = []
    for name, job in _jobs().items():
        plan = MPress(job).build_plan()
        saved = plan.saved_by_action()
        total = sum(saved.values()) or 1
        stages = plan.stages_by_action()
        paper = PAPER_SHARES[name]
        rows.append([
            name,
            f"{100 * saved[Action.RECOMPUTE] / total:.1f}% "
            f"({_fmt_stages(stages.get(Action.RECOMPUTE, []))})",
            f"{100 * saved[Action.CPU_SWAP] / total:.1f}% "
            f"({_fmt_stages(stages.get(Action.CPU_SWAP, []))})",
            f"{100 * saved[Action.D2D_SWAP] / total:.1f}% "
            f"({_fmt_stages(stages.get(Action.D2D_SWAP, []))})",
            f"{paper[0]} / {paper[1]} / {paper[2]}",
        ])
    return rows


def test_table4_strategies(once):
    rows = once(_measure)
    print()
    print(format_table(
        ["job", "recompute", "gpu-cpu swap", "d2d swap", "paper % (r/c/d)"],
        rows,
        title="Table IV: strategies chosen by MPress",
    ))
    for row in rows:
        recompute_share = float(row[1].split("%")[0])
        # Recomputation carries a substantial share of the savings in
        # every job (paper: 51.2-90.6%; our GPT mixes lean more on
        # swaps because optimizer state dominates their footprints).
        assert recompute_share > 25.0
    # The Bert-1.67B mix tracks the paper: recomputation dominant
    # and D2D carrying a ~20% share.
    bert = rows[0]
    assert float(bert[1].split("%")[0]) > 50.0
    assert float(bert[3].split("%")[0]) > 10.0
