"""Table II: GPU memory demands per training job.

Paper rows (GB): e.g. Bert-0.64B total 227.0, max 50.6, min 6.4;
GPT-5.3B total 164.8, max 28.5, min 12.7.  Shapes to hold: totals
grow with model size, per-stage max/min strongly imbalanced, and the
max-stage values near the paper's (the calibration anchors).
"""

from repro.analysis.reporting import format_table
from repro.core.profiler import Profiler
from repro.hardware import dgx1_server
from repro.job import dapple_job, pipedream_job
from repro.models import bert_variant, gpt_variant

PAPER_GB = {
    "Bert-0.35B": (108.8, 24.7, 3.7),
    "Bert-0.64B": (227.0, 50.6, 6.4),
    "Bert-1.67B": (345.9, 78.0, 8.8),
    "Bert-4.0B": (578.7, 128.3, 16.3),
    "Bert-6.2B": (1279.1, 280.6, 35.5),
    "GPT-5.3B": (164.8, 28.5, 12.7),
    "GPT-10.3B": (325.0, 56.4, 24.9),
    "GPT-15.4B": (486.7, 84.5, 37.2),
    "GPT-20.4B": (646.9, 112.4, 49.4),
    "GPT-25.5B": (806.2, 140.1, 61.5),
}


def _jobs():
    server = dgx1_server()
    for billions in (0.35, 0.64, 1.67, 4.0, 6.2):
        yield f"Bert-{billions}B", pipedream_job(bert_variant(billions), server)
    for billions in (5.3, 10.3, 15.4, 20.4, 25.5):
        yield f"GPT-{billions}B", dapple_job(gpt_variant(billions), server)


def _measure():
    rows = []
    for name, job in _jobs():
        profile = Profiler(job).run()
        peaks_gb = [p / 1e9 for p in profile.stage_peaks]
        paper = PAPER_GB[name]
        rows.append([
            name,
            f"{sum(peaks_gb):.1f}",
            f"{max(peaks_gb):.1f}",
            f"{min(peaks_gb):.1f}",
            f"{paper[0]} / {paper[1]} / {paper[2]}",
        ])
    return rows


def test_table2_memory_demand(once):
    rows = once(_measure)
    print()
    print(format_table(
        ["job", "total GB", "max/stage", "min/stage", "paper (tot/max/min)"],
        rows,
        title="Table II: GPU memory demands",
    ))
    # Totals strictly increase with model size within each family.
    bert_totals = [float(r[1]) for r in rows[:5]]
    gpt_totals = [float(r[1]) for r in rows[5:]]
    assert bert_totals == sorted(bert_totals)
    assert gpt_totals == sorted(gpt_totals)
    # Strong max/min imbalance everywhere.
    for row in rows:
        assert float(row[2]) > 1.8 * float(row[3])
