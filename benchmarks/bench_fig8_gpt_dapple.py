"""Figure 8: GPT training performance on DGX-1 and DGX-2.

Paper shape: DAPPLE alone stops at 5.3B; DAPPLE+Recomp reaches
mid-size then hits the model-state wall; the ZeRO variants and
MPress scale to the largest sizes, with MPress fastest throughout;
ZeRO-Infinity beats ZeRO-Offload on DGX-1 but loses on the DGX-2
with slow SSDs; DGX-2 throughput is more than double DGX-1.

The grid executes through the sweep runtime (``runtime`` fixture);
the ZeRO columns are runtime tasks too, so the whole figure caches
and parallelizes uniformly.
"""

import pytest

from repro.analysis.plotting import grouped_bars
from repro.analysis.reporting import format_table
from repro.hardware import dgx1_server, dgx2_server
from repro.job import dapple_job
from repro.models import gpt_variant
from repro.runtime import SimTask
from repro.runtime.presets import FIG8_SIZES, fig8_tasks

SIZES = FIG8_SIZES
# Paper column names; the runtime's system names are in FIG8_COLUMNS.
COLUMNS = ("dapple", "+recomp", "zero-offload", "zero-infinity", "mpress")


def _measure(runtime, server):
    records = runtime.run(fig8_tasks(server)).records()
    table = {}
    grid = [(b, c) for b in SIZES for c in COLUMNS]
    for (billions, column), record in zip(grid, records):
        assert record is not None, f"fig8 cell {billions}/{column} failed"
        table.setdefault(billions, {})[column] = record
    return table


def _cell(record):
    return f"{record['tflops']:.0f}" if record["ok"] else "OOM"


def _print(table, title):
    rows = [
        [f"GPT-{billions}B"] + [_cell(table[billions][c]) for c in COLUMNS]
        for billions in SIZES
    ]
    print(format_table(["model", *COLUMNS], rows, title=title))
    print()
    series = {
        column: [
            table[b][column]["tflops"] if table[b][column]["ok"] else None
            for b in SIZES
        ]
        for column in COLUMNS
    }
    print(grouped_bars([f"GPT-{b}B" for b in SIZES], series,
                       unit=" TF", title=f"{title} (bars)"))


def _common_assertions(table):
    # DAPPLE alone only handles the smallest model.
    assert table[5.3]["dapple"]["ok"]
    assert not table[10.3]["dapple"]["ok"]
    # Recomputation hits the model-state wall before 20.4B.
    assert table[10.3]["+recomp"]["ok"]
    assert not table[20.4]["+recomp"]["ok"]
    # ZeRO variants and MPress scale to the largest size.
    for column in ("zero-offload", "zero-infinity", "mpress"):
        assert table[25.5][column]["ok"], column
    # MPress leads at every size it shares with ZeRO.
    for billions in SIZES:
        entry = table[billions]
        assert entry["mpress"]["tflops"] > entry["zero-offload"]["tflops"]
        assert entry["mpress"]["tflops"] > entry["zero-infinity"]["tflops"]


@pytest.mark.benchmark(group="figure8")
def test_fig8a_dgx1(once, runtime):
    table = once(lambda: _measure(runtime, dgx1_server()))
    print()
    _print(table, "Figure 8a: GPT TFLOPS on DGX-1-V100")
    _common_assertions(table)
    # Fast NVMe: Infinity ahead of Offload (paper: +20.6-23.8%).
    for billions in SIZES:
        entry = table[billions]
        assert entry["zero-infinity"]["tflops"] > entry["zero-offload"]["tflops"]


@pytest.mark.benchmark(group="figure8")
def test_fig8b_dgx2(once, runtime):
    table = once(lambda: _measure(runtime, dgx2_server()))
    print()
    _print(table, "Figure 8b: GPT TFLOPS on DGX-2-A100 (slow NVMe)")
    _common_assertions(table)
    # Slow SSDs invert the ZeRO ranking (the paper's observation).
    for billions in SIZES:
        entry = table[billions]
        assert entry["zero-offload"]["tflops"] > entry["zero-infinity"]["tflops"]


@pytest.mark.benchmark(group="figure8")
def test_fig8_dgx2_doubles_dgx1(once, runtime):
    def measure():
        model = gpt_variant(10.3)
        tasks = [
            SimTask(label="fig8/doubling/dgx1",
                    job=dapple_job(model, dgx1_server()), system="mpress"),
            SimTask(label="fig8/doubling/dgx2",
                    job=dapple_job(model, dgx2_server()), system="mpress"),
        ]
        return runtime.run(tasks).records()

    v100, a100 = once(measure)
    print()
    print(f"GPT-10.3B MPress: DGX-1 {v100['tflops']:.0f} TF, DGX-2 "
          f"{a100['tflops']:.0f} TF ({a100['tflops'] / v100['tflops']:.1f}x, "
          f"paper: >2x)")
    assert a100["tflops"] > 2.0 * v100["tflops"]
