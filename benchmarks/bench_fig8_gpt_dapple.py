"""Figure 8: GPT training performance on DGX-1 and DGX-2.

Paper shape: DAPPLE alone stops at 5.3B; DAPPLE+Recomp reaches
mid-size then hits the model-state wall; the ZeRO variants and
MPress scale to the largest sizes, with MPress fastest throughout;
ZeRO-Infinity beats ZeRO-Offload on DGX-1 but loses on the DGX-2
with slow SSDs; DGX-2 throughput is more than double DGX-1.
"""

import pytest

from repro.analysis.plotting import grouped_bars
from repro.analysis.reporting import format_table
from repro.baselines.zero import run_zero
from repro.core.mpress import run_system
from repro.hardware import dgx1_server, dgx2_server
from repro.job import dapple_job
from repro.models import gpt_variant

SIZES = (5.3, 10.3, 15.4, 20.4, 25.5)
COLUMNS = ("dapple", "+recomp", "zero-offload", "zero-infinity", "mpress")


def _measure(server):
    table = {}
    for billions in SIZES:
        model = gpt_variant(billions)
        job = dapple_job(model, server)
        samples = job.samples_per_minibatch
        table[billions] = {
            "dapple": run_system(job, "none"),
            "+recomp": run_system(job, "recomputation"),
            "zero-offload": run_zero(model, server, "offload", samples),
            "zero-infinity": run_zero(model, server, "infinity", samples),
            "mpress": run_system(job, "mpress"),
        }
    return table


def _cell(result):
    return f"{result.tflops:.0f}" if result.ok else "OOM"


def _print(table, title):
    rows = [
        [f"GPT-{billions}B"] + [_cell(table[billions][c]) for c in COLUMNS]
        for billions in SIZES
    ]
    print(format_table(["model", *COLUMNS], rows, title=title))
    print()
    series = {
        column: [
            table[b][column].tflops if table[b][column].ok else None
            for b in SIZES
        ]
        for column in COLUMNS
    }
    print(grouped_bars([f"GPT-{b}B" for b in SIZES], series,
                       unit=" TF", title=f"{title} (bars)"))


def _common_assertions(table):
    # DAPPLE alone only handles the smallest model.
    assert table[5.3]["dapple"].ok
    assert not table[10.3]["dapple"].ok
    # Recomputation hits the model-state wall before 20.4B.
    assert table[10.3]["+recomp"].ok
    assert not table[20.4]["+recomp"].ok
    # ZeRO variants and MPress scale to the largest size.
    for column in ("zero-offload", "zero-infinity", "mpress"):
        assert table[25.5][column].ok, column
    # MPress leads at every size it shares with ZeRO.
    for billions in SIZES:
        entry = table[billions]
        assert entry["mpress"].tflops > entry["zero-offload"].tflops
        assert entry["mpress"].tflops > entry["zero-infinity"].tflops


@pytest.mark.benchmark(group="figure8")
def test_fig8a_dgx1(once):
    table = once(lambda: _measure(dgx1_server()))
    print()
    _print(table, "Figure 8a: GPT TFLOPS on DGX-1-V100")
    _common_assertions(table)
    # Fast NVMe: Infinity ahead of Offload (paper: +20.6-23.8%).
    for billions in SIZES:
        entry = table[billions]
        assert entry["zero-infinity"].tflops > entry["zero-offload"].tflops


@pytest.mark.benchmark(group="figure8")
def test_fig8b_dgx2(once):
    table = once(lambda: _measure(dgx2_server()))
    print()
    _print(table, "Figure 8b: GPT TFLOPS on DGX-2-A100 (slow NVMe)")
    _common_assertions(table)
    # Slow SSDs invert the ZeRO ranking (the paper's observation).
    for billions in SIZES:
        entry = table[billions]
        assert entry["zero-offload"].tflops > entry["zero-infinity"].tflops


@pytest.mark.benchmark(group="figure8")
def test_fig8_dgx2_doubles_dgx1(once):
    def measure():
        model = gpt_variant(10.3)
        v100 = run_system(dapple_job(model, dgx1_server()), "mpress")
        a100 = run_system(dapple_job(model, dgx2_server()), "mpress")
        return v100, a100

    v100, a100 = once(measure)
    print()
    print(f"GPT-10.3B MPress: DGX-1 {v100.tflops:.0f} TF, DGX-2 "
          f"{a100.tflops:.0f} TF ({a100.tflops / v100.tflops:.1f}x, paper: >2x)")
    assert a100.tflops > 2.0 * v100.tflops
