"""Figure 2: imbalanced per-device GPU memory consumption.

Paper: training Bert-1.67B, per-device memory decreases steeply from
GPU0 to GPU7, with up to 7.9x between the most and least used GPU.
"""

from repro.analysis.reporting import format_series
from repro.core.profiler import Profiler
from repro.hardware import dgx1_server
from repro.job import dapple_job, pipedream_job
from repro.models import bert_variant


def _measure():
    server = dgx1_server()
    jobs = {
        "PipeDream bs=2": pipedream_job(bert_variant(1.67), server, microbatch_size=2),
        "DAPPLE bs=12": dapple_job(bert_variant(1.67), server, microbatch_size=12),
    }
    series = {}
    for name, job in jobs.items():
        profile = Profiler(job).run()
        series[name] = [p / 2**30 for p in profile.stage_peaks]
    return series


def test_fig2_memory_imbalance(once):
    series = once(_measure)
    print()
    print("Figure 2: per-device GPU memory (GiB), Bert-1.67B")
    for name, peaks in series.items():
        print(format_series(name, [f"gpu{i}" for i in range(8)], peaks))
        ratio = max(peaks) / min(peaks)
        print(f"  imbalance {ratio:.1f}x (paper: up to 7.9x)")
        # Monotone decrease and strong imbalance.
        assert peaks == sorted(peaks, reverse=True)
        assert ratio > 3.0
