"""Section IV-C: the result gap between PipeDream and DAPPLE.

The paper observes DAPPLE significantly outperforming PipeDream on
throughput (fp16 kernels plus two more years of optimizations) while
PipeDream sustains *smaller* models (asynchronous weight stashing).
Both effects are structural in our model and asserted here.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core.profiler import Profiler
from repro.hardware import dgx1_server
from repro.job import dapple_job, gpipe_job, pipedream_job
from repro.models import bert_variant
from repro.sim.executor import simulate


def _measure():
    server = dgx1_server()
    model = bert_variant(0.35)
    jobs = {
        "PipeDream (async, fp32)": pipedream_job(model, server, microbatch_size=2),
        "DAPPLE (sync, fp16)": dapple_job(model, server, microbatch_size=2),
        "GPipe (sync, fp16)": gpipe_job(model, server, microbatch_size=2),
    }
    rows = {}
    for name, job in jobs.items():
        result = simulate(job, strict=False)
        profile = Profiler(job).run()
        rows[name] = (result, profile)
    return rows


@pytest.mark.benchmark(group="system-gap")
def test_pipedream_vs_dapple_gap(once):
    rows = once(_measure)
    print()
    table = [
        [name,
         f"{result.tflops:.1f}",
         f"{max(profile.stage_peaks) / 2**30:.1f}",
         f"{profile.imbalance():.1f}x"]
        for name, (result, profile) in rows.items()
    ]
    print(format_table(
        ["system", "TFLOPS", "max stage GiB", "imbalance"],
        table,
        title="Section IV-C: system gap (Bert-0.35B, microbatch 2)",
    ))
    pipedream, pd_profile = rows["PipeDream (async, fp32)"]
    dapple, da_profile = rows["DAPPLE (sync, fp16)"]
    gpipe, gp_profile = rows["GPipe (sync, fp16)"]
    # Throughput: DAPPLE well ahead (fp16 tensor cores).
    assert dapple.tflops > 2.0 * pipedream.tflops
    # Memory: PipeDream's stashing+fp32 uses more per stage.
    assert max(pd_profile.stage_peaks) > max(da_profile.stage_peaks)
    # GPipe holds all microbatches at the turning point: deepest
    # late-stage footprint of the synchronous pair.
    assert gp_profile.stage_peaks[-1] >= da_profile.stage_peaks[-1]
