"""Figure 4: unidirectional aggregate bandwidth vs data size.

Paper: PCIe saturates near 11.7 GB/s; 2 NVLinks ~45 GB/s; 6 NVLinks
~146 GB/s (3.9-12.5x of PCIe); all curves ramp up with message size.
"""

from repro.analysis.reporting import format_series
from repro.hardware.bandwidth import effective_bandwidth
from repro.hardware.links import NVLINK2, PCIE3_X16
from repro.units import GBps, KB, MB, GB

SIZES = [64 * KB, 1 * MB, 16 * MB, 256 * MB, 1 * GB]
LABELS = ["64KB", "1MB", "16MB", "256MB", "1GB"]


def _measure():
    curves = {"PCIe": [(size, effective_bandwidth(size, PCIE3_X16)) for size in SIZES]}
    for lanes in (2, 3, 4, 5, 6):
        curves[f"NV{lanes}"] = [
            (size, effective_bandwidth(size, NVLINK2, lanes=lanes)) for size in SIZES
        ]
    return curves


def test_fig4_bandwidth_curves(once):
    curves = once(_measure)
    print()
    print("Figure 4: effective unidirectional bandwidth (GB/s)")
    for name, points in curves.items():
        values = [bw / GBps for _, bw in points]
        print(format_series(name, LABELS, values, unit=""))
        # Monotone ramp with message size.
        assert values == sorted(values)

    pcie = curves["PCIe"][-1][1]
    nv2 = curves["NV2"][-1][1]
    nv6 = curves["NV6"][-1][1]
    print(f"saturated: PCIe={pcie / GBps:.1f} NV2={nv2 / GBps:.1f} "
          f"NV6={nv6 / GBps:.1f} (paper: 11.7 / 45 / 146)")
    # Paper's anchors within 10%.
    assert abs(pcie / GBps - 11.7) < 1.2
    assert abs(nv2 / GBps - 45) < 5
    assert abs(nv6 / GBps - 146) < 8
    # Aggregation ratio 3.9-12.5x over PCIe.
    assert 3.5 < nv2 / pcie < 4.5
    assert 11.5 < nv6 / pcie < 13.0
