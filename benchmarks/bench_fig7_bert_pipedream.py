"""Figure 7: Bert training performance across memory-saving systems.

Paper shape (DGX-1, PipeDream base): all five equal at 0.35B;
PipeDream OOMs from 0.64B; GPU-CPU swap always worst among
survivors; Recomputation beats swap but dies at large sizes; MPress
matches the best everywhere and is the only system (plus swap)
reaching 6.2B — 3.1x faster than swap there.

The grid executes through the sweep runtime (``runtime`` fixture),
so it fans out over ``REPRO_BENCH_JOBS`` workers and caches under
``REPRO_BENCH_CACHE``.
"""

import pytest

from repro.analysis.plotting import grouped_bars
from repro.analysis.reporting import format_table
from repro.runtime.presets import FIG7_SIZES, FIG7_SYSTEMS, fig7_tasks

SYSTEMS = FIG7_SYSTEMS
SIZES = FIG7_SIZES


def _measure(runtime):
    records = runtime.run(fig7_tasks()).records()
    table = {}
    grid = [(b, s) for b in SIZES for s in SYSTEMS]
    for (billions, system), record in zip(grid, records):
        assert record is not None, f"fig7 cell {billions}/{system} failed"
        table.setdefault(billions, {})[system] = record
    return table


def _cell(record):
    return f"{record['tflops']:.0f}" if record["ok"] else "OOM"


@pytest.mark.benchmark(group="figure7")
def test_fig7_bert_systems(once, runtime):
    table = once(lambda: _measure(runtime))
    print()
    rows = [
        [f"Bert-{billions}B"] + [_cell(table[billions][s]) for s in SYSTEMS]
        for billions in SIZES
    ]
    print(format_table(
        ["model", *SYSTEMS],
        rows,
        title="Figure 7: Bert TFLOPS by system (OOM = red cross)",
    ))
    print()
    series = {
        system: [
            table[b][system]["tflops"] if table[b][system]["ok"] else None
            for b in SIZES
        ]
        for system in SYSTEMS
    }
    print(grouped_bars([f"Bert-{b}B" for b in SIZES], series,
                       unit=" TF", title="Figure 7 (bars)"))

    # Small: everything works and ties.
    small = table[0.35]
    values = [small[s]["tflops"] for s in SYSTEMS]
    assert max(values) - min(values) < 0.05 * max(values)

    # Medium: PipeDream OOMs; swap is worst among survivors; the
    # stand-alone D2D variant suffices and matches full MPress
    # ("the two MPress perform the best with identical performance").
    medium = table[0.64]
    assert not medium["none"]["ok"]
    assert medium["gpu-cpu-swap"]["ok"]
    assert (medium["recomputation"]["tflops"]
            > 1.2 * medium["gpu-cpu-swap"]["tflops"])
    assert (medium["mpress"]["tflops"]
            >= 0.98 * medium["recomputation"]["tflops"])
    assert medium["d2d-only"]["ok"]
    assert medium["d2d-only"]["tflops"] >= 0.95 * medium["mpress"]["tflops"]

    # Large: the spare GPU memory cannot absorb everything, so the
    # stand-alone D2D variant fails from 1.67B on (paper Sec. IV-B).
    assert not table[1.67]["d2d-only"]["ok"]

    # Extra large: only swap and MPress survive; MPress >> swap
    # (paper: 3.1x).
    huge = table[6.2]
    assert not huge["recomputation"]["ok"] and not huge["none"]["ok"]
    assert huge["gpu-cpu-swap"]["ok"] and huge["mpress"]["ok"]
    assert huge["mpress"]["tflops"] > 2.0 * huge["gpu-cpu-swap"]["tflops"]

    # MPress survives (and leads or ties) at every size.
    for billions in SIZES:
        entry = table[billions]
        assert entry["mpress"]["ok"]
        best = max(r["tflops"] for r in entry.values())
        assert entry["mpress"]["tflops"] >= 0.9 * best
