"""Section V: hardware-insights projection for Grace-Hopper.

Paper claims to reproduce: GPT-3-175B still overflows 96 GB HBM +
512 GB CPU memory's fast tier; fully hiding the swap needs >140 GB/s
per GPU (more than double the 64 GB/s link); the recomputation
alternative wastes 25% of compute.
"""

from repro.analysis.projection import GRACE_HOPPER, project
from repro.units import GBps


def test_section5_grace_hopper_projection(once):
    report = once(project)
    print()
    print(report.summary())
    assert not report.fits_hbm
    assert report.fits_with_cpu_memory
    assert report.required_hiding_bandwidth > 140 * GBps  # paper threshold
    assert report.required_hiding_bandwidth > 2 * GRACE_HOPPER.cpu_link_bandwidth
    assert abs(report.recompute_waste_fraction - 0.25) < 1e-9
    assert report.swap_exposed_fraction > 0.1
