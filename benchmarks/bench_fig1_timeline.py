"""Figure 1: training workflow and timeline of inter-operator training.

Renders the 3-worker, 6-microbatch pipelines of the paper's Figure 1
(PipeDream async vs DAPPLE sync) as ASCII timelines plus the
per-device memory evolution, and asserts the schedule properties the
figure illustrates.
"""

from repro.hardware.device import GPUSpec, HostSpec
from repro.hardware.server import Server
from repro.hardware.topology import dgx2_topology
from repro.job import TrainingJob
from repro.sim.executor import simulate
from repro.units import GiB, GBps, TFLOP

from tests.conftest import tiny_model


def _three_worker_server():
    gpu = GPUSpec("fig1-gpu", 8 * GiB, 10 * TFLOP, 80 * TFLOP, 500 * GBps)
    return Server(
        name="fig1-3gpu",
        gpus=[gpu] * 3,
        topology=dgx2_topology(n_gpus=3),
        host=HostSpec(memory_bytes=64 * GiB),
    )


def _run(system):
    job = TrainingJob(
        model=tiny_model(n_layers=7),
        server=_three_worker_server(),
        system=system,
        microbatch_size=2,
        microbatches_per_minibatch=6 if system == "dapple" else 1,
        n_minibatches=2 if system == "dapple" else 9,
        precision="fp16",
        mfu=0.5,
    )
    return simulate(job, strict=False)


def test_fig1_timeline(once):
    results = once(lambda: {s: _run(s) for s in ("pipedream", "dapple")})
    print()
    for system, result in results.items():
        print(f"Figure 1 ({system}): forward=digits, backward=dots")
        print(result.trace.render_timeline(width=76))
        peaks = [p / 2**20 for p in result.peak_memory_per_gpu]
        print("per-worker peak memory (MiB):",
              " ".join(f"w{i}={p:.0f}" for i, p in enumerate(peaks)))
        print()
        # Worker 1 accumulates more than worker 3 (the figure's curves).
        assert peaks[0] > peaks[-1]
        # All microbatches complete forward and backward on each worker.
        for device in range(3):
            fwd = [e for e in result.trace.events
                   if e.kind == "fwd" and e.device == device]
            bwd = [e for e in result.trace.events
                   if e.kind == "bwd" and e.device == device]
            assert len(fwd) == len(bwd) > 0
