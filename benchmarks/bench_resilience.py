"""Goodput under failure pressure (resilience extension).

Not a paper figure: the paper trains on a healthy server.  This
benchmark trains the Figure-8 GPT/DAPPLE scenario through seeded
fault campaigns at increasing failure rates and reports how goodput
degrades relative to the fault-free run — the curve an operator
needs when sizing checkpoint intervals.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.analysis.resilience import pivot, resilience_sweep
from repro.hardware import dgx1_server
from repro.job import dapple_job
from repro.models import gpt_variant


@pytest.mark.benchmark(group="resilience")
def test_goodput_vs_mtbf(once, runtime):
    """Goodput vs. MTBF for MPress on GPT-5.3B/DAPPLE (DGX-1)."""

    def measure():
        job = dapple_job(gpt_variant(5.3), dgx1_server())
        return resilience_sweep(
            job,
            system="mpress",
            mtbf_grid=(4.0, 1.0, 0.25),
            trials=1,
            seed=42,
            runtime=runtime,
        )

    cells = once(measure)
    rows = []
    for mtbf, group in sorted(pivot(cells).items(), reverse=True):
        cell = group[0]
        rows.append([
            f"{mtbf:.2f}x",
            str(cell.n_faults),
            str(cell.n_failures),
            f"{cell.goodput_samples_per_second:.1f}",
            f"{100 * cell.goodput_ratio:.1f}%",
        ])
    print()
    print(format_table(
        ["MTBF (makespans)", "faults", "failures", "goodput (samples/s)",
         "vs fault-free"],
        rows,
        title="Resilience: goodput vs. failure pressure (GPT-5.3B, mpress)",
    ))
    assert all(cell.ok for cell in cells)
    # Any campaign that actually perturbed the run costs goodput.
    for cell in cells:
        if cell.n_faults:
            assert cell.goodput_ratio <= 1.0 + 1e-9
