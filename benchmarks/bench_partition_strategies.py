"""Section II-D: memory-balanced partitioning is not a good option.

Paper: adopting memory-balanced stage partitioning fixes the
imbalance of Figure 2 but costs ~34% training throughput versus the
computation-balanced default, because stage compute times become
uneven.  We run both strategies on the same job and compare.
"""

import dataclasses

import pytest

from repro.analysis.reporting import format_table
from repro.core.profiler import Profiler
from repro.hardware import dgx1_server
from repro.job import pipedream_job
from repro.models import bert_variant
from repro.sim.executor import simulate


def _measure():
    server = dgx1_server()
    base = pipedream_job(bert_variant(0.35), server)
    rows = {}
    for strategy in ("computation", "memory"):
        job = dataclasses.replace(base, partition_strategy=strategy)
        result = simulate(job, strict=False)
        profile = Profiler(job).run()
        rows[strategy] = (result, profile)
    return rows


@pytest.mark.benchmark(group="partition")
def test_partition_strategy_tradeoff(once):
    rows = once(_measure)
    print()
    table = []
    for strategy, (result, profile) in rows.items():
        peaks = profile.stage_peaks
        table.append([
            strategy,
            f"{result.tflops:.1f}",
            f"{max(peaks) / min(peaks):.1f}x",
        ])
    print(format_table(
        ["strategy", "TFLOPS", "memory imbalance"],
        table,
        title="Section II-D: partitioning strategy trade-off (Bert-0.35B)",
    ))
    compute_result, compute_profile = rows["computation"]
    memory_result, memory_profile = rows["memory"]
    # The memory strategy flattens the footprint...
    assert (
        memory_profile.imbalance()
        < compute_profile.imbalance()
    )
    # ...but costs throughput (paper: ~34% loss).
    loss = 1 - memory_result.tflops / compute_result.tflops
    print(f"memory-balanced throughput loss: {100 * loss:.0f}% (paper: ~34%)")
    assert loss > 0.05
