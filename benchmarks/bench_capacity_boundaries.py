"""Section II-C / IV-B boundaries: largest sustainable model sizes.

Paper statements to reproduce in shape:
* plain PipeDream sustains Bert up to ~0.6B at microbatch 12 and
  ~2B at microbatch 2;
* MPress extends the Bert ceiling to 6.2B (3.7x the recomputation
  baseline's reach, which stops before that);
* plain DAPPLE sustains GPT only up to 5.3B while MPress reaches
  25.5B.
"""

import pytest

from repro.core.capacity import max_trainable_variant
from repro.hardware import dgx1_server
from repro.job import dapple_job, pipedream_job
from repro.models import bert_variant, gpt_variant
from repro.models.bert import BERT_VARIANTS
from repro.models.gpt import GPT_VARIANTS


@pytest.mark.benchmark(group="capacity")
def test_bert_ceilings(once):
    def measure():
        server = dgx1_server()
        variants = {b: bert_variant(b) for b in sorted(BERT_VARIANTS)}
        ceilings = {}
        for system in ("none", "recomputation", "mpress"):
            result = max_trainable_variant(
                variants, lambda m: pipedream_job(m, server), system
            )
            ceilings[system] = result.largest
        return ceilings

    ceilings = once(measure)
    print()
    print("largest sustainable Bert (PipeDream, DGX-1, microbatch 12):")
    for system, largest in ceilings.items():
        print(f"  {system:<14} {largest if largest else 'none'}B")
    # Plain PipeDream dies before 0.64B (paper: ~0.6B boundary).
    assert ceilings["none"] == 0.35
    # MPress reaches the full 6.2B; recomputation stops earlier.
    assert ceilings["mpress"] == 6.2
    assert ceilings["recomputation"] < 6.2
    print(f"MPress / recomputation ceiling ratio: "
          f"{ceilings['mpress'] / ceilings['recomputation']:.1f}x "
          f"(paper: 3.7x vs the recomputation baseline)")


@pytest.mark.benchmark(group="capacity")
def test_gpt_ceilings(once):
    def measure():
        server = dgx1_server()
        variants = {b: gpt_variant(b) for b in sorted(GPT_VARIANTS)}
        ceilings = {}
        for system in ("none", "mpress"):
            result = max_trainable_variant(
                variants, lambda m: dapple_job(m, server), system
            )
            ceilings[system] = result.largest
        return ceilings

    ceilings = once(measure)
    print()
    print("largest sustainable GPT (DAPPLE, DGX-1, microbatch 2):")
    for system, largest in ceilings.items():
        print(f"  {system:<8} {largest}B")
    assert ceilings["none"] == 5.3   # paper: DAPPLE's ceiling
    assert ceilings["mpress"] == 25.5


@pytest.mark.benchmark(group="capacity")
def test_bert_microbatch_shrink_extends_reach(once):
    """Paper: shrinking the microbatch from 12 to 2 lets plain
    PipeDream reach ~2B instead of ~0.6B."""

    def measure():
        server = dgx1_server()
        variants = {b: bert_variant(b) for b in sorted(BERT_VARIANTS)}
        small_mb = max_trainable_variant(
            variants, lambda m: pipedream_job(m, server, microbatch_size=2), "none"
        )
        return small_mb.largest

    largest = once(measure)
    print()
    print(f"plain PipeDream at microbatch 2 sustains Bert-{largest}B "
          "(paper: ~2B)")
    assert largest == 1.67
