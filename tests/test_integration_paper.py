"""End-to-end reproduction invariants at paper scale.

These tests run full DGX-scale simulations (seconds each) and assert
the qualitative claims of the paper's evaluation — OOM boundaries,
system orderings, imbalance — rather than absolute numbers.
"""

import pytest

from repro.baselines.zero import run_zero
from repro.core.mpress import run_system
from repro.hardware.server import dgx1_server, dgx2_server
from repro.job import dapple_job, pipedream_job
from repro.models import bert_variant, gpt_variant
from repro.units import GiB


@pytest.fixture(scope="module")
def srv():
    return dgx1_server()


class TestMemoryDemands:
    """Table II / Figure 2 behaviour."""

    def test_small_bert_fits_without_compaction(self, srv):
        result = run_system(pipedream_job(bert_variant(0.35), srv), "none")
        assert result.ok

    def test_medium_bert_ooms_without_compaction(self, srv):
        result = run_system(pipedream_job(bert_variant(0.64), srv), "none")
        assert not result.ok

    def test_memory_imbalance_across_stages(self, srv):
        from repro.core.profiler import Profiler

        profile = Profiler(pipedream_job(bert_variant(0.64), srv)).run()
        peaks = profile.stage_peaks
        assert peaks == sorted(peaks, reverse=True)
        assert peaks[0] / peaks[-1] > 4  # strong imbalance (paper: up to 7.9x)

    def test_stage0_memory_near_paper_value(self, srv):
        # Table II: Bert-0.64B per-stage max ~50.6 GB.
        from repro.core.profiler import Profiler

        profile = Profiler(pipedream_job(bert_variant(0.64), srv)).run()
        assert 40 * GiB < profile.stage_peaks[0] < 60 * GiB


class TestFigure7:
    """Bert + PipeDream system comparison."""

    def test_all_systems_equal_without_pressure(self, srv):
        job = pipedream_job(bert_variant(0.35), srv)
        tflops = [
            run_system(job, name).tflops
            for name in ("none", "recomputation", "gpu-cpu-swap", "mpress")
        ]
        assert max(tflops) - min(tflops) < 0.02 * max(tflops)

    def test_medium_ordering_recomp_beats_swap(self, srv):
        job = pipedream_job(bert_variant(0.64), srv)
        recomp = run_system(job, "recomputation")
        swap = run_system(job, "gpu-cpu-swap")
        mpress = run_system(job, "mpress")
        assert recomp.ok and swap.ok and mpress.ok
        assert recomp.tflops > swap.tflops
        assert mpress.tflops >= 0.98 * recomp.tflops

    def test_extra_large_only_swap_and_mpress_survive(self, srv):
        job = pipedream_job(bert_variant(6.2), srv)
        assert not run_system(job, "recomputation").ok
        swap = run_system(job, "gpu-cpu-swap")
        mpress = run_system(job, "mpress")
        assert swap.ok and mpress.ok
        # Paper: MPress 3.1x over GPU-CPU swap at 6.2B.
        assert mpress.tflops > 2.0 * swap.tflops


class TestFigure8:
    """GPT + DAPPLE system comparison."""

    def test_dapple_limited_to_smallest_gpt(self, srv):
        assert run_system(dapple_job(gpt_variant(5.3), srv), "none").ok
        assert not run_system(dapple_job(gpt_variant(10.3), srv), "none").ok

    def test_mpress_sustains_largest_gpt(self, srv):
        result = run_system(dapple_job(gpt_variant(20.4), srv), "mpress")
        assert result.ok

    def test_recomputation_hits_state_wall(self, srv):
        assert run_system(dapple_job(gpt_variant(10.3), srv), "recomputation").ok
        assert not run_system(dapple_job(gpt_variant(20.4), srv), "recomputation").ok

    def test_mpress_beats_zero_variants(self, srv):
        model = gpt_variant(10.3)
        mpress = run_system(dapple_job(model, srv), "mpress")
        offload = run_zero(model, srv, "offload", 32)
        infinity = run_zero(model, srv, "infinity", 32)
        assert mpress.tflops > infinity.tflops > offload.tflops

    def test_dgx2_more_than_doubles_throughput(self):
        model = gpt_variant(10.3)
        v100 = run_system(dapple_job(model, dgx1_server()), "mpress")
        a100 = run_system(dapple_job(model, dgx2_server()), "mpress")
        assert a100.tflops > 2.0 * v100.tflops

    def test_mpress_throughput_flat_across_sizes(self, srv):
        # "MPress delivers constantly sustainable training performance,
        # regardless of model sizes" (Section IV-C).
        small = run_system(dapple_job(gpt_variant(10.3), srv), "mpress")
        large = run_system(dapple_job(gpt_variant(25.5), srv), "mpress")
        assert large.tflops > 0.8 * small.tflops


class TestPlanShapes:
    """Table IV behaviour: technique mix under pressure."""

    def test_recompute_dominates_savings(self, srv):
        result = run_system(pipedream_job(bert_variant(1.67), srv), "mpress")
        from repro.core.plan import Action

        saved = result.plan.saved_by_action()
        total = sum(saved.values())
        assert saved[Action.RECOMPUTE] > 0.4 * total

    def test_d2d_applied_to_early_stages(self, srv):
        result = run_system(dapple_job(gpt_variant(10.3), srv), "mpress")
        from repro.core.plan import Action

        stages = result.plan.stages_by_action().get(Action.D2D_SWAP, [])
        if stages:  # D2D engages when spare memory exists
            assert min(stages) <= 3
