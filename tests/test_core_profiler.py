"""Profiler and liveness tests (Fig. 5 steps 1-2)."""

import pytest

from repro.core.profiler import Profiler
from repro.graph.tensor import TensorKind

from tests.conftest import tiny_job


@pytest.fixture(scope="module")
def profile():
    return Profiler(tiny_job(microbatches_per_minibatch=6)).run()


class TestProfileStats:
    def test_stage_peaks_decrease(self, profile):
        # Figure 2's imbalance.
        peaks = profile.stage_peaks
        assert peaks[0] > peaks[-1]

    def test_overflow_and_spare_partition_capacity(self, profile):
        capacity = max(profile.stage_peaks) - 1
        for stage in range(len(profile.stage_peaks)):
            overflow = profile.overflow(capacity)[stage]
            spare = profile.spare(capacity)[stage]
            assert overflow == 0 or spare == 0
            assert overflow >= 0 and spare >= 0

    def test_total_demand_is_sum_of_peaks(self, profile):
        assert profile.total_demand() == sum(profile.stage_peaks)

    def test_memory_breakdown_covers_all_kinds(self, profile):
        breakdown = profile.memory_breakdown()
        assert set(breakdown) == {"activation", "optimizer", "params+grads"}
        assert all(v > 0 for v in breakdown.values())

    def test_breakdown_percent_sums_to_100(self, profile):
        percent = profile.memory_breakdown_percent()
        assert sum(percent.values()) == pytest.approx(100.0)

    def test_classes_of_stage_filter(self, profile):
        for cls in profile.classes_of_stage(2):
            assert cls.stage == 2

    def test_baseline_time_positive(self, profile):
        assert profile.baseline_minibatch_time > 0


class TestLiveIntervals:
    def test_every_activation_has_an_interval(self, profile):
        for cls in profile.classes:
            if cls.kind is TensorKind.ACTIVATION:
                assert cls.key in profile.intervals

    def test_early_stage_intervals_longer(self, profile):
        # Stage 0 activations wait the longest for their backward
        # pass — the property that makes them swappable (Sec. III-D).
        def mean_interval(stage):
            samples = [
                iv.mean for key, iv in profile.intervals.items()
                if key[0] == "activation" and key[1] == stage
            ]
            return sum(samples) / len(samples)

        assert mean_interval(0) > mean_interval(3)

    def test_optimizer_interval_is_minibatch_period(self, profile):
        opt_keys = [
            key for key in profile.intervals if key[0] == "optimizer"
        ]
        assert opt_keys
        for key in opt_keys:
            interval = profile.intervals[key]
            assert interval.mean == pytest.approx(
                profile.baseline_minibatch_time, rel=0.5
            )

    def test_intervals_are_nonnegative(self, profile):
        for interval in profile.intervals.values():
            assert interval.minimum >= 0
            assert interval.mean >= interval.minimum

    def test_working_state_has_no_interval(self, profile):
        for cls in profile.classes:
            if cls.kind is TensorKind.WORKING_STATE:
                assert cls.key not in profile.intervals
