"""Model variant tests: configs, solver, layer lists."""

import pytest

from repro.errors import ConfigurationError
from repro.models.bert import BERT_VARIANTS, bert_variant
from repro.models.config import TransformerConfig, solve_hidden
from repro.models.gpt import GPT_VARIANTS, gpt_variant
from repro.models.layers import LayerKind, ModelSpec

from tests.conftest import tiny_model


class TestSolver:
    def test_hits_target_within_tolerance(self):
        for target in (0.5e9, 2e9, 10e9):
            hidden = solve_hidden(target, n_layers=32, vocab=30_000, max_positions=512)
            config = TransformerConfig(
                name="t", n_layers=32, hidden=hidden, heads=hidden // 64,
                vocab=30_000, seq_len=128, max_positions=512,
            )
            assert abs(config.total_params - target) / target < 0.08

    def test_hidden_is_multiple_of_head_dim(self):
        hidden = solve_hidden(1e9, n_layers=24, vocab=30_000, max_positions=512)
        assert hidden % 64 == 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            solve_hidden(0, 24, 30_000, 512)
        with pytest.raises(ConfigurationError):
            solve_hidden(1e9, 0, 30_000, 512)


class TestVariants:
    @pytest.mark.parametrize("billions", sorted(BERT_VARIANTS))
    def test_bert_parameter_counts(self, billions):
        model = bert_variant(billions)
        assert abs(model.config.billions - billions) / billions < 0.06

    @pytest.mark.parametrize("billions", sorted(GPT_VARIANTS))
    def test_gpt_parameter_counts(self, billions):
        model = gpt_variant(billions)
        assert abs(model.config.billions - billions) / billions < 0.06

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            bert_variant(3.3)
        with pytest.raises(ConfigurationError):
            gpt_variant(100.0)

    def test_bert_uses_squad_sequence_length(self):
        assert bert_variant(0.35).config.seq_len == 384

    def test_gpt_uses_wikipedia_sequence_length(self):
        assert gpt_variant(5.3).config.seq_len == 1024

    def test_variants_grow_monotonically(self):
        params = [bert_variant(b).total_params for b in sorted(BERT_VARIANTS)]
        assert params == sorted(params)


class TestModelSpec:
    def test_layer_structure(self):
        model = tiny_model(n_layers=6)
        assert model.n_layers == 8  # embedding + 6 + head
        assert model.layers[0].kind is LayerKind.EMBEDDING
        assert model.layers[-1].kind is LayerKind.HEAD
        assert all(layer.kind is LayerKind.TRANSFORMER for layer in model.layers[1:-1])

    def test_head_shares_embedding_weights(self):
        model = tiny_model()
        assert model.layers[-1].params == 0

    def test_total_params_sums_layers(self):
        model = tiny_model()
        assert model.total_params == sum(layer.params for layer in model.layers)
        assert model.total_params == model.config.total_params

    def test_iteration_flops_is_fwd_plus_bwd(self):
        model = tiny_model()
        assert model.iteration_flops(4) == pytest.approx(
            model.forward_flops(4) + model.backward_flops(4)
        )

    def test_layer_indices_validated(self):
        model = tiny_model()
        with pytest.raises(ConfigurationError):
            ModelSpec(config=model.config, layers=list(reversed(model.layers)))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            TransformerConfig(
                name="bad", n_layers=2, hidden=100, heads=7,
                vocab=10, seq_len=8, max_positions=16,
            )
        with pytest.raises(ConfigurationError):
            TransformerConfig(
                name="bad", n_layers=2, hidden=64, heads=4,
                vocab=10, seq_len=32, max_positions=16,
            )

    def test_describe_mentions_depth_and_width(self):
        text = bert_variant(0.35).config.describe()
        assert "24 layers" in text and "1024" in text
