"""Event-bus tests: dispatch, built-in observers, custom subscribers."""

from repro.core.plan import empty_plan
from repro.faults import FaultKind, FaultSchedule, FaultSpec
from repro.runtime.task import trace_digest
from repro.sim.audit import FaultWindowAuditor
from repro.sim.chrome_trace import counter_events, trace_to_chrome, trace_to_events
from repro.sim.events import (
    EventBus,
    InstructionCompleted,
    InstructionStarted,
    MemoryChanged,
)
from repro.sim.executor import simulate
from repro.sim.interpreter import Interpreter
from repro.sim.ir import Compute, ExecOptions
from repro.sim.lowering import Lowering

from tests.conftest import tiny_job


def _program(job, **options):
    return Lowering(job, ExecOptions(**options)).lower(empty_plan(job.n_stages))


class TestEventBus:
    def test_wants_reflects_subscriptions(self):
        bus = EventBus()
        assert not bus.wants(MemoryChanged)
        bus.subscribe(MemoryChanged, lambda event: None)
        assert bus.wants(MemoryChanged)
        assert not bus.wants(InstructionStarted)

    def test_publish_is_synchronous_in_subscription_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(InstructionStarted, lambda e: seen.append("first"))
        bus.subscribe(InstructionStarted, lambda e: seen.append("second"))
        bus.publish(InstructionStarted(instruction=None, time=0.0))
        assert seen == ["first", "second"]

    def test_publish_only_reaches_exact_type(self):
        bus = EventBus()
        seen = []
        bus.subscribe(MemoryChanged, seen.append)
        bus.publish(InstructionStarted(instruction=None, time=0.0))
        assert seen == []


class TestMemoryCounters:
    def test_traced_run_collects_counter_samples(self):
        result = simulate(tiny_job())
        assert result.ok
        assert result.trace.counters
        devices = {sample.device for sample in result.trace.counters}
        assert devices <= set(range(4))
        assert all(s.bytes_in_use >= 0 for s in result.trace.counters)

    def test_chrome_trace_gets_counter_tracks(self):
        result = simulate(tiny_job())
        document = trace_to_chrome(result.trace)
        counters = [e for e in document["traceEvents"] if e.get("ph") == "C"]
        assert counters
        assert all(e["name"].startswith("GPU") for e in counters)
        assert all("MiB" in e["args"] for e in counters)

    def test_counters_stay_out_of_the_digest_path(self):
        # Golden digests hash trace_to_events only; counter sampling
        # must never leak into it.
        result = simulate(tiny_job())
        assert counter_events(result.trace)
        assert all(e["ph"] == "X" for e in trace_to_events(result.trace))


class TestCustomSubscribers:
    def test_instruction_events_reach_a_subscriber(self):
        class Census:
            def __init__(self):
                self.started = 0
                self.completed = 0

            def attach(self, bus):
                bus.subscribe(InstructionStarted, self.on_start)
                bus.subscribe(InstructionCompleted, self.on_done)

            def on_start(self, event):
                self.started += 1

            def on_done(self, event):
                self.completed += 1

        job = tiny_job()
        census = Census()
        program = _program(job)
        result = Interpreter(program, subscribers=(census,)).run()
        assert result.ok
        assert census.started == len(program)
        # Only Record-carrying instructions complete "observably".
        assert 0 < census.completed <= census.started

    def test_subscribers_do_not_perturb_the_trace(self):
        job = tiny_job()
        baseline = simulate(job)

        class Noisy:
            def attach(self, bus):
                bus.subscribe(InstructionStarted, lambda e: None)
                bus.subscribe(MemoryChanged, lambda e: None)

        observed = Interpreter(_program(job), subscribers=(Noisy(),)).run()
        assert trace_digest(observed.trace) == trace_digest(baseline.trace)

    def test_fault_window_auditor_is_clean_on_a_faulted_run(self):
        job = tiny_job()
        base = simulate(job)
        faults = FaultSchedule(faults=(
            FaultSpec(kind=FaultKind.DEVICE_FAIL, start=base.makespan * 0.5,
                      device=1, restart_latency=0.05),
        ))
        auditor = FaultWindowAuditor()
        result = Interpreter(
            _program(job, faults=faults), subscribers=(auditor,)
        ).run()
        assert result.ok
        assert result.resilience is not None and result.resilience.failures
        assert auditor.ok, auditor.violations
        assert auditor._outages  # the failure was observed live

    def test_fault_window_auditor_flags_a_violation(self):
        auditor = FaultWindowAuditor()
        auditor.attach(EventBus())  # exercised standalone below
        auditor._outages.append((0, 1.0, 2.0))
        fake = Compute(iid=0, name="fwd.s0.mb0.l0", stream=("compute", 0),
                       stream_mode="fifo", duration=0.1, device=0,
                       stage=0, microbatch=0, layer=0, op="fwd")
        auditor.on_instruction_started(
            InstructionStarted(instruction=fake, time=1.5)
        )
        assert not auditor.ok
        assert "outage" in auditor.violations[0]
