"""Link specification and bandwidth-curve tests."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.bandwidth import effective_bandwidth, striped_transfer_time, transfer_time
from repro.hardware.links import LinkSpec, LinkType, NVLINK2, PCIE3_X16, nvme_link
from repro.units import GB, GBps, KB, MB


def test_nvlink_sustained_bandwidth_near_paper_value():
    # Two bricks ~45 GB/s, six bricks ~146 GB/s (paper Figure 4).
    two = 2 * NVLINK2.sustained_bandwidth
    six = 6 * NVLINK2.sustained_bandwidth
    assert 44 * GBps < two < 50 * GBps
    assert 140 * GBps < six < 150 * GBps


def test_pcie_sustained_bandwidth_near_paper_value():
    assert 11 * GBps < PCIE3_X16.sustained_bandwidth < 12.5 * GBps


def test_link_validation():
    with pytest.raises(ConfigurationError):
        LinkSpec(LinkType.NVLINK, peak_bandwidth=0, efficiency=0.9, latency=0)
    with pytest.raises(ConfigurationError):
        LinkSpec(LinkType.NVLINK, peak_bandwidth=1, efficiency=1.5, latency=0)
    with pytest.raises(ConfigurationError):
        LinkSpec(LinkType.NVLINK, peak_bandwidth=1, efficiency=0.9, latency=-1)


def test_transfer_time_includes_latency():
    assert transfer_time(0, NVLINK2) == pytest.approx(NVLINK2.latency)
    t_small = transfer_time(4 * KB, NVLINK2)
    assert t_small > NVLINK2.latency


def test_transfer_time_scales_with_lanes():
    one = transfer_time(1 * GB, NVLINK2, lanes=1)
    four = transfer_time(1 * GB, NVLINK2, lanes=4)
    assert four < one
    # Streaming part scales 4x; latency does not.
    assert (one - NVLINK2.latency) / (four - NVLINK2.latency) == pytest.approx(4.0)


def test_effective_bandwidth_ramps_with_size():
    # The Figure 4 shape: small transfers see a fraction of peak.
    small = effective_bandwidth(64 * KB, NVLINK2)
    large = effective_bandwidth(1 * GB, NVLINK2)
    assert small < 0.5 * NVLINK2.sustained_bandwidth
    assert large > 0.95 * NVLINK2.sustained_bandwidth


def test_effective_bandwidth_rejects_zero_size():
    with pytest.raises(ConfigurationError):
        effective_bandwidth(0, NVLINK2)


def test_transfer_time_rejects_invalid_args():
    with pytest.raises(ConfigurationError):
        transfer_time(-1, NVLINK2)
    with pytest.raises(ConfigurationError):
        transfer_time(1, NVLINK2, lanes=0)


def test_striped_transfer_time_is_slowest_block():
    blocks = [100 * MB, 300 * MB]
    expected = transfer_time(300 * MB, NVLINK2)
    assert striped_transfer_time(blocks, NVLINK2) == pytest.approx(expected)


def test_striped_transfer_time_rejects_empty():
    with pytest.raises(ConfigurationError):
        striped_transfer_time([], NVLINK2)


def test_nvme_link_builder():
    link = nvme_link(read_bandwidth=4 * GBps)
    assert link.link_type is LinkType.NVME
    assert link.sustained_bandwidth == pytest.approx(4 * GBps)
