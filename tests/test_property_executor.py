"""Property-based executor tests: random plans always execute cleanly.

The strongest end-to-end invariant: for ANY valid memory-saving plan
(random mix of recompute / CPU swap / NVMe-tier swap / D2D swap over
random tensor classes, on either scheduling mode), the lowered task
graph completes without deadlock, the audits pass, and compaction
never *increases* the owning device's peak.
"""

from hypothesis import given, settings, strategies as st

from repro.core.plan import Action, MemorySavingPlan, PlanEntry
from repro.core.striping import build_stripe_plan
from repro.errors import PlanError
from repro.graph.tensor import TensorKind, tensor_classes_for
from repro.sim.audit import audit_simulation
from repro.sim.executor import simulate
from repro.units import GiB

from tests.conftest import small_server, tiny_job, tiny_model

ACTIONS = [Action.NONE, Action.RECOMPUTE, Action.CPU_SWAP, Action.D2D_SWAP]
STATE_ACTIONS = [Action.NONE, Action.CPU_SWAP, Action.D2D_SWAP]


def _random_plan(job, seed) -> MemorySavingPlan:
    classes = tensor_classes_for(
        job.stage_plan, job.schedule, job.microbatch_size, job.bytes_per_element
    )
    plan = MemorySavingPlan(device_map=list(range(job.n_stages)))
    topology = job.server.topology
    for cls in classes:
        if cls.kind is TensorKind.WORKING_STATE:
            continue
        pool = ACTIONS if cls.recomputable else STATE_ACTIONS
        action = seed.choice(pool)
        if action is Action.NONE:
            continue
        stripe = None
        tier = "host"
        if action is Action.D2D_SWAP:
            exporter = cls.stage
            budgets = {
                dev: 2 * GiB for dev in range(job.n_stages) if dev != exporter
            }
            try:
                stripe = build_stripe_plan(topology, exporter, budgets, cls.size)
            except PlanError:
                continue
        elif action is Action.CPU_SWAP:
            tier = seed.choice(["host", "nvme"])
        plan.assign(PlanEntry(cls=cls, action=action, stripe=stripe, tier=tier))
    return plan


@given(
    seed=st.randoms(use_true_random=False),
    system=st.sampled_from(["dapple", "pipedream", "gpipe"]),
)
@settings(max_examples=25, deadline=None)
def test_random_plans_execute_and_audit_clean(seed, system):
    job = tiny_job(
        system=system,
        precision="fp32" if system == "pipedream" else "fp16",
        microbatches_per_minibatch=1 if system == "pipedream" else 4,
        n_minibatches=6 if system == "pipedream" else 2,
    )
    plan = _random_plan(job, seed)
    result = simulate(job, plan, strict=False)
    assert result.ok
    report = audit_simulation(result)
    assert report.ok, report.violations
    assert result.minibatch_time > 0


@given(seed=st.randoms(use_true_random=False))
@settings(max_examples=15, deadline=None)
def test_compaction_never_raises_owner_peak_under_pressure(seed):
    from repro.core.plan import Action
    from repro.units import MiB

    job = tiny_job(
        server=small_server(),
        model=tiny_model(n_layers=10),
        microbatch_size=8,
        microbatches_per_minibatch=6,
    )
    cap = 48 * MiB
    base = simulate(job, strict=False, gpu_capacity_override=cap)
    plan = _random_plan(job, seed)
    compacted = simulate(job, plan, strict=False, gpu_capacity_override=cap)
    assert compacted.ok
    # Stage 0's device peak never grows beyond baseline + small
    # transients — unless other stages D2D-imported into it, which
    # legitimately adds parked bytes.
    imported = sum(
        entry.stripe.bytes_to(0) * entry.cls.instances
        for entry in plan.entries.values()
        if entry.action is Action.D2D_SWAP and entry.stripe is not None
        and entry.cls.stage != 0
    )
    allowance = base.memory.gpu(0).peak * 1.15 + imported
    assert compacted.memory.gpu(0).peak <= allowance
