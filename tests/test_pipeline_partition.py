"""Stage partitioning tests."""

import pytest

from repro.errors import PartitionError
from repro.pipeline.partition import (
    linear_partition,
    partition_computation_balanced,
    partition_memory_balanced,
    partition_model,
)

from tests.conftest import tiny_model


class TestLinearPartition:
    def test_trivial_single_part(self):
        assert linear_partition([1, 2, 3], 1) == [0]

    def test_each_item_its_own_part(self):
        assert linear_partition([5, 1, 9], 3) == [0, 1, 2]

    def test_balances_uniform_weights(self):
        starts = linear_partition([1.0] * 8, 4)
        assert starts == [0, 2, 4, 6]

    def test_optimal_on_skewed_weights(self):
        # [9, 1, 1, 1] into 2 parts: optimal split isolates the 9.
        starts = linear_partition([9, 1, 1, 1], 2)
        assert starts == [0, 1]

    def test_minimizes_max_part(self):
        weights = [3, 1, 4, 1, 5, 9, 2, 6]
        starts = linear_partition(weights, 3)
        bounds = starts + [len(weights)]
        sums = [sum(weights[bounds[i]:bounds[i + 1]]) for i in range(3)]
        # Known optimum for this instance is max sum 14.
        assert max(sums) == 14

    def test_rejects_more_parts_than_items(self):
        with pytest.raises(PartitionError):
            linear_partition([1, 2], 3)

    def test_rejects_negative_weights(self):
        with pytest.raises(PartitionError):
            linear_partition([1, -2, 3], 2)


class TestModelPartition:
    def test_covers_all_layers_contiguously(self):
        model = tiny_model(n_layers=10)
        plan = partition_computation_balanced(model, 4)
        flat = [layer.index for stage in plan.stages for layer in stage.layers]
        assert flat == list(range(model.n_layers))

    def test_computation_balance_quality(self):
        model = tiny_model(n_layers=14)
        plan = partition_computation_balanced(model, 4, microbatch=2)
        flops = [
            s.forward_flops(2) + s.backward_flops(2) for s in plan.stages
        ]
        assert max(flops) < 2.0 * (sum(flops) / len(flops))

    def test_memory_balance_shifts_layers_late(self):
        model = tiny_model(n_layers=12)
        compute = partition_computation_balanced(model, 4, microbatch=2)
        memory = partition_memory_balanced(model, 4, microbatch=2)
        # Memory-balanced partitioning weighs params+activations, so
        # its stage boundaries differ from compute balancing.
        compute_sizes = [s.n_layers for s in compute.stages]
        memory_sizes = [s.n_layers for s in memory.stages]
        assert sum(compute_sizes) == sum(memory_sizes) == model.n_layers

    def test_partition_model_dispatch(self):
        model = tiny_model()
        assert partition_model(model, 2, "computation").n_stages == 2
        assert partition_model(model, 2, "memory").n_stages == 2
        with pytest.raises(PartitionError):
            partition_model(model, 2, "random")


class TestStagePlan:
    def test_stage_accessors(self):
        model = tiny_model()
        plan = partition_model(model, 4)
        assert plan.stage(0).stage_id == 0
        with pytest.raises(PartitionError):
            plan.stage(4)

    def test_stage_params_sum_to_model(self):
        model = tiny_model()
        plan = partition_model(model, 4)
        assert sum(s.params for s in plan.stages) == model.total_params

    def test_model_state_bytes_scales_with_versions(self):
        model = tiny_model()
        stage = partition_model(model, 4).stage(1)
        single = stage.model_state_bytes(weight_versions=1)
        stashed = stage.model_state_bytes(weight_versions=3)
        assert stashed - single == 2 * stage.params * 2  # 2 extra fp16 copies

    def test_model_state_bytes_rejects_zero_versions(self):
        model = tiny_model()
        stage = partition_model(model, 4).stage(0)
        with pytest.raises(PartitionError):
            stage.model_state_bytes(weight_versions=0)
