"""ZeRO-Offload / ZeRO-Infinity baseline model tests."""

import pytest

from repro.baselines.zero import run_zero, zero_memory_per_gpu
from repro.errors import ConfigurationError
from repro.hardware.server import dgx1_server, dgx2_server
from repro.models import gpt_variant

from tests.conftest import small_server, tiny_model


class TestMemoryModel:
    def test_sharding_divides_state(self):
        model = tiny_model()
        one_gpu = small_server()
        per_gpu = zero_memory_per_gpu(model, one_gpu, local_batch=2)
        # Sharded params+grads are 4 bytes / n_gpus per parameter.
        assert per_gpu > model.total_params * 4 // one_gpu.n_gpus

    def test_supports_25B_on_both_servers(self):
        # The paper's headline: both ZeRO variants scale to 25.5B.
        model = gpt_variant(25.5)
        for server in (dgx1_server(), dgx2_server()):
            for variant in ("offload", "infinity"):
                assert run_zero(model, server, variant, 32).ok


class TestTiming:
    def test_infinity_beats_offload_on_fast_nvme(self):
        # Figure 8a: ZeRO-Infinity outperforms Offload on DGX-1.
        model = gpt_variant(10.3)
        server = dgx1_server()
        off = run_zero(model, server, "offload", 32)
        inf = run_zero(model, server, "infinity", 32)
        assert inf.tflops > off.tflops

    def test_offload_beats_infinity_on_slow_nvme(self):
        # Figure 8b: the rented DGX-2's slow SSDs invert the ranking.
        model = gpt_variant(20.4)
        server = dgx2_server()
        off = run_zero(model, server, "offload", 32)
        inf = run_zero(model, server, "infinity", 32)
        assert off.tflops > inf.tflops

    def test_cpu_adam_exposed_in_offload(self):
        result = run_zero(gpt_variant(10.3), dgx1_server(), "offload", 32)
        assert result.offload_exposed > 0

    def test_throughput_roughly_flat_across_sizes(self):
        # ZeRO throughput degrades only mildly with model size
        # (Figure 8's flat ZeRO curves).
        server = dgx1_server()
        small = run_zero(gpt_variant(5.3), server, "offload", 32)
        large = run_zero(gpt_variant(25.5), server, "offload", 32)
        assert abs(small.tflops - large.tflops) / small.tflops < 0.2

    def test_dgx2_roughly_doubles_dgx1(self):
        model = gpt_variant(10.3)
        v100 = run_zero(model, dgx1_server(), "offload", 32)
        a100 = run_zero(model, dgx2_server(), "offload", 32)
        assert a100.tflops > 1.8 * v100.tflops


class TestValidation:
    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            run_zero(tiny_model(), small_server(), "stage2", 8)

    def test_batch_must_divide(self):
        with pytest.raises(ConfigurationError):
            run_zero(tiny_model(), small_server(), "offload", 7)

    def test_failure_reports_reason(self):
        from repro.units import MiB

        server = small_server(gpu_memory=8 * MiB)
        result = run_zero(tiny_model(), server, "offload", 8)
        assert not result.ok
        assert "memory" in result.reason
        assert result.tflops == 0.0


class TestInternals:
    def test_comm_scales_with_params(self):
        small = run_zero(gpt_variant(5.3), dgx1_server(), "offload", 32)
        large = run_zero(gpt_variant(20.4), dgx1_server(), "offload", 32)
        # Collectives move 3 full fp16 model volumes; compute grows in
        # step, so exposure stays bounded while compute time grows.
        assert large.compute_time > small.compute_time

    def test_minibatch_time_decomposition(self):
        result = run_zero(gpt_variant(10.3), dgx1_server(), "infinity", 32)
        assert result.minibatch_time == pytest.approx(
            result.compute_time + result.comm_exposed + result.offload_exposed
        )

    def test_samples_per_second(self):
        result = run_zero(gpt_variant(5.3), dgx1_server(), "offload", 32)
        assert result.samples_per_second == pytest.approx(
            32 / result.minibatch_time
        )

    def test_memory_feasibility_uses_local_batch(self):
        from repro.baselines.zero import zero_memory_per_gpu

        server = dgx1_server()
        model = gpt_variant(5.3)
        small = zero_memory_per_gpu(model, server, local_batch=1)
        large = zero_memory_per_gpu(model, server, local_batch=8)
        assert large > small


class TestZeroOptions:
    def test_defaults_match_legacy_constants(self):
        from dataclasses import replace

        from repro.baselines.zero import (
            COMM_OVERLAP,
            RING_EFFICIENCY,
            ZERO_MFU,
            ZeroOptions,
        )

        options = ZeroOptions()
        assert options.mfu == ZERO_MFU
        assert options.ring_efficiency == RING_EFFICIENCY
        assert options.comm_overlap == COMM_OVERLAP
        assert options.comm_model == "analytic"
        # Passing explicit defaults is byte-identical to passing none.
        model, server = gpt_variant(10.3), dgx1_server()
        assert run_zero(model, server, "offload", 32,
                        options=options) == run_zero(model, server,
                                                     "offload", 32)
        assert replace(options) == options

    def test_mfu_argument_overrides_options(self):
        from repro.baselines.zero import ZeroOptions

        model, server = gpt_variant(10.3), dgx1_server()
        base = run_zero(model, server, "offload", 32,
                        options=ZeroOptions(mfu=0.2))
        bumped = run_zero(model, server, "offload", 32, mfu=0.4,
                          options=ZeroOptions(mfu=0.2))
        assert bumped.compute_time < base.compute_time

    def test_ring_efficiency_scales_comm(self):
        from repro.baselines.zero import ZeroOptions, zero_comm_time

        model, server = gpt_variant(10.3), dgx1_server()
        slow = zero_comm_time(model, server,
                              ZeroOptions(ring_efficiency=0.4))
        fast = zero_comm_time(model, server,
                              ZeroOptions(ring_efficiency=0.8))
        assert slow == pytest.approx(2 * fast)

    def test_collective_comm_model_prices_topology(self):
        from repro.baselines.zero import ZeroOptions, zero_comm_time

        model, server = gpt_variant(10.3), dgx1_server()
        analytic = zero_comm_time(model, server, ZeroOptions())
        collective = zero_comm_time(
            model, server, ZeroOptions(comm_model="collective"))
        # The schedule-based model sees per-round bottlenecks and
        # setup latency the flat-rate model idealises away.
        assert collective > analytic

    def test_options_validate(self):
        from repro.baselines.zero import ZeroOptions

        with pytest.raises(ConfigurationError):
            ZeroOptions(mfu=0.0)
        with pytest.raises(ConfigurationError):
            ZeroOptions(ring_efficiency=1.5)
        with pytest.raises(ConfigurationError):
            ZeroOptions(comm_overlap=-0.1)
        with pytest.raises(ConfigurationError):
            ZeroOptions(comm_model="magic")
