"""ZeRO-Offload / ZeRO-Infinity baseline model tests."""

import pytest

from repro.baselines.zero import run_zero, zero_memory_per_gpu
from repro.errors import ConfigurationError
from repro.hardware.server import dgx1_server, dgx2_server
from repro.models import gpt_variant

from tests.conftest import small_server, tiny_model


class TestMemoryModel:
    def test_sharding_divides_state(self):
        model = tiny_model()
        one_gpu = small_server()
        per_gpu = zero_memory_per_gpu(model, one_gpu, local_batch=2)
        # Sharded params+grads are 4 bytes / n_gpus per parameter.
        assert per_gpu > model.total_params * 4 // one_gpu.n_gpus

    def test_supports_25B_on_both_servers(self):
        # The paper's headline: both ZeRO variants scale to 25.5B.
        model = gpt_variant(25.5)
        for server in (dgx1_server(), dgx2_server()):
            for variant in ("offload", "infinity"):
                assert run_zero(model, server, variant, 32).ok


class TestTiming:
    def test_infinity_beats_offload_on_fast_nvme(self):
        # Figure 8a: ZeRO-Infinity outperforms Offload on DGX-1.
        model = gpt_variant(10.3)
        server = dgx1_server()
        off = run_zero(model, server, "offload", 32)
        inf = run_zero(model, server, "infinity", 32)
        assert inf.tflops > off.tflops

    def test_offload_beats_infinity_on_slow_nvme(self):
        # Figure 8b: the rented DGX-2's slow SSDs invert the ranking.
        model = gpt_variant(20.4)
        server = dgx2_server()
        off = run_zero(model, server, "offload", 32)
        inf = run_zero(model, server, "infinity", 32)
        assert off.tflops > inf.tflops

    def test_cpu_adam_exposed_in_offload(self):
        result = run_zero(gpt_variant(10.3), dgx1_server(), "offload", 32)
        assert result.offload_exposed > 0

    def test_throughput_roughly_flat_across_sizes(self):
        # ZeRO throughput degrades only mildly with model size
        # (Figure 8's flat ZeRO curves).
        server = dgx1_server()
        small = run_zero(gpt_variant(5.3), server, "offload", 32)
        large = run_zero(gpt_variant(25.5), server, "offload", 32)
        assert abs(small.tflops - large.tflops) / small.tflops < 0.2

    def test_dgx2_roughly_doubles_dgx1(self):
        model = gpt_variant(10.3)
        v100 = run_zero(model, dgx1_server(), "offload", 32)
        a100 = run_zero(model, dgx2_server(), "offload", 32)
        assert a100.tflops > 1.8 * v100.tflops


class TestValidation:
    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            run_zero(tiny_model(), small_server(), "stage2", 8)

    def test_batch_must_divide(self):
        with pytest.raises(ConfigurationError):
            run_zero(tiny_model(), small_server(), "offload", 7)

    def test_failure_reports_reason(self):
        from repro.units import MiB

        server = small_server(gpu_memory=8 * MiB)
        result = run_zero(tiny_model(), server, "offload", 8)
        assert not result.ok
        assert "memory" in result.reason
        assert result.tflops == 0.0


class TestInternals:
    def test_comm_scales_with_params(self):
        small = run_zero(gpt_variant(5.3), dgx1_server(), "offload", 32)
        large = run_zero(gpt_variant(20.4), dgx1_server(), "offload", 32)
        # Collectives move 3 full fp16 model volumes; compute grows in
        # step, so exposure stays bounded while compute time grows.
        assert large.compute_time > small.compute_time

    def test_minibatch_time_decomposition(self):
        result = run_zero(gpt_variant(10.3), dgx1_server(), "infinity", 32)
        assert result.minibatch_time == pytest.approx(
            result.compute_time + result.comm_exposed + result.offload_exposed
        )

    def test_samples_per_second(self):
        result = run_zero(gpt_variant(5.3), dgx1_server(), "offload", 32)
        assert result.samples_per_second == pytest.approx(
            32 / result.minibatch_time
        )

    def test_memory_feasibility_uses_local_batch(self):
        from repro.baselines.zero import zero_memory_per_gpu

        server = dgx1_server()
        model = gpt_variant(5.3)
        small = zero_memory_per_gpu(model, server, local_batch=1)
        large = zero_memory_per_gpu(model, server, local_batch=8)
        assert large > small
