"""ASCII plotting helper tests."""

from repro.analysis.plotting import bar_chart, grouped_bars, sparkline


class TestBarChart:
    def test_scales_to_max(self):
        text = bar_chart(["big", "half"], [10.0, 5.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_oom_rendering(self):
        text = bar_chart(["dead"], [0.0])
        assert "OOM" in text

    def test_none_treated_as_oom(self):
        text = bar_chart(["dead"], [None])
        assert "OOM" in text

    def test_title_and_units(self):
        text = bar_chart(["a"], [1.0], title="Figure", unit=" TF")
        assert text.startswith("Figure")
        assert "1.00 TF" in text

    def test_labels_aligned(self):
        text = bar_chart(["x", "long-label"], [1.0, 2.0], width=5)
        lines = text.splitlines()
        assert lines[0].index("█") == lines[1].index("█")


class TestGroupedBars:
    def test_groups_and_series(self):
        text = grouped_bars(
            ["0.35B", "0.64B"],
            {"mpress": [62.0, 66.0], "none": [62.0, None]},
            width=10,
        )
        assert "0.35B:" in text and "0.64B:" in text
        assert text.count("mpress") == 2
        assert "OOM" in text  # the None cell

    def test_global_scale_across_series(self):
        text = grouped_bars(["g"], {"a": [10.0], "b": [5.0]}, width=10)
        lines = [line for line in text.splitlines() if "█" in line]
        assert lines[0].count("█") == 2 * lines[1].count("█")


class TestSparkline:
    def test_monotone_ramp(self):
        assert sparkline([0, 1, 2, 3]) == "▁▃▆█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""
