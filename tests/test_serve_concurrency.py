"""Concurrency battery for the sweep server.

The service contract under concurrent multi-tenant load:

* N threaded clients submitting overlapping sweeps all complete, and
  the shared backend executes each unique content address exactly
  once (cache + in-flight coalescing — no duplicate simulations);
* every client's records are byte-identical to a single-client run
  of the same tasks through the plain SweepRuntime;
* fair-share scheduling: a small job from a second tenant finishes
  ahead of a large backlog submitted first by another tenant;
* a worker crash mid-request is retried and excluded through the
  pool's retry-with-exclusion path without poisoning other requests.
"""

from __future__ import annotations

import json
import os
import threading

from repro.runtime import ResultCache, RuntimeConfig, SimTask, SweepRuntime
from repro.runtime import task as task_module
from repro.serve import ExecutionBackend, ServeClient, SweepServer
from tests.conftest import tiny_job, tiny_model

_PARENT_PID = os.getpid()


def _tiny_tasks(systems=("none", "recomputation", "gpu-cpu-swap")):
    job = tiny_job()
    return [SimTask(label=f"battery/{system}", job=job, system=system)
            for system in systems]


def _dump(records):
    return json.dumps(records, sort_keys=True)


# -- eight clients, two tenants, overlapping sweeps --------------------------


class TestManyClients:
    N_CLIENTS = 8
    TENANTS = ("alice", "bob")

    def test_overlapping_submissions_dedup_and_match_single_client(
            self, tmp_path):
        tasks = _tiny_tasks()
        # The yardstick: one client, plain runtime, no server.
        baseline = SweepRuntime(RuntimeConfig(jobs=1)).run(tasks)
        assert baseline.failed == 0
        expected = _dump(baseline.records())

        cache = ResultCache(str(tmp_path / "cache"))
        server = SweepServer(port=0, jobs=2, cache=cache).start()
        try:
            results = [None] * self.N_CLIENTS
            errors = []
            barrier = threading.Barrier(self.N_CLIENTS)

            def client_run(n):
                try:
                    client = ServeClient(server.url, timeout=60.0)
                    tenant = self.TENANTS[n % len(self.TENANTS)]
                    barrier.wait()          # all submissions overlap
                    job = server.submit(tenant, 0, tasks)
                    results[n] = client.wait(job.id, timeout=120.0,
                                             results="full")
                except Exception as exc:    # noqa: BLE001 — surfaced below
                    errors.append(f"client {n}: {exc!r}")

            threads = [threading.Thread(target=client_run, args=(n,))
                       for n in range(self.N_CLIENTS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            assert not errors, errors
            assert all(r is not None for r in results)

            # Every client saw the whole sweep, byte-identical to the
            # single-client baseline.
            for detail in results:
                assert detail["status"] == "done"
                assert detail["failed"] == 0
                assert _dump(detail["records"]) == expected

            # No duplicate simulations: 8 x 3 units resolved, but the
            # backend executed each unique content address once.
            counters = server.backend.counters()
            assert counters["executed"] == len(tasks)
            resolved = (counters["executed"] + counters["cache_hits"]
                        + counters["coalesced"])
            assert resolved == self.N_CLIENTS * len(tasks)

            # Both tenants were served and billed.
            tenants = server.registry.tenants()
            assert set(tenants) == set(self.TENANTS)
            for account in tenants.values():
                assert account["tasks"] == \
                    (self.N_CLIENTS // 2) * len(tasks)
                assert account["failed"] == 0
        finally:
            server.stop()

    def test_warm_server_serves_everything_from_cache(self, tmp_path):
        tasks = _tiny_tasks(("none",))
        cache = ResultCache(str(tmp_path / "cache"))
        first = SweepServer(port=0, jobs=1, cache=cache).start()
        try:
            job = first.submit("alice", 0, tasks)
            detail = first.registry.wait(job.id, until_done=True,
                                         timeout=60.0)
            assert detail["executed"] == 1
        finally:
            first.stop()
        # A fresh server process over the same cache directory starts
        # warm: the store is shared across servers, not per-instance.
        second = SweepServer(port=0, jobs=1,
                             cache=ResultCache(str(tmp_path / "cache"))
                             ).start()
        try:
            job = second.submit("bob", 0, tasks)
            detail = second.registry.wait(job.id, until_done=True,
                                          timeout=60.0)
            assert detail["executed"] == 0 and detail["cached"] == 1
        finally:
            second.stop()


# -- fair share under load ---------------------------------------------------


class TestFairShare:
    def test_small_tenant_finishes_before_large_backlog(self):
        job = tiny_job()
        wide = [SimTask(label=f"wide/{i}", job=job, system="none")
                for i in range(8)]
        small_model = tiny_model(n_layers=4, hidden=128)
        narrow_job = tiny_job(model=small_model, system="pipedream")
        narrow = [SimTask(label=f"narrow/{i}", job=narrow_job,
                          system="none") for i in range(2)]
        # jobs=1: a single dispatcher, so completion order is exactly
        # the scheduler's dispatch order.
        server = SweepServer(port=0, jobs=1).start()
        try:
            wide_job = server.submit("alice", 0, wide)
            narrow_job_state = server.submit("bob", 0, narrow)
            server.registry.wait(wide_job.id, until_done=True, timeout=300.0)
            server.registry.wait(narrow_job_state.id, until_done=True,
                                 timeout=300.0)
            wide_state = server.registry.get(wide_job.id)
            narrow_state = server.registry.get(narrow_job_state.id)
            assert wide_state.status == "done"
            assert narrow_state.status == "done"
            # Fair share: bob's 2-unit job cleared while alice's
            # 8-unit backlog was still draining.
            assert narrow_state.finished < wide_state.finished
        finally:
            server.stop()


# -- in-flight coalescing ----------------------------------------------------


class TestCoalescing:
    def test_concurrent_identical_requests_run_one_simulation(self,
                                                              monkeypatch):
        # Deterministic rendezvous: the owner blocks inside the
        # (stubbed) simulation until both requesters are committed.
        backend = ExecutionBackend(jobs=1)
        task = SimTask(label="co/task", job=tiny_job(), system="none")
        release = threading.Event()
        started = threading.Event()
        calls = []

        def _slow_run(self, task, key):
            calls.append(key)
            started.set()
            release.wait(timeout=30)
            from repro.serve.backend import TaskResolution

            return TaskResolution(key=key, record={"label": task.label,
                                                   "ok": True},
                                  source="pool")

        monkeypatch.setattr(ExecutionBackend, "_run_with_retries",
                            _slow_run)
        resolutions = [None, None]

        def run(n):
            resolutions[n] = backend.execute(task)

        owner = threading.Thread(target=run, args=(0,))
        owner.start()
        assert started.wait(timeout=10)
        follower = threading.Thread(target=run, args=(1,))
        follower.start()
        # The follower parks on the in-flight entry; only then is the
        # owner's simulation allowed to finish.
        deadline = threading.Event()
        deadline.wait(timeout=0.2)
        release.set()
        owner.join(timeout=10)
        follower.join(timeout=10)
        assert len(calls) == 1, "second request re-ran the simulation"
        sources = sorted(r.source for r in resolutions)
        assert sources == ["coalesced", "pool"]
        assert all(r.ok for r in resolutions)
        assert backend.coalesced == 1

    def test_coalesced_failure_propagates_to_waiters(self, monkeypatch):
        backend = ExecutionBackend(jobs=1)
        task = SimTask(label="co/fail", job=tiny_job(), system="none")
        release = threading.Event()
        started = threading.Event()

        def _failing_run(self, task, key):
            started.set()
            release.wait(timeout=30)
            from repro.serve.backend import TaskResolution

            return TaskResolution(key=key, record=None, source="inline",
                                  attempts=3, error="ValueError: boom")

        monkeypatch.setattr(ExecutionBackend, "_run_with_retries",
                            _failing_run)
        resolutions = [None, None]

        def run(n):
            resolutions[n] = backend.execute(task)

        threads = [threading.Thread(target=run, args=(0,))]
        threads[0].start()
        assert started.wait(timeout=10)
        threads.append(threading.Thread(target=run, args=(1,)))
        threads[1].start()
        wait = threading.Event()
        wait.wait(timeout=0.2)
        release.set()
        for thread in threads:
            thread.join(timeout=10)
        assert all(not r.ok for r in resolutions)
        assert any(r.source == "coalesced" and "boom" in (r.error or "")
                   for r in resolutions)
        assert backend.failures == 2      # owner + coalesced waiter


# -- worker crash mid-request ------------------------------------------------
#
# Same poisoning scheme as tests/test_runtime_pool.py: the backend
# workers fork this module, so a task labelled ``bad/*`` kills its
# worker with ``os._exit`` (unhandleable, like a segfault) while the
# inline exclusion run in the parent raises a catchable RuntimeError.


def _poisoned_execute(task):
    if task.label.startswith("bad/"):
        if os.getpid() != _PARENT_PID:
            os._exit(23)
        raise RuntimeError("poisoned config")
    return task_module.execute_task(task)


class TestWorkerCrash:
    def test_crash_mid_request_is_excluded_and_survivors_finish(
            self, monkeypatch):
        monkeypatch.setattr("repro.runtime.pool.execute_task",
                            _poisoned_execute)
        job = tiny_job()
        # Three distinct content addresses (the label is cosmetic and
        # excluded from the key): the crasher must not coalesce onto a
        # healthy task's in-flight simulation, or vice versa.
        tasks = [
            SimTask(label="battery/none", job=job, system="none"),
            SimTask(label="bad/crasher", job=job, system="gpu-cpu-swap"),
            SimTask(label="battery/recomputation", job=job,
                    system="recomputation"),
        ]
        server = SweepServer(port=0, jobs=2, retries=1).start()
        try:
            state = server.submit("alice", 0, tasks)
            server.registry.wait(state.id, until_done=True, timeout=300.0)
            detail = server.registry.detail(state.id, results="full")
            assert detail["status"] == "done"
            rows = {row["label"]: row for row in detail["tasks"]}
            crashed = rows["bad/crasher"]
            assert crashed["ok"] is False
            assert crashed["source"] == "inline"   # excluded from the pool
            assert "RuntimeError" in crashed["error"]
            assert crashed["attempts"] == 3        # retries + 1 + inline
            assert rows["battery/none"]["ok"] is True
            assert rows["battery/recomputation"]["ok"] is True
            assert detail["failed"] == 1
            # The broken pool generation was rebuilt.
            assert server.backend.pool_generations >= 2
            # The server is still healthy for the next request.
            after = server.submit("bob", 0, [
                SimTask(label="battery/after", job=job, system="none")])
            done = server.registry.wait(after.id, until_done=True,
                                        timeout=120.0)
            assert done["failed"] == 0
        finally:
            server.stop()

    def test_worker_exception_is_retried_then_recorded(self, monkeypatch):
        def _raise(task):
            raise ValueError("boom")

        monkeypatch.setattr("repro.runtime.pool.execute_task", _raise)
        backend = ExecutionBackend(jobs=2, retries=1)
        try:
            resolution = backend.execute(
                SimTask(label="battery/none", job=tiny_job(),
                        system="none"))
            assert not resolution.ok
            assert "ValueError" in resolution.error
            assert resolution.source == "inline"
            assert resolution.attempts == 3
        finally:
            backend.shutdown()
