"""Lowering pass tests: IR shape, reuse, and replay determinism."""

import pytest

from repro.core.emulator import Emulator
from repro.core.plan import Action, PlanEntry, empty_plan
from repro.errors import SimulationError
from repro.graph.tensor import TensorKind, tensor_classes_for
from repro.runtime.task import trace_digest
from repro.sim.executor import simulate
from repro.sim.interpreter import Interpreter
from repro.sim.ir import Compute, ExecOptions, OptimStep
from repro.sim.lowering import Lowering, skeleton_build_count
from repro.units import MiB

from tests.conftest import small_server, tiny_job, tiny_model


def _pressured_job():
    return tiny_job(
        server=small_server(gpu_memory=48 * MiB),
        model=tiny_model(n_layers=10),
        microbatch_size=8,
        microbatches_per_minibatch=6,
    )


def _recompute_plan(job):
    plan = empty_plan(job.n_stages)
    classes = tensor_classes_for(
        job.stage_plan, job.schedule, job.microbatch_size, job.bytes_per_element
    )
    cls = next(c for c in classes if c.kind is TensorKind.ACTIVATION and c.stage == 0)
    plan.assign(PlanEntry(cls=cls, action=Action.RECOMPUTE))
    return plan


class TestProgramShape:
    def test_instruction_counts_match_schedule(self):
        job = tiny_job()
        program = Lowering(job, ExecOptions()).lower(empty_plan(job.n_stages))
        counts = program.counts_by_type()
        total_layers = sum(
            len(job.stage_plan.stage(s).layers) for s in range(job.n_stages)
        )
        expected_compute = (
            2 * total_layers
            * job.microbatches_per_minibatch
            * job.n_minibatches
        )
        assert counts["Compute"] == expected_compute
        assert counts["OptimStep"] == job.n_stages * job.n_minibatches

    def test_edges_reference_valid_instructions(self):
        job = tiny_job()
        program = Lowering(job, ExecOptions()).lower(empty_plan(job.n_stages))
        n = len(program)
        assert n > 0
        for consumer, producer in program.edges:
            assert 0 <= consumer < n
            assert 0 <= producer < n
            assert consumer != producer

    def test_by_stream_and_for_device_partition_the_program(self):
        job = tiny_job()
        program = Lowering(job, ExecOptions()).lower(empty_plan(job.n_stages))
        assert sum(len(v) for v in program.by_stream().values()) == len(program)
        compute = [i for i in program.for_device(0) if isinstance(i, Compute)]
        assert compute
        assert all(i.device == 0 for i in compute)

    def test_optimizer_joins_carry_minibatch_ids(self):
        job = tiny_job()
        program = Lowering(job, ExecOptions()).lower(empty_plan(job.n_stages))
        opts = [i for i in program.instructions if isinstance(i, OptimStep)]
        assert {o.minibatch for o in opts} == set(range(job.n_minibatches))

    def test_short_device_map_rejected(self):
        job = tiny_job()
        plan = empty_plan(job.n_stages - 1)
        with pytest.raises(SimulationError):
            Lowering(job, ExecOptions()).lower(plan)


class TestSkeletonReuse:
    def test_lowering_built_once_per_job_and_options(self):
        # The acceptance gate: N candidate plans through one Emulator
        # must build the plan-independent skeleton exactly once.
        job = _pressured_job()
        before = skeleton_build_count()
        emulator = Emulator(job)
        plans = [empty_plan(job.n_stages), _recompute_plan(job),
                 empty_plan(job.n_stages)]
        for plan in plans:
            emulator.run(plan)
        assert skeleton_build_count() == before + 1
        assert emulator.n_emulations == len(plans)

    def test_planner_reports_emulation_count(self):
        from repro.core.planner import Planner

        _plan, report = Planner(_pressured_job()).build()
        assert report.n_emulations >= 1

    def test_lower_once_interpret_twice_is_deterministic(self):
        job = tiny_job()
        program = Lowering(job, ExecOptions()).lower(empty_plan(job.n_stages))
        first = Interpreter(program).run()
        second = Interpreter(program).run()
        assert first.ok and second.ok
        assert first.makespan == second.makespan
        assert trace_digest(first.trace) == trace_digest(second.trace)

    def test_interpreter_is_single_use(self):
        job = tiny_job()
        program = Lowering(job, ExecOptions()).lower(empty_plan(job.n_stages))
        interp = Interpreter(program)
        interp.run()
        with pytest.raises(SimulationError, match="single-use"):
            interp.run()


class TestFacadeEquivalence:
    def test_simulate_matches_manual_lowering(self):
        job = tiny_job()
        facade = simulate(job)
        manual = Interpreter(
            Lowering(job, ExecOptions()).lower(empty_plan(job.n_stages))
        ).run()
        assert facade.ok and manual.ok
        assert facade.makespan == manual.makespan
        assert trace_digest(facade.trace) == trace_digest(manual.trace)
