"""Sweep driver and CSV export tests."""

import csv
import io

from repro.analysis.sweep import pivot, run_sweep, save_csv, to_csv

from tests.conftest import tiny_job


def _cells():
    jobs = {"tiny": tiny_job()}
    return run_sweep(jobs, ["none", "mpress"])


def test_sweep_covers_the_grid():
    cells = _cells()
    assert len(cells) == 2
    assert {c.system for c in cells} == {"none", "mpress"}
    assert all(c.ok for c in cells)
    assert all(c.tflops > 0 for c in cells)


def test_cell_rendering():
    cells = _cells()
    assert all(c.cell != "OOM" for c in cells)


def test_csv_round_trip():
    cells = _cells()
    text = to_csv(cells)
    rows = list(csv.DictReader(io.StringIO(text)))
    assert len(rows) == len(cells)
    assert rows[0]["model"] == "tiny"
    assert float(rows[0]["tflops"]) > 0


def test_save_csv(tmp_path):
    path = str(tmp_path / "sweep.csv")
    save_csv(_cells(), path)
    with open(path) as handle:
        assert handle.readline().startswith("model,system")


def test_pivot_shape():
    table = pivot(_cells())
    assert set(table) == {"tiny"}
    assert set(table["tiny"]) == {"none", "mpress"}


def test_oom_cells_recorded():
    from repro.units import MiB
    from tests.conftest import small_server, tiny_model

    job = tiny_job(server=small_server(gpu_memory=4 * MiB), model=tiny_model())
    cells = run_sweep({"doomed": job}, ["none"])
    assert not cells[0].ok
    assert cells[0].cell == "OOM"
    assert cells[0].peak_gib == 0.0
