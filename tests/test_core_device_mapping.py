"""Device-mapping search tests (Figure 6)."""

import pytest

from repro.core.device_mapping import MappingResult, assign_spare_memory, search_device_mapping
from repro.errors import MappingError
from repro.hardware.topology import dgx1_topology, dgx2_topology
from repro.units import GiB

from tests.conftest import small_topology


def _gib(values):
    return [int(v * GiB) for v in values]


class TestAssignSpareMemory:
    def test_full_placement_when_spare_suffices(self):
        topo = small_topology()
        overflow = _gib([2, 0, 0, 0])
        spare = _gib([0, 4, 4, 4])
        evaluation = assign_spare_memory(topo, (0, 1, 2, 3), overflow, spare)
        assert evaluation.placed_fraction == pytest.approx(1.0)
        assert sum(evaluation.assignments[0].values()) == overflow[0]

    def test_respects_spare_budgets(self):
        topo = small_topology()
        overflow = _gib([10, 0, 0, 0])
        spare = _gib([0, 1, 1, 1])
        evaluation = assign_spare_memory(topo, (0, 1, 2, 3), overflow, spare)
        for alloc in evaluation.assignments.values():
            for imp, amount in alloc.items():
                assert amount <= spare[imp]

    def test_unreachable_spare_unused(self):
        topo = dgx1_topology()
        overflow = [int(1 * GiB)] + [0] * 7
        spare = [0] * 7 + [int(10 * GiB)]  # stage 7 on device 7: no link to 0
        evaluation = assign_spare_memory(topo, tuple(range(8)), overflow, spare)
        assert evaluation.placed_fraction == 0.0

    def test_high_pressure_exporters_served_first(self):
        topo = small_topology()
        overflow = _gib([4, 1, 0, 0])
        spare = _gib([0, 0, 2, 2])
        evaluation = assign_spare_memory(topo, (0, 1, 2, 3), overflow, spare)
        placed_0 = sum(evaluation.assignments.get(0, {}).values())
        placed_1 = sum(evaluation.assignments.get(1, {}).values())
        assert placed_0 >= placed_1


class TestSearch:
    def test_finds_full_placement_that_identity_misses(self):
        topo = dgx1_topology()
        # Heavy stage 0 needs spare that only stages 6/7 have; a good
        # mapping routes it over NVLink neighbours.
        overflow = _gib([29, 17, 7, 0, 0, 0, 0, 0])
        spare = _gib([0, 0, 0, 0.7, 6, 8, 15, 25])
        result = search_device_mapping(topo, overflow, spare, mode="exact")
        assert result.placed_fraction == pytest.approx(1.0)
        assert result.mappings_evaluated == 40320

    def test_symmetric_topology_short_circuits(self):
        topo = dgx2_topology()
        overflow = _gib([10] + [0] * 7)
        spare = _gib([0] * 4 + [5] * 4)
        result = search_device_mapping(topo, overflow, spare)
        assert result.device_map == list(range(8))
        assert result.mappings_evaluated == 1
        assert result.placed_fraction == pytest.approx(1.0)

    def test_no_overflow_returns_identity(self):
        topo = dgx1_topology()
        result = search_device_mapping(topo, [0] * 8, _gib([1] * 8))
        assert result.device_map == list(range(8))

    def test_greedy_mode_anchors_stage_zero(self):
        topo = dgx1_topology()
        overflow = _gib([5, 0, 0, 0, 0, 0, 0, 0])
        spare = _gib([0, 0, 0, 0, 2, 2, 2, 2])
        result = search_device_mapping(topo, overflow, spare, mode="greedy")
        assert result.device_map[0] == 0
        assert result.mappings_evaluated == 5040

    def test_max_mappings_caps_search(self):
        topo = dgx1_topology()
        overflow = _gib([5] + [0] * 7)
        spare = _gib([0, 0, 0, 0, 2, 2, 2, 2])
        result = search_device_mapping(topo, overflow, spare, mode="exact", max_mappings=100)
        assert result.mappings_evaluated == 100

    def test_importer_budget_helper(self):
        result = MappingResult(
            device_map=[0, 1],
            score=1.0,
            placed_fraction=1.0,
            assignments={0: {1: 100}, 2: {1: 50}},
        )
        assert result.importer_budget(1) == 150

    def test_input_validation(self):
        topo = small_topology()
        with pytest.raises(MappingError):
            search_device_mapping(topo, [0] * 3, [0] * 4)
        with pytest.raises(MappingError):
            search_device_mapping(topo, [0] * 4, [0] * 4, mode="random")

    def test_mapping_is_permutation(self):
        topo = small_topology()
        overflow = _gib([3, 0, 0, 0])
        spare = _gib([0, 1, 1, 2])
        result = search_device_mapping(topo, overflow, spare, mode="exact")
        assert sorted(result.device_map) == [0, 1, 2, 3]
