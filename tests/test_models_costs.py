"""Analytic cost formula tests."""

import pytest

from repro.errors import ConfigurationError
from repro.models import costs


def test_layer_params_formula():
    hidden = 1024
    assert costs.layer_params(hidden) == 12 * hidden * hidden + 13 * hidden


def test_embedding_params_formula():
    assert costs.embedding_params(1000, 128, 64) == (1000 + 128) * 64


def test_forward_flops_dominated_by_matmuls():
    # Doubling hidden roughly quadruples the per-layer FLOPs.
    base = costs.layer_forward_flops(1024, 512, 1)
    double = costs.layer_forward_flops(2048, 512, 1)
    assert 3.5 < double / base < 4.1


def test_backward_is_twice_forward():
    fwd = costs.layer_forward_flops(512, 128, 4)
    assert costs.layer_backward_flops(512, 128, 4) == pytest.approx(2 * fwd)


def test_flops_linear_in_microbatch():
    one = costs.layer_forward_flops(512, 128, 1)
    eight = costs.layer_forward_flops(512, 128, 8)
    assert eight == pytest.approx(8 * one)


def test_activation_bytes_profiles_differ():
    # fp32 eager stores more elements than optimized fp16 — more than
    # the 2x element width alone (Section IV calibration).
    fp16 = costs.layer_activation_bytes(512, 128, 2, heads=8, bytes_per_element=2)
    fp32 = costs.layer_activation_bytes(512, 128, 2, heads=8, bytes_per_element=4)
    assert fp32 > 2 * fp16


def test_activation_bytes_rejects_other_widths():
    with pytest.raises(ConfigurationError):
        costs.layer_activation_bytes(512, 128, 2, heads=8, bytes_per_element=8)


def test_boundary_bytes_small_relative_to_activations():
    # Inter-stage traffic is tiny — the reason inter-operator
    # parallelism has the least communication (Section II-A).
    boundary = costs.layer_boundary_bytes(1024, 384, 12, 2)
    saved = costs.layer_activation_bytes(1024, 384, 12, heads=16, bytes_per_element=2)
    assert boundary < saved / 10


def test_state_bytes_per_param_totals_sixteen():
    for width in (2, 4):
        param, grad, optim = costs.state_bytes_per_param(width)
        assert param + grad + optim == 16


def test_state_split_fp16_matches_table1_ratio():
    # Optimizer : params+grads = 3 : 1 (paper Table I, 46% vs 15%).
    param, grad, optim = costs.state_bytes_per_param(2)
    assert optim == 3 * (param + grad)


def test_model_state_bytes():
    assert costs.model_state_bytes(10) == 160


def test_negative_inputs_rejected():
    with pytest.raises(ConfigurationError):
        costs.layer_params(0)
    with pytest.raises(ConfigurationError):
        costs.layer_forward_flops(10, 0, 1)
    with pytest.raises(ConfigurationError):
        costs.model_state_bytes(-1)
