"""Examples stay runnable (deliverable smoke tests)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, timeout: int = 600) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = _run("quickstart.py")
    assert "OUT OF MEMORY" in out       # plain PipeDream dies
    assert "MPress: ok" in out
    assert "TFLOPS" in out


def test_memory_timeline():
    out = _run("memory_timeline.py")
    assert "pipedream" in out and "dapple" in out
    assert "worker 1 memory" in out


def test_custom_hardware():
    out = _run("custom_hardware.py")
    assert "workstation-4gpu" in out
    assert "OOM" in out                 # plain runs die at 0.64B
    assert "mpress=" in out


@pytest.mark.slow
def test_gpt_billion_scale():
    out = _run("gpt_billion_scale_dapple.py", timeout=900)
    assert "per-stage memory demand" in out
    assert "MPress: ok" in out
    assert "ZeRO-Offload" in out


def test_plan_and_inspect():
    out = _run("plan_and_inspect.py")
    assert "plan built" in out
    assert "audit: clean" in out
    assert "chrome trace" in out
