"""Hybrid DP x PP: placement, bucketing, and the end-to-end run."""

import pytest

from repro.errors import ConfigurationError
from repro.parallel.bucketing import (
    GradientBucket,
    exposed_allreduce_time,
    gradient_buckets,
)
from repro.parallel.hybrid import HybridConfig, run_hybrid
from repro.parallel.placement import replica_placement, sub_server
from repro.units import MiB

from tests.conftest import tiny_job


# -- placement -----------------------------------------------------------


def test_replica_placement_small_server_prefers_strong_pairs(server):
    """On the small asymmetric topology ((0,1) and (2,3) double-brick)
    the strided layout puts both stage groups on 2-lane pairs."""
    placement = replica_placement(server.topology, dp=2)
    assert placement.dp == 2
    assert placement.stages_per_replica == 2
    for stage in range(2):
        a, b = placement.stage_group(stage)
        assert server.topology.lanes(a, b) == 2


def test_replica_placement_dp1_is_identity(server):
    placement = replica_placement(server.topology, dp=1)
    assert placement.groups == ((0, 1, 2, 3),)
    assert placement.allreduce_score == 0.0


def test_replica_placement_validates(server):
    with pytest.raises(ConfigurationError):
        replica_placement(server.topology, dp=3)     # does not divide 4
    with pytest.raises(ConfigurationError):
        replica_placement(server.topology, dp=4)     # 1-stage replicas
    with pytest.raises(ConfigurationError):
        replica_placement(server.topology, dp=2, mode="tetris")


def test_replica_placement_explicit_modes(server):
    contiguous = replica_placement(server.topology, dp=2, mode="contiguous")
    assert contiguous.groups == ((0, 1), (2, 3))
    strided = replica_placement(server.topology, dp=2, mode="strided")
    assert strided.groups == ((0, 2), (1, 3))


def test_sub_server_induces_topology(server):
    sub = sub_server(server, (0, 2, 3))
    assert sub.n_gpus == 3
    # (2,3) had 2 lanes -> local (1,2); (0,2) had 1 lane -> local (0,1).
    assert sub.topology.lanes(1, 2) == 2
    assert sub.topology.lanes(0, 1) == 1
    assert sub.host.memory_bytes == server.host.memory_bytes * 3 // 4
    assert "[0,2,3]" in sub.name


def test_sub_server_switched_keeps_lane_budget(switched_server):
    sub = sub_server(switched_server, (1, 3))
    assert sub.topology.kind == "switched"
    assert sub.topology.lane_budget == switched_server.topology.lane_budget


def test_sub_server_validates(server):
    with pytest.raises(ConfigurationError):
        sub_server(server, ())
    with pytest.raises(ConfigurationError):
        sub_server(server, (0, 0))
    with pytest.raises(ConfigurationError):
        sub_server(server, (0, 9))


def test_sub_server_single_device(server):
    # Degenerate one-GPU carve-out: a tp=1, pp=1 cluster chain.
    sub = sub_server(server, (2,))
    assert sub.n_gpus == 1
    assert sub.topology.n_gpus == 1


# -- bucketing -----------------------------------------------------------


def test_gradient_buckets_cover_payload():
    buckets = gradient_buckets(70 * MiB, 25 * MiB)
    assert len(buckets) == 3
    assert sum(b.size for b in buckets) == 70 * MiB
    assert buckets[-1].ready_fraction == 1.0
    assert buckets[0].ready_fraction == pytest.approx(1 / 3)


def test_gradient_buckets_single_when_small():
    buckets = gradient_buckets(MiB, 25 * MiB)
    assert len(buckets) == 1 and buckets[0].size == MiB


def test_bucket_validation():
    with pytest.raises(ConfigurationError):
        gradient_buckets(0, MiB)
    with pytest.raises(ConfigurationError):
        gradient_buckets(MiB, 0)
    with pytest.raises(ConfigurationError):
        GradientBucket(index=0, size=MiB, ready_fraction=0.0)


def test_exposed_time_no_overlap_is_total():
    buckets = gradient_buckets(4 * MiB, MiB)
    times = [0.5, 0.5, 0.5, 0.5]
    assert exposed_allreduce_time(buckets, times, 10.0,
                                  overlap=False) == pytest.approx(2.0)


def test_exposed_time_overlap_hides_all_but_tail():
    buckets = gradient_buckets(4 * MiB, MiB)
    times = [0.1] * 4
    # Last bucket ready at the window's end: exactly one all-reduce
    # exposed.
    assert exposed_allreduce_time(buckets, times, 100.0) == pytest.approx(0.1)
    # Zero window: everything serialises and is exposed.
    assert exposed_allreduce_time(buckets, times, 0.0) == pytest.approx(0.4)


def test_exposed_time_overlap_never_exceeds_no_overlap():
    buckets = gradient_buckets(10 * MiB, 3 * MiB)
    times = [0.3, 0.2, 0.4, 0.1]
    for window in (0.0, 0.05, 0.5, 5.0):
        with_overlap = exposed_allreduce_time(buckets, times, window)
        without = exposed_allreduce_time(buckets, times, window,
                                         overlap=False)
        assert with_overlap <= without + 1e-12


# -- config --------------------------------------------------------------


def test_hybrid_config_validates():
    with pytest.raises(ConfigurationError):
        HybridConfig(dp=0)
    with pytest.raises(ConfigurationError):
        HybridConfig(bucket_bytes=0)
    with pytest.raises(ConfigurationError):
        HybridConfig(algorithm="nccl")
    with pytest.raises(ConfigurationError):
        HybridConfig(collective_mode="exact")
    with pytest.raises(ConfigurationError):
        HybridConfig(placement_mode="tetris")


# -- end-to-end ----------------------------------------------------------


def job_for(server, system="dapple"):
    return tiny_job(server=server, system=system, n_minibatches=2)


def test_run_hybrid_dp1_equals_plain_run(server):
    job = job_for(server)
    result = run_hybrid(job, HybridConfig(dp=1), system="none")
    assert result.ok
    assert result.dp == 1
    assert result.stage_allreduce == []
    assert result.exposed_allreduce == 0.0
    from repro.core.mpress import run_system

    plain = run_system(job, "none")
    assert result.minibatch_time == pytest.approx(
        plain.simulation.minibatch_time)
    assert result.samples_per_second == pytest.approx(
        plain.samples_per_second)


def test_run_hybrid_dp2_direct(server):
    job = job_for(server)
    result = run_hybrid(job, HybridConfig(dp=2), system="none")
    assert result.ok
    assert result.dp == 2
    assert len(result.replicas) == 2
    assert len(result.stage_allreduce) == result.placement.stages_per_replica
    assert result.exposed_allreduce >= 0.0
    assert result.minibatch_time == pytest.approx(
        result.replica_minibatch_time + result.exposed_allreduce)
    # Weak scaling: dp replicas each process the per-replica batch.
    assert result.samples_per_second == pytest.approx(
        2 * job.samples_per_minibatch / result.minibatch_time)


def test_run_hybrid_dp2_switched(switched_server):
    result = run_hybrid(job_for(switched_server), HybridConfig(dp=2),
                        system="none")
    assert result.ok
    for sync in result.stage_allreduce:
        assert sync.allreduce_seconds > 0.0
        assert sync.n_buckets >= 1


def test_run_hybrid_overlap_reduces_exposure(server):
    job = job_for(server)
    overlapped = run_hybrid(job, HybridConfig(dp=2, overlap=True),
                            system="none")
    serial = run_hybrid(job, HybridConfig(dp=2, overlap=False),
                        system="none")
    assert overlapped.exposed_allreduce <= serial.exposed_allreduce + 1e-12
    assert overlapped.samples_per_second >= serial.samples_per_second - 1e-9


def test_run_hybrid_simulate_mode_agrees_with_analytic(server):
    job = job_for(server)
    analytic = run_hybrid(job, HybridConfig(dp=2), system="none")
    simulated = run_hybrid(
        job, HybridConfig(dp=2, collective_mode="simulate"), system="none")
    for a, s in zip(analytic.stage_allreduce, simulated.stage_allreduce):
        assert s.allreduce_seconds == pytest.approx(
            a.allreduce_seconds, rel=1e-6)


def test_run_hybrid_reserves_bucket_staging(server):
    job = job_for(server)
    result = run_hybrid(job, HybridConfig(dp=2, bucket_bytes=MiB),
                        system="none")
    assert result.ok
    peaks = result.peak_memory_per_gpu()
    assert len(peaks) == server.n_gpus
    replica_peaks = result.replicas[0].simulation.peak_memory_per_gpu
    group = result.placement.groups[0]
    for local, device in enumerate(group):
        assert peaks[device] == int(replica_peaks[local]) + 2 * MiB


def test_hybrid_key_payload_compatibility(server):
    """SimTask addresses without a hybrid config are byte-identical to
    the pre-hybrid format; with one, the key changes."""
    from repro.runtime.task import SimTask

    job = job_for(server)
    base = SimTask(label="t", job=job, system="none")
    assert sorted(base.key_payload()) == [
        "config", "faults", "job", "plan", "system"]
    hybrid = SimTask(label="t", job=job, system="none",
                     hybrid=HybridConfig(dp=2))
    assert "hybrid" in hybrid.key_payload()
    assert hybrid.cache_key() != base.cache_key()


def test_hybrid_task_rejects_conflicting_fields(server):
    from repro.runtime.task import SimTask

    job = job_for(server)
    with pytest.raises(ConfigurationError):
        SimTask(label="t", job=job, system="zero-offload",
                hybrid=HybridConfig(dp=2))
