"""Pinned cache-key corpus: content addresses must never drift silently.

Every shape of :class:`SimTask` — plain, planner-config, faulted,
hybrid, cluster, ZeRO, spec-built — is pinned to its exact cache key
in ``tests/goldens/cache_keys.json``.  A key change means previously
cached results are orphaned and shared multi-tenant caches (the sweep
server's store, CI's roundtrip cache) silently go cold, so it must be
deliberate: bump ``RUNTIME_CACHE_SALT``, regenerate with
``pytest --update-goldens``, and say so in the changelog.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.autoplan import AutoPlanConfig
from repro.core.planner import PlannerConfig
from repro.faults.spec import random_schedule
from repro.inference import InferenceConfig
from repro.hardware.cluster import dgx1_cluster
from repro.hardware.server import dgx1_server, dgx2_server
from repro.job import dapple_job, pipedream_job
from repro.jobspec import task_from_spec
from repro.models import bert_variant, gpt_variant
from repro.parallel.cluster import ClusterConfig
from repro.parallel.hybrid import HybridConfig
from repro.runtime.task import SimTask

GOLDEN = os.path.join(os.path.dirname(__file__), "goldens",
                      "cache_keys.json")


def corpus():
    """One representative task per shape, in a stable order."""
    tasks = {}
    tasks["plain/bert-0.35/dgx1/mpress"] = SimTask(
        label="corpus", job=pipedream_job(bert_variant(0.35), dgx1_server()),
        system="mpress")
    tasks["plain/gpt-5.3/dgx1/recomputation"] = SimTask(
        label="corpus", job=dapple_job(gpt_variant(5.3), dgx1_server()),
        system="recomputation")
    tasks["config/gpt-15.4/dgx2/striping"] = SimTask(
        label="corpus", job=dapple_job(gpt_variant(15.4), dgx2_server()),
        system="mpress",
        config=PlannerConfig(mapping_mode="auto", striping=True))
    tasks["faulted/bert-0.64/dgx1/seed42"] = SimTask(
        label="corpus", job=pipedream_job(bert_variant(0.64), dgx1_server()),
        system="recomputation",
        faults=random_schedule(seed=42, n_devices=8, horizon=60.0))
    tasks["hybrid/bert-0.35/dgx1/dp2"] = SimTask(
        label="corpus", job=pipedream_job(bert_variant(0.35), dgx1_server()),
        system="recomputation", hybrid=HybridConfig(dp=2))
    tasks["cluster/gpt-5.3/2xdgx1/tp2dp2pp2"] = SimTask(
        label="corpus",
        job=dapple_job(gpt_variant(5.3), dgx1_server(), n_minibatches=2),
        system="mpress", cluster=dgx1_cluster(2),
        cluster_config=ClusterConfig(tp=2, dp=2, pp=2))
    tasks["zero/gpt-25.5/dgx2/infinity"] = SimTask(
        label="corpus", job=dapple_job(gpt_variant(25.5), dgx2_server()),
        system="zero-infinity")
    tasks["spec/bert-0.35/dgx1/none"] = task_from_spec(
        {"model": "bert-0.35", "server": "dgx1", "system": "none"})
    tasks["autoplan/gpt-5.3/2xdgx1/default"] = SimTask(
        label="corpus",
        job=dapple_job(gpt_variant(5.3), dgx1_server(), n_minibatches=2),
        system="mpress", cluster=dgx1_cluster(2), autoplan=AutoPlanConfig())
    tasks["autoplan/gpt-5.3/2xdgx1/budget12"] = SimTask(
        label="corpus",
        job=dapple_job(gpt_variant(5.3), dgx1_server(), n_minibatches=2),
        system="mpress", cluster=dgx1_cluster(2),
        autoplan=AutoPlanConfig(budget_gib=12.0, max_frontier=4))
    tasks["spec/gpt-5.3/2xdgx1/shape-auto"] = task_from_spec(
        {"model": "gpt-5.3", "server": "dgx1", "nodes": 2, "shape": "auto",
         "budget_gib": 16, "n_minibatches": 2})
    tasks["inference/gpt-5.3/dgx1/d2d"] = SimTask(
        label="corpus", job=dapple_job(gpt_variant(5.3), dgx1_server()),
        system="mpress",
        inference=InferenceConfig(n_requests=10, kv_swap="d2d",
                                  kv_pool_mib=199))
    tasks["spec/gpt-5.3/dgx1/inference-pcie"] = task_from_spec(
        {"model": "gpt-5.3", "server": "dgx1", "workload": "inference",
         "inference": {"n_requests": 8, "kv_swap": "pcie"}})
    return tasks


def test_corpus_keys_are_pinned(update_goldens):
    keys = {name: task.cache_key() for name, task in corpus().items()}
    if update_goldens:
        os.makedirs(os.path.dirname(GOLDEN), exist_ok=True)
        with open(GOLDEN, "w") as handle:
            json.dump(keys, handle, indent=1, sort_keys=True)
            handle.write("\n")
        pytest.skip("regenerated cache-key corpus")
    with open(GOLDEN) as handle:
        pinned = json.load(handle)
    assert keys == pinned, (
        "cache keys drifted from tests/goldens/cache_keys.json — this "
        "orphans every shared cache; if intended, bump "
        "RUNTIME_CACHE_SALT and regenerate with --update-goldens"
    )


def test_corpus_covers_every_task_shape():
    tasks = corpus().values()
    assert any(t.config is not None for t in tasks)
    assert any(t.faults is not None for t in tasks)
    assert any(t.hybrid is not None for t in tasks)
    assert any(t.cluster is not None for t in tasks)
    assert any(t.autoplan is not None for t in tasks)
    assert any(t.is_zero for t in tasks)
    assert any(t.inference is not None for t in tasks)


def test_corpus_keys_are_distinct():
    keys = [task.cache_key() for task in corpus().values()]
    assert len(set(keys)) == len(keys)


def test_label_is_cosmetic():
    spec = {"model": "bert-0.35", "server": "dgx1", "system": "none"}
    renamed = task_from_spec(dict(spec, label="other"))
    assert renamed.cache_key() == task_from_spec(spec).cache_key()
