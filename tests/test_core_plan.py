"""Memory-saving plan representation tests."""

import pytest

from repro.core.plan import Action, MemorySavingPlan, PlanEntry, empty_plan, validate_plan
from repro.core.striping import build_stripe_plan
from repro.errors import PlanError
from repro.graph.tensor import TensorClass, TensorKind
from repro.units import MB

from tests.conftest import small_topology


def _act(stage=0, layer=1, size=100 * MB, instances=4):
    return TensorClass(TensorKind.ACTIVATION, stage, layer, size, instances, True)


def _opt(stage=0, size=50 * MB):
    return TensorClass(TensorKind.OPTIMIZER_STATE, stage, -1, size, 1, False)


def _working(stage=0):
    return TensorClass(TensorKind.WORKING_STATE, stage, -1, 10 * MB, 1, False)


def _stripe(size, exporter=0):
    topo = small_topology()
    budgets = {dev: size for dev in range(4) if dev != exporter}
    return build_stripe_plan(topo, exporter, budgets, size)


class TestPlanEntry:
    def test_recompute_only_on_activations(self):
        with pytest.raises(PlanError):
            PlanEntry(cls=_opt(), action=Action.RECOMPUTE)

    def test_d2d_requires_stripe(self):
        with pytest.raises(PlanError):
            PlanEntry(cls=_act(), action=Action.D2D_SWAP)

    def test_stripe_size_must_match(self):
        with pytest.raises(PlanError):
            PlanEntry(cls=_act(size=100), action=Action.D2D_SWAP, stripe=_stripe(200))

    def test_stripe_forbidden_without_d2d(self):
        with pytest.raises(PlanError):
            PlanEntry(cls=_act(size=100), action=Action.CPU_SWAP, stripe=_stripe(100))

    def test_nvme_tier_only_for_cpu_swap(self):
        with pytest.raises(PlanError):
            PlanEntry(cls=_act(), action=Action.RECOMPUTE, tier="nvme")
        entry = PlanEntry(cls=_act(), action=Action.CPU_SWAP, tier="nvme")
        assert entry.tier == "nvme"

    def test_unknown_tier_rejected(self):
        with pytest.raises(PlanError):
            PlanEntry(cls=_act(), action=Action.CPU_SWAP, tier="tape")

    def test_saved_bytes(self):
        entry = PlanEntry(cls=_act(size=100, instances=4), action=Action.RECOMPUTE)
        assert entry.saved_bytes == 400
        none_entry = PlanEntry(cls=_act(), action=Action.NONE)
        assert none_entry.saved_bytes == 0


class TestMemorySavingPlan:
    def test_action_defaults_to_none(self):
        plan = empty_plan(4)
        assert plan.action_for(_act()) is Action.NONE

    def test_assign_and_lookup(self):
        plan = empty_plan(4)
        entry = PlanEntry(cls=_act(), action=Action.RECOMPUTE)
        plan.assign(entry)
        assert plan.action_for(_act()) is Action.RECOMPUTE
        assert plan.entry_for(_act()) is entry

    def test_duplicate_devices_rejected(self):
        with pytest.raises(PlanError):
            MemorySavingPlan(device_map=[0, 0, 1, 2])

    def test_device_of_bounds(self):
        plan = empty_plan(4)
        assert plan.device_of(2) == 2
        with pytest.raises(PlanError):
            plan.device_of(4)

    def test_saved_by_action_table(self):
        plan = empty_plan(4)
        plan.assign(PlanEntry(cls=_act(layer=1), action=Action.RECOMPUTE))
        plan.assign(PlanEntry(cls=_act(layer=2), action=Action.CPU_SWAP))
        saved = plan.saved_by_action()
        assert saved[Action.RECOMPUTE] == 400 * MB
        assert saved[Action.CPU_SWAP] == 400 * MB
        assert saved[Action.D2D_SWAP] == 0

    def test_stages_by_action(self):
        plan = empty_plan(4)
        plan.assign(PlanEntry(cls=_act(stage=0, layer=1), action=Action.RECOMPUTE))
        plan.assign(PlanEntry(cls=_act(stage=2, layer=5), action=Action.RECOMPUTE))
        assert plan.stages_by_action()[Action.RECOMPUTE] == [0, 2]

    def test_d2d_bytes_into(self):
        plan = empty_plan(4)
        size = 90 * MB
        stripe = _stripe(size)
        plan.assign(PlanEntry(cls=_act(size=size, instances=2), action=Action.D2D_SWAP,
                              stripe=stripe))
        total = sum(plan.d2d_bytes_into(dev) for dev in range(1, 4))
        assert total == size * 2

    def test_summary_mentions_techniques(self):
        plan = empty_plan(2)
        plan.assign(PlanEntry(cls=_act(), action=Action.RECOMPUTE))
        text = plan.summary()
        assert "recompute" in text and "device map" in text


class TestValidatePlan:
    def test_unknown_class_rejected(self):
        plan = empty_plan(4)
        plan.assign(PlanEntry(cls=_act(layer=42), action=Action.RECOMPUTE))
        with pytest.raises(PlanError):
            validate_plan(plan, [_act(layer=1)])

    def test_working_state_untouchable(self):
        plan = empty_plan(4)
        working = _working()
        plan.assign(PlanEntry(cls=working, action=Action.CPU_SWAP))
        with pytest.raises(PlanError):
            validate_plan(plan, [working])

    def test_d2d_exporter_must_match_device(self):
        plan = MemorySavingPlan(device_map=[3, 1, 2, 0])
        cls = _act(stage=0, size=90 * MB)
        stripe = _stripe(90 * MB, exporter=0)  # but stage 0 lives on device 3
        plan.assign(PlanEntry(cls=cls, action=Action.D2D_SWAP, stripe=stripe))
        with pytest.raises(PlanError):
            validate_plan(plan, [cls])

    def test_valid_plan_passes(self):
        plan = empty_plan(4)
        cls = _act(size=90 * MB)
        plan.assign(PlanEntry(cls=cls, action=Action.D2D_SWAP, stripe=_stripe(90 * MB)))
        validate_plan(plan, [cls])
