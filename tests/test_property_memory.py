"""Property-based tests for memory-tracking invariants."""

from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sim.memory import DeviceMemory

import pytest

operations = st.lists(
    st.tuples(
        st.sampled_from(["alloc", "free"]),
        st.integers(min_value=0, max_value=1000),
        st.sampled_from(["a", "b", "c"]),
    ),
    max_size=60,
)


@given(ops=operations)
def test_peak_dominates_and_books_balance(ops):
    mem = DeviceMemory("gpu", capacity=10**9)
    held = {"a": 0, "b": 0, "c": 0}
    time = 0.0
    for op, size, tag in ops:
        time += 1.0
        if op == "alloc":
            mem.alloc(size, time, tag=tag)
            held[tag] += size
        else:
            if size > held[tag]:
                with pytest.raises(SimulationError):
                    mem.free(size, time, tag=tag)
            else:
                mem.free(size, time, tag=tag)
                held[tag] -= size
        assert mem.in_use == sum(held.values())
        assert mem.peak >= mem.in_use
    assert mem.usage_by_tag() == {t: v for t, v in held.items() if v > 0}


@given(ops=operations)
@settings(max_examples=50)
def test_composition_at_matches_final_state(ops):
    mem = DeviceMemory("gpu", capacity=10**9)
    time = 0.0
    for op, size, tag in ops:
        time += 1.0
        try:
            if op == "alloc":
                mem.alloc(size, time, tag=tag)
            else:
                mem.free(size, time, tag=tag)
        except SimulationError:
            pass
    assert mem.composition_at(time + 1) == mem.usage_by_tag()


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=30)
)
def test_timeline_monotone_in_time(sizes):
    mem = DeviceMemory("gpu", capacity=10**9)
    for index, size in enumerate(sizes):
        mem.alloc(size, float(index), tag="x")
    times = [t for t, _ in mem.timeline]
    assert times == sorted(times)
    assert mem.timeline[-1][1] == sum(sizes)
