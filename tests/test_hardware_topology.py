"""Topology tests: DGX-1 hybrid cube-mesh and switched DGX-2."""

import pytest

from repro.errors import TopologyError
from repro.hardware.links import NVLINK2
from repro.hardware.topology import Topology, dgx2_topology

from tests.conftest import small_topology


class TestDGX1Topology:
    def test_every_gpu_uses_exactly_six_bricks(self, dgx1_topo):
        for gpu in range(8):
            assert dgx1_topo.bricks_at(gpu) == 6

    def test_paper_example_pair_bandwidth(self, dgx1_topo):
        # "GPU0 can transfer data to GPU3 at ... two NVLink
        # interconnects, which have twice the bandwidth of GPU1."
        assert dgx1_topo.lanes(0, 3) == 2
        assert dgx1_topo.lanes(0, 1) == 1

    def test_adjacency_is_symmetric(self, dgx1_topo):
        for a in range(8):
            for b in range(8):
                assert dgx1_topo.lanes(a, b) == dgx1_topo.lanes(b, a)

    def test_cross_quad_partners(self, dgx1_topo):
        for a, b in ((0, 4), (1, 5), (2, 6), (3, 7)):
            assert dgx1_topo.lanes(a, b) == 2

    def test_some_pairs_are_unreachable(self, dgx1_topo):
        # The hybrid cube-mesh is not a full crossbar.
        assert dgx1_topo.lanes(0, 5) == 0
        assert dgx1_topo.lanes(0, 6) == 0
        assert dgx1_topo.lanes(0, 7) == 0

    def test_neighbors(self, dgx1_topo):
        assert dgx1_topo.neighbors(0) == [1, 2, 3, 4]

    def test_is_not_symmetric(self, dgx1_topo):
        assert not dgx1_topo.is_symmetric

    def test_lane_channels_count_matches_lanes(self, dgx1_topo):
        assert len(dgx1_topo.lane_channels(0, 3)) == 2
        assert len(dgx1_topo.lane_channels(0, 1)) == 1

    def test_lane_channels_raises_without_route(self, dgx1_topo):
        with pytest.raises(TopologyError):
            dgx1_topo.lane_channels(0, 5)

    def test_all_lane_channels_cover_both_directions(self, dgx1_topo):
        keys = dgx1_topo.all_lane_channels()
        # 16 edges with 24 bricks total; one channel per brick per
        # direction.
        assert len(keys) == 48
        assert ("lane", 0, 3, 0) in keys
        assert ("lane", 3, 0, 0) in keys


class TestSwitchedTopology:
    def test_all_pairs_reachable(self):
        topo = dgx2_topology()
        for a in range(8):
            for b in range(8):
                if a != b:
                    assert topo.lanes(a, b) == topo.lane_budget

    def test_is_symmetric(self):
        assert dgx2_topology().is_symmetric

    def test_lane_channels_are_egress_lanes(self):
        topo = dgx2_topology()
        keys = topo.lane_channels(2, 5)
        assert all(key[0] == "egress" and key[1] == 2 for key in keys)

    def test_all_lane_channels(self):
        topo = dgx2_topology(n_gpus=4)
        assert len(topo.all_lane_channels()) == 4 * topo.lane_budget


class TestValidation:
    def test_single_gpu_degenerate_topology(self):
        # Size-1 sub-topologies are legal (cluster carve-outs).
        topo = Topology(n_gpus=1, kind="switched", nvlink=NVLINK2)
        assert topo.n_gpus == 1

    def test_rejects_zero_gpus(self):
        with pytest.raises(TopologyError):
            Topology(n_gpus=0, kind="switched", nvlink=NVLINK2)

    def test_rejects_unknown_kind(self):
        with pytest.raises(TopologyError):
            Topology(n_gpus=2, kind="mesh", nvlink=NVLINK2)

    def test_rejects_over_budget_gpu(self):
        adjacency = {frozenset((0, 1)): 7}
        with pytest.raises(TopologyError):
            Topology(n_gpus=2, kind="direct", nvlink=NVLINK2, adjacency=adjacency)

    def test_rejects_out_of_range_pair(self):
        adjacency = {frozenset((0, 9)): 1}
        with pytest.raises(TopologyError):
            Topology(n_gpus=2, kind="direct", nvlink=NVLINK2, adjacency=adjacency)

    def test_gpu_index_bounds_checked(self, dgx1_topo):
        with pytest.raises(TopologyError):
            dgx1_topo.lanes(0, 8)
        with pytest.raises(TopologyError):
            dgx1_topo.neighbors(-1)

    def test_small_topology_fixture_is_valid(self):
        topo = small_topology()
        for gpu in range(4):
            assert topo.bricks_at(gpu) == 4
