"""TrainingJob configuration and timing tests."""

import pytest

from repro.errors import ConfigurationError
from repro.job import TrainingJob, dapple_job, gpipe_job, pipedream_job

from tests.conftest import small_server, tiny_model


class TestValidation:
    def test_unknown_system_rejected(self):
        with pytest.raises(ConfigurationError):
            TrainingJob(
                model=tiny_model(), server=small_server(), system="megatron",
                microbatch_size=1, microbatches_per_minibatch=1,
                n_minibatches=1, precision="fp16", mfu=0.5,
            )

    def test_unknown_precision_rejected(self):
        with pytest.raises(ConfigurationError):
            TrainingJob(
                model=tiny_model(), server=small_server(), system="dapple",
                microbatch_size=1, microbatches_per_minibatch=1,
                n_minibatches=1, precision="bf16", mfu=0.5,
            )

    def test_nonpositive_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            TrainingJob(
                model=tiny_model(), server=small_server(), system="dapple",
                microbatch_size=0, microbatches_per_minibatch=1,
                n_minibatches=1, precision="fp16", mfu=0.5,
            )

    def test_mfu_bounds(self):
        with pytest.raises(ConfigurationError):
            TrainingJob(
                model=tiny_model(), server=small_server(), system="dapple",
                microbatch_size=1, microbatches_per_minibatch=1,
                n_minibatches=1, precision="fp16", mfu=1.5,
            )


class TestDerived:
    def test_bytes_per_element_follows_precision(self):
        assert pipedream_job(tiny_model(), small_server()).bytes_per_element == 4
        assert dapple_job(tiny_model(), small_server()).bytes_per_element == 2

    def test_stage_plan_covers_model(self):
        job = dapple_job(tiny_model(), small_server())
        assert job.stage_plan.n_stages == job.server.n_gpus
        assert sum(s.n_layers for s in job.stage_plan.stages) == job.model.n_layers

    def test_schedule_mode_matches_system(self):
        assert pipedream_job(tiny_model(), small_server()).schedule.mode == "async"
        assert dapple_job(tiny_model(), small_server()).schedule.mode == "sync"
        assert gpipe_job(tiny_model(), small_server()).schedule.mode == "sync"

    def test_forward_time_scales_with_mfu(self):
        fast = dapple_job(tiny_model(), small_server(), mfu=0.8)
        slow = dapple_job(tiny_model(), small_server(), mfu=0.4)
        assert slow.forward_time(0, 0) == pytest.approx(2 * fast.forward_time(0, 0))

    def test_backward_is_double_forward(self):
        job = dapple_job(tiny_model(), small_server())
        assert job.backward_time(2, 0) == pytest.approx(2 * job.forward_time(2, 0))

    def test_optimizer_time_scales_with_params(self):
        job = dapple_job(tiny_model(), small_server())
        heavy = max(range(4), key=lambda s: job.stage_plan.stage(s).params)
        light = min(range(4), key=lambda s: job.stage_plan.stage(s).params)
        assert job.optimizer_time(heavy, 0) >= job.optimizer_time(light, 0)

    def test_samples_and_flops(self):
        job = dapple_job(tiny_model(), small_server(),
                         microbatch_size=3, microbatches_per_minibatch=4)
        assert job.samples_per_minibatch == 12
        assert job.minibatch_flops() == pytest.approx(
            job.model.iteration_flops(12)
        )

    def test_with_minibatches(self):
        job = dapple_job(tiny_model(), small_server())
        assert job.with_minibatches(7).n_minibatches == 7

    def test_pipedream_defaults_to_minibatch_pipelining(self):
        job = pipedream_job(tiny_model(), small_server())
        assert job.microbatches_per_minibatch == 1
        assert job.n_minibatches == 3 * small_server().n_gpus


class TestPublicApi:
    def test_lazy_top_level_exports(self):
        import repro

        assert callable(repro.run_system)
        assert callable(repro.simulate)
        assert callable(repro.run_zero)
        assert repro.MPress is not None
        with pytest.raises(AttributeError):
            repro.not_a_thing
