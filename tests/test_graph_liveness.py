"""Direct live-interval analysis tests on synthetic traces."""

import pytest

from repro.graph.liveness import live_intervals
from repro.graph.tensor import TensorClass, TensorKind
from repro.sim.trace import Trace, TraceEvent


def _trace(events):
    trace = Trace()
    for name, kind, device, mb, start, end, layer in events:
        trace.record(TraceEvent(name, kind, device, mb, start, end, layer))
    return trace


def _act(stage, layer):
    return TensorClass(TensorKind.ACTIVATION, stage, layer, 100, 2, True)


STAGE_OF_DEVICE = {0: 0, 1: 1}


def test_activation_interval_is_fwd_end_to_bwd_start():
    trace = _trace([
        ("f", "fwd", 0, 0, 0.0, 1.0, 5),
        ("b", "bwd", 0, 0, 4.0, 5.0, 5),
    ])
    intervals = live_intervals(trace, [_act(0, 5)], STAGE_OF_DEVICE)
    interval = intervals[("activation", 0, 5)]
    assert interval.mean == pytest.approx(3.0)
    assert interval.samples == 1


def test_mean_over_microbatches():
    trace = _trace([
        ("f0", "fwd", 0, 0, 0.0, 1.0, 5),
        ("b0", "bwd", 0, 0, 3.0, 4.0, 5),
        ("f1", "fwd", 0, 1, 1.0, 2.0, 5),
        ("b1", "bwd", 0, 1, 7.0, 8.0, 5),
    ])
    intervals = live_intervals(trace, [_act(0, 5)], STAGE_OF_DEVICE)
    interval = intervals[("activation", 0, 5)]
    assert interval.mean == pytest.approx((2.0 + 5.0) / 2)
    assert interval.minimum == pytest.approx(2.0)
    assert interval.samples == 2


def test_negative_gaps_clamped_to_zero():
    trace = _trace([
        ("f", "fwd", 0, 0, 0.0, 2.0, 5),
        ("b", "bwd", 0, 0, 1.5, 3.0, 5),  # overlapping measurement noise
    ])
    intervals = live_intervals(trace, [_act(0, 5)], STAGE_OF_DEVICE)
    assert intervals[("activation", 0, 5)].mean == 0.0


def test_layers_do_not_cross_contaminate():
    trace = _trace([
        ("f5", "fwd", 0, 0, 0.0, 1.0, 5),
        ("b5", "bwd", 0, 0, 2.0, 3.0, 5),
        ("f6", "fwd", 0, 0, 1.0, 2.0, 6),
        ("b6", "bwd", 0, 0, 10.0, 11.0, 6),
    ])
    intervals = live_intervals(trace, [_act(0, 5), _act(0, 6)], STAGE_OF_DEVICE)
    assert intervals[("activation", 0, 5)].mean == pytest.approx(1.0)
    assert intervals[("activation", 0, 6)].mean == pytest.approx(8.0)


def test_optimizer_interval_from_step_spacing():
    cls = TensorClass(TensorKind.OPTIMIZER_STATE, 0, -1, 100, 1, False)
    trace = _trace([
        ("o0", "opt", 0, -1, 1.0, 1.5, -1),
        ("o1", "opt", 0, -1, 4.0, 4.5, -1),
        ("o2", "opt", 0, -1, 7.0, 7.5, -1),
    ])
    intervals = live_intervals(trace, [cls], STAGE_OF_DEVICE)
    assert intervals[cls.key].mean == pytest.approx(3.0)
    assert intervals[cls.key].samples == 2


def test_stash_interval_spans_whole_microbatch():
    cls = TensorClass(TensorKind.STASHED_PARAMS, 0, -1, 100, 2, False)
    trace = _trace([
        ("f1", "fwd", 0, 0, 0.0, 1.0, 1),
        ("f2", "fwd", 0, 0, 1.0, 2.0, 2),   # last forward layer ends at 2
        ("b2", "bwd", 0, 0, 6.0, 7.0, 2),   # first backward starts at 6
        ("b1", "bwd", 0, 0, 7.0, 8.0, 1),
    ])
    intervals = live_intervals(trace, [cls], STAGE_OF_DEVICE)
    assert intervals[cls.key].mean == pytest.approx(4.0)


def test_single_opt_step_yields_no_interval():
    cls = TensorClass(TensorKind.OPTIMIZER_STATE, 0, -1, 100, 1, False)
    trace = _trace([("o0", "opt", 0, -1, 1.0, 1.5, -1)])
    intervals = live_intervals(trace, [cls], STAGE_OF_DEVICE)
    assert cls.key not in intervals


def test_unmapped_devices_ignored():
    trace = _trace([
        ("f", "fwd", 9, 0, 0.0, 1.0, 5),  # device 9 not in the map
        ("f0", "fwd", 0, 0, 0.0, 1.0, 5),
        ("b0", "bwd", 0, 0, 2.0, 3.0, 5),
    ])
    intervals = live_intervals(trace, [_act(0, 5)], STAGE_OF_DEVICE)
    assert intervals[("activation", 0, 5)].samples == 1
