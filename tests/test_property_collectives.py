"""Property-based tests for collective cost invariants."""

from hypothesis import given, settings, strategies as st

from repro.collectives import (
    all_reduce_time,
    collective_time,
    ring_all_reduce,
    ring_order,
)
from repro.hardware.bandwidth import effective_bandwidth
from repro.hardware.links import NVLINK2, PCIE3_X16
from repro.hardware.topology import Topology, dgx1_topology
from repro.units import KiB, MiB

link_specs = st.sampled_from([NVLINK2, PCIE3_X16])
sizes = st.integers(min_value=1, max_value=1024 * MiB)


@given(link=link_specs, small=sizes, large=sizes,
       lanes=st.integers(min_value=1, max_value=6))
def test_effective_bandwidth_is_monotone_in_size(link, small, large, lanes):
    """The Figure-4 ramp: a bigger message never observes *less*
    bandwidth — setup latency amortises monotonically."""
    if small > large:
        small, large = large, small
    assert (effective_bandwidth(small, link, lanes)
            <= effective_bandwidth(large, link, lanes) + 1e-12)


@given(link=link_specs, size=sizes,
       lanes=st.integers(min_value=1, max_value=5))
def test_effective_bandwidth_monotone_in_lanes(link, size, lanes):
    assert (effective_bandwidth(size, link, lanes)
            <= effective_bandwidth(size, link, lanes + 1) + 1e-12)


@given(link=link_specs, size=st.integers(min_value=1, max_value=1024 * MiB))
def test_effective_bandwidth_below_sustained(link, size):
    assert effective_bandwidth(size, link) <= link.sustained_bandwidth


def relabeled(topology: Topology, mapping) -> Topology:
    adjacency = {
        frozenset((mapping[a], mapping[b])): count
        for pair, count in topology.adjacency.items()
        for a, b in [tuple(pair)]
    }
    return Topology(n_gpus=topology.n_gpus, kind="direct",
                    nvlink=topology.nvlink,
                    lane_budget=topology.lane_budget,
                    adjacency=adjacency)


@given(perm=st.permutations(list(range(8))),
       size=st.integers(min_value=KiB, max_value=256 * MiB))
@settings(max_examples=30, deadline=None)
def test_ring_all_reduce_cost_invariant_under_relabeling(perm, size):
    """Renaming GPUs consistently (topology + group together) cannot
    change the optimal ring's cost: the search is over cycles, and a
    relabeling maps cycles to cycles with identical lane profiles."""
    topo = dgx1_topology()
    mapping = {old: new for old, new in enumerate(perm)}
    relabel = relabeled(topo, mapping)
    base = collective_time(
        ring_all_reduce(ring_order(topo, range(8)), size), topo)
    moved = collective_time(
        ring_all_reduce(ring_order(relabel, range(8)), size), relabel)
    assert abs(base - moved) <= 1e-12 * max(base, 1.0)


@given(size=st.integers(min_value=1, max_value=1024 * MiB))
@settings(max_examples=50, deadline=None)
def test_hierarchical_never_loses_to_flat_ring_on_dgx1(size):
    """At every message size the island decomposition is at least as
    good as the best flat ring on the cube mesh."""
    topo = dgx1_topology()
    hier = all_reduce_time(topo, range(8), size, "hierarchical")
    ring = all_reduce_time(topo, range(8), size, "ring")
    assert hier <= ring + 1e-12


@given(size=st.integers(min_value=1, max_value=64 * MiB),
       group=st.sets(st.integers(min_value=0, max_value=7),
                     min_size=2, max_size=8))
@settings(max_examples=40, deadline=None)
def test_auto_is_the_family_minimum(size, group):
    topo = dgx1_topology()
    group = tuple(sorted(group))
    auto = all_reduce_time(topo, group, size, "auto")
    for algorithm in ("ring", "tree", "hierarchical"):
        assert auto <= all_reduce_time(topo, group, size, algorithm) + 1e-12
