"""Plan serialization round-trip tests."""

import json

import pytest

from repro.core.plan import Action, MemorySavingPlan, PlanEntry, empty_plan
from repro.core.serialization import (
    load_plan,
    plan_from_dict,
    plan_to_dict,
    save_plan,
)
from repro.core.striping import build_stripe_plan
from repro.errors import PlanError
from repro.graph.tensor import TensorClass, TensorKind
from repro.units import MB

from tests.conftest import small_topology


def _rich_plan() -> MemorySavingPlan:
    plan = MemorySavingPlan(device_map=[2, 0, 3, 1])
    act = TensorClass(TensorKind.ACTIVATION, 0, 3, 90 * MB, 4, True)
    stripe = build_stripe_plan(
        small_topology(), 2, {0: 90 * MB, 3: 90 * MB}, 90 * MB
    )
    plan.assign(PlanEntry(cls=act, action=Action.D2D_SWAP, stripe=stripe))
    opt = TensorClass(TensorKind.OPTIMIZER_STATE, 1, -1, 50 * MB, 1, False)
    plan.assign(PlanEntry(cls=opt, action=Action.CPU_SWAP, tier="nvme"))
    rec = TensorClass(TensorKind.ACTIVATION, 2, 8, 10 * MB, 2, True)
    plan.assign(PlanEntry(cls=rec, action=Action.RECOMPUTE))
    return plan


def test_roundtrip_preserves_everything():
    original = _rich_plan()
    restored = plan_from_dict(plan_to_dict(original))
    assert restored.device_map == original.device_map
    assert set(restored.entries) == set(original.entries)
    for key, entry in original.entries.items():
        copy = restored.entries[key]
        assert copy.action == entry.action
        assert copy.tier == entry.tier
        assert copy.cls == entry.cls
        if entry.stripe is None:
            assert copy.stripe is None
        else:
            assert copy.stripe.blocks == entry.stripe.blocks
            assert copy.stripe.exporter == entry.stripe.exporter


def test_dict_is_json_serializable():
    payload = plan_to_dict(_rich_plan())
    text = json.dumps(payload)
    assert "d2d-swap" in text and "nvme" in text


def test_save_and_load_file(tmp_path):
    path = str(tmp_path / "plan.json")
    original = _rich_plan()
    save_plan(original, path)
    restored = load_plan(path)
    assert restored.device_map == original.device_map
    assert len(restored.entries) == len(original.entries)


def test_empty_plan_roundtrip():
    plan = empty_plan(8)
    restored = plan_from_dict(plan_to_dict(plan))
    assert restored.device_map == list(range(8))
    assert not restored.entries


def test_version_mismatch_rejected():
    payload = plan_to_dict(empty_plan(2))
    payload["version"] = 99
    with pytest.raises(PlanError):
        plan_from_dict(payload)


def test_restored_plan_validates_and_executes():
    """A deserialized plan drives the executor like the original."""
    from repro.core.planner import Planner, PlannerConfig
    from repro.sim.executor import simulate
    from repro.units import MiB
    from tests.conftest import small_server, tiny_job, tiny_model

    job = tiny_job(
        server=small_server(gpu_memory=48 * MiB),
        model=tiny_model(n_layers=10),
        microbatch_size=8,
        microbatches_per_minibatch=6,
    )
    plan, _ = Planner(job, PlannerConfig()).build()
    restored = plan_from_dict(plan_to_dict(plan))
    original_run = simulate(job, plan, strict=True)
    restored_run = simulate(job, restored, strict=True)
    assert restored_run.ok == original_run.ok
    assert restored_run.minibatch_time == pytest.approx(original_run.minibatch_time)
