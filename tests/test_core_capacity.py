"""Capacity search tests."""

import pytest

from repro.core.capacity import max_microbatch, max_trainable_variant
from repro.errors import ConfigurationError
from repro.units import MiB

from tests.conftest import small_server, tiny_job, tiny_model


def _job_for_model(model, server):
    return tiny_job(server=server, model=model, microbatch_size=8,
                    microbatches_per_minibatch=6)


class TestMaxVariant:
    def test_finds_boundary(self):
        server = small_server(gpu_memory=96 * MiB)
        variants = {
            float(n): tiny_model(n_layers=n) for n in (6, 10, 14, 22, 30)
        }
        result = max_trainable_variant(
            variants, lambda m: _job_for_model(m, server), "none"
        )
        assert result.any_trainable
        assert result.largest in variants
        assert result.failures  # the biggest ones must fail
        assert max(result.survivors) == result.largest
        assert min(result.failures) > result.largest

    def test_mpress_extends_the_boundary(self):
        server = small_server(gpu_memory=96 * MiB)
        variants = {float(n): tiny_model(n_layers=n) for n in (6, 10, 14, 22, 30)}
        plain = max_trainable_variant(
            variants, lambda m: _job_for_model(m, server), "none"
        )
        mpress = max_trainable_variant(
            variants, lambda m: _job_for_model(m, server), "mpress"
        )
        assert mpress.largest >= plain.largest

    def test_all_failing(self):
        server = small_server(gpu_memory=8 * MiB)
        variants = {10.0: tiny_model(n_layers=10)}
        result = max_trainable_variant(
            variants, lambda m: _job_for_model(m, server), "none"
        )
        assert not result.any_trainable

    def test_empty_variants_rejected(self):
        with pytest.raises(ConfigurationError):
            max_trainable_variant({}, lambda m: None, "none")


class TestMaxMicrobatch:
    def test_binary_search_finds_boundary(self):
        server = small_server(gpu_memory=64 * MiB)
        model = tiny_model(n_layers=10)

        def build(microbatch):
            return tiny_job(server=server, model=model,
                            microbatch_size=microbatch,
                            microbatches_per_minibatch=6)

        result = max_microbatch(build, "none", low=1, high=32)
        assert result.any_trainable
        boundary = int(result.largest)
        # Verify the boundary directly.
        from repro.core.mpress import run_system

        assert run_system(build(boundary), "none").ok
        if boundary < 32:
            assert not run_system(build(boundary + 1), "none").ok

    def test_reports_untrainable_low(self):
        server = small_server(gpu_memory=4 * MiB)
        model = tiny_model(n_layers=10)

        def build(microbatch):
            return tiny_job(server=server, model=model, microbatch_size=microbatch)

        result = max_microbatch(build, "none", low=1, high=4)
        assert not result.any_trainable

    def test_invalid_range_rejected(self):
        with pytest.raises(ConfigurationError):
            max_microbatch(lambda mb: None, "none", low=4, high=2)
