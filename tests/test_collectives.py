"""Collective schedules and the analytic cost model."""

import pytest

from repro.collectives import (
    all_reduce_schedule,
    all_reduce_time,
    best_all_reduce,
    broadcast_schedule,
    collective_time,
    hierarchical_all_reduce,
    islands,
    pair_transfer_time,
    ring_all_reduce,
    ring_broadcast,
    ring_order,
    ring_reduce_scatter,
    tree_all_reduce,
    tree_broadcast,
    tree_reduce,
)
from repro.collectives.schedule import CollectiveSchedule, TransferStep
from repro.errors import ConfigurationError
from repro.hardware.cluster import dgx1_cluster
from repro.hardware.links import NVLINK2
from repro.hardware.topology import Topology, dgx1_topology, dgx2_topology
from repro.units import MiB

SIZE = 64 * MiB


# -- schedule structure --------------------------------------------------


def test_transfer_step_validates():
    with pytest.raises(ConfigurationError):
        TransferStep(src=1, dst=1, size=4)
    with pytest.raises(ConfigurationError):
        TransferStep(src=0, dst=1, size=0)


def test_schedule_rejects_steps_outside_group():
    with pytest.raises(ConfigurationError):
        CollectiveSchedule(
            op="all_reduce", algorithm="ring", group=(0, 1),
            size_bytes=8, rounds=((TransferStep(0, 2, 4),),))


def test_schedule_rejects_degenerate_groups():
    with pytest.raises(ConfigurationError):
        ring_all_reduce((3,), SIZE)
    with pytest.raises(ConfigurationError):
        ring_all_reduce((3, 3), SIZE)


def test_ring_reduce_scatter_shape():
    sched = ring_reduce_scatter((0, 1, 2, 3), SIZE)
    assert sched.n_rounds == 3
    assert all(len(rnd) == 4 for rnd in sched.rounds)
    chunk = -(-SIZE // 4)
    assert all(step.size == chunk for rnd in sched.rounds for step in rnd)
    # Every round uses every cycle edge exactly once.
    edges = {(step.src, step.dst) for step in sched.rounds[0]}
    assert edges == {(0, 1), (1, 2), (2, 3), (3, 0)}


def test_ring_all_reduce_is_scatter_plus_gather():
    n = 4
    sched = ring_all_reduce(tuple(range(n)), SIZE)
    assert sched.n_rounds == 2 * (n - 1)
    assert sched.total_bytes() == 2 * (n - 1) * n * -(-SIZE // n)


def test_ring_broadcast_pipelines_chunks():
    n = 4
    sched = ring_broadcast(tuple(range(n)), SIZE)
    # (n - 2) + n rounds; the first and last rounds have one active edge.
    assert sched.n_rounds == 2 * n - 2
    assert len(sched.rounds[0]) == 1
    assert sched.rounds[0][0].src == 0
    assert len(sched.rounds[-1]) == 1
    # Every edge forwards every chunk once: (n-1) * n steps.
    assert sched.n_steps == (n - 1) * n


def test_tree_all_reduce_round_count():
    for n in (2, 3, 4, 5, 8):
        sched = tree_all_reduce(tuple(range(n)), SIZE)
        log2 = (n - 1).bit_length()
        assert sched.n_rounds == 2 * log2
        assert all(step.size == SIZE
                   for rnd in sched.rounds for step in rnd)


def test_tree_reduce_combines_leaves_first():
    sched = tree_reduce((0, 1, 2, 3), SIZE)
    # Last round flows into the root; earlier rounds touch leaves only.
    assert all(step.dst == 0 for step in sched.rounds[-1])
    first_round_nodes = {step.dst for step in sched.rounds[0]}
    assert 0 in first_round_nodes   # distance-1 partner feeds the root too
    assert sched.n_steps == 3       # n-1 messages total


def test_tree_broadcast_reaches_everyone():
    sched = tree_broadcast((0, 1, 2, 3, 4), SIZE)
    reached = {0}
    for rnd in sched.rounds:
        for step in rnd:
            assert step.src in reached
            reached.add(step.dst)
    assert reached == {0, 1, 2, 3, 4}


# -- topology-aware ordering ---------------------------------------------


def test_ring_order_switched_is_sorted():
    topo = dgx2_topology()
    assert ring_order(topo, range(16)) == tuple(range(16))
    assert ring_order(topo, (5, 3, 9)) == (3, 5, 9)


def test_ring_order_dgx1_avoids_weak_edges_where_possible():
    topo = dgx1_topology()
    cycle = ring_order(topo, range(8))
    lanes = [topo.lanes(cycle[i], cycle[(i + 1) % 8]) for i in range(8)]
    # Every edge of the chosen cycle is a real NVLink (the identity
    # order would route (3,4) and (7,0) over PCIe)...
    assert min(lanes) >= 1
    # ...but no Hamiltonian cycle on the cube mesh is all double-brick.
    assert min(lanes) == 1
    assert cycle[0] == 0


def test_ring_order_is_deterministic_and_cached():
    topo = dgx1_topology()
    assert ring_order(topo, range(8)) == ring_order(topo, tuple(range(8)))


def test_islands_dgx1_are_the_double_brick_quads():
    topo = dgx1_topology()
    assert islands(topo, range(8)) == ((0, 3, 4, 7), (1, 2, 5, 6))


def test_islands_switched_splits_halves():
    topo = dgx2_topology()
    assert islands(topo, range(8)) == ((0, 1, 2, 3), (4, 5, 6, 7))


def test_islands_odd_group_stays_single():
    topo = dgx2_topology()
    assert islands(topo, (0, 1, 2)) == ((0, 1, 2),)


def test_hierarchical_falls_back_to_ring_on_small_groups():
    topo = dgx2_topology()
    sched = hierarchical_all_reduce(topo, (0, 1, 2), SIZE)
    assert sched.algorithm == "ring"


def test_islands_disconnected_adjacency():
    # Two 2-lane pairs with no path between them: the >= 2-lane
    # subgraph's components are the islands.
    topo = Topology(n_gpus=4, kind="direct", nvlink=NVLINK2, adjacency={
        frozenset((0, 1)): 2, frozenset((2, 3)): 2,
    })
    assert islands(topo, range(4)) == ((0, 1), (2, 3))


def test_islands_two_gpu_direct_topology():
    topo = Topology(n_gpus=2, kind="direct", nvlink=NVLINK2,
                    adjacency={frozenset((0, 1)): 2})
    assert islands(topo, (0, 1)) == ((0, 1),)
    assert ring_order(topo, (1, 0)) == (0, 1)


def test_islands_rejects_singleton_components():
    # GPU 2 has no 2-lane link, so the union-find yields a size-1
    # island; unequal sizes reject the partition and the odd group
    # stays whole.
    topo = Topology(n_gpus=3, kind="direct", nvlink=NVLINK2, adjacency={
        frozenset((0, 1)): 2, frozenset((1, 2)): 1,
    })
    assert islands(topo, range(3)) == ((0, 1, 2),)


def test_islands_unequal_components_fall_back_to_halves():
    # Components {0,1,2,3} and {4,5} are unequal, so the even group
    # falls back to sorted halves.
    topo = Topology(n_gpus=6, kind="direct", nvlink=NVLINK2, adjacency={
        frozenset((0, 1)): 2, frozenset((1, 2)): 2, frozenset((2, 3)): 2,
        frozenset((4, 5)): 2,
    })
    assert islands(topo, range(6)) == ((0, 1, 2), (3, 4, 5))


# -- cluster topologies --------------------------------------------------


def test_cluster_islands_are_servers():
    topo = dgx1_cluster(2).topology
    assert islands(topo, range(16)) == (tuple(range(8)), tuple(range(8, 16)))


def test_cluster_islands_single_server_keeps_quads():
    topo = dgx1_cluster(2).topology
    # A group confined to the second box surfaces its local quads,
    # remapped to global ids.
    assert islands(topo, range(8, 16)) == ((8, 11, 12, 15), (9, 10, 13, 14))


def test_cluster_islands_uneven_servers_stay_single():
    topo = dgx1_cluster(2).topology
    assert islands(topo, (0, 1, 2, 8, 9)) == ((0, 1, 2, 8, 9),)


def test_cluster_islands_singleton_server_stays_single():
    topo = dgx1_cluster(2).topology
    assert islands(topo, (0, 8)) == ((0, 8),)


def test_cluster_ring_is_server_contiguous():
    topo = dgx1_cluster(2).topology
    cycle = ring_order(topo, range(16))
    servers = [device // 8 for device in cycle]
    # Exactly two fabric crossings around the cycle.
    crossings = sum(servers[i] != servers[(i + 1) % 16] for i in range(16))
    assert crossings == 2
    # Each segment follows the box's own ring search.
    local = ring_order(dgx1_topology(), range(8))
    assert cycle[:8] == local
    assert cycle[8:] == tuple(device + 8 for device in local)


def test_cluster_hierarchical_beats_flat_ring():
    topo = dgx1_cluster(2).topology
    ring = all_reduce_time(topo, range(16), SIZE, "ring")
    hier = all_reduce_time(topo, range(16), SIZE, "hierarchical")
    assert hier < ring
    assert all_reduce_time(topo, range(16), SIZE, "auto") <= hier


# -- analytic costs ------------------------------------------------------


def test_pair_transfer_nvlink_beats_pcie_fallback():
    topo = dgx1_topology()
    linked = pair_transfer_time(topo, 0, 1, SIZE)     # NVLink pair
    unlinked = pair_transfer_time(topo, 3, 4, SIZE)   # no direct link
    assert linked < unlinked


def test_collective_time_is_sum_of_round_bottlenecks():
    topo = dgx2_topology()
    sched = ring_all_reduce((0, 1, 2, 3), SIZE)
    per_round = pair_transfer_time(topo, 0, 1, -(-SIZE // 4))
    assert collective_time(sched, topo) == pytest.approx(6 * per_round)


def test_hierarchical_beats_flat_ring_on_dgx1():
    topo = dgx1_topology()
    ring = all_reduce_time(topo, range(8), SIZE, "ring")
    hier = all_reduce_time(topo, range(8), SIZE, "hierarchical")
    assert hier < ring


def test_hierarchical_converges_with_ring_on_dgx2():
    """On a symmetric crossbar there is no island structure to exploit:
    hierarchical only saves the latency of the longer round stream."""
    topo = dgx2_topology(n_gpus=16)
    ring = all_reduce_time(topo, range(16), SIZE, "ring")
    hier = all_reduce_time(topo, range(16), SIZE, "hierarchical")
    assert hier == pytest.approx(ring, rel=0.25)


def test_tree_wins_small_messages_ring_wins_large():
    topo = dgx2_topology()
    group = range(8)
    small, large = 4096, 256 * MiB
    assert (all_reduce_time(topo, group, small, "tree")
            < all_reduce_time(topo, group, small, "ring"))
    assert (all_reduce_time(topo, group, large, "ring")
            < all_reduce_time(topo, group, large, "tree"))


def test_best_all_reduce_matches_auto():
    topo = dgx1_topology()
    sched, seconds = best_all_reduce(topo, range(8), SIZE)
    assert sched.algorithm == "hierarchical"
    assert seconds == pytest.approx(
        all_reduce_time(topo, range(8), SIZE, "auto"))
    assert seconds <= min(
        all_reduce_time(topo, range(8), SIZE, algorithm)
        for algorithm in ("ring", "tree", "hierarchical"))


def test_dispatchers_reject_unknown_algorithms():
    topo = dgx2_topology()
    with pytest.raises(ConfigurationError):
        all_reduce_schedule(topo, (0, 1), SIZE, algorithm="nccl")
    with pytest.raises(ConfigurationError):
        broadcast_schedule(topo, (0, 1), SIZE, algorithm="hierarchical")


def test_broadcast_dispatcher_routes_both_algorithms():
    topo = dgx2_topology()
    assert broadcast_schedule(topo, (0, 1, 2, 3), SIZE).algorithm == "tree"
    ring = broadcast_schedule(topo, (0, 1, 2, 3), SIZE, algorithm="ring")
    assert ring.algorithm == "ring" and ring.op == "broadcast"
