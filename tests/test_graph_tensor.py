"""Tensor-class enumeration tests."""

import pytest

from repro.errors import ConfigurationError
from repro.graph.tensor import TensorClass, TensorKind, tensor_classes_for
from repro.pipeline.dapple import dapple_schedule
from repro.pipeline.partition import partition_model
from repro.pipeline.pipedream import pipedream_schedule

from tests.conftest import tiny_model


def _classes(system="dapple", n_stages=4, microbatch=2, bpe=2):
    model = tiny_model(n_layers=10)
    plan = partition_model(model, n_stages)
    if system == "dapple":
        sched = dapple_schedule(n_stages, 2, 8)
    else:
        sched = pipedream_schedule(n_stages, 8, 1)
    return plan, sched, tensor_classes_for(plan, sched, microbatch, bpe)


def test_every_layer_has_an_activation_class():
    plan, _, classes = _classes()
    acts = [c for c in classes if c.kind is TensorKind.ACTIVATION]
    assert len(acts) == plan.model.n_layers


def test_activation_instances_follow_in_flight_count():
    _, sched, classes = _classes()
    for cls in classes:
        if cls.kind is TensorKind.ACTIVATION:
            assert cls.instances == sched.max_in_flight(cls.stage)


def test_dapple_has_no_stash_classes():
    _, _, classes = _classes("dapple")
    assert not any(c.kind is TensorKind.STASHED_PARAMS for c in classes)


def test_pipedream_stash_instances_scale_with_stage():
    _, sched, classes = _classes("pipedream")
    stash = {c.stage: c.instances for c in classes if c.kind is TensorKind.STASHED_PARAMS}
    # Stage 0 stashes the most versions; the last stage none.
    assert stash[0] == 3
    assert 3 not in stash or stash.get(3) is None or True
    assert all(stash[s] == sched.weight_versions(s) - 1 for s in stash)


def test_state_byte_split_follows_precision():
    _, _, fp16 = _classes(bpe=2)
    _, _, fp32 = _classes(bpe=4)
    opt16 = next(c for c in fp16 if c.kind is TensorKind.OPTIMIZER_STATE and c.stage == 0)
    opt32 = next(c for c in fp32 if c.kind is TensorKind.OPTIMIZER_STATE and c.stage == 0)
    # fp16 mixed precision: 12 B/param optimizer; fp32: 8 B/param.
    assert opt16.size * 8 == opt32.size * 12


def test_only_activations_are_recomputable():
    _, _, classes = _classes()
    for cls in classes:
        assert cls.recomputable == (cls.kind is TensorKind.ACTIVATION)


def test_peak_bytes_is_size_times_instances():
    cls = TensorClass(TensorKind.ACTIVATION, 0, 1, size=100, instances=4, recomputable=True)
    assert cls.peak_bytes == 400


def test_keys_are_unique():
    _, _, classes = _classes()
    keys = [c.key for c in classes]
    assert len(keys) == len(set(keys))


def test_negative_size_rejected():
    with pytest.raises(ConfigurationError):
        TensorClass(TensorKind.ACTIVATION, 0, 0, size=-1, instances=1, recomputable=True)
