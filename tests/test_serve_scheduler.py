"""Fair-share scheduler: tenant alternation, priorities, FIFO, close."""

from __future__ import annotations

import threading

import pytest

from repro.runtime.task import SimTask
from repro.serve.scheduler import FairShareScheduler, TaskUnit
from tests.conftest import tiny_job


@pytest.fixture(scope="module")
def task():
    return SimTask(label="sched/unit", job=tiny_job(), system="none")


def _units(task, tenant, n, job_id="j1", priority=0):
    return [TaskUnit(tenant=tenant, job_id=job_id, index=i, task=task,
                     priority=priority) for i in range(n)]


def _drain(scheduler, n):
    order = []
    for _ in range(n):
        unit = scheduler.next_unit(timeout=1.0)
        assert unit is not None
        order.append(unit)
    return order


def test_single_tenant_is_fifo(task):
    scheduler = FairShareScheduler()
    scheduler.submit(_units(task, "a", 4))
    order = _drain(scheduler, 4)
    assert [u.index for u in order] == [0, 1, 2, 3]


def test_two_tenants_alternate_regardless_of_queue_depth(task):
    scheduler = FairShareScheduler()
    scheduler.submit(_units(task, "alice", 6, job_id="wide"))
    scheduler.submit(_units(task, "bob", 2, job_id="narrow"))
    order = [u.tenant for u in _drain(scheduler, 8)]
    # Least-service-first: the first four dispatches alternate, so
    # bob's whole job clears while alice is only two units in.
    assert order[:4] == ["alice", "bob", "alice", "bob"]
    assert order[4:] == ["alice"] * 4


def test_late_arriving_tenant_preempts_backlog(task):
    scheduler = FairShareScheduler()
    scheduler.submit(_units(task, "alice", 4))
    _drain(scheduler, 2)                     # alice's service is now 2
    scheduler.submit(_units(task, "bob", 2))
    order = [u.tenant for u in _drain(scheduler, 4)]
    # bob is behind on service, so both of his units go first.
    assert order == ["bob", "bob", "alice", "alice"]


def test_three_tenants_round_robin(task):
    scheduler = FairShareScheduler()
    for tenant in ("c", "a", "b"):
        scheduler.submit(_units(task, tenant, 2))
    order = [u.tenant for u in _drain(scheduler, 6)]
    # Ties on service break on tenant name.
    assert order == ["a", "b", "c", "a", "b", "c"]


def test_priority_orders_within_a_tenant(task):
    scheduler = FairShareScheduler()
    scheduler.submit(_units(task, "a", 2, job_id="low", priority=0))
    scheduler.submit(_units(task, "a", 2, job_id="high", priority=5))
    order = [(u.job_id, u.index) for u in _drain(scheduler, 4)]
    assert order == [("high", 0), ("high", 1), ("low", 0), ("low", 1)]


def test_equal_priority_is_submission_fifo(task):
    scheduler = FairShareScheduler()
    scheduler.submit(_units(task, "a", 2, job_id="first", priority=3))
    scheduler.submit(_units(task, "a", 2, job_id="second", priority=3))
    order = [u.job_id for u in _drain(scheduler, 4)]
    assert order == ["first", "first", "second", "second"]


def test_priority_does_not_cross_tenants(task):
    # Fair share dominates priority: a high-priority flood from one
    # tenant cannot starve another tenant's low-priority work.
    scheduler = FairShareScheduler()
    scheduler.submit(_units(task, "loud", 3, priority=100))
    scheduler.submit(_units(task, "quiet", 1, priority=0))
    order = [u.tenant for u in _drain(scheduler, 4)]
    assert order == ["loud", "quiet", "loud", "loud"]


def test_next_unit_times_out_on_empty_queue(task):
    scheduler = FairShareScheduler()
    assert scheduler.next_unit(timeout=0.05) is None


def test_close_wakes_blocked_consumers(task):
    scheduler = FairShareScheduler()
    results = []
    thread = threading.Thread(
        target=lambda: results.append(scheduler.next_unit(timeout=5.0)))
    thread.start()
    scheduler.close()
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    assert results == [None]


def test_submit_after_close_raises(task):
    scheduler = FairShareScheduler()
    scheduler.close()
    with pytest.raises(RuntimeError):
        scheduler.submit(_units(task, "a", 1))


def test_close_drains_remaining_units(task):
    scheduler = FairShareScheduler()
    scheduler.submit(_units(task, "a", 2))
    scheduler.close()
    # Queued work is still handed out after close; only emptiness
    # returns None.
    assert scheduler.next_unit(timeout=1.0) is not None
    assert scheduler.next_unit(timeout=1.0) is not None
    assert scheduler.next_unit(timeout=1.0) is None


def test_backlog_and_service_accounting(task):
    scheduler = FairShareScheduler()
    scheduler.submit(_units(task, "a", 3))
    scheduler.submit(_units(task, "b", 1))
    assert scheduler.backlog() == {"a": 3, "b": 1}
    _drain(scheduler, 2)
    assert scheduler.service() == {"a": 1, "b": 1}
    assert scheduler.backlog() == {"a": 2}
