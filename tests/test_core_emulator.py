"""Emulator feedback tests (Fig. 5 step 5)."""

import pytest

from repro.core.emulator import Emulator
from repro.core.plan import Action, PlanEntry, empty_plan
from repro.graph.tensor import TensorKind, tensor_classes_for
from repro.units import MiB

from tests.conftest import small_server, tiny_job, tiny_model


def _pressured_job():
    return tiny_job(
        server=small_server(gpu_memory=48 * MiB),
        model=tiny_model(n_layers=10),
        microbatch_size=8,
        microbatches_per_minibatch=6,
    )


def test_reports_overflow_for_empty_plan():
    job = _pressured_job()
    report = Emulator(job).run(empty_plan(job.n_stages))
    assert not report.fits
    assert 0 in report.overflowed_devices
    assert report.minibatch_time > 0


def test_reports_fit_when_capacity_suffices():
    job = tiny_job()
    report = Emulator(job).run(empty_plan(job.n_stages))
    assert report.fits
    assert report.overflowed_devices == []


def test_saved_by_action_propagates():
    job = _pressured_job()
    plan = empty_plan(job.n_stages)
    classes = tensor_classes_for(
        job.stage_plan, job.schedule, job.microbatch_size, job.bytes_per_element
    )
    cls = next(c for c in classes if c.kind is TensorKind.ACTIVATION and c.stage == 0)
    plan.assign(PlanEntry(cls=cls, action=Action.RECOMPUTE))
    report = Emulator(job).run(plan)
    assert report.saved_by_action[Action.RECOMPUTE] == cls.peak_bytes


def test_slowdown_vs_baseline():
    job = _pressured_job()
    emulator = Emulator(job)
    base = emulator.run(empty_plan(job.n_stages))
    assert base.slowdown_vs(base.minibatch_time) == pytest.approx(0.0)
    assert base.slowdown_vs(base.minibatch_time / 2) == pytest.approx(1.0)
    assert base.slowdown_vs(0.0) == 0.0


def test_device_peaks_cover_all_gpus():
    job = _pressured_job()
    report = Emulator(job).run(empty_plan(job.n_stages))
    assert len(report.device_peaks) == job.server.n_gpus
    assert all(peak > 0 for peak in report.device_peaks)


def test_non_strict_overflow_is_reported_not_fatal():
    # The emulator measures overflow instead of OOMing: the run must
    # complete (ok, trace recorded) with peaks above capacity.
    job = _pressured_job()
    report = Emulator(job).run(empty_plan(job.n_stages))
    assert report.result.ok
    assert report.result.oom is None
    assert report.result.trace.events
    capacity = job.server.gpu_memory
    for device in report.overflowed_devices:
        assert report.device_peaks[device] > capacity


def test_overflowed_devices_match_peaks():
    job = _pressured_job()
    report = Emulator(job).run(empty_plan(job.n_stages))
    capacity = job.server.gpu_memory
    expected = [d for d, peak in enumerate(report.device_peaks) if peak > capacity]
    assert report.overflowed_devices == expected


def test_fits_tracks_overflow_list():
    job = _pressured_job()
    emulator = Emulator(job)
    overflowing = emulator.run(empty_plan(job.n_stages))
    assert overflowing.fits == (not overflowing.overflowed_devices)
    roomy = Emulator(tiny_job()).run(empty_plan(4))
    assert roomy.fits and roomy.overflowed_devices == []


def test_slowdown_vs_is_signed():
    job = _pressured_job()
    report = Emulator(job).run(empty_plan(job.n_stages))
    faster_baseline = report.minibatch_time / 2
    slower_baseline = report.minibatch_time * 2
    assert report.slowdown_vs(faster_baseline) == pytest.approx(1.0)
    assert report.slowdown_vs(slower_baseline) == pytest.approx(-0.5)


def test_one_emulator_reuses_its_lowering_skeleton():
    from repro.sim.lowering import skeleton_build_count

    job = _pressured_job()
    before = skeleton_build_count()
    emulator = Emulator(job)
    emulator.run(empty_plan(job.n_stages))
    emulator.run(empty_plan(job.n_stages))
    assert skeleton_build_count() == before + 1
    assert emulator.n_emulations == 2
