"""End-to-end serving simulations: batching, swap policies, equivalence.

The headline claims pinned here:

* the reference interpreter and the fast path replay the same lowered
  serving program to byte-identical traces and metrics;
* under an identical workload and KV pool, D2D striping and PCIe host
  swap move exactly the same spill volume (the scheduler never
  consults the transport), and D2D exposes strictly less decode stall
  — the paper's bandwidth argument, on the serving side.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.errors import ConfigurationError
from repro.hardware.server import dgx1_server
from repro.inference import InferenceConfig, run_serving
from repro.models import gpt_variant
from repro.runtime.task import trace_digest

MODEL = gpt_variant(5.3)
SERVER = dgx1_server()

# Tight pool (~25 blocks of GPT-5.3B KV) so the workload overflows it:
# verified to force swaps on every policy without preempting to zero.
SPILL = InferenceConfig(
    seed=3, n_requests=10, arrival_rate=32.0,
    prompt_mean=128, prompt_max=256,
    output_mean=24, output_max=64,
    max_batch=6, kv_pool_mib=199,
)


def serve(config: InferenceConfig, **kwargs):
    return run_serving(MODEL, SERVER, config, **kwargs)


class TestEndToEnd:
    def test_uncontended_serving_completes_every_request(self):
        outcome = serve(InferenceConfig(seed=0, n_requests=8))
        assert outcome.simulation.ok
        metrics = outcome.metrics
        assert metrics.n_requests == 8
        assert metrics.total_output_tokens == sum(
            r.output_tokens for r in outcome.tape.requests)
        assert metrics.tokens_per_second > 0
        assert metrics.ttft_p50 <= metrics.ttft_p95 <= metrics.ttft_p99
        assert metrics.swapped_bytes == 0
        assert metrics.preemptions == 0

    def test_pipelined_serving_runs_on_two_stages(self):
        outcome = serve(InferenceConfig(seed=0, n_requests=6, pp=2))
        assert outcome.simulation.ok
        assert outcome.cost.n_stages == 2
        assert outcome.metrics.tokens_per_second > 0

    def test_prefix_sharing_saves_prompt_tokens(self):
        config = InferenceConfig(seed=1, n_requests=8,
                                 shared_prefix_tokens=64,
                                 shared_prefix_fraction=1.0)
        outcome = serve(config)
        assert outcome.metrics.prefix_cache_hits > 0
        assert outcome.metrics.prefix_saved_tokens > 0

    def test_metrics_json_round_trips(self):
        outcome = serve(InferenceConfig(seed=0, n_requests=4))
        payload = json.loads(json.dumps(outcome.metrics.to_json()))
        assert payload["kv_swap"] == "d2d"
        assert payload["n_requests"] == 4


class TestFastPathEquivalence:
    @pytest.mark.parametrize("config", [
        InferenceConfig(seed=0, n_requests=8),
        dataclasses.replace(SPILL, kv_swap="d2d"),
        dataclasses.replace(SPILL, kv_swap="pcie"),
        dataclasses.replace(SPILL, kv_swap="none"),
    ], ids=["uncontended", "spill-d2d", "spill-pcie", "spill-none"])
    def test_reference_equals_fast_path(self, config):
        reference = serve(config, reference=True)
        fast = serve(config)
        assert reference.simulation.makespan == fast.simulation.makespan
        assert trace_digest(reference.simulation.trace) == \
            trace_digest(fast.simulation.trace)
        assert reference.metrics == fast.metrics


class TestSwapPolicies:
    def test_d2d_beats_pcie_at_equal_spill_volume(self):
        """The crossover: same spill bytes, strictly less decode stall."""
        d2d = serve(dataclasses.replace(SPILL, kv_swap="d2d")).metrics
        pcie = serve(dataclasses.replace(SPILL, kv_swap="pcie")).metrics
        assert d2d.swapped_bytes > 0, "workload must actually spill"
        assert d2d.swapped_bytes == pcie.swapped_bytes
        assert d2d.swapped_requests == pcie.swapped_requests
        assert d2d.decode_stall_seconds < pcie.decode_stall_seconds
        assert d2d.makespan < pcie.makespan

    def test_preemption_baseline_recomputes_instead_of_swapping(self):
        none = serve(dataclasses.replace(SPILL, kv_swap="none")).metrics
        swap = serve(dataclasses.replace(SPILL, kv_swap="d2d")).metrics
        assert none.preemptions > 0
        assert none.swapped_bytes == 0
        # Re-prefilling preempted requests costs extra iterations.
        assert none.n_iterations > swap.n_iterations

    def test_same_workload_across_policies(self):
        tapes = {
            mode: serve(dataclasses.replace(SPILL, kv_swap=mode)).tape
            for mode in ("d2d", "pcie")
        }
        assert tapes["d2d"].requests == tapes["pcie"].requests
        assert tapes["d2d"].n_iterations == tapes["pcie"].n_iterations
        assert [(s.rid, s.size) for s in tapes["d2d"].swaps] == \
            [(s.rid, s.size) for s in tapes["pcie"].swaps]

    def test_pool_too_small_for_one_request_is_a_config_error(self):
        config = dataclasses.replace(SPILL, kv_pool_mib=8)
        with pytest.raises(ConfigurationError):
            serve(config)


class TestDeterminism:
    def test_rerun_is_bit_identical(self):
        config = dataclasses.replace(SPILL, kv_swap="d2d")
        first = serve(config)
        second = serve(config)
        assert first.metrics == second.metrics
        assert trace_digest(first.simulation.trace) == \
            trace_digest(second.simulation.trace)
