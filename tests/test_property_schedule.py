"""Property-based tests for schedule invariants."""

from hypothesis import given, settings, strategies as st

from repro.graph.dataflow import build_program
from repro.pipeline.dapple import dapple_schedule
from repro.pipeline.partition import partition_model
from repro.pipeline.pipedream import pipedream_schedule
from repro.sim.executor import simulate

from tests.conftest import tiny_job, tiny_model

stage_counts = st.integers(min_value=1, max_value=6)
minibatches = st.integers(min_value=1, max_value=4)
microbatches = st.integers(min_value=1, max_value=6)


@given(n_stages=stage_counts, n_mb=minibatches, mpm=microbatches)
def test_dapple_schedule_validates_and_bounds_in_flight(n_stages, n_mb, mpm):
    sched = dapple_schedule(n_stages, n_mb, mpm)
    for stage in range(n_stages):
        assert sched.max_in_flight(stage) <= min(mpm, n_stages - stage)
        assert sched.weight_versions(stage) == 1


@given(n_stages=stage_counts, n_mb=minibatches)
def test_pipedream_schedule_validates_and_stashes(n_stages, n_mb):
    sched = pipedream_schedule(n_stages, n_mb, 1)
    for stage in range(n_stages):
        assert sched.weight_versions(stage) == n_stages - stage
        assert sched.max_in_flight(stage) <= n_stages - stage


@given(
    n_stages=st.integers(min_value=2, max_value=4),
    n_mb=st.integers(min_value=1, max_value=3),
    mpm=st.integers(min_value=1, max_value=4),
    system=st.sampled_from(["pipedream", "dapple"]),
)
@settings(max_examples=25, deadline=None)
def test_any_schedule_simulates_without_deadlock(n_stages, n_mb, mpm, system):
    """The strongest schedule invariant: every generated schedule
    lowers to a task DAG the engine can fully execute."""
    model = tiny_model(n_layers=max(4, n_stages))
    from tests.conftest import small_server, small_switched_server

    server = small_server() if n_stages == 4 else small_switched_server()
    if server.n_gpus != n_stages:
        # Re-shape: simulate with a 4-stage server only when stages match.
        return
    job = tiny_job(
        server=server,
        model=model,
        system=system,
        microbatches_per_minibatch=mpm,
        n_minibatches=n_mb,
        precision="fp32" if system == "pipedream" else "fp16",
    )
    result = simulate(job, strict=False)
    assert result.ok
    fwd = [e for e in result.trace.events if e.kind == "fwd"]
    bwd = [e for e in result.trace.events if e.kind == "bwd"]
    assert len(fwd) == len(bwd) > 0


@given(
    n_stages=st.integers(min_value=2, max_value=5),
    mpm=st.integers(min_value=1, max_value=5),
)
def test_program_dependencies_are_acyclic(n_stages, mpm):
    model = tiny_model(n_layers=max(4, n_stages))
    plan = partition_model(model, n_stages)
    sched = dapple_schedule(n_stages, 2, mpm)
    program = build_program(plan, sched)
    # Kahn's algorithm must consume every node.
    nodes = program.nodes()
    indegree = {id(n): len(n.deps) for n in nodes}
    dependents = {}
    for node in nodes:
        for dep in node.deps:
            dependents.setdefault(id(dep), []).append(node)
    ready = [n for n in nodes if indegree[id(n)] == 0]
    seen = 0
    while ready:
        node = ready.pop()
        seen += 1
        for child in dependents.get(id(node), []):
            indegree[id(child)] -= 1
            if indegree[id(child)] == 0:
                ready.append(child)
    assert seen == len(nodes)
