"""Schedule tests: 1F1B structure, PipeDream vs DAPPLE semantics."""

import pytest

from repro.errors import ScheduleError
from repro.pipeline.dapple import dapple_schedule
from repro.pipeline.pipedream import pipedream_schedule
from repro.pipeline.schedule import OpKind, PipelineSchedule, ScheduleOp, one_f_one_b


class TestOneFOneB:
    def test_warmup_then_alternation(self):
        ops = one_f_one_b(3, 0, [0, 1, 2, 3], warmup=3)
        kinds = [(op.kind, op.microbatch) for op in ops]
        assert kinds == [
            (OpKind.FORWARD, 0), (OpKind.FORWARD, 1), (OpKind.FORWARD, 2),
            (OpKind.BACKWARD, 0), (OpKind.FORWARD, 3),
            (OpKind.BACKWARD, 1), (OpKind.BACKWARD, 2), (OpKind.BACKWARD, 3),
        ]

    def test_warmup_clamped_to_total(self):
        ops = one_f_one_b(8, 0, [0, 1], warmup=8)
        assert len(ops) == 4

    def test_rejects_zero_warmup(self):
        with pytest.raises(ScheduleError):
            one_f_one_b(2, 0, [0], warmup=0)


class TestPipeDream:
    def test_weight_versions_decrease_with_stage(self):
        sched = pipedream_schedule(4, 4, 1)
        versions = [sched.weight_versions(s) for s in range(4)]
        assert versions == [4, 3, 2, 1]

    def test_in_flight_decreases_with_stage(self):
        # The memory-imbalance mechanism of Figure 2.
        sched = pipedream_schedule(4, 8, 1)
        in_flight = [sched.max_in_flight(s) for s in range(4)]
        assert in_flight == [4, 3, 2, 1]

    def test_optimizer_after_each_minibatch(self):
        sched = pipedream_schedule(2, 3, 1)
        for stage in range(2):
            opts = [op for op in sched.stage_ops(stage) if op.kind is OpKind.OPTIMIZER]
            assert len(opts) == 3

    def test_async_mode(self):
        assert pipedream_schedule(2, 2, 1).mode == "async"

    def test_no_drain_between_minibatches(self):
        # Async: forwards of later minibatches interleave with
        # backwards of earlier ones (Figure 1a).
        sched = pipedream_schedule(3, 4, 1)
        ops = sched.stage_ops(0)
        first_bwd = next(i for i, op in enumerate(ops) if op.kind is OpKind.BACKWARD)
        later_fwd = [
            i for i, op in enumerate(ops)
            if op.kind is OpKind.FORWARD and op.minibatch > 0
        ]
        assert any(i < first_bwd + 3 for i in later_fwd)


class TestDAPPLE:
    def test_single_weight_version(self):
        sched = dapple_schedule(4, 2, 8)
        assert all(sched.weight_versions(s) == 1 for s in range(4))

    def test_in_flight_bounded_by_stage_depth(self):
        sched = dapple_schedule(4, 2, 8)
        assert [sched.max_in_flight(s) for s in range(4)] == [4, 3, 2, 1]

    def test_minibatches_are_serialized(self):
        # Sync: all of minibatch 0 drains before minibatch 1 starts
        # (the vertical line in Figure 1b).
        sched = dapple_schedule(3, 2, 4)
        for stage in range(3):
            ops = sched.stage_ops(stage)
            last_mb0 = max(
                i for i, op in enumerate(ops)
                if op.minibatch == 0 and op.kind is not OpKind.OPTIMIZER
            )
            first_mb1 = min(
                i for i, op in enumerate(ops)
                if op.minibatch == 1 and op.kind is not OpKind.OPTIMIZER
            )
            assert last_mb0 < first_mb1

    def test_optimizer_between_minibatches(self):
        sched = dapple_schedule(2, 2, 3)
        ops = sched.stage_ops(0)
        opt_positions = [i for i, op in enumerate(ops) if op.kind is OpKind.OPTIMIZER]
        assert len(opt_positions) == 2


class TestValidation:
    def test_missing_microbatch_rejected(self):
        rows = [[ScheduleOp(OpKind.FORWARD, 0, 0), ScheduleOp(OpKind.BACKWARD, 0, 0)]]
        with pytest.raises(ScheduleError):
            PipelineSchedule(
                mode="sync", n_stages=1, n_minibatches=1,
                microbatches_per_minibatch=2, per_stage=rows,
            )

    def test_backward_before_forward_rejected(self):
        rows = [[ScheduleOp(OpKind.BACKWARD, 0, 0), ScheduleOp(OpKind.FORWARD, 0, 0)]]
        with pytest.raises(ScheduleError):
            PipelineSchedule(
                mode="sync", n_stages=1, n_minibatches=1,
                microbatches_per_minibatch=1, per_stage=rows,
            )

    def test_optimizer_op_requires_sentinel_microbatch(self):
        with pytest.raises(ScheduleError):
            ScheduleOp(OpKind.OPTIMIZER, 3, 0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ScheduleError):
            PipelineSchedule(
                mode="eager", n_stages=0, n_minibatches=1,
                microbatches_per_minibatch=1, per_stage=[],
            )

    def test_bad_counts_rejected(self):
        with pytest.raises(ScheduleError):
            pipedream_schedule(0, 1, 1)
        with pytest.raises(ScheduleError):
            dapple_schedule(2, 0, 1)


class TestBackwardDrain:
    def test_dapple_last_stage_drains_all_microbatches(self):
        sched = dapple_schedule(4, 1, 4)
        # 1F1B: the deepest stage ends its minibatch on a full run of
        # backwards; upstream stages drain progressively less.
        assert sched.backward_drain(3, 0) >= 1
        for stage in range(4):
            assert 1 <= sched.backward_drain(stage, 0) <= 4

    def test_pipedream_drain_positive_everywhere(self):
        sched = pipedream_schedule(3, 2, 2)
        for stage in range(3):
            for minibatch in range(2):
                assert sched.backward_drain(stage, minibatch) >= 1

    def test_single_microbatch_drains_one(self):
        sched = dapple_schedule(2, 1, 1)
        assert sched.backward_drain(0, 0) == 1
        assert sched.backward_drain(1, 0) == 1

    def test_unknown_minibatch_rejected(self):
        sched = dapple_schedule(2, 1, 1)
        with pytest.raises(ScheduleError):
            sched.backward_drain(0, 5)
        with pytest.raises(ScheduleError):
            sched.backward_drain(7, 0)


class TestContinuous:
    def test_builder_is_forward_only(self):
        from repro.pipeline.schedule import continuous_schedule

        sched = continuous_schedule(n_stages=2, n_iterations=5)
        assert sched.mode == "continuous"
        assert sched.total_microbatches == 5
        for row in sched.per_stage:
            assert all(op.kind is OpKind.FORWARD for op in row)

    def test_backward_ops_rejected_in_continuous_mode(self):
        with pytest.raises(ScheduleError, match="forward-only"):
            PipelineSchedule(
                mode="continuous",
                n_stages=1,
                n_minibatches=1,
                microbatches_per_minibatch=1,
                per_stage=[[ScheduleOp(OpKind.FORWARD, 0, 0),
                            ScheduleOp(OpKind.BACKWARD, 0, 0)]],
            )

    def test_weight_versions_single_like_sync(self):
        from repro.pipeline.schedule import continuous_schedule

        sched = continuous_schedule(n_stages=3, n_iterations=2)
        assert [sched.weight_versions(s) for s in range(3)] == [1, 1, 1]

    def test_degenerate_sizes_rejected(self):
        from repro.pipeline.schedule import continuous_schedule

        with pytest.raises(ScheduleError):
            continuous_schedule(n_stages=0, n_iterations=1)
        with pytest.raises(ScheduleError):
            continuous_schedule(n_stages=1, n_iterations=0)
