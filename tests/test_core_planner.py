"""Planner tests (Section III-D) on capacity-constrained tiny jobs."""

import pytest

from repro.core.plan import Action
from repro.core.planner import Planner, PlannerConfig, baseline_config
from repro.graph.tensor import TensorKind
from repro.sim.executor import simulate
from repro.units import MiB

from tests.conftest import small_server, tiny_job, tiny_model


def _pressured_job(gpu_memory=48 * MiB, **kwargs):
    """A job whose early stages overflow the given capacity."""
    defaults = dict(
        server=small_server(gpu_memory=gpu_memory),
        model=tiny_model(n_layers=10),
        microbatch_size=8,
        microbatches_per_minibatch=6,
    )
    defaults.update(kwargs)
    return tiny_job(**defaults)


class TestFullPlanner:
    def test_plan_makes_job_fit(self):
        job = _pressured_job()
        base = simulate(job, strict=True)
        assert not base.ok  # sanity: pressure exists
        plan, report = Planner(job, PlannerConfig()).build()
        result = simulate(job, plan, strict=True)
        assert result.ok
        assert report.feasible

    def test_no_pressure_means_empty_plan(self):
        job = tiny_job()  # 2 GiB per GPU, plenty
        plan, report = Planner(job, PlannerConfig()).build()
        assert not plan.entries
        assert report.feasible

    def test_emulation_trajectory_recorded(self):
        job = _pressured_job()
        _, report = Planner(job, PlannerConfig()).build()
        assert report.emulation_times
        assert report.final_time > 0

    def test_only_overflowing_stages_touched(self):
        job = _pressured_job()
        plan, _ = Planner(job, PlannerConfig()).build()
        touched = {entry.cls.stage for entry in plan.entries.values()}
        # The last stage is the lightest and never needs compaction.
        assert 3 not in touched


class TestBaselineConfigs:
    def test_recomputation_only_uses_recompute(self):
        job = _pressured_job()
        plan, _ = Planner(job, baseline_config("recomputation")).build()
        actions = {e.action for e in plan.entries.values()}
        assert actions <= {Action.RECOMPUTE}

    def test_gpu_cpu_swap_only_swaps(self):
        job = _pressured_job()
        plan, _ = Planner(job, baseline_config("gpu-cpu-swap")).build()
        actions = {e.action for e in plan.entries.values()}
        assert actions <= {Action.CPU_SWAP}

    def test_d2d_only_uses_d2d(self):
        job = _pressured_job()
        plan, _ = Planner(job, baseline_config("d2d-only")).build()
        actions = {e.action for e in plan.entries.values()}
        assert actions <= {Action.D2D_SWAP}

    def test_unknown_baseline_rejected(self):
        with pytest.raises(ValueError):
            baseline_config("zero")

    def test_recomputation_cannot_reduce_state(self):
        # Shrink capacity below model state: recomputation alone must
        # be infeasible (the paper's Bert-4B recompute failure mode).
        job = _pressured_job(gpu_memory=16 * MiB)
        plan, report = Planner(job, baseline_config("recomputation")).build()
        assert not report.feasible
        assert not simulate(job, plan, strict=True).ok

    def test_mpress_beats_gpu_cpu_swap_under_pressure(self):
        job = _pressured_job(gpu_memory=40 * MiB)
        swap_plan, _ = Planner(job, baseline_config("gpu-cpu-swap")).build()
        mpress_plan, _ = Planner(job, baseline_config("mpress")).build()
        swap = simulate(job, swap_plan, strict=False)
        mpress = simulate(job, mpress_plan, strict=False)
        assert mpress.minibatch_time <= swap.minibatch_time


class TestOptimizerPolicy:
    def test_optimizer_state_swapped_first(self):
        job = _pressured_job(gpu_memory=32 * MiB)
        plan, _ = Planner(job, PlannerConfig()).build()
        opt_entries = [
            e for e in plan.entries.values()
            if e.cls.kind is TensorKind.OPTIMIZER_STATE
        ]
        assert opt_entries
        assert all(e.action is Action.CPU_SWAP for e in opt_entries)


class TestDeviceMapping:
    def test_identity_mode_keeps_order(self):
        job = _pressured_job()
        config = PlannerConfig(mapping_mode="identity")
        plan, report = Planner(job, config).build()
        assert plan.device_map == list(range(job.n_stages))
        assert report.mapping is None

    def test_search_runs_on_asymmetric_topology(self):
        job = _pressured_job()
        plan, report = Planner(job, PlannerConfig()).build()
        assert report.mapping is not None
        assert sorted(plan.device_map) == list(range(job.n_stages))
