"""Server assembly tests."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.device import V100
from repro.hardware.server import Server, dgx1_server, dgx2_server
from repro.hardware.topology import dgx1_topology
from repro.hardware.device import P3DN_HOST
from repro.units import GiB


def test_dgx1_server_shape():
    server = dgx1_server()
    assert server.n_gpus == 8
    assert server.gpu_memory == 32 * GiB
    assert server.total_gpu_memory == 256 * GiB
    assert server.host.memory_bytes == 768 * GiB


def test_dgx2_server_shape():
    server = dgx2_server()
    assert server.gpu_memory == 40 * GiB
    assert server.topology.is_symmetric
    # The rented DGX-2's NVMe is the slow one (Fig. 8b cause).
    assert server.nvme.read_bandwidth < dgx1_server().nvme.read_bandwidth


def test_gpu_accessor_bounds():
    server = dgx1_server()
    assert server.gpu(0) is V100
    with pytest.raises(ConfigurationError):
        server.gpu(8)


def test_mismatched_gpu_count_rejected():
    with pytest.raises(ConfigurationError):
        Server(name="bad", gpus=[V100] * 4, topology=dgx1_topology(), host=P3DN_HOST)
