"""Executor tests: schedules, memory lifecycles, memory-saving ops."""

import pytest

from repro.core.plan import Action, PlanEntry, empty_plan
from repro.core.striping import build_stripe_plan
from repro.graph.tensor import TensorKind, tensor_classes_for
from repro.sim.executor import ExecOptions, PipelineExecutor, simulate
from repro.units import GiB, MiB

from tests.conftest import small_server, tiny_job


def _classes(job):
    return tensor_classes_for(
        job.stage_plan, job.schedule, job.microbatch_size, job.bytes_per_element
    )


class TestBaselineRun:
    def test_completes_and_reports_metrics(self):
        job = tiny_job()
        result = simulate(job, strict=False)
        assert result.ok
        assert result.makespan > 0
        assert result.minibatch_time > 0
        assert result.tflops > 0
        assert result.samples_per_second > 0

    def test_memory_balanced_at_zero_at_end(self):
        job = tiny_job()
        executor = PipelineExecutor(job, options=ExecOptions(strict=False))
        result = executor.run()
        # All dynamic tensors freed; only static model state remains.
        for device in range(job.server.n_gpus):
            gpu = result.memory.gpu(device)
            static = sum(
                cls.peak_bytes
                for cls in _classes(job)
                if cls.kind in (TensorKind.WORKING_STATE, TensorKind.OPTIMIZER_STATE)
                and device == cls.stage
            )
            assert gpu.in_use == static

    def test_early_stages_peak_higher(self):
        # Figure 2: memory imbalance decreasing with stage index.
        job = tiny_job(microbatches_per_minibatch=8)
        result = simulate(job, strict=False)
        peaks = result.peak_memory_per_gpu
        assert peaks[0] > peaks[-1]

    def test_pipedream_peaks_exceed_dapple(self):
        # Weight stashing + deeper in-flight: async uses more memory.
        pd = simulate(tiny_job(system="pipedream", precision="fp32",
                               microbatches_per_minibatch=1, n_minibatches=8),
                      strict=False)
        da = simulate(tiny_job(system="dapple", precision="fp32",
                               microbatches_per_minibatch=4, n_minibatches=2),
                      strict=False)
        assert pd.memory.gpu(0).peak > da.memory.gpu(0).peak

    def test_strict_mode_ooms_on_small_capacity(self):
        job = tiny_job(server=small_server(gpu_memory=4 * MiB))
        result = simulate(job, strict=True)
        assert not result.ok
        assert result.oom is not None
        assert result.tflops == 0.0

    def test_capacity_override(self):
        job = tiny_job()
        result = simulate(job, strict=True, gpu_capacity_override=4 * MiB)
        assert not result.ok

    def test_minibatch_time_from_optimizer_steps(self):
        job = tiny_job(n_minibatches=3)
        result = simulate(job, strict=False)
        opts = [e for e in result.trace.events if e.kind == "opt" and e.device == 0]
        assert len(opts) == 3
        expected = (opts[-1].end - opts[0].end) / 2
        assert result.minibatch_time == pytest.approx(expected)


def _plan_with(job, kind, action, stages=(0,), tier="host"):
    plan = empty_plan(job.n_stages)
    classes = _classes(job)
    topo = job.server.topology
    for cls in classes:
        if cls.kind is kind and cls.stage in stages:
            stripe = None
            if action is Action.D2D_SWAP:
                exporter = cls.stage
                budgets = {
                    dev: 1 * GiB for dev in range(job.n_stages) if dev != exporter
                }
                stripe = build_stripe_plan(topo, exporter, budgets, cls.size)
            plan.assign(PlanEntry(cls=cls, action=action, stripe=stripe, tier=tier))
    return plan


class TestRecomputation:
    def test_reduces_peak_memory(self):
        job = tiny_job(microbatches_per_minibatch=6)
        base = simulate(job, strict=False)
        plan = _plan_with(job, TensorKind.ACTIVATION, Action.RECOMPUTE, stages=(0,))
        reduced = simulate(job, plan, strict=False)
        assert reduced.memory.gpu(0).peak < base.memory.gpu(0).peak

    def test_adds_compute_time(self):
        job = tiny_job(microbatches_per_minibatch=6)
        base = simulate(job, strict=False)
        plan = _plan_with(
            job, TensorKind.ACTIVATION, Action.RECOMPUTE, stages=(0, 1, 2, 3)
        )
        slowed = simulate(job, plan, strict=False)
        assert slowed.minibatch_time > base.minibatch_time

    def test_recompute_events_recorded(self):
        job = tiny_job()
        plan = _plan_with(job, TensorKind.ACTIVATION, Action.RECOMPUTE, stages=(0,))
        result = simulate(job, plan, strict=False)
        assert result.trace.by_kind("recompute")


class TestCpuSwap:
    def test_reduces_peak_memory_under_pressure(self):
        # The allocator's backpressure only evicts aggressively when
        # memory is tight; cap the device so the window bites.
        job = tiny_job(microbatch_size=8, microbatches_per_minibatch=6)
        cap = 32 * MiB
        base = simulate(job, strict=False, gpu_capacity_override=cap)
        plan = _plan_with(job, TensorKind.ACTIVATION, Action.CPU_SWAP, stages=(0,))
        reduced = simulate(job, plan, strict=False, gpu_capacity_override=cap)
        assert reduced.memory.gpu(0).peak < base.memory.gpu(0).peak

    def test_swapped_bytes_appear_on_host(self):
        job = tiny_job()
        plan = _plan_with(job, TensorKind.ACTIVATION, Action.CPU_SWAP, stages=(0,))
        result = simulate(job, plan, strict=False)
        assert result.memory.host.peak > 0

    def test_swap_events_balanced(self):
        job = tiny_job()
        plan = _plan_with(job, TensorKind.ACTIVATION, Action.CPU_SWAP, stages=(0,))
        result = simulate(job, plan, strict=False)
        outs = result.trace.by_kind("swap_out")
        ins = result.trace.by_kind("swap_in")
        assert len(outs) == len(ins) > 0

    def test_nvme_tier_bounds_host_residency(self):
        # Under memory pressure the eviction window throttles NVMe
        # staging, while host-tier tensors stay host-resident for
        # their whole swapped-out window.
        job = tiny_job(microbatch_size=8, microbatches_per_minibatch=6)
        cap = 32 * MiB
        host_plan = _plan_with(job, TensorKind.ACTIVATION, Action.CPU_SWAP, stages=(0, 1))
        nvme_plan = _plan_with(
            job, TensorKind.ACTIVATION, Action.CPU_SWAP, stages=(0, 1), tier="nvme"
        )
        host_run = simulate(job, host_plan, strict=False, gpu_capacity_override=cap)
        nvme_run = simulate(job, nvme_plan, strict=False, gpu_capacity_override=cap)
        assert nvme_run.memory.host.peak < host_run.memory.host.peak

    def test_nvme_tier_is_slower(self):
        job = tiny_job(microbatch_size=8, microbatches_per_minibatch=6)
        cap = 32 * MiB
        host_plan = _plan_with(job, TensorKind.ACTIVATION, Action.CPU_SWAP, stages=(0, 1))
        nvme_plan = _plan_with(
            job, TensorKind.ACTIVATION, Action.CPU_SWAP, stages=(0, 1), tier="nvme"
        )
        host_run = simulate(job, host_plan, strict=False, gpu_capacity_override=cap)
        nvme_run = simulate(job, nvme_plan, strict=False, gpu_capacity_override=cap)
        assert nvme_run.minibatch_time >= host_run.minibatch_time


class TestD2DSwap:
    def test_moves_bytes_to_importers(self):
        job = tiny_job(microbatch_size=8, microbatches_per_minibatch=6)
        cap = 32 * MiB
        base = simulate(job, strict=False, gpu_capacity_override=cap)
        plan = _plan_with(job, TensorKind.ACTIVATION, Action.D2D_SWAP, stages=(0,))
        result = simulate(job, plan, strict=False, gpu_capacity_override=cap)
        assert result.memory.gpu(0).peak < base.memory.gpu(0).peak
        importer_peaks = [
            result.memory.gpu(d).peak - base.memory.gpu(d).peak
            for d in range(1, 4)
        ]
        assert any(delta > 0 for delta in importer_peaks)

    def test_d2d_faster_than_cpu_swap(self):
        # NVLink aggregate bandwidth beats PCIe (the Figure 4 point).
        job = tiny_job(microbatch_size=8, microbatches_per_minibatch=6)
        cap = 32 * MiB
        cpu = simulate(
            job,
            _plan_with(job, TensorKind.ACTIVATION, Action.CPU_SWAP, stages=(0, 1)),
            strict=False,
            gpu_capacity_override=cap,
        )
        d2d = simulate(
            job,
            _plan_with(job, TensorKind.ACTIVATION, Action.D2D_SWAP, stages=(0, 1)),
            strict=False,
            gpu_capacity_override=cap,
        )
        assert d2d.minibatch_time <= cpu.minibatch_time

    def test_optimizer_d2d_round_trips(self):
        job = tiny_job()
        plan = _plan_with(job, TensorKind.OPTIMIZER_STATE, Action.D2D_SWAP, stages=(0,))
        result = simulate(job, plan, strict=False)
        assert result.ok
        # Parked on importers between steps; home GPU ends clean.
        cls = next(
            c for c in _classes(job)
            if c.kind is TensorKind.OPTIMIZER_STATE and c.stage == 0
        )
        assert result.memory.gpu(0).usage_by_tag().get(str(cls.key)) is None


class TestOptimizerCpuSwap:
    def test_chunked_swap_bounds_gpu_residency(self):
        job = tiny_job()
        plan = _plan_with(job, TensorKind.OPTIMIZER_STATE, Action.CPU_SWAP, stages=(0,))
        cls = next(
            c for c in _classes(job)
            if c.kind is TensorKind.OPTIMIZER_STATE and c.stage == 0
        )
        chunk = max(1, cls.size // 4)
        executor = PipelineExecutor(
            job, plan, ExecOptions(strict=False, opt_swap_chunk=chunk)
        )
        result = executor.run()
        assert result.ok
        base = simulate(job, strict=False)
        # Transient optimizer residency stays below the full blob.
        assert result.memory.gpu(0).peak < base.memory.gpu(0).peak

    def test_host_holds_optimizer_statically(self):
        job = tiny_job()
        plan = _plan_with(job, TensorKind.OPTIMIZER_STATE, Action.CPU_SWAP, stages=(0,))
        result = simulate(job, plan, strict=False)
        cls = next(
            c for c in _classes(job)
            if c.kind is TensorKind.OPTIMIZER_STATE and c.stage == 0
        )
        assert result.memory.host.peak >= cls.size


class TestStashOps:
    def test_pipedream_stash_swap(self):
        job = tiny_job(system="pipedream", precision="fp32",
                       microbatches_per_minibatch=1, n_minibatches=8)
        base = simulate(job, strict=False)
        plan = _plan_with(job, TensorKind.STASHED_PARAMS, Action.CPU_SWAP, stages=(0,))
        result = simulate(job, plan, strict=False)
        assert result.ok
        assert result.memory.gpu(0).peak <= base.memory.gpu(0).peak


class TestOptimizerNvmeTier:
    def test_opt_nvme_swap_round_trips(self):
        job = tiny_job()
        plan = _plan_with(
            job, TensorKind.OPTIMIZER_STATE, Action.CPU_SWAP, stages=(0,),
            tier="nvme",
        )
        result = simulate(job, plan, strict=False)
        assert result.ok
        # NVMe-tier optimizer state never claims permanent host bytes.
        cls = next(
            c for c in _classes(job)
            if c.kind is TensorKind.OPTIMIZER_STATE and c.stage == 0
        )
        assert result.memory.host.peak < cls.size

    def test_opt_nvme_slower_than_host_tier(self):
        job = tiny_job(n_minibatches=4)
        host = simulate(
            job,
            _plan_with(job, TensorKind.OPTIMIZER_STATE, Action.CPU_SWAP,
                       stages=(0, 1, 2, 3)),
            strict=False,
        )
        nvme = simulate(
            job,
            _plan_with(job, TensorKind.OPTIMIZER_STATE, Action.CPU_SWAP,
                       stages=(0, 1, 2, 3), tier="nvme"),
            strict=False,
        )
        assert nvme.minibatch_time >= host.minibatch_time


class TestPartialD2D:
    def test_partial_stripe_swaps_only_its_share(self):
        from repro.core.striping import build_stripe_plan

        job = tiny_job(microbatch_size=8, microbatches_per_minibatch=6)
        classes = _classes(job)
        cls = max(
            (c for c in classes
             if c.kind is TensorKind.ACTIVATION and c.stage == 0),
            key=lambda c: c.size,
        )
        half = cls.size // 2
        stripe = build_stripe_plan(
            job.server.topology, 0,
            {dev: 1 * GiB for dev in (1, 2, 3)}, half,
        )
        plan = empty_plan(job.n_stages)
        plan.assign(PlanEntry(cls=cls, action=Action.D2D_SWAP, stripe=stripe))
        cap = 32 * MiB
        result = simulate(job, plan, strict=False, gpu_capacity_override=cap)
        assert result.ok
        full_stripe = build_stripe_plan(
            job.server.topology, 0,
            {dev: 1 * GiB for dev in (1, 2, 3)}, cls.size,
        )
        full_plan = empty_plan(job.n_stages)
        full_plan.assign(
            PlanEntry(cls=cls, action=Action.D2D_SWAP, stripe=full_stripe)
        )
        full = simulate(job, full_plan, strict=False, gpu_capacity_override=cap)
        # Partial parks fewer bytes on importers than the full swap.
        partial_imported = sum(
            result.memory.gpu(d).peak for d in (1, 2, 3)
        )
        full_imported = sum(full.memory.gpu(d).peak for d in (1, 2, 3))
        assert partial_imported < full_imported
        # And the books still balance.
        from repro.sim.audit import audit_simulation

        assert audit_simulation(result).ok
