"""Property-based tests for data striping invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.striping import build_stripe_plan, distribute_weighted
from repro.errors import PlanError
from repro.hardware.topology import dgx1_topology, dgx2_topology

import pytest

TOPO = dgx1_topology()
SWITCHED = dgx2_topology()

sizes = st.integers(min_value=1, max_value=10**10)
lane_maps = st.dictionaries(
    keys=st.integers(min_value=0, max_value=7),
    values=st.integers(min_value=0, max_value=3),
    min_size=1,
    max_size=8,
)


@given(size=sizes, lanes=lane_maps)
def test_distribute_weighted_conserves_bytes(size, lanes):
    if not any(v > 0 for v in lanes.values()):
        with pytest.raises(PlanError):
            distribute_weighted(size, lanes)
        return
    shares = distribute_weighted(size, lanes)
    assert sum(shares.values()) == size
    assert all(share > 0 for share in shares.values())
    assert set(shares) <= {imp for imp, v in lanes.items() if v > 0}


@given(size=sizes)
def test_distribute_respects_lane_ordering(size):
    shares = distribute_weighted(size, {1: 1, 2: 2, 3: 3})
    # More lanes never means fewer bytes.
    got = [shares.get(imp, 0) for imp in (1, 2, 3)]
    assert got == sorted(got)


@given(
    size=st.integers(min_value=1024, max_value=10**9),
    exporter=st.integers(min_value=0, max_value=7),
    budget_scale=st.floats(min_value=1.0, max_value=4.0),
)
@settings(max_examples=60)
def test_stripe_plan_invariants_direct_topology(size, exporter, budget_scale):
    budgets = {
        dev: int(size * budget_scale)
        for dev in range(8)
        if dev != exporter and TOPO.lanes(exporter, dev) > 0
    }
    plan = build_stripe_plan(TOPO, exporter, budgets, size)
    # Conservation.
    assert sum(b.size for b in plan.blocks) == size
    # Budgets respected per importer.
    for importer in plan.importers:
        assert plan.bytes_to(importer) <= budgets[importer]
    # Lanes actually exist.
    for block in plan.blocks:
        assert TOPO.lanes(exporter, block.importer) > 0
    # No self-import.
    assert exporter not in plan.importers


@given(size=st.integers(min_value=1024, max_value=10**9))
@settings(max_examples=30)
def test_striping_never_slower_than_single_importer(size):
    all_budgets = {dev: size * 2 for dev in (1, 2, 3, 4)}
    wide = build_stripe_plan(TOPO, 0, all_budgets, size)
    narrow = build_stripe_plan(TOPO, 0, {1: size * 2}, size)
    assert wide.one_way_time(TOPO) <= narrow.one_way_time(TOPO) + 1e-9


@given(
    size=st.integers(min_value=1024, max_value=10**9),
    n_importers=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=30)
def test_stripe_plan_invariants_switched_topology(size, n_importers):
    importers = list(range(1, 1 + n_importers))
    budgets = {dev: size for dev in importers}
    plan = build_stripe_plan(SWITCHED, 0, budgets, size)
    assert sum(b.size for b in plan.blocks) == size
    for block in plan.blocks:
        assert block.lane[0] == "egress" and block.lane[1] == 0
        assert block.return_lane[1] == block.importer
