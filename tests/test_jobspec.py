"""JSON job spec tests."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.jobspec import job_from_spec, job_to_spec, load_job


class TestJobFromSpec:
    def test_minimal_spec(self):
        job = job_from_spec({"model": "bert-0.35", "server": "dgx1"})
        assert job.model.config.name == "Bert-0.35B"
        assert job.system == "pipedream"  # defaulted from the family

    def test_gpt_defaults_to_dapple(self):
        job = job_from_spec({"model": "gpt-5.3", "server": "dgx1"})
        assert job.system == "dapple"

    def test_full_spec(self):
        job = job_from_spec({
            "model": "gpt-5.3",
            "server": "dgx2",
            "pipeline": "gpipe",
            "microbatch_size": 4,
            "microbatches_per_minibatch": 8,
            "n_minibatches": 3,
            "mfu": 0.4,
        })
        assert job.system == "gpipe"
        assert job.microbatch_size == 4
        assert job.microbatches_per_minibatch == 8
        assert job.n_minibatches == 3
        assert job.mfu == 0.4

    def test_missing_required_key(self):
        with pytest.raises(ConfigurationError, match="model"):
            job_from_spec({"server": "dgx1"})

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            job_from_spec({"model": "bert-0.35", "server": "dgx1", "gpu": 8})

    def test_unknown_pipeline_rejected(self):
        with pytest.raises(ConfigurationError):
            job_from_spec({"model": "bert-0.35", "server": "dgx1",
                           "pipeline": "megatron"})


class TestFileLoading:
    def test_load_job(self, tmp_path):
        path = tmp_path / "job.json"
        path.write_text(json.dumps({"model": "bert-0.35", "server": "dgx1"}))
        job = load_job(str(path))
        assert job.model.config.name == "Bert-0.35B"

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="invalid JSON"):
            load_job(str(path))

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ConfigurationError, match="object"):
            load_job(str(path))


class TestRoundTrip:
    def test_spec_to_job_to_spec(self):
        spec = {
            "model": "gpt-5.3",
            "server": "dgx1",
            "pipeline": "dapple",
            "microbatch_size": 2,
            "microbatches_per_minibatch": 16,
            "n_minibatches": 2,
        }
        job = job_from_spec(spec)
        back = job_to_spec(job, "gpt-5.3", "dgx1")
        rebuilt = job_from_spec(back)
        assert rebuilt.schedule.mode == job.schedule.mode
        assert rebuilt.samples_per_minibatch == job.samples_per_minibatch

    def test_cli_spec_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "job.json"
        path.write_text(json.dumps({"model": "bert-0.35", "server": "dgx1"}))
        assert main(["profile", "--spec", str(path)]) == 0
        assert "Bert-0.35B" in capsys.readouterr().out


class TestInferenceSpecs:
    def test_inference_spec_builds_a_serving_task(self):
        from repro.jobspec import task_from_spec

        task = task_from_spec({
            "model": "gpt-5.3", "server": "dgx1",
            "workload": "inference",
            "inference": {"n_requests": 8, "kv_swap": "pcie"},
        })
        assert task.inference is not None
        assert task.inference.n_requests == 8
        assert task.inference.kv_swap == "pcie"
        assert task.label == "serving/gpt-5.3/dgx1/kv=pcie"

    def test_workload_defaults_to_training(self):
        from repro.jobspec import inference_config_from_spec

        assert inference_config_from_spec(
            {"model": "gpt-5.3", "server": "dgx1"}) is None

    def test_trace_lists_become_tuples(self):
        from repro.jobspec import inference_config_from_spec

        config = inference_config_from_spec({
            "model": "gpt-5.3", "server": "dgx1",
            "workload": "inference",
            "inference": {"arrival": "trace",
                          "trace": [[0.0, 32, 8], [0.5, 16, 4]]},
        })
        assert config.trace == ((0.0, 32, 8), (0.5, 16, 4))

    @pytest.mark.parametrize("extra,match", [
        ({"workload": "batch"}, "unknown workload"),
        ({"inference": {"n_requests": 4}}, "workload"),
        ({"workload": "inference", "nodes": 2}, "cluster key"),
        ({"workload": "inference", "tp": 2}, "cluster key"),
        ({"workload": "inference", "shape": "auto"}, "training-shape"),
        ({"workload": "inference", "inference": {"bogus": 1}},
         "unknown inference keys"),
        ({"workload": "inference", "inference": [1]}, "JSON object"),
        ({"workload": "inference", "faults_seed": 1}, "fault injection"),
        ({"workload": "inference", "hybrid_dp": 2}, "hybrid_dp"),
    ])
    def test_contradictory_specs_rejected(self, extra, match):
        from repro.jobspec import task_from_spec

        spec = {"model": "gpt-5.3", "server": "dgx1"}
        spec.update(extra)
        with pytest.raises(ConfigurationError, match=match):
            task_from_spec(spec)

    def test_inference_spec_executes(self):
        from repro.jobspec import task_from_spec
        from repro.runtime.task import execute_task

        record = execute_task(task_from_spec({
            "model": "gpt-5.3", "server": "dgx1",
            "workload": "inference",
            "inference": {"n_requests": 4},
        }))
        assert record["ok"]
        assert record["inference"]["n_requests"] == 4
