"""Rewriter tests (Fig. 5 step 4)."""

import pytest

from repro.core.plan import Action
from repro.core.rewriter import Rewriter
from repro.errors import PlanError
from repro.graph.tensor import TensorKind, tensor_classes_for

from tests.conftest import tiny_job


@pytest.fixture
def setup():
    from tests.conftest import tiny_model

    job = tiny_job(model=tiny_model(n_layers=14))
    classes = tensor_classes_for(
        job.stage_plan, job.schedule, job.microbatch_size, job.bytes_per_element
    )
    return job, classes, Rewriter(job, classes)


def _acts(classes, stage):
    return sorted(
        (c for c in classes if c.kind is TensorKind.ACTIVATION and c.stage == stage),
        key=lambda c: c.layer,
    )


class TestInstrument:
    def test_builds_validated_plan(self, setup):
        job, classes, rewriter = setup
        target = _acts(classes, 0)[0]
        assignments = {target.key: (Action.RECOMPUTE, None)}
        program = rewriter.instrument(assignments, list(range(job.n_stages)))
        assert program.plan.action_for(target) is Action.RECOMPUTE
        assert program.program.n_stages == job.n_stages

    def test_none_assignments_skipped(self, setup):
        job, classes, rewriter = setup
        target = _acts(classes, 0)[0]
        assignments = {target.key: (Action.NONE, None)}
        program = rewriter.instrument(assignments, list(range(job.n_stages)))
        assert not program.plan.entries

    def test_unknown_key_rejected(self, setup):
        job, _, rewriter = setup
        with pytest.raises(PlanError):
            rewriter.instrument(
                {("activation", 9, 9): (Action.RECOMPUTE, None)},
                list(range(job.n_stages)),
            )

    def test_nvme_keys_set_tier(self, setup):
        job, classes, rewriter = setup
        target = _acts(classes, 0)[0]
        assignments = {target.key: (Action.CPU_SWAP, None)}
        program = rewriter.instrument(
            assignments, list(range(job.n_stages)), nvme_keys={target.key}
        )
        assert program.plan.entry_for(target).tier == "nvme"

    def test_actions_by_stage_report(self, setup):
        job, classes, rewriter = setup
        acts = _acts(classes, 1)
        assignments = {acts[0].key: (Action.RECOMPUTE, None)}
        program = rewriter.instrument(assignments, list(range(job.n_stages)))
        table = program.actions_by_stage()
        assert table[1]["recompute"] == [acts[0].layer]


class TestConsolidateRecompute:
    def test_fills_single_layer_gaps(self, setup):
        _, classes, rewriter = setup
        acts = _acts(classes, 0)
        assert len(acts) >= 3
        assignments = {
            acts[0].key: (Action.RECOMPUTE, None),
            acts[2].key: (Action.RECOMPUTE, None),
        }
        result = rewriter.consolidate_recompute(assignments)
        assert result[acts[1].key][0] is Action.RECOMPUTE

    def test_does_not_override_other_actions(self, setup):
        _, classes, rewriter = setup
        acts = _acts(classes, 0)
        assignments = {
            acts[0].key: (Action.RECOMPUTE, None),
            acts[1].key: (Action.CPU_SWAP, None),
            acts[2].key: (Action.RECOMPUTE, None),
        }
        result = rewriter.consolidate_recompute(assignments)
        assert result[acts[1].key][0] is Action.CPU_SWAP

    def test_noop_without_gaps(self, setup):
        _, classes, rewriter = setup
        acts = _acts(classes, 0)
        assignments = {acts[0].key: (Action.RECOMPUTE, None)}
        assert rewriter.consolidate_recompute(assignments) == assignments
