"""Golden-trace regression suite.

Each golden pins the *complete* record of one canonical DGX-scale
configuration — metrics at full float precision, the memory-saving
plan payload, and the SHA-256 digest of the chrome-trace lowering —
so any semantic drift in the partitioner, planner, engine, fault
injector, or trace writer fails loudly here before it silently
shifts a paper figure.

The configs span DGX-1/DGX-2 x PipeDream/DAPPLE x with/without
faults, sized so the whole suite re-simulates in a few seconds.

Refresh after an *intentional* semantic change with::

    pytest tests/test_goldens.py --update-goldens

and review the diff like any other code change.  Bump
``repro.runtime.task.RUNTIME_CACHE_SALT`` in the same commit so
stale cache entries are invalidated too (docs/runtime.md).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.faults.spec import random_schedule
from repro.hardware.server import dgx1_server, dgx2_server
from repro.job import dapple_job, pipedream_job
from repro.models import bert_variant, gpt_variant
from repro.runtime.task import SimTask, execute_task

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")

_SERVERS = {"dgx1": dgx1_server, "dgx2": dgx2_server}
_BUILDERS = {"pipedream": pipedream_job, "dapple": dapple_job}
_MODELS = {"bert": bert_variant, "gpt": gpt_variant}

# name -> (family, billions, server, pipeline, system, n_minibatches,
#          fault seed or None, fault horizon)
GOLDENS = {
    "dgx1-pipedream-bert064-recomp": ("bert", 0.64, "dgx1", "pipedream",
                                      "recomputation", 6, None, 0.0),
    "dgx1-pipedream-bert064-recomp-faults": ("bert", 0.64, "dgx1",
                                             "pipedream", "recomputation",
                                             6, 7, 1.0),
    "dgx1-dapple-gpt53-recomp": ("gpt", 5.3, "dgx1", "dapple",
                                 "recomputation", 2, None, 0.0),
    "dgx2-dapple-gpt53-recomp": ("gpt", 5.3, "dgx2", "dapple",
                                 "recomputation", 2, None, 0.0),
    "dgx2-dapple-gpt53-recomp-faults": ("gpt", 5.3, "dgx2", "dapple",
                                        "recomputation", 2, 11, 2.0),
    "dgx2-pipedream-bert064-recomp-faults": ("bert", 0.64, "dgx2",
                                             "pipedream", "recomputation",
                                             6, 3, 1.0),
    "dgx1-pipedream-bert035-none": ("bert", 0.35, "dgx1", "pipedream",
                                    "none", 6, None, 0.0),
}


def golden_task(name: str) -> SimTask:
    family, billions, server_name, pipeline, system, nmb, seed, horizon = \
        GOLDENS[name]
    server = _SERVERS[server_name]()
    job = _BUILDERS[pipeline](_MODELS[family](billions), server,
                              n_minibatches=nmb)
    faults = None
    if seed is not None:
        faults = random_schedule(seed=seed, n_devices=server.n_gpus,
                                 horizon=horizon)
    return SimTask(label=f"golden/{name}", job=job, system=system,
                   faults=faults)


# name -> (family, billions, server, pipeline, system, n_minibatches, dp)
HYBRID_GOLDENS = {
    "dgx1-pipedream-bert035-recomp-dp2": ("bert", 0.35, "dgx1", "pipedream",
                                          "recomputation", 6, 2),
    "dgx2-dapple-gpt53-recomp-dp2": ("gpt", 5.3, "dgx2", "dapple",
                                     "recomputation", 2, 2),
}


def hybrid_golden_task(name: str) -> SimTask:
    from repro.parallel.hybrid import HybridConfig

    family, billions, server_name, pipeline, system, nmb, dp = \
        HYBRID_GOLDENS[name]
    server = _SERVERS[server_name]()
    job = _BUILDERS[pipeline](_MODELS[family](billions), server,
                              n_minibatches=nmb)
    return SimTask(label=f"golden/{name}", job=job, system=system,
                   hybrid=HybridConfig(dp=dp))


# name -> (family, billions, n_servers, system, n_minibatches, tp, dp, pp)
CLUSTER_GOLDENS = {
    "2xdgx1-dapple-gpt53-mpress-tp2-dp2-pp2": ("gpt", 5.3, 2, "mpress",
                                               2, 2, 2, 2),
}


def cluster_golden_task(name: str) -> SimTask:
    from repro.hardware.cluster import dgx1_cluster
    from repro.parallel.cluster import ClusterConfig

    family, billions, n_servers, system, nmb, tp, dp, pp = \
        CLUSTER_GOLDENS[name]
    cluster = dgx1_cluster(n_servers)
    job = dapple_job(_MODELS[family](billions), cluster.servers[0],
                     n_minibatches=nmb)
    return SimTask(label=f"golden/{name}", job=job, system=system,
                   cluster=cluster,
                   cluster_config=ClusterConfig(tp=tp, dp=dp, pp=pp))


# name -> (family, billions, server, kv_swap)
INFERENCE_GOLDENS = {
    "dgx1-serving-gpt53-d2d": ("gpt", 5.3, "dgx1", "d2d"),
}


def inference_golden_task(name: str) -> SimTask:
    from repro.inference import InferenceConfig

    family, billions, server_name, kv_swap = INFERENCE_GOLDENS[name]
    server = _SERVERS[server_name]()
    job = dapple_job(_MODELS[family](billions), server)
    # Tight KV pool so the golden pins the swap path, not just batching.
    return SimTask(label=f"golden/{name}", job=job, system="mpress",
                   inference=InferenceConfig(
                       seed=3, n_requests=10, arrival_rate=32.0,
                       prompt_mean=128, prompt_max=256,
                       output_mean=24, output_max=64,
                       max_batch=6, kv_swap=kv_swap, kv_pool_mib=199))


def golden_path(name: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{name}.json")


@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_golden(name, update_goldens):
    record = execute_task(golden_task(name))
    assert record["ok"], f"golden config {name} must simulate cleanly"
    path = golden_path(name)
    if update_goldens:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w") as handle:
            json.dump({"name": name, "record": record}, handle,
                      indent=2, sort_keys=True)
            handle.write("\n")
        return
    assert os.path.exists(path), (
        f"missing golden {path}; run pytest --update-goldens"
    )
    with open(path) as handle:
        golden = json.load(handle)
    assert record == golden["record"], (
        f"golden {name} drifted; if the semantic change is intentional, "
        f"refresh with --update-goldens and bump RUNTIME_CACHE_SALT"
    )


@pytest.mark.parametrize("name", sorted(HYBRID_GOLDENS))
def test_hybrid_golden(name, update_goldens):
    """Hybrid DP x PP records pin placement, bucketing, and the
    per-stage all-reduce schedule alongside the usual metrics."""
    record = execute_task(hybrid_golden_task(name))
    assert record["ok"], f"hybrid golden {name} must simulate cleanly"
    assert record["hybrid"]["dp"] == HYBRID_GOLDENS[name][6]
    path = golden_path(name)
    if update_goldens:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w") as handle:
            json.dump({"name": name, "record": record}, handle,
                      indent=2, sort_keys=True)
            handle.write("\n")
        return
    assert os.path.exists(path), (
        f"missing golden {path}; run pytest --update-goldens"
    )
    with open(path) as handle:
        golden = json.load(handle)
    assert record == golden["record"], (
        f"golden {name} drifted; if the semantic change is intentional, "
        f"refresh with --update-goldens and bump RUNTIME_CACHE_SALT"
    )


@pytest.mark.parametrize("name", sorted(CLUSTER_GOLDENS))
def test_cluster_golden(name, update_goldens):
    """Cluster TP x DP x PP records pin the placement, both sync
    planes, and every chain's trace digest."""
    record = execute_task(cluster_golden_task(name))
    assert record["ok"], f"cluster golden {name} must simulate cleanly"
    assert record["cluster"]["tp"] == CLUSTER_GOLDENS[name][5]
    path = golden_path(name)
    if update_goldens:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w") as handle:
            json.dump({"name": name, "record": record}, handle,
                      indent=2, sort_keys=True)
            handle.write("\n")
        return
    assert os.path.exists(path), (
        f"missing golden {path}; run pytest --update-goldens"
    )
    with open(path) as handle:
        golden = json.load(handle)
    assert record == golden["record"], (
        f"golden {name} drifted; if the semantic change is intentional, "
        f"refresh with --update-goldens and bump RUNTIME_CACHE_SALT"
    )


@pytest.mark.parametrize("name", sorted(INFERENCE_GOLDENS))
def test_inference_golden(name, update_goldens):
    """Serving records pin TTFT/TPOT percentiles, spill volume, and the
    trace digest of the lowered continuous-batching program."""
    record = execute_task(inference_golden_task(name))
    assert record["ok"], f"inference golden {name} must simulate cleanly"
    assert record["inference"]["kv_swap"] == INFERENCE_GOLDENS[name][3]
    assert record["inference"]["swapped_bytes"] > 0
    path = golden_path(name)
    if update_goldens:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w") as handle:
            json.dump({"name": name, "record": record}, handle,
                      indent=2, sort_keys=True)
            handle.write("\n")
        return
    assert os.path.exists(path), (
        f"missing golden {path}; run pytest --update-goldens"
    )
    with open(path) as handle:
        golden = json.load(handle)
    assert record == golden["record"], (
        f"golden {name} drifted; if the semantic change is intentional, "
        f"refresh with --update-goldens and bump RUNTIME_CACHE_SALT"
    )


def test_resimulation_is_bit_identical():
    """Two executions of the same task agree to the last byte."""
    task = golden_task("dgx1-pipedream-bert064-recomp-faults")
    first = execute_task(task)
    second = execute_task(task)
    assert json.dumps(first, sort_keys=True) == json.dumps(second,
                                                           sort_keys=True)
    assert first["trace_digest"] == second["trace_digest"]


def test_goldens_cover_the_matrix():
    """The suite spans both servers, both pipelines, and fault states."""
    rows = GOLDENS.values()
    assert {row[2] for row in rows} == {"dgx1", "dgx2"}
    assert {row[3] for row in rows} == {"pipedream", "dapple"}
    assert any(row[6] is not None for row in rows)
    assert any(row[6] is None for row in rows)
