"""Chrome trace export tests."""

import json

from repro.sim.chrome_trace import save_chrome_trace, trace_to_chrome, trace_to_events
from repro.sim.executor import simulate
from repro.sim.trace import Trace, TraceEvent

from tests.conftest import tiny_job


def _trace():
    trace = Trace()
    trace.record(TraceEvent("f0", "fwd", 0, 0, 0.0, 0.5, layer=1))
    trace.record(TraceEvent("b0", "bwd", 0, 0, 0.5, 1.5, layer=1))
    trace.record(TraceEvent("x", "swap_out", 1, 0, 0.2, 0.9))
    return trace


def test_events_carry_complete_phase_and_microseconds():
    events = trace_to_events(_trace())
    assert all(e["ph"] == "X" for e in events)
    fwd = next(e for e in events if e["cat"] == "fwd")
    assert fwd["ts"] == 0.0
    assert fwd["dur"] == 0.5 * 1e6
    assert fwd["args"]["layer"] == 1


def test_kinds_map_to_threads():
    events = trace_to_events(_trace())
    by_cat = {e["cat"]: e["tid"] for e in events}
    assert by_cat["fwd"] == "compute"
    assert by_cat["swap_out"] == "swap"


def test_document_includes_process_names():
    doc = trace_to_chrome(_trace(), device_names={0: "gpu-A"})
    metas = [e for e in doc["traceEvents"] if e.get("ph") == "M"]
    names = {m["pid"]: m["args"]["name"] for m in metas}
    assert names[0] == "gpu-A"
    assert names[1] == "gpu1"


def test_real_simulation_exports_valid_json(tmp_path):
    result = simulate(tiny_job(), strict=False)
    path = str(tmp_path / "trace.json")
    save_chrome_trace(result.trace, path)
    with open(path) as handle:
        doc = json.load(handle)
    assert len(doc["traceEvents"]) > 50
    # All compute events fit within the makespan.
    compute = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    assert max(e["ts"] + e["dur"] for e in compute) <= result.makespan * 1e6 * 1.001
