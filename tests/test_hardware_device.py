"""GPU/host/NVMe specification tests."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.device import A100, FAST_NVME, GPUSpec, HostSpec, NVMeSpec, SLOW_NVME, V100
from repro.units import GiB, TFLOP


def test_v100_matches_paper_hardware():
    assert V100.memory_bytes == 32 * GiB
    assert V100.peak_fp32 == pytest.approx(15.7 * TFLOP)
    assert V100.peak_fp16 == pytest.approx(125 * TFLOP)


def test_a100_matches_paper_hardware():
    assert A100.memory_bytes == 40 * GiB
    assert A100.peak_fp16 > 2 * V100.peak_fp16


def test_peak_flops_lookup():
    assert V100.peak_flops("fp32") == V100.peak_fp32
    assert V100.peak_flops("fp16") == V100.peak_fp16
    with pytest.raises(ConfigurationError):
        V100.peak_flops("int8")


def test_gpu_validation_rejects_nonpositive_memory():
    with pytest.raises(ConfigurationError):
        GPUSpec(name="bad", memory_bytes=0, peak_fp32=1.0, peak_fp16=1.0)


def test_gpu_validation_rejects_nonpositive_flops():
    with pytest.raises(ConfigurationError):
        GPUSpec(name="bad", memory_bytes=1, peak_fp32=0.0, peak_fp16=1.0)


def test_host_validation():
    with pytest.raises(ConfigurationError):
        HostSpec(memory_bytes=-1)


def test_nvme_validation():
    with pytest.raises(ConfigurationError):
        NVMeSpec(capacity_bytes=1, read_bandwidth=0, write_bandwidth=1)


def test_slow_nvme_is_slower_than_fast():
    # The rented DGX-2's SSDs bottleneck ZeRO-Infinity (Fig. 8b).
    assert SLOW_NVME.read_bandwidth < FAST_NVME.read_bandwidth
    assert SLOW_NVME.write_bandwidth < FAST_NVME.write_bandwidth
