"""Sweep runtime: ordering, parallel determinism, caching, crash retry."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.runtime import (
    ResultCache,
    RuntimeConfig,
    SimTask,
    SweepRuntime,
    run_tasks,
)
from repro.runtime import task as task_module
from tests.conftest import tiny_job, tiny_model

_PARENT_PID = os.getpid()


def _tiny_tasks(n_systems: int = 3):
    job = tiny_job()
    small = tiny_job(model=tiny_model(n_layers=4, hidden=128),
                     system="pipedream")
    systems = ("none", "recomputation", "gpu-cpu-swap")[:n_systems]
    tasks = [SimTask(label=f"tiny/{system}", job=job, system=system)
             for system in systems]
    tasks.append(SimTask(label="tiny-pd/none", job=small, system="none"))
    return tasks


def _dump(records):
    return json.dumps(records, sort_keys=True)


def test_results_come_back_in_submission_order():
    tasks = _tiny_tasks()
    report = run_tasks(tasks)
    assert [o.task.label for o in report.outcomes] == [t.label for t in tasks]
    assert [r["label"] for r in report.records()] == [t.label for t in tasks]


def test_parallel_and_serial_sweeps_are_byte_identical():
    tasks = _tiny_tasks()
    serial = SweepRuntime(RuntimeConfig(jobs=1)).run(tasks)
    parallel = SweepRuntime(RuntimeConfig(jobs=4)).run(tasks)
    assert serial.failed == 0 and parallel.failed == 0
    for left, right in zip(serial.records(), parallel.records()):
        assert _dump(left) == _dump(right)


def test_cache_round_trip_skips_execution(tmp_path):
    tasks = _tiny_tasks(n_systems=2)
    cache = ResultCache(str(tmp_path))
    first = SweepRuntime(RuntimeConfig(jobs=1, cache=cache)).run(tasks)
    assert first.executed == len(tasks) and first.cached == 0
    second = SweepRuntime(RuntimeConfig(jobs=1, cache=cache)).run(tasks)
    assert second.executed == 0 and second.cached == len(tasks)
    assert _dump(first.records()) == _dump(second.records())


def test_parallel_rerun_hits_serial_cache(tmp_path):
    tasks = _tiny_tasks(n_systems=2)
    cache = ResultCache(str(tmp_path))
    SweepRuntime(RuntimeConfig(jobs=1, cache=cache)).run(tasks)
    rerun = SweepRuntime(RuntimeConfig(jobs=4, cache=cache)).run(tasks)
    assert rerun.cached == len(tasks) and rerun.executed == 0


def test_cache_hit_reports_callers_label(tmp_path):
    cache = ResultCache(str(tmp_path))
    job = tiny_job()
    original = SimTask(label="first-name", job=job, system="none")
    SweepRuntime(RuntimeConfig(cache=cache)).run([original])
    renamed = SimTask(label="second-name", job=job, system="none")
    report = SweepRuntime(RuntimeConfig(cache=cache)).run([renamed])
    assert report.cached == 1
    assert report.records()[0]["label"] == "second-name"


def test_progress_events_cover_every_task():
    tasks = _tiny_tasks(n_systems=2)
    events = []
    runtime = SweepRuntime(RuntimeConfig(progress=events.append))
    runtime.run(tasks)
    assert [e.done for e in events] == list(range(1, len(tasks) + 1))
    assert all(e.total == len(tasks) for e in events)
    assert all(e.ok for e in events)
    assert "[1/" in events[0].line()


def test_config_validation():
    with pytest.raises(ConfigurationError):
        RuntimeConfig(jobs=0)
    with pytest.raises(ConfigurationError):
        RuntimeConfig(retries=-1)


def test_report_summary_counts():
    report = run_tasks(_tiny_tasks(n_systems=1))
    text = report.summary()
    assert "tasks=2" in text and "failed=0" in text


# -- crash/retry semantics ---------------------------------------------------
#
# ``_poisoned_execute`` replaces the pool's ``execute_task`` reference.
# With the fork start method, workers inherit both this module and the
# monkeypatch, so a task labelled ``bad/*`` kills its worker with
# ``os._exit`` (unhandleable, like a segfault), while the same task in
# the parent's inline fallback raises an ordinary exception instead —
# never taking pytest down.


def _poisoned_execute(task):
    if task.label.startswith("bad/"):
        if os.getpid() != _PARENT_PID:
            os._exit(17)
        raise RuntimeError("poisoned config")
    return task_module.execute_task(task)


def test_inline_failure_is_recorded_not_raised(monkeypatch):
    monkeypatch.setattr("repro.runtime.pool.execute_task",
                        _poisoned_execute)
    bad = SimTask(label="bad/only", job=tiny_job(), system="none")
    report = SweepRuntime(RuntimeConfig(jobs=1, retries=1)).run([bad])
    outcome = report.outcomes[0]
    assert not outcome.ok
    assert outcome.record is None
    assert "RuntimeError" in outcome.error
    assert outcome.attempts == 2          # retries + 1
    assert report.failed == 1


def test_worker_crash_is_excluded_and_survivors_finish(monkeypatch):
    monkeypatch.setattr("repro.runtime.pool.execute_task",
                        _poisoned_execute)
    job = tiny_job()
    tasks = [
        SimTask(label="tiny/none", job=job, system="none"),
        SimTask(label="bad/crasher", job=job, system="none"),
        SimTask(label="tiny/recomputation", job=job,
                system="recomputation"),
    ]
    report = SweepRuntime(RuntimeConfig(jobs=2, retries=1)).run(tasks)
    by_label = {o.task.label: o for o in report.outcomes}
    crashed = by_label["bad/crasher"]
    assert not crashed.ok
    assert crashed.source == "inline"     # excluded from the pool
    assert "RuntimeError" in crashed.error
    assert by_label["tiny/none"].ok
    assert by_label["tiny/recomputation"].ok
    assert report.failed == 1
    assert report.pool_generations >= 2   # the broken pool was rebuilt
    # Submission order is preserved even through crash recovery.
    assert [o.task.label for o in report.outcomes] == [t.label for t in tasks]


def test_worker_exception_retries_then_records(monkeypatch):
    # An ordinary exception in a worker (pool stays healthy) is also
    # retried and ultimately recorded, not raised.
    def _raise(task):
        raise ValueError("boom")

    monkeypatch.setattr("repro.runtime.pool.execute_task", _raise)
    bad = SimTask(label="tiny/none", job=tiny_job(), system="none")
    report = SweepRuntime(RuntimeConfig(jobs=2, retries=1)).run([bad])
    outcome = report.outcomes[0]
    assert not outcome.ok
    assert report.failed == 1
