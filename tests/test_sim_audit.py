"""Audit module tests: clean runs pass, corrupted traces are caught."""

from repro.core.plan import Action, PlanEntry, empty_plan
from repro.graph.tensor import TensorKind, tensor_classes_for
from repro.sim.audit import audit_simulation
from repro.sim.executor import simulate
from repro.sim.trace import TraceEvent

from tests.conftest import tiny_job


def test_clean_baseline_run_passes():
    result = simulate(tiny_job(), strict=False)
    report = audit_simulation(result)
    assert report.ok, report.violations


def test_clean_compacted_run_passes():
    job = tiny_job()
    plan = empty_plan(job.n_stages)
    classes = tensor_classes_for(
        job.stage_plan, job.schedule, job.microbatch_size, job.bytes_per_element
    )
    for cls in classes:
        if cls.kind is TensorKind.ACTIVATION and cls.stage in (0, 1):
            plan.assign(PlanEntry(cls=cls, action=Action.CPU_SWAP))
        elif cls.kind is TensorKind.OPTIMIZER_STATE and cls.stage == 0:
            plan.assign(PlanEntry(cls=cls, action=Action.CPU_SWAP))
    result = simulate(job, plan, strict=False)
    report = audit_simulation(result)
    assert report.ok, report.violations


def test_oom_run_is_flagged():
    from repro.units import MiB

    result = simulate(tiny_job(), strict=True, gpu_capacity_override=4 * MiB)
    report = audit_simulation(result)
    assert not report.ok


def test_missing_backward_detected():
    result = simulate(tiny_job(), strict=False)
    # Corrupt the trace: drop one backward event.
    victim = next(e for e in result.trace.events if e.kind == "bwd")
    result.trace.events.remove(victim)
    report = audit_simulation(result)
    assert any("unpaired" in v for v in report.violations)


def test_causality_violation_detected():
    result = simulate(tiny_job(), strict=False)
    fwd = next(e for e in result.trace.events if e.kind == "fwd")
    # Inject a backward that starts before its forward ended.
    result.trace.events.append(
        TraceEvent("bogus", "bwd", fwd.device, fwd.microbatch,
                   start=fwd.start - 1.0, end=fwd.start - 0.5, layer=fwd.layer)
    )
    report = audit_simulation(result)
    assert any("before forward" in v for v in report.violations)


def test_swap_imbalance_detected():
    result = simulate(tiny_job(), strict=False)
    result.trace.events.append(
        TraceEvent("lost", "swap_out", 0, 0, 0.0, 0.1)
    )
    report = audit_simulation(result)
    assert any("swap-outs" in v for v in report.violations)


def test_compute_overlap_detected():
    result = simulate(tiny_job(), strict=False)
    first = next(e for e in result.trace.events if e.kind == "fwd")
    result.trace.events.append(
        TraceEvent("overlap", "opt", first.device, -1,
                   start=first.start, end=first.end + 0.1)
    )
    report = audit_simulation(result)
    assert any("overlap" in v for v in report.violations)
