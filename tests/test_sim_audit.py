"""Audit module tests: clean runs pass, corrupted traces are caught."""

from repro.core.plan import Action, PlanEntry, empty_plan
from repro.graph.tensor import TensorKind, tensor_classes_for
from repro.sim.audit import audit_simulation
from repro.sim.executor import simulate
from repro.sim.trace import TraceEvent

from tests.conftest import tiny_job


def test_clean_baseline_run_passes():
    result = simulate(tiny_job(), strict=False)
    report = audit_simulation(result)
    assert report.ok, report.violations


def test_clean_compacted_run_passes():
    job = tiny_job()
    plan = empty_plan(job.n_stages)
    classes = tensor_classes_for(
        job.stage_plan, job.schedule, job.microbatch_size, job.bytes_per_element
    )
    for cls in classes:
        if cls.kind is TensorKind.ACTIVATION and cls.stage in (0, 1):
            plan.assign(PlanEntry(cls=cls, action=Action.CPU_SWAP))
        elif cls.kind is TensorKind.OPTIMIZER_STATE and cls.stage == 0:
            plan.assign(PlanEntry(cls=cls, action=Action.CPU_SWAP))
    result = simulate(job, plan, strict=False)
    report = audit_simulation(result)
    assert report.ok, report.violations


def test_oom_run_is_flagged():
    from repro.units import MiB

    result = simulate(tiny_job(), strict=True, gpu_capacity_override=4 * MiB)
    report = audit_simulation(result)
    assert not report.ok


def test_missing_backward_detected():
    result = simulate(tiny_job(), strict=False)
    # Corrupt the trace: drop one backward event.
    victim = next(e for e in result.trace.events if e.kind == "bwd")
    result.trace.events.remove(victim)
    report = audit_simulation(result)
    assert any("unpaired" in v for v in report.violations)


def test_causality_violation_detected():
    result = simulate(tiny_job(), strict=False)
    fwd = next(e for e in result.trace.events if e.kind == "fwd")
    # Inject a backward that starts before its forward ended.
    result.trace.events.append(
        TraceEvent("bogus", "bwd", fwd.device, fwd.microbatch,
                   start=fwd.start - 1.0, end=fwd.start - 0.5, layer=fwd.layer)
    )
    report = audit_simulation(result)
    assert any("before forward" in v for v in report.violations)


def test_swap_imbalance_detected():
    result = simulate(tiny_job(), strict=False)
    result.trace.events.append(
        TraceEvent("lost", "swap_out", 0, 0, 0.0, 0.1)
    )
    report = audit_simulation(result)
    assert any("swap-outs" in v for v in report.violations)


def test_compute_overlap_detected():
    result = simulate(tiny_job(), strict=False)
    first = next(e for e in result.trace.events if e.kind == "fwd")
    result.trace.events.append(
        TraceEvent("overlap", "opt", first.device, -1,
                   start=first.start, end=first.end + 0.1)
    )
    report = audit_simulation(result)
    assert any("overlap" in v for v in report.violations)


# -- fault-aware invariants ---------------------------------------------------


def _faulted_result():
    from repro.faults import FaultKind, FaultSchedule, FaultSpec

    job = tiny_job()
    base = simulate(job, strict=False)
    faults = FaultSchedule(faults=(
        FaultSpec(kind=FaultKind.DEVICE_SLOWDOWN, start=0.0,
                  duration=base.makespan, device=0, factor=0.5),
        FaultSpec(kind=FaultKind.DEVICE_FAIL, start=base.makespan * 0.5,
                  device=2, restart_latency=0.01),
    ))
    return simulate(job, strict=False, faults=faults)


def test_clean_faulted_run_passes():
    result = _faulted_result()
    assert result.resilience is not None and result.resilience.failures
    report = audit_simulation(result)
    assert report.ok, report.violations


def test_compute_inside_outage_detected():
    result = _faulted_result()
    failure = result.resilience.failures[0]
    midpoint = failure.time + failure.recovery_seconds / 2
    result.trace.events.append(
        TraceEvent("ghost.fwd", "fwd", failure.device, 0,
                   start=midpoint, end=failure.resume_time)
    )
    report = audit_simulation(result)
    assert any("outage" in v for v in report.violations)


def test_tampered_reload_bytes_detected():
    import dataclasses

    result = _faulted_result()
    failure = result.resilience.failures[0]
    result.resilience.failures[0] = dataclasses.replace(
        failure, reload_bytes=failure.reload_bytes + 4096
    )
    report = audit_simulation(result)
    assert any("reload" in v for v in report.violations)


def test_tampered_reload_seconds_detected():
    import dataclasses

    result = _faulted_result()
    failure = result.resilience.failures[0]
    result.resilience.failures[0] = dataclasses.replace(
        failure, reload_seconds=failure.reload_seconds * 2 + 1.0
    )
    report = audit_simulation(result)
    assert any("transfer model" in v for v in report.violations)
