"""Fast-path dispatch, tape compilation, and failure parity.

Unit coverage for :mod:`repro.sim.fastpath`: when the vectorized
tape interpreter is allowed to fire, how dispatch is counted, and
that the failure modes (single-use reuse, OOM attribution, deadlock
reporting) match the reference interpreter exactly.
"""

from __future__ import annotations


import pytest

from repro.core.mpress import MPress
from repro.errors import ScheduleError, SimulationError
from repro.faults.spec import random_schedule
from repro.sim.events import TraceRecorder
from repro.sim.fastpath import (
    FastInterpreter,
    ProgramTape,
    fast_path_runs,
    reference_runs,
    reset_run_counters,
    run_program,
    wants_fast_path,
)
from repro.sim.interpreter import Interpreter
from repro.sim.ir import (
    Barrier,
    ExecOptions,
    InstructionProgram,
)
from repro.sim.lowering import Lowering
from repro.sim.trace import Trace
from tests.conftest import small_server, tiny_job, tiny_model
from tests.test_fastpath_equivalence import result_fingerprint

MiB = 2**20


@pytest.fixture(scope="module")
def program():
    job = tiny_job()
    plan = MPress(job).build_plan()
    return Lowering(job, ExecOptions(strict=False, prefetch_lead=2)).lower(plan)


class TestDispatch:
    def test_unobserved_run_takes_fast_path(self, program):
        assert wants_fast_path(program)
        reset_run_counters()
        run_program(program)
        assert fast_path_runs() == 1
        assert reference_runs() == 0

    def test_external_subscriber_forces_reference(self, program):
        """Any bus subscriber makes the run observed: the reference
        interpreter must serve it (and produce the same bytes)."""
        recorder = TraceRecorder(Trace())
        assert not wants_fast_path(program, subscribers=(recorder,))
        reset_run_counters()
        observed = run_program(program, subscribers=(recorder,))
        assert reference_runs() == 1
        assert fast_path_runs() == 0
        # The external recorder saw the same event stream the
        # built-in one recorded.
        assert len(recorder.trace.events) == len(observed.trace.events)
        assert result_fingerprint(observed) == \
            result_fingerprint(run_program(program))

    def test_fault_schedule_forces_reference(self):
        job = tiny_job()
        faults = random_schedule(seed=5, n_devices=job.server.n_gpus,
                                 horizon=1.0)
        program = Lowering(
            job, ExecOptions(strict=False, prefetch_lead=2, faults=faults)
        ).lower(MPress(job).build_plan())
        assert not wants_fast_path(program)
        reset_run_counters()
        run_program(program)
        assert reference_runs() == 1

    def test_empty_fault_schedule_stays_fast(self):
        from repro.faults.spec import FaultSchedule

        job = tiny_job()
        faults = FaultSchedule()
        assert faults.is_empty
        program = Lowering(
            job, ExecOptions(strict=False, prefetch_lead=2, faults=faults)
        ).lower(MPress(job).build_plan())
        assert wants_fast_path(program)


class TestSingleUse:
    def test_reference_interpreter_rejects_reuse(self, program):
        interp = Interpreter(program)
        interp.run()
        with pytest.raises(SimulationError, match="single-use"):
            interp.run()

    def test_fast_interpreter_rejects_reuse(self, program):
        interp = FastInterpreter(program)
        interp.run()
        with pytest.raises(SimulationError, match="single-use"):
            interp.run()

    def test_mark_consumed_reserves_interpreter(self, program):
        interp = FastInterpreter(program)
        interp.mark_consumed()
        with pytest.raises(SimulationError, match="single-use"):
            interp.run()
        with pytest.raises(SimulationError, match="single-use"):
            interp.mark_consumed()


class TestTape:
    def test_tape_shapes(self, program):
        tape = ProgramTape(program)
        n = len(program.instructions)
        assert tape.n == n
        assert sum(len(m) for m in tape.members) == n
        assert sum(tape.dep_count) == len(program.edges)
        assert len(tape.stream_keys) == len(program.stream_order)

    def test_durations_are_plain_floats(self, program):
        """np.float64 must not leak into results — records go through
        json.dumps, which rejects numpy scalars."""
        tape = ProgramTape(program)
        assert all(type(d) is float for d in tape.durations)
        result = FastInterpreter(program).run()
        assert type(result.makespan) is float
        assert type(result.minibatch_time) is float

    def test_tape_is_reusable_across_runs(self, program):
        tape = ProgramTape(program)
        first = FastInterpreter(program, tape=tape).run()
        second = FastInterpreter(program, tape=tape).run()
        assert result_fingerprint(first) == result_fingerprint(second)


class TestFailureParity:
    def test_strict_oom_matches_reference(self):
        """An over-capacity strict run fails identically on both
        paths: same verdict, same OOM attribution string."""
        job = tiny_job(server=small_server(gpu_memory=24 * MiB),
                       model=tiny_model(n_layers=12, hidden=512),
                       microbatches_per_minibatch=6)
        program = Lowering(job, ExecOptions(strict=True)).lower(None)
        fast = FastInterpreter(program).run()
        reference = Interpreter(program).run()
        assert not fast.ok and not reference.ok
        assert str(fast.oom) == str(reference.oom)
        assert fast.makespan == reference.makespan == 0.0

    def test_deadlock_message_matches_reference(self, program):
        """A cyclic dependency deadlocks both interpreters with the
        same diagnostic."""
        job = tiny_job()
        instrs = tuple(
            Barrier(iid=i, name=f"b{i}", stream=("x", 0), stream_mode="fifo",
                    duration=0.0, device=0)
            for i in range(2)
        )
        cyclic = InstructionProgram(
            job=job,
            plan=MPress(job).build_plan(),
            options=ExecOptions(strict=False),
            instructions=instrs,
            edges=((0, 1), (1, 0)),
            static_effects=(),
            stream_order=((("x", 0), "fifo"),),
        )
        with pytest.raises(ScheduleError) as fast_err:
            FastInterpreter(cyclic).run()
        with pytest.raises(ScheduleError) as ref_err:
            Interpreter(cyclic).run()
        assert str(fast_err.value) == str(ref_err.value)
        assert "deadlock: 2 tasks" in str(fast_err.value)


class TestSnapshots:
    def test_snapshot_cadence(self, program):
        interp = FastInterpreter(program, snapshot_every=64)
        interp.run()
        assert interp.snapshots
        done_counts = [snapshot.n_done for snapshot in interp.snapshots]
        assert done_counts == sorted(done_counts)
        assert all(snapshot.now <= interp._now for snapshot in interp.snapshots)

    def test_no_snapshots_by_default(self, program):
        interp = FastInterpreter(program)
        interp.run()
        assert interp.snapshots == []
