"""Resilience sweep tests (goodput vs. failure pressure)."""

import pytest

from repro.analysis.resilience import pivot, resilience_sweep, to_csv

from tests.conftest import tiny_job


@pytest.fixture(scope="module")
def cells():
    return resilience_sweep(
        tiny_job(), system="none", mtbf_grid=(2.0, 0.5), trials=2, seed=7
    )


def test_grid_shape(cells):
    assert len(cells) == 4
    assert sorted({cell.mtbf for cell in cells}) == [0.5, 2.0]
    assert all(cell.ok for cell in cells)


def test_cell_seeds_are_distinct_and_derived(cells):
    assert [cell.seed for cell in cells] == [7, 8, 9, 10]


def test_goodput_never_beats_fault_free(cells):
    for cell in cells:
        assert cell.goodput_ratio <= 1.0 + 1e-9
        if cell.n_failures:
            assert cell.recovery_seconds > 0.0


def test_sweep_is_reproducible(cells):
    again = resilience_sweep(
        tiny_job(), system="none", mtbf_grid=(2.0, 0.5), trials=2, seed=7
    )
    assert again == cells


def test_csv_round_trip(cells):
    text = to_csv(cells)
    lines = text.strip().splitlines()
    assert lines[0].startswith("mtbf,trial,seed")
    assert len(lines) == 1 + len(cells)


def test_pivot_groups_by_mtbf(cells):
    table = pivot(cells)
    assert set(table) == {0.5, 2.0}
    assert all(len(group) == 2 for group in table.values())
