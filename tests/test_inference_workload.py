"""Serving workload model and the continuous schedule family."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.inference.workload import (
    InferenceConfig,
    Request,
    generate_requests,
)
from repro.pipeline import OpKind, continuous_schedule


class TestConfigValidation:
    def test_defaults_are_valid(self):
        config = InferenceConfig()
        assert config.arrival == "poisson"
        assert config.kv_swap == "d2d"

    @pytest.mark.parametrize("kwargs,match", [
        ({"arrival": "burst"}, "unknown arrival model"),
        ({"kv_swap": "nvme"}, "unknown kv_swap"),
        ({"n_requests": 0}, "n_requests"),
        ({"arrival_rate": 0.0}, "arrival_rate"),
        ({"prompt_mean": 4, "prompt_min": 8}, "prompt_min"),
        ({"output_mean": 256}, "output_min"),
        ({"block_tokens": 0}, "block_tokens"),
        ({"max_batch": 0}, "max_batch"),
        ({"pp": 0}, "pp"),
        ({"mfu": 0.0}, "mfu"),
        ({"kv_pool_mib": -1}, "kv_pool_mib"),
        ({"shared_prefix_fraction": 1.5}, "shared_prefix_fraction"),
        ({"shared_prefix_fraction": 0.5}, "shared_prefix_tokens"),
    ])
    def test_bad_configs_rejected(self, kwargs, match):
        with pytest.raises(ConfigurationError, match=match):
            InferenceConfig(**kwargs)

    def test_trace_requires_trace_arrival_and_vice_versa(self):
        with pytest.raises(ConfigurationError, match="trace"):
            InferenceConfig(arrival="trace")
        with pytest.raises(ConfigurationError, match="trace"):
            InferenceConfig(trace=((0.0, 8, 4),))
        with pytest.raises(ConfigurationError, match="triples"):
            InferenceConfig(arrival="trace", trace=((0.0, 8),))
        with pytest.raises(ConfigurationError, match="invalid trace entry"):
            InferenceConfig(arrival="trace", trace=((0.0, 0, 4),))


class TestGeneration:
    def test_same_seed_same_stream(self):
        config = InferenceConfig(seed=7, n_requests=32)
        assert generate_requests(config) == generate_requests(config)

    def test_different_seed_different_stream(self):
        a = generate_requests(InferenceConfig(seed=1))
        b = generate_requests(InferenceConfig(seed=2))
        assert a != b

    def test_arrivals_monotone_and_lengths_clamped(self):
        config = InferenceConfig(seed=3, n_requests=64, prompt_min=32,
                                 prompt_mean=48, prompt_max=64,
                                 output_min=2, output_mean=4, output_max=8)
        requests = generate_requests(config)
        assert len(requests) == 64
        arrivals = [r.arrival for r in requests]
        assert arrivals == sorted(arrivals)
        assert all(32 <= r.prompt_tokens <= 64 for r in requests)
        assert all(2 <= r.output_tokens <= 8 for r in requests)

    def test_uniform_arrivals_are_evenly_spaced(self):
        config = InferenceConfig(arrival="uniform", n_requests=4,
                                 arrival_rate=2.0)
        requests = generate_requests(config)
        assert [r.arrival for r in requests] == [0.0, 0.5, 1.0, 1.5]

    def test_trace_replayed_in_arrival_order(self):
        config = InferenceConfig(
            arrival="trace",
            trace=((0.5, 16, 4), (0.0, 32, 8)))
        requests = generate_requests(config)
        assert [r.arrival for r in requests] == [0.0, 0.5]
        assert requests[0].prompt_tokens == 32
        assert [r.rid for r in requests] == [0, 1]

    def test_shared_prefix_requests_keep_a_private_token(self):
        config = InferenceConfig(seed=5, n_requests=64,
                                 shared_prefix_tokens=100,
                                 shared_prefix_fraction=1.0)
        requests = generate_requests(config)
        assert all(r.shared_prefix for r in requests)
        assert all(r.prompt_tokens >= 101 for r in requests)

    def test_bad_request_rejected(self):
        with pytest.raises(ConfigurationError):
            Request(rid=0, arrival=-1.0, prompt_tokens=8, output_tokens=2)


class TestContinuousSchedule:
    def test_forward_only_rows(self):
        schedule = continuous_schedule(n_stages=2, n_iterations=3)
        assert schedule.mode == "continuous"
        assert schedule.n_stages == 2
        kinds = {op.kind for row in schedule.per_stage for op in row}
        assert kinds == {OpKind.FORWARD}

    def test_every_stage_sees_every_iteration(self):
        schedule = continuous_schedule(n_stages=3, n_iterations=4)
        for stage, row in enumerate(schedule.per_stage):
            assert [op.microbatch for op in row] == [0, 1, 2, 3]

    def test_weight_versions_single(self):
        schedule = continuous_schedule(n_stages=2, n_iterations=2)
        assert all(schedule.weight_versions(s) == 1 for s in range(2))
