"""Content-addressed result cache: storage, corruption, lifecycle."""

from __future__ import annotations

import json
import os

from repro.runtime.cache import ENTRY_VERSION, ResultCache


def _key(n: int) -> str:
    return f"{n:02x}" + "0" * 62


def test_roundtrip(tmp_path):
    cache = ResultCache(str(tmp_path))
    record = {"label": "a", "tflops": 1.25, "plan": {"stripes": [1, 2]}}
    assert cache.get(_key(1)) is None
    cache.put(_key(1), record)
    assert cache.get(_key(1)) == record
    assert cache.hits == 1
    assert cache.misses == 1


def test_entries_are_sharded_by_key_prefix(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_key(0xAB), {"label": "x"})
    assert os.path.exists(tmp_path / "ab" / (_key(0xAB) + ".json"))


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_key(2), {"label": "ok"})
    path = tmp_path / "02" / (_key(2) + ".json")
    path.write_text("{not json")
    assert cache.get(_key(2)) is None


def test_wrong_entry_version_is_a_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_key(3), {"label": "ok"})
    path = tmp_path / "03" / (_key(3) + ".json")
    entry = json.loads(path.read_text())
    entry["version"] = ENTRY_VERSION + 1
    path.write_text(json.dumps(entry))
    assert cache.get(_key(3)) is None


def test_put_overwrites(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_key(4), {"label": "old"})
    cache.put(_key(4), {"label": "new"})
    assert cache.get(_key(4))["label"] == "new"


def test_stats_and_clear(tmp_path):
    cache = ResultCache(str(tmp_path))
    for n in range(3):
        cache.put(_key(n), {"label": str(n)})
    stats = cache.stats()
    assert stats.entries == 3
    assert stats.total_bytes > 0
    assert "3 entries" in stats.summary()
    assert sorted(cache.keys()) == sorted(_key(n) for n in range(3))
    removed = cache.clear()
    assert removed == 3
    assert cache.stats().entries == 0
    assert cache.get(_key(0)) is None


def test_stats_count_shards(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_key(0xAA), {"label": "a"})
    cache.put(_key(0xAA)[:2] + "f" * 62, {"label": "same shard"})
    cache.put(_key(0xBB), {"label": "b"})
    stats = cache.stats()
    assert stats.entries == 3
    assert stats.shards == 2


def test_stats_dict_merges_directory_and_counters(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_key(5), {"label": "x"})
    cache.get(_key(5))
    cache.get(_key(6))
    stats = cache.stats_dict()
    assert stats["entries"] == 1
    assert stats["shards"] == 1
    assert stats["total_bytes"] > 0
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    json.dumps(stats)  # must stay JSON-serializable for the CLI


def test_missing_root_stats(tmp_path):
    cache = ResultCache(str(tmp_path / "never-created"))
    assert cache.stats().entries == 0
    assert cache.clear() == 0


# -- LRU eviction ------------------------------------------------------------


def _pad_record(n: int) -> dict:
    return {"label": str(n), "pad": "x" * 200}


def test_max_bytes_must_be_positive(tmp_path):
    import pytest

    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        ResultCache(str(tmp_path), max_bytes=0)


def test_put_evicts_oldest_beyond_cap(tmp_path):
    one = len(json.dumps({"version": 1, "key": _key(0),
                          "record": _pad_record(0)}, sort_keys=True))
    cache = ResultCache(str(tmp_path), max_bytes=2 * one)
    for n in range(3):
        cache.put(_key(n), _pad_record(n))
    assert cache.keys() == sorted([_key(1), _key(2)])
    assert cache.evictions == 1
    assert cache.total_bytes() <= 2 * one


def test_hit_protects_an_entry_from_the_next_eviction(tmp_path):
    one = len(json.dumps({"version": 1, "key": _key(0),
                          "record": _pad_record(0)}, sort_keys=True))
    cache = ResultCache(str(tmp_path), max_bytes=2 * one)
    cache.put(_key(0), _pad_record(0))
    cache.put(_key(1), _pad_record(1))
    assert cache.get(_key(0)) is not None   # 0 is now most recent
    cache.put(_key(2), _pad_record(2))      # overflow: 1 is LRU
    assert cache.keys() == sorted([_key(0), _key(2)])


def test_just_put_entry_is_never_its_own_victim(tmp_path):
    # A cap smaller than a single record still stores the newest one.
    cache = ResultCache(str(tmp_path), max_bytes=10)
    cache.put(_key(0), _pad_record(0))
    cache.put(_key(1), _pad_record(1))
    assert cache.keys() == [_key(1)]


def test_evictions_persist_across_instances(tmp_path):
    one = len(json.dumps({"version": 1, "key": _key(0),
                          "record": _pad_record(0)}, sort_keys=True))
    first = ResultCache(str(tmp_path), max_bytes=one)
    first.put(_key(0), _pad_record(0))
    first.put(_key(1), _pad_record(1))
    assert first.evictions == 1
    second = ResultCache(str(tmp_path))
    assert second.total_evictions() == 1
    assert second.stats().evictions == 1
    # _meta.json never masquerades as an entry.
    assert second.stats().entries == 1


def test_evict_to_one_shot(tmp_path):
    cache = ResultCache(str(tmp_path))
    for n in range(4):
        cache.put(_key(n), _pad_record(n))
    cache.get(_key(0))                      # 0 becomes most recent
    removed = cache.evict_to(cache.total_bytes() // 2)
    assert removed >= 1
    assert _key(0) in cache.keys()
    assert cache.max_bytes is None          # one-shot, cap not retained


def test_stats_dict_reports_hit_rate_and_evictions(tmp_path):
    cache = ResultCache(str(tmp_path), max_bytes=1 << 20)
    cache.put(_key(0), _pad_record(0))
    cache.get(_key(0))
    cache.get(_key(1))
    cache.get(_key(2))
    stats = cache.stats_dict()
    assert stats["hits"] == 1 and stats["misses"] == 2
    assert abs(stats["hit_rate"] - 1 / 3) < 1e-9
    assert stats["evictions"] == 0
    assert stats["max_bytes"] == 1 << 20
    json.dumps(stats)


def test_hit_rate_is_zero_without_lookups(tmp_path):
    assert ResultCache(str(tmp_path)).stats_dict()["hit_rate"] == 0.0


# -- guarded clear -----------------------------------------------------------


def test_clear_keep_newer_than_spares_recent_entries(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_key(0), {"label": "old"})
    cache.put(_key(1), {"label": "new"})
    # Age the first entry far past any guard window.
    old_path = cache.path_for(_key(0))
    stat = os.stat(old_path)
    os.utime(old_path, ns=(stat.st_mtime_ns - int(3600e9),
                           stat.st_mtime_ns - int(3600e9)))
    removed = cache.clear(keep_newer_than=60.0)
    assert removed == 1
    assert cache.keys() == [_key(1)]


def test_clear_keep_newer_than_rejects_negative(tmp_path):
    import pytest

    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        ResultCache(str(tmp_path)).clear(keep_newer_than=-1.0)


def test_full_clear_resets_persistent_evictions(tmp_path):
    cache = ResultCache(str(tmp_path), max_bytes=10)
    cache.put(_key(0), _pad_record(0))
    cache.put(_key(1), _pad_record(1))
    assert cache.total_evictions() == 1
    cache.clear()
    assert cache.total_evictions() == 0
