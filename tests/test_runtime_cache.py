"""Content-addressed result cache: storage, corruption, lifecycle."""

from __future__ import annotations

import json
import os

from repro.runtime.cache import ENTRY_VERSION, ResultCache


def _key(n: int) -> str:
    return f"{n:02x}" + "0" * 62


def test_roundtrip(tmp_path):
    cache = ResultCache(str(tmp_path))
    record = {"label": "a", "tflops": 1.25, "plan": {"stripes": [1, 2]}}
    assert cache.get(_key(1)) is None
    cache.put(_key(1), record)
    assert cache.get(_key(1)) == record
    assert cache.hits == 1
    assert cache.misses == 1


def test_entries_are_sharded_by_key_prefix(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_key(0xAB), {"label": "x"})
    assert os.path.exists(tmp_path / "ab" / (_key(0xAB) + ".json"))


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_key(2), {"label": "ok"})
    path = tmp_path / "02" / (_key(2) + ".json")
    path.write_text("{not json")
    assert cache.get(_key(2)) is None


def test_wrong_entry_version_is_a_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_key(3), {"label": "ok"})
    path = tmp_path / "03" / (_key(3) + ".json")
    entry = json.loads(path.read_text())
    entry["version"] = ENTRY_VERSION + 1
    path.write_text(json.dumps(entry))
    assert cache.get(_key(3)) is None


def test_put_overwrites(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_key(4), {"label": "old"})
    cache.put(_key(4), {"label": "new"})
    assert cache.get(_key(4))["label"] == "new"


def test_stats_and_clear(tmp_path):
    cache = ResultCache(str(tmp_path))
    for n in range(3):
        cache.put(_key(n), {"label": str(n)})
    stats = cache.stats()
    assert stats.entries == 3
    assert stats.total_bytes > 0
    assert "3 entries" in stats.summary()
    assert sorted(cache.keys()) == sorted(_key(n) for n in range(3))
    removed = cache.clear()
    assert removed == 3
    assert cache.stats().entries == 0
    assert cache.get(_key(0)) is None


def test_stats_count_shards(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_key(0xAA), {"label": "a"})
    cache.put(_key(0xAA)[:2] + "f" * 62, {"label": "same shard"})
    cache.put(_key(0xBB), {"label": "b"})
    stats = cache.stats()
    assert stats.entries == 3
    assert stats.shards == 2


def test_stats_dict_merges_directory_and_counters(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_key(5), {"label": "x"})
    cache.get(_key(5))
    cache.get(_key(6))
    stats = cache.stats_dict()
    assert stats["entries"] == 1
    assert stats["shards"] == 1
    assert stats["total_bytes"] > 0
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    json.dumps(stats)  # must stay JSON-serializable for the CLI


def test_missing_root_stats(tmp_path):
    cache = ResultCache(str(tmp_path / "never-created"))
    assert cache.stats().entries == 0
    assert cache.clear() == 0
