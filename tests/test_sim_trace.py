"""Trace recording and timeline rendering tests."""

from repro.sim.trace import Trace, TraceEvent


def _event(name="t", kind="fwd", device=0, mb=0, start=0.0, end=1.0, layer=-1):
    return TraceEvent(name=name, kind=kind, device=device, microbatch=mb,
                      start=start, end=end, layer=layer)


def test_record_updates_makespan():
    trace = Trace()
    trace.record(_event(end=2.0))
    trace.record(_event(start=2.0, end=5.0))
    assert trace.makespan == 5.0


def test_by_kind_and_by_device():
    trace = Trace()
    trace.record(_event(kind="fwd", device=0))
    trace.record(_event(kind="bwd", device=1))
    assert len(trace.by_kind("fwd")) == 1
    assert len(trace.by_device(1)) == 1


def test_find_by_name():
    trace = Trace()
    trace.record(_event(name="special"))
    assert trace.find("special") is not None
    assert trace.find("missing") is None


def test_total_time():
    trace = Trace()
    trace.record(_event(kind="swap_out", start=0.0, end=1.5))
    trace.record(_event(kind="swap_out", start=2.0, end=3.0))
    assert trace.total_time("swap_out") == 2.5


def test_duration_property():
    assert _event(start=1.0, end=3.5).duration == 2.5


def test_gantt_rows_sorted_by_start():
    trace = Trace()
    trace.record(_event(device=0, start=5.0, end=6.0))
    trace.record(_event(device=0, start=1.0, end=2.0))
    rows = trace.gantt_rows()
    assert [row[1] for row in rows[0]] == [1.0, 5.0]


def test_render_timeline_marks_microbatches():
    trace = Trace()
    trace.record(_event(kind="fwd", device=0, mb=1, start=0.0, end=1.0))
    trace.record(_event(kind="bwd", device=0, mb=1, start=1.0, end=2.0))
    art = trace.render_timeline(width=20)
    assert "gpu0" in art
    assert "1" in art


def test_render_empty_trace():
    assert Trace().render_timeline() == "(empty trace)"
