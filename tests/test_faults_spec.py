"""Fault specification and schedule tests."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.spec import (
    FaultKind,
    FaultSchedule,
    FaultSpec,
    load_faults,
    random_schedule,
    save_faults,
)


def _slowdown(start=1.0, duration=2.0, device=0, factor=0.5):
    return FaultSpec(kind=FaultKind.DEVICE_SLOWDOWN, start=start,
                     duration=duration, device=device, factor=factor)


class TestFaultSpec:
    def test_window_bounds(self):
        fault = _slowdown(start=1.0, duration=2.0)
        assert fault.end == pytest.approx(3.0)
        assert fault.is_window
        assert fault.active_at(1.0)
        assert fault.active_at(2.9)
        assert not fault.active_at(3.0)  # half-open
        assert not fault.active_at(0.5)

    def test_zero_length_window_is_never_active(self):
        fault = _slowdown(duration=0.0)
        assert fault.end == fault.start
        assert not fault.active_at(fault.start)

    def test_failure_is_not_a_window(self):
        fault = FaultSpec(kind=FaultKind.DEVICE_FAIL, start=1.0, device=0,
                          restart_latency=0.5)
        assert not fault.is_window
        assert not fault.active_at(1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            _slowdown(start=-1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            _slowdown(duration=-1.0)

    @pytest.mark.parametrize("factor", [0.0, -0.5, 1.5])
    def test_factor_out_of_range_rejected(self, factor):
        with pytest.raises(ConfigurationError):
            _slowdown(factor=factor)

    def test_slowdown_needs_device(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind=FaultKind.DEVICE_SLOWDOWN, start=0.0, duration=1.0,
                      factor=0.5)

    def test_link_degrade_peer_must_differ(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind=FaultKind.LINK_DEGRADE, start=0.0, duration=1.0,
                      device=1, peer=1, factor=0.5)

    def test_nvme_stall_needs_no_device(self):
        fault = FaultSpec(kind=FaultKind.NVME_STALL, start=0.0, duration=1.0,
                          factor=0.5)
        assert fault.device is None

    def test_dict_round_trip(self):
        fault = FaultSpec(kind=FaultKind.LINK_DEGRADE, start=0.5, duration=1.0,
                          device=2, peer=3, factor=0.7)
        assert FaultSpec.from_dict(fault.to_dict()) == fault


class TestFaultSchedule:
    def test_empty(self):
        schedule = FaultSchedule()
        assert schedule.is_empty
        assert len(schedule) == 0
        assert schedule.horizon == 0.0
        assert schedule.compute_factor(0) == 1.0
        assert schedule.degraded_devices() == set()

    def test_queries(self):
        fail = FaultSpec(kind=FaultKind.DEVICE_FAIL, start=5.0, device=3)
        slow = _slowdown(device=1)
        schedule = FaultSchedule(faults=(slow, fail))
        assert len(schedule) == 2
        assert schedule.windows() == [slow]
        assert schedule.failures() == [fail]
        assert schedule.for_device(1) == [slow]
        assert schedule.for_device(3) == [fail]
        assert schedule.horizon == pytest.approx(5.0)
        assert schedule.degraded_devices() == {1, 3}

    def test_compute_factor_composes_overlapping_windows(self):
        schedule = FaultSchedule(faults=(
            _slowdown(start=0.0, duration=4.0, device=0, factor=0.5),
            _slowdown(start=1.0, duration=2.0, device=0, factor=0.5),
        ))
        # Worst case (time=None) multiplies everything.
        assert schedule.compute_factor(0) == pytest.approx(0.25)
        # Instant queries see only the active windows.
        assert schedule.compute_factor(0, time=0.5) == pytest.approx(0.5)
        assert schedule.compute_factor(0, time=1.5) == pytest.approx(0.25)
        assert schedule.compute_factor(0, time=3.5) == pytest.approx(0.5)
        assert schedule.compute_factor(1, time=1.5) == pytest.approx(1.0)

    def test_pcie_factor_only_counts_hostlink_degrades(self):
        schedule = FaultSchedule(faults=(
            FaultSpec(kind=FaultKind.LINK_DEGRADE, start=0.0, duration=1.0,
                      device=0, peer=None, factor=0.5),
            FaultSpec(kind=FaultKind.LINK_DEGRADE, start=0.0, duration=1.0,
                      device=0, peer=1, factor=0.25),
        ))
        assert schedule.pcie_factor(0) == pytest.approx(0.5)
        assert schedule.pcie_factor(1) == pytest.approx(1.0)

    def test_scaled_severity(self):
        base = FaultSchedule(faults=(
            _slowdown(factor=0.5),
            FaultSpec(kind=FaultKind.DEVICE_FAIL, start=1.0, device=0,
                      restart_latency=2.0),
        ))
        harsh = base.scaled(2.0)
        assert harsh.windows()[0].factor == pytest.approx(0.25)
        assert harsh.failures()[0].restart_latency == pytest.approx(4.0)
        mild = base.scaled(0.0)
        assert mild.windows()[0].factor == pytest.approx(1.0)
        assert mild.failures()[0].restart_latency == 0.0
        with pytest.raises(ConfigurationError):
            base.scaled(-1.0)

    def test_json_round_trip(self):
        schedule = random_schedule(seed=3, n_devices=4, horizon=10.0)
        again = FaultSchedule.from_json(schedule.to_json())
        assert again == schedule
        assert again.to_json() == schedule.to_json()

    def test_file_round_trip(self, tmp_path):
        schedule = random_schedule(seed=5, n_devices=8, horizon=3.0)
        path = str(tmp_path / "faults.json")
        save_faults(schedule, path)
        assert load_faults(path) == schedule


class TestRandomSchedule:
    def test_same_seed_is_identical(self):
        a = random_schedule(seed=11, n_devices=8, horizon=20.0)
        b = random_schedule(seed=11, n_devices=8, horizon=20.0)
        assert a == b
        assert a.to_json() == b.to_json()

    def test_different_seeds_differ(self):
        a = random_schedule(seed=1, n_devices=8, horizon=20.0, n_faults=6)
        b = random_schedule(seed=2, n_devices=8, horizon=20.0, n_faults=6)
        assert a != b

    def test_faults_land_inside_horizon(self):
        schedule = random_schedule(seed=0, n_devices=4, horizon=10.0, n_faults=20)
        assert len(schedule) == 20
        assert all(0.0 <= f.start < 10.0 for f in schedule)
        assert all(0 <= (f.device or 0) < 4 for f in schedule)

    def test_mtbf_controls_fault_count(self):
        sparse = random_schedule(seed=9, n_devices=4, horizon=100.0, mtbf=50.0)
        dense = random_schedule(seed=9, n_devices=4, horizon=100.0, mtbf=2.0)
        assert len(dense) > len(sparse)

    def test_kind_restriction(self):
        schedule = random_schedule(
            seed=4, n_devices=4, horizon=10.0, n_faults=10,
            kinds=(FaultKind.DEVICE_SLOWDOWN,),
        )
        assert all(f.kind is FaultKind.DEVICE_SLOWDOWN for f in schedule)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            random_schedule(seed=0, n_devices=4, horizon=0.0)
        with pytest.raises(ConfigurationError):
            random_schedule(seed=0, n_devices=0, horizon=1.0)
        with pytest.raises(ConfigurationError):
            random_schedule(seed=0, n_devices=4, horizon=1.0, mtbf=0.0)
