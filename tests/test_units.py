"""Unit helpers: formatting and constants."""

from repro import units


def test_byte_constants_are_consistent():
    assert units.GiB == 1024 * units.MiB == 1024 * 1024 * units.KiB
    assert units.GB == 1000 * units.MB == 10**9


def test_fmt_bytes_picks_natural_suffix():
    assert units.fmt_bytes(3 * units.GiB) == "3.00 GiB"
    assert units.fmt_bytes(512) == "512 B"
    assert units.fmt_bytes(1536 * units.KiB) == "1.50 MiB"
    assert units.fmt_bytes(2 * units.TiB) == "2.00 TiB"


def test_fmt_time_picks_natural_unit():
    assert units.fmt_time(2.5) == "2.50 s"
    assert units.fmt_time(0.0042) == "4.20 ms"
    assert units.fmt_time(37e-6) == "37.0 us"


def test_fmt_bandwidth_in_gbps():
    assert units.fmt_bandwidth(25 * units.GBps) == "25.0 GB/s"
