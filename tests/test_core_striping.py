"""Data striping tests (Section III-C)."""

import pytest

from repro.core.striping import StripeBlock, StripePlan, build_stripe_plan, distribute_weighted
from repro.errors import PlanError
from repro.hardware.topology import dgx1_topology, dgx2_topology
from repro.units import MB


class TestDistributeWeighted:
    def test_proportional_to_lanes(self):
        shares = distribute_weighted(300, {1: 1, 3: 2})
        assert shares == {1: 100, 3: 200}

    def test_total_is_exact_despite_rounding(self):
        shares = distribute_weighted(1000, {0: 1, 1: 1, 2: 1})
        assert sum(shares.values()) == 1000

    def test_zero_lane_importers_excluded(self):
        shares = distribute_weighted(100, {0: 0, 1: 2})
        assert shares == {1: 100}

    def test_rejects_no_importers(self):
        with pytest.raises(PlanError):
            distribute_weighted(100, {0: 0})

    def test_rejects_zero_size(self):
        with pytest.raises(PlanError):
            distribute_weighted(0, {1: 1})


class TestBuildStripePlan:
    def test_weighted_blocks_on_asymmetric_topology(self):
        # GPU0 -> GPU3 has two bricks, GPU0 -> GPU1 one: GPU3's share
        # should be roughly twice GPU1's (the paper's weighted
        # striping for DGX-1).
        topo = dgx1_topology()
        size = 300 * MB
        plan = build_stripe_plan(topo, 0, {1: size, 3: size}, size)
        assert plan.bytes_to(3) == pytest.approx(2 * plan.bytes_to(1), rel=0.01)

    def test_blocks_sum_to_tensor(self):
        topo = dgx1_topology()
        size = 123_456_789
        plan = build_stripe_plan(topo, 0, {1: size, 2: size, 3: size}, size)
        assert sum(b.size for b in plan.blocks) == size

    def test_budgets_respected(self):
        topo = dgx1_topology()
        size = 300 * MB
        plan = build_stripe_plan(topo, 0, {1: size, 3: 50 * MB}, size)
        assert plan.bytes_to(3) <= 50 * MB
        assert plan.bytes_to(1) == size - plan.bytes_to(3)

    def test_unreachable_importers_skipped(self):
        topo = dgx1_topology()
        # GPU5 is not an NVLink neighbor of GPU0.
        plan = build_stripe_plan(topo, 0, {5: 10 * MB, 3: 100 * MB}, 10 * MB)
        assert plan.importers == [3]

    def test_insufficient_budget_rejected(self):
        topo = dgx1_topology()
        with pytest.raises(PlanError):
            build_stripe_plan(topo, 0, {3: 10 * MB}, 100 * MB)

    def test_no_striping_single_importer_single_lane(self):
        topo = dgx1_topology()
        size = 50 * MB
        plan = build_stripe_plan(topo, 0, {1: size, 3: 2 * size}, size, striping=False)
        assert len(plan.blocks) == 1
        assert plan.blocks[0].importer == 3  # the importer with most budget

    def test_per_lane_split_within_pair(self):
        topo = dgx1_topology()
        size = 100 * MB
        plan = build_stripe_plan(topo, 0, {3: size}, size)
        # Two lanes to GPU3: two blocks of ~equal size.
        assert len(plan.blocks) == 2
        sizes = sorted(b.size for b in plan.blocks)
        assert sizes[1] - sizes[0] <= 1

    def test_switched_topology_uses_egress_lanes(self):
        topo = dgx2_topology(4)
        size = 60 * MB
        plan = build_stripe_plan(topo, 0, {1: size, 2: size, 3: size}, size)
        lanes = {b.lane for b in plan.blocks}
        assert all(lane[0] == "egress" and lane[1] == 0 for lane in lanes)


class TestStripePlanCosts:
    def test_round_trip_is_twice_one_way(self):
        topo = dgx1_topology()
        plan = build_stripe_plan(topo, 0, {3: 100 * MB}, 100 * MB)
        assert plan.round_trip_time(topo) == pytest.approx(2 * plan.one_way_time(topo))

    def test_striping_speeds_up_transfer(self):
        topo = dgx1_topology()
        size = 300 * MB
        narrow = build_stripe_plan(topo, 0, {1: size, 3: size}, size, striping=False)
        wide = build_stripe_plan(topo, 0, {1: size, 2: size, 3: size, 4: size}, size)
        assert wide.one_way_time(topo) < narrow.one_way_time(topo)

    def test_shared_lane_serialization_counted(self):
        # On switched topologies several blocks share egress lanes;
        # time must reflect per-lane sums, not per-block maxima.
        topo = dgx2_topology(4)
        size = 120 * MB
        plan = build_stripe_plan(topo, 0, {1: size, 2: size, 3: size}, size)
        floor = size / (topo.lane_budget * topo.nvlink.sustained_bandwidth)
        assert plan.one_way_time(topo) >= floor

    def test_metadata_invariants(self):
        with pytest.raises(PlanError):
            StripePlan(exporter=0, tensor_bytes=10, blocks=())
        block = StripeBlock(importer=1, size=5, lane=("lane", 0, 1, 0),
                            return_lane=("lane", 1, 0, 0))
        with pytest.raises(PlanError):
            StripePlan(exporter=0, tensor_bytes=10, blocks=(block,))

    def test_zero_size_block_rejected(self):
        with pytest.raises(PlanError):
            StripeBlock(importer=1, size=0, lane=("l",), return_lane=("r",))
