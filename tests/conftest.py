"""Shared fixtures: a small 4-GPU server and a tiny transformer.

Full-scale DGX-class jobs take seconds per simulation; unit tests use
a scaled-down server (4 GPUs, 2 GiB each, same topology flavor) and a
tiny model so a whole executor run finishes in milliseconds while
exercising every code path.
"""

from __future__ import annotations

import pytest

from repro.hardware.device import GPUSpec, HostSpec, NVMeSpec
from repro.hardware.links import NVLINK2
from repro.hardware.server import Server
from repro.hardware.topology import Topology, dgx1_topology, dgx2_topology
from repro.job import TrainingJob
from repro.models.config import TransformerConfig
from repro.models.layers import build_model
from repro.units import GiB, GBps, TFLOP


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="regenerate tests/goldens/*.json instead of asserting",
    )


def pytest_collection_modifyitems(config, items):
    """Everything not explicitly ``slow`` is tier-1 (see tests/README.md)."""
    for item in items:
        if "slow" not in item.keywords:
            item.add_marker(pytest.mark.tier1)


@pytest.fixture
def update_goldens(request) -> bool:
    return request.config.getoption("--update-goldens")


TINY_GPU = GPUSpec(
    name="tiny-gpu",
    memory_bytes=2 * GiB,
    peak_fp32=10 * TFLOP,
    peak_fp16=80 * TFLOP,
    hbm_bandwidth=500 * GBps,
)


def small_topology() -> Topology:
    """4-GPU asymmetric direct topology (DGX-1 in miniature)."""
    adjacency = {
        frozenset((0, 1)): 2,
        frozenset((0, 2)): 1,
        frozenset((0, 3)): 1,
        frozenset((1, 2)): 1,
        frozenset((1, 3)): 1,
        frozenset((2, 3)): 2,
    }
    return Topology(n_gpus=4, kind="direct", nvlink=NVLINK2, adjacency=adjacency)


def small_server(gpu_memory: int = 2 * GiB) -> Server:
    gpu = GPUSpec(
        name="tiny-gpu",
        memory_bytes=gpu_memory,
        peak_fp32=10 * TFLOP,
        peak_fp16=80 * TFLOP,
        hbm_bandwidth=500 * GBps,
    )
    return Server(
        name="small-4gpu",
        gpus=[gpu] * 4,
        topology=small_topology(),
        host=HostSpec(memory_bytes=64 * GiB, vcpus=16),
        nvme=NVMeSpec(capacity_bytes=512 * GiB, read_bandwidth=4 * GBps, write_bandwidth=3 * GBps),
    )


def small_switched_server(gpu_memory: int = 2 * GiB) -> Server:
    gpu = GPUSpec(
        name="tiny-gpu",
        memory_bytes=gpu_memory,
        peak_fp32=10 * TFLOP,
        peak_fp16=80 * TFLOP,
        hbm_bandwidth=500 * GBps,
    )
    return Server(
        name="small-4gpu-switched",
        gpus=[gpu] * 4,
        topology=dgx2_topology(n_gpus=4),
        host=HostSpec(memory_bytes=64 * GiB, vcpus=16),
        nvme=NVMeSpec(capacity_bytes=512 * GiB, read_bandwidth=4 * GBps, write_bandwidth=3 * GBps),
    )


def tiny_model(n_layers: int = 6, hidden: int = 256):
    config = TransformerConfig(
        name=f"Tiny-{n_layers}x{hidden}",
        n_layers=n_layers,
        hidden=hidden,
        heads=4,
        vocab=1000,
        seq_len=64,
        max_positions=128,
    )
    return build_model(config)


def tiny_job(
    server=None,
    model=None,
    system: str = "dapple",
    microbatch_size: int = 2,
    microbatches_per_minibatch: int = 4,
    n_minibatches: int = 2,
    precision: str = "fp16",
) -> TrainingJob:
    return TrainingJob(
        model=model if model is not None else tiny_model(),
        server=server if server is not None else small_server(),
        system=system,
        microbatch_size=microbatch_size,
        microbatches_per_minibatch=microbatches_per_minibatch,
        n_minibatches=n_minibatches,
        precision=precision,
        mfu=0.5,
    )


@pytest.fixture
def server():
    return small_server()


@pytest.fixture
def switched_server():
    return small_switched_server()


@pytest.fixture
def model():
    return tiny_model()


@pytest.fixture
def job(server, model):
    return tiny_job(server=server, model=model)


@pytest.fixture
def dgx1():
    from repro.hardware.server import dgx1_server

    return dgx1_server()


@pytest.fixture
def dgx2():
    from repro.hardware.server import dgx2_server

    return dgx2_server()


@pytest.fixture
def dgx1_topo():
    return dgx1_topology()
