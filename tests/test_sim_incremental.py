"""Program diffing and incremental re-simulation.

Property coverage for :mod:`repro.sim.incremental`: splicing a
changed suffix onto a reused prefix is indistinguishable from a full
lowering, diffs classify taint conservatively, snapshot resume is
bit-identical to a fresh run, and the planner's coarse-to-fine
search never rebuilds the lowering skeleton.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.emulator import Emulator
from repro.core.mpress import MPress
from repro.core.planner import Planner, PlannerConfig
from repro.sim.incremental import (
    IncrementalSimulator,
    diff_programs,
    splice_programs,
)
from repro.sim.interpreter import Interpreter
from repro.sim.ir import ExecOptions
from repro.sim.lowering import Lowering, skeleton_build_count
from tests.conftest import small_server, tiny_job, tiny_model
from tests.test_fastpath_equivalence import result_fingerprint

MiB = 2**20


@pytest.fixture(scope="module")
def pool():
    job = tiny_job(server=small_server(gpu_memory=64 * MiB),
                   model=tiny_model(n_layers=12, hidden=512),
                   microbatches_per_minibatch=6)
    plan = MPress(job).build_plan()
    lowering = Lowering(job, ExecOptions(strict=False, prefetch_lead=2))
    return job, plan, lowering


def _drop(plan, keys):
    return dataclasses.replace(
        plan, entries={k: v for k, v in plan.entries.items() if k not in keys})


class TestDiff:
    def test_identical_programs(self, pool):
        _job, plan, lowering = pool
        diff = diff_programs(lowering.lower(plan), lowering.lower(plan))
        assert diff.identical
        assert diff.resumable
        assert diff.safe_time == float("inf")
        assert diff.n_tainted == 0
        assert len(diff.matched) == len(lowering.lower(plan).instructions)

    def test_entry_drop_taints_locally(self, pool):
        _job, plan, lowering = pool
        old = lowering.lower(plan)
        key = next(iter(plan.entries))
        new = lowering.lower(_drop(plan, {key}))
        diff = diff_programs(old, new)
        assert not diff.identical
        assert 0 < diff.n_tainted < len(old.instructions)
        # Matching is a bijection between untainted instructions.
        assert len(diff.matched) == len(set(diff.old_to_new.values()))

    def test_safe_time_bounded_by_run(self, pool):
        _job, plan, lowering = pool
        old = lowering.lower(plan)
        sim = IncrementalSimulator()
        result = sim.run(old)
        art = sim._last
        key = next(iter(plan.entries))
        new = lowering.lower(_drop(plan, {key}))
        diff = diff_programs(old, new, art.ends, art.starts)
        assert 0.0 <= diff.safe_time <= result.makespan

    def test_options_change_blocks_resume(self, pool):
        job, plan, _lowering = pool
        a = Lowering(job, ExecOptions(strict=False, prefetch_lead=2)).lower(plan)
        b = Lowering(job, ExecOptions(strict=False, prefetch_lead=3)).lower(plan)
        assert not diff_programs(a, b).resumable


class TestSplice:
    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_splice_equals_full_lowering(self, pool, data):
        """Changed suffix grafted onto the reused prefix == relowering
        from scratch, field for field."""
        _job, plan, lowering = pool
        keys = sorted(plan.entries, key=repr)
        dropped = data.draw(st.sets(st.sampled_from(keys)), label="dropped")
        old = lowering.lower(plan)
        new = lowering.lower(_drop(plan, dropped))
        assert splice_programs(old, new) == new

    def test_splice_reuses_old_objects(self, pool):
        _job, plan, lowering = pool
        old = lowering.lower(plan)
        key = next(iter(plan.entries))
        new = lowering.lower(_drop(plan, {key}))
        diff = diff_programs(old, new)
        spliced = splice_programs(old, new, diff)
        for old_iid, new_iid in diff.matched:
            assert spliced.instructions[new_iid] == dataclasses.replace(
                old.instructions[old_iid], iid=new_iid)


class TestResume:
    def test_memoizes_identical_program(self, pool):
        _job, plan, lowering = pool
        sim = IncrementalSimulator()
        first = sim.run(lowering.lower(plan))
        second = sim.run(lowering.lower(plan))
        assert sim.n_memoized == 1
        assert result_fingerprint(first) == result_fingerprint(second)

    def test_late_divergence_resumes_bit_identically(self, pool):
        """Stretch the duration of progressively later instructions:
        each delta must resume from a snapshot and still match a
        fresh reference run on every byte."""
        _job, plan, lowering = pool
        base = lowering.lower(plan)
        sim = IncrementalSimulator()
        sim.run(base)
        starts = sim._last.starts
        order = sorted(range(len(starts)), key=lambda i: starts[i])
        for quantile in (0.6, 0.9):
            iid = order[int(quantile * (len(order) - 1))]
            instrs = list(base.instructions)
            instrs[iid] = dataclasses.replace(
                instrs[iid], duration=instrs[iid].duration * 1.5)
            program = dataclasses.replace(base, instructions=tuple(instrs))
            before = sim.n_resumed
            resumed = sim.run(program)
            assert sim.n_resumed == before + 1
            assert result_fingerprint(resumed) == \
                result_fingerprint(Interpreter(program).run())
            sim.run(base)  # restore baseline artifacts

    def test_early_divergence_falls_back_to_full(self, pool):
        """Plan deltas touch microbatch 0's forwards, which run before
        the first snapshot — the simulator must *not* resume, and the
        full re-run still matches the reference."""
        _job, plan, lowering = pool
        sim = IncrementalSimulator()
        sim.run(lowering.lower(plan))
        key = next(iter(plan.entries))
        program = lowering.lower(_drop(plan, {key}))
        result = sim.run(program)
        assert sim.n_resumed == 0
        assert result_fingerprint(result) == \
            result_fingerprint(Interpreter(program).run())


class TestPlannerIntegration:
    def test_emulator_surfaces_incremental_counters(self, pool):
        job, plan, _lowering = pool
        emulator = Emulator(job)
        emulator.run(plan)
        emulator.run(plan)
        assert emulator.n_memoized == 1
        assert emulator.n_incremental_resumes == 0

    def test_coarse2fine_builds_skeleton_once(self):
        """A whole coarse-to-fine search — tighten rounds, frontier
        pricing, refine trials — shares one lowering skeleton."""
        job = tiny_job(server=small_server(gpu_memory=64 * MiB),
                       model=tiny_model(n_layers=12, hidden=512),
                       microbatches_per_minibatch=6)
        before = skeleton_build_count()
        plan, report = Planner(job, PlannerConfig(search="coarse2fine")).build()
        # Exactly two builds, independent of candidate count: the
        # profiler's instrumented baseline and the emulator's shared
        # skeleton.  Every tighten round, frontier pricing, and refine
        # trial reuses the latter.
        assert skeleton_build_count() == before + 2
        assert report.feasible
        assert report.n_fast_path > 0
        assert report.n_full_sims > 0

    def test_coarse2fine_plan_quality_matches_emulate(self):
        """Pricing the frontier analytically must not change the
        feasibility verdict and keeps the plan in the same family."""
        job = tiny_job(server=small_server(gpu_memory=64 * MiB),
                       model=tiny_model(n_layers=12, hidden=512),
                       microbatches_per_minibatch=6)
        plan_e, report_e = Planner(job, PlannerConfig(search="emulate")).build()
        plan_c, report_c = Planner(
            job, PlannerConfig(search="coarse2fine")).build()
        assert report_e.feasible == report_c.feasible
        assert set(plan_c.entries) == set(plan_e.entries)
        assert report_c.n_full_sims <= report_e.n_full_sims

    def test_unknown_search_rejected(self):
        with pytest.raises(ValueError):
            Planner(tiny_job(), PlannerConfig(search="anneal"))
