"""Property-based tests for the discrete-event engine."""

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Engine, Task, TaskState
from repro.sim.resources import Stream


@given(
    durations=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=20,
    )
)
def test_fifo_makespan_is_sum_of_durations(durations):
    engine = Engine()
    stream = Stream("s")
    engine.register_stream(stream)
    for index, duration in enumerate(durations):
        stream.submit(Task(f"t{index}", duration))
    assert engine.run() == sum(durations) or abs(engine.run() - sum(durations)) < 1e-9


@given(
    durations=st.lists(
        st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
        min_size=2,
        max_size=16,
    ),
    n_streams=st.integers(min_value=1, max_value=4),
    seed=st.randoms(),
)
@settings(max_examples=50)
def test_random_dags_always_complete_in_topological_time(durations, n_streams, seed):
    """Any forward-edge DAG on FIFO streams completes, and every task
    starts only after all its dependencies finished."""
    engine = Engine()
    streams = [Stream(f"s{i}") for i in range(n_streams)]
    for stream in streams:
        engine.register_stream(stream)
    tasks = []
    pending = []
    for index, duration in enumerate(durations):
        deps = []
        if tasks:
            n_deps = seed.randint(0, min(3, len(tasks)))
            deps = seed.sample(tasks, n_deps)
        task = Task(f"t{index}", duration, deps=deps)
        tasks.append(task)
        pending.append(task)
    # Submit in creation order (dependencies always earlier), spread
    # round-robin across streams — a safe order for FIFO streams.
    for index, task in enumerate(pending):
        streams[index % n_streams].submit(task)
    engine.run()
    for task in tasks:
        assert task.state is TaskState.DONE
        for dep in task.deps:
            assert dep.end_time <= task.start_time + 1e-12


@given(
    durations=st.lists(
        st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=40)
def test_pool_stream_busy_time_equals_total_work(durations):
    engine = Engine()
    pool = Stream("pool", mode="pool")
    engine.register_stream(pool)
    for index, duration in enumerate(durations):
        pool.submit(Task(f"t{index}", duration))
    makespan = engine.run()
    assert abs(pool.busy_time - sum(durations)) < 1e-9
    assert abs(makespan - sum(durations)) < 1e-9


@given(
    durations=st.lists(
        st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
        min_size=2,
        max_size=10,
    )
)
@settings(max_examples=40)
def test_tasks_never_overlap_on_one_stream(durations):
    engine = Engine()
    stream = Stream("s", mode="pool")
    engine.register_stream(stream)
    tasks = [stream.submit(Task(f"t{i}", d)) for i, d in enumerate(durations)]
    engine.run()
    windows = sorted((t.start_time, t.end_time) for t in tasks)
    for (s1, e1), (s2, _) in zip(windows, windows[1:]):
        assert e1 <= s2 + 1e-12
