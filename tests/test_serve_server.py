"""Sweep server HTTP API: submission, polling, streaming, stats."""

from __future__ import annotations

import json
from urllib.request import urlopen

import pytest

from repro.errors import ConfigurationError
from repro.jobspec import task_from_spec
from repro.runtime import ResultCache, SimTask
from repro.serve import ServeClient, ServeError, SweepServer, parse_submit
from tests.conftest import tiny_job


def _tiny_tasks(systems=("none", "recomputation")):
    job = tiny_job()
    return [SimTask(label=f"serve/{system}", job=job, system=system)
            for system in systems]


@pytest.fixture
def server():
    srv = SweepServer(port=0, jobs=2).start()
    yield srv
    srv.stop()


@pytest.fixture
def client(server):
    return ServeClient(server.url, timeout=30.0)


# -- request schemas ---------------------------------------------------------


class TestParseSubmit:
    def test_tasks_body(self):
        request = parse_submit({
            "tenant": "alice",
            "priority": 2,
            "tasks": [{"model": "bert-0.35", "server": "dgx1",
                       "system": "mpress"}],
        })
        assert request.tenant == "alice"
        assert request.priority == 2
        assert len(request.tasks) == 1
        assert request.tasks[0].system == "mpress"

    def test_preset_body(self):
        request = parse_submit({"preset": "hybrid-dgx1"})
        assert request.tenant == "default"
        assert len(request.tasks) == 3

    def test_needs_exactly_one_of_preset_or_tasks(self):
        with pytest.raises(ConfigurationError):
            parse_submit({"tenant": "a"})
        with pytest.raises(ConfigurationError):
            parse_submit({"preset": "fig7", "tasks": []})

    def test_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            parse_submit({"preset": "fig7", "shard": 3})

    def test_rejects_bad_tenant_and_priority(self):
        with pytest.raises(ConfigurationError):
            parse_submit({"preset": "fig7", "tenant": ""})
        with pytest.raises(ConfigurationError):
            parse_submit({"preset": "fig7", "priority": "high"})

    def test_rejects_empty_task_list(self):
        with pytest.raises(ConfigurationError):
            parse_submit({"tasks": []})


class TestTaskFromSpec:
    def test_plain_task(self):
        task = task_from_spec({"model": "bert-0.35", "server": "dgx1"})
        assert task.system == "mpress"
        assert task.label == "bert-0.35/dgx1/mpress"
        assert task.cluster is None and task.hybrid is None

    def test_system_label_and_faults(self):
        task = task_from_spec({
            "model": "bert-0.64", "server": "dgx1",
            "system": "recomputation", "faults_seed": 7,
            "faults_horizon": 10.0, "label": "named",
        })
        assert task.label == "named"
        assert task.faults is not None and len(task.faults) > 0

    def test_faults_seed_is_deterministic(self):
        spec = {"model": "bert-0.64", "server": "dgx1",
                "system": "recomputation", "faults_seed": 3}
        assert (task_from_spec(spec).cache_key()
                == task_from_spec(spec).cache_key())

    def test_cluster_spec_lowers_to_cluster_task(self):
        task = task_from_spec({
            "model": "gpt-5.3", "server": "dgx1", "nodes": 2,
            "tp": 2, "dp": 2, "pp": 2, "system": "mpress",
        })
        assert task.cluster is not None
        assert task.cluster_config.tp == 2
        assert "tp=2" in task.label

    def test_hybrid_spec(self):
        task = task_from_spec({
            "model": "bert-0.35", "server": "dgx1",
            "system": "recomputation", "hybrid_dp": 2,
        })
        assert task.hybrid is not None and task.hybrid.dp == 2

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            task_from_spec({"model": "bert-0.35", "server": "dgx1",
                            "sustem": "mpress"})

    def test_spec_key_matches_direct_construction(self):
        # The HTTP deserialization path must hit the same cache
        # entries as tasks built in python.
        from repro.hardware.server import dgx1_server
        from repro.job import pipedream_job
        from repro.models import bert_variant

        direct = SimTask(label="x", job=pipedream_job(
            bert_variant(0.35), dgx1_server()), system="recomputation")
        spec = task_from_spec({"model": "bert-0.35", "server": "dgx1",
                               "system": "recomputation"})
        assert direct.cache_key() == spec.cache_key()


# -- HTTP endpoints ----------------------------------------------------------


class TestEndpoints:
    def test_health(self, client):
        assert client.health()["ok"] is True

    def test_unknown_endpoint_is_404(self, server, client):
        with pytest.raises(ServeError) as info:
            client._request("/v1/nope")
        assert info.value.status == 404

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServeError) as info:
            client.job("j999999")
        assert info.value.status == 404

    def test_invalid_submit_is_400(self, client):
        with pytest.raises(ServeError) as info:
            client.submit(tasks=[{"model": "bert-0.35"}])  # missing server
        assert info.value.status == 400
        assert "server" in str(info.value)

    def test_invalid_json_body_is_400(self, client):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            f"{client.base_url}/v1/jobs", data=b"{nope",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400

    def test_submit_poll_wait_lifecycle(self, server, client):
        job = server.submit("alice", 0, _tiny_tasks())
        detail = client.wait(job.id, timeout=60.0, results="full")
        assert detail["status"] == "done"
        assert detail["total"] == 2 and detail["done"] == 2
        assert detail["failed"] == 0
        assert [row["label"] for row in detail["tasks"]] \
            == ["serve/none", "serve/recomputation"]
        assert all(row["ok"] for row in detail["tasks"])
        assert all(record["ok"] for record in detail["records"])

    def test_results_levels(self, server, client):
        job = server.submit("alice", 0, _tiny_tasks(("none",)))
        client.wait(job.id, timeout=60.0)
        assert "tasks" not in client.job(job.id, results="none")
        summary = client.job(job.id, results="summary")
        assert "tasks" in summary and "records" not in summary
        assert "records" in client.job(job.id, results="full")

    def test_bad_results_level_is_400(self, server, client):
        job = server.submit("alice", 0, _tiny_tasks(("none",)))
        with pytest.raises(ServeError) as info:
            client.job(job.id, results="everything")
        assert info.value.status == 400

    def test_jobs_listing(self, server, client):
        first = server.submit("alice", 0, _tiny_tasks(("none",)))
        second = server.submit("bob", 1, _tiny_tasks(("none",)))
        listed = {row["id"]: row for row in client.jobs()}
        assert set(listed) >= {first.id, second.id}
        assert listed[second.id]["tenant"] == "bob"
        assert listed[second.id]["priority"] == 1

    def test_http_submit_runs_real_spec(self, client):
        # End-to-end through deserialization: one real DGX-1 cell.
        job_id = client.submit(
            tasks=[{"model": "bert-0.35", "server": "dgx1",
                    "system": "none"}],
            tenant="alice")
        detail = client.wait(job_id, timeout=120.0, results="full")
        assert detail["status"] == "done" and detail["failed"] == 0
        assert detail["records"][0]["system"] == "none"

    def test_events_stream_reports_progress_to_completion(self, server,
                                                          client):
        job = server.submit("alice", 0, _tiny_tasks())
        events = list(client.events(job.id, timeout=60.0))
        assert events, "stream produced no events"
        assert events[-1]["status"] == "done"
        assert events[-1]["done"] == 2
        # Versions are monotonically increasing along the stream.
        versions = [event["version"] for event in events]
        assert versions == sorted(versions)

    def test_stats_shape(self, server, client):
        job = server.submit("alice", 0, _tiny_tasks(("none",)))
        client.wait(job.id, timeout=60.0)
        stats = client.stats()
        assert stats["backend"]["executed"] >= 1
        assert stats["tenants"]["alice"]["tasks"] >= 1
        assert stats["jobs"]["total"] >= 1
        assert stats["cache"] is None       # this server has no cache
        assert "backlog" in stats["scheduler"]

    def test_wait_timeout_returns_current_state(self, server):
        # A zero-ish timeout long-poll answers immediately with the
        # job still queued/running rather than hanging.
        job = server.submit("alice", 0, _tiny_tasks())
        with urlopen(f"{server.url}/v1/jobs/{job.id}/wait?timeout=0.01",
                     timeout=10) as response:
            payload = json.loads(response.read())
        assert payload["id"] == job.id
        assert payload["status"] in ("queued", "running", "done")


class TestSharedCache:
    def test_warm_repeat_is_served_from_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        server = SweepServer(port=0, jobs=2, cache=cache).start()
        try:
            client = ServeClient(server.url)
            tasks = _tiny_tasks()
            cold = client.wait(server.submit("alice", 0, tasks).id,
                               timeout=60.0, results="full")
            warm = client.wait(server.submit("bob", 0, tasks).id,
                               timeout=60.0, results="full")
            assert cold["executed"] == 2 and cold["cached"] == 0
            assert warm["executed"] == 0 and warm["cached"] == 2
            assert json.dumps(cold["records"], sort_keys=True) \
                == json.dumps(warm["records"], sort_keys=True)
            stats = server.stats()
            assert stats["cache"]["hits"] == 2
            assert stats["cache"]["hit_rate"] == 0.5
        finally:
            server.stop()

    def test_submit_validation(self, server):
        with pytest.raises(ConfigurationError):
            server.submit("alice", 0, [])


class TestRemoteSweep:
    def test_grid_specs_are_grid_ordered(self):
        from repro.analysis import remote_sweep_specs

        specs = remote_sweep_specs(["bert-0.35", "bert-0.64"],
                                   ["none", "mpress"])
        assert [s["label"] for s in specs] == [
            "bert-0.35/none", "bert-0.35/mpress",
            "bert-0.64/none", "bert-0.64/mpress",
        ]
        assert all(s["server"] == "dgx1" for s in specs)

    def test_remote_sweep_returns_cells(self, server):
        from repro.analysis import remote_sweep

        report = remote_sweep(server.url, ["bert-0.35"], ["none"],
                              timeout=120.0)
        assert report.failed == 0
        assert report.executed == 1
        cell = report.cells[0]
        assert (cell.model, cell.system) == ("bert-0.35", "none")
        assert cell.ok and cell.tflops > 0
