"""Discrete-event engine and stream tests."""

import pytest

from repro.errors import ScheduleError, SimulationError
from repro.sim.engine import Engine, Task, TaskState
from repro.sim.resources import Stream, StreamSet


def _setup(mode="fifo"):
    engine = Engine()
    stream = Stream("s", mode=mode)
    engine.register_stream(stream)
    return engine, stream


class TestBasics:
    def test_single_task_runs(self):
        engine, stream = _setup()
        task = stream.submit(Task("t", 1.5))
        assert engine.run() == pytest.approx(1.5)
        assert task.state is TaskState.DONE
        assert task.start_time == 0.0 and task.end_time == 1.5

    def test_fifo_serializes_in_submission_order(self):
        engine, stream = _setup()
        a = stream.submit(Task("a", 1.0))
        b = stream.submit(Task("b", 2.0))
        engine.run()
        assert a.end_time <= b.start_time

    def test_independent_streams_run_concurrently(self):
        engine = Engine()
        s1, s2 = Stream("s1"), Stream("s2")
        engine.register_stream(s1)
        engine.register_stream(s2)
        s1.submit(Task("a", 3.0))
        s2.submit(Task("b", 3.0))
        assert engine.run() == pytest.approx(3.0)

    def test_dependency_across_streams(self):
        engine = Engine()
        s1, s2 = Stream("s1"), Stream("s2")
        engine.register_stream(s1)
        engine.register_stream(s2)
        a = s1.submit(Task("a", 2.0))
        b = s2.submit(Task("b", 1.0, deps=[a]))
        engine.run()
        assert b.start_time == pytest.approx(2.0)

    def test_hooks_fire_at_start_and_end(self):
        engine, stream = _setup()
        events = []
        stream.submit(
            Task(
                "t",
                1.0,
                on_start=lambda t, now: events.append(("start", now)),
                on_done=lambda t, now: events.append(("done", now)),
            )
        )
        engine.run()
        assert events == [("start", 0.0), ("done", 1.0)]

    def test_zero_duration_task(self):
        engine, stream = _setup()
        task = stream.submit(Task("t", 0.0))
        engine.run()
        assert task.end_time == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            Task("t", -1.0)


class TestPoolStreams:
    def test_pool_picks_ready_task_over_blocked_head(self):
        engine = Engine()
        gate_stream = Stream("gate")
        pool = Stream("pool", mode="pool")
        engine.register_stream(gate_stream)
        engine.register_stream(pool)
        gate = gate_stream.submit(Task("gate", 5.0))
        blocked = pool.submit(Task("blocked", 1.0, deps=[gate]))
        ready = pool.submit(Task("ready", 1.0))
        engine.run()
        # FIFO would stall 'ready' behind 'blocked'; pool must not.
        assert ready.start_time == 0.0
        assert blocked.start_time == pytest.approx(5.0)

    def test_pool_still_one_at_a_time(self):
        engine = Engine()
        pool = Stream("pool", mode="pool")
        engine.register_stream(pool)
        a = pool.submit(Task("a", 1.0))
        b = pool.submit(Task("b", 1.0))
        engine.run()
        assert {a.start_time, b.start_time} == {0.0, 1.0}

    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError):
            Stream("s", mode="parallel")


class TestDeadlockDetection:
    def test_cycle_is_reported_not_hung(self):
        engine = Engine()
        s1, s2 = Stream("s1"), Stream("s2")
        engine.register_stream(s1)
        engine.register_stream(s2)
        a = Task("a", 1.0)
        b = Task("b", 1.0, deps=[a])
        a.add_dep(b)
        s1.submit(a)
        s2.submit(b)
        with pytest.raises(ScheduleError, match="deadlock"):
            engine.run()

    def test_fifo_head_blocked_by_later_task_deadlocks(self):
        engine, stream = _setup()
        later = Task("later", 1.0)
        head = Task("head", 1.0, deps=[later])
        stream.submit(head)
        stream.submit(later)
        with pytest.raises(ScheduleError):
            engine.run()


class TestTaskProtocol:
    def test_add_dep_after_start_rejected(self):
        engine, stream = _setup()
        a = stream.submit(Task("a", 1.0))
        engine.run()
        with pytest.raises(SimulationError):
            a.add_dep(Task("x", 1.0))

    def test_double_submission_rejected(self):
        engine, stream = _setup()
        task = stream.submit(Task("t", 1.0))
        with pytest.raises(SimulationError):
            stream.submit(task)

    def test_submit_to_unregistered_stream_rejected(self):
        stream = Stream("orphan")
        with pytest.raises(SimulationError):
            stream.submit(Task("t", 1.0))

    def test_run_until_pauses(self):
        engine, stream = _setup()
        stream.submit(Task("a", 1.0))
        stream.submit(Task("b", 1.0))
        assert engine.run(until=0.5) == 0.5


class TestStreamSet:
    def test_lazy_creation_and_reuse(self):
        engine = Engine()
        streams = StreamSet(engine)
        a = streams.get(("compute", 0))
        b = streams.get(("compute", 0))
        assert a is b
        assert len(streams) == 1

    def test_mode_applies_on_first_creation(self):
        engine = Engine()
        streams = StreamSet(engine)
        pool = streams.get(("lane", 0, 1, 0), mode="pool")
        assert pool.mode == "pool"

    def test_utilization(self):
        engine = Engine()
        streams = StreamSet(engine)
        stream = streams.get("s")
        stream.submit(Task("t", 2.0))
        engine.run()
        assert stream.utilization(4.0) == pytest.approx(0.5)
        assert stream.utilization(0.0) == 0.0
