"""The unified auto-parallel planner: candidate generation under a
memory budget (heterogeneous boxes included), contended sync pricing,
the pruned frontier search, and the surfaces above it (SimTask,
jobspec, CLI).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autoplan import (
    AutoPlanConfig,
    autoplan,
    default_budget_bytes,
    frontier_size,
    generate_candidates,
    price_candidate,
    shape_cluster_config,
    shape_grid,
)
from repro.analysis.cluster_scaling import (
    cluster_scaling_sweep,
    full_shape_grid,
    grid_winner,
)
from repro.errors import ConfigurationError
from repro.hardware.cluster import Cluster
from repro.hardware.device import HostSpec, NVMeSpec
from repro.hardware.links import NVLINK2
from repro.hardware.server import Server
from repro.hardware.topology import Topology
from repro.jobspec import task_from_spec
from repro.models.config import TransformerConfig
from repro.models.layers import build_model
from repro.parallel.cluster import ClusterPlacement, cluster_placement
from repro.parallel.placement import ReplicaPlacement
from repro.runtime.task import SimTask, execute_task
from repro.units import GBps, GiB
from tests.conftest import TINY_GPU, small_server, tiny_job


def two_gpu_server() -> Server:
    """A half-size box for heterogeneous-cluster tests."""
    topology = Topology(n_gpus=2, kind="direct", nvlink=NVLINK2,
                        adjacency={frozenset((0, 1)): 2})
    return Server(
        name="small-2gpu",
        gpus=[TINY_GPU] * 2,
        topology=topology,
        host=HostSpec(memory_bytes=64 * GiB, vcpus=16),
        nvme=NVMeSpec(capacity_bytes=512 * GiB, read_bandwidth=4 * GBps,
                      write_bandwidth=3 * GBps),
    )


@pytest.fixture(scope="module")
def cluster():
    return Cluster(name="2x-small", servers=(small_server(), small_server()))


@pytest.fixture(scope="module")
def mixed_cluster():
    return Cluster(name="mixed", servers=(small_server(), two_gpu_server()))


@pytest.fixture(scope="module")
def job():
    return tiny_job()


# -- layer 1: the candidate generator ------------------------------------


class TestShapeGrid:
    def test_blocks_fit_largest_server(self, cluster):
        for tp, dp, pp in shape_grid(cluster):
            assert tp * pp <= 4          # chains never straddle a box
            assert tp * dp * pp <= cluster.topology.n_gpus

    def test_heterogeneous_grid_uses_largest_box(self, mixed_cluster):
        shapes = shape_grid(mixed_cluster)
        assert (4, 1, 1) in shapes       # fits the 4-GPU box
        assert all(tp * pp <= 4 for tp, _, pp in shapes)
        assert all(tp * dp * pp <= 6 for tp, dp, pp in shapes)

    def test_default_budget_is_smallest_gpu(self, mixed_cluster):
        assert default_budget_bytes(mixed_cluster) == TINY_GPU.memory_bytes


class TestGenerateCandidates:
    def test_every_shape_accounted_for(self, job, cluster):
        candidates, rejected = generate_candidates(job, cluster)
        assert len(candidates) + len(rejected) == len(shape_grid(cluster))

    def test_chains_never_straddle_servers(self, job, mixed_cluster):
        candidates, _ = generate_candidates(job, mixed_cluster)
        topology = mixed_cluster.topology
        assert candidates
        for candidate in candidates:
            for replica in candidate.placement.chains:
                for chain in replica:
                    assert len({topology.server_of(d) for d in chain}) == 1

    def test_budget_infeasible_rejected_with_reason(self, job, cluster):
        candidates, rejected = generate_candidates(
            job, cluster, budget_bytes=1024)
        assert not candidates
        assert len(rejected) == len(shape_grid(cluster))
        for reject in rejected:
            assert "budget" in reject.reason

    def test_unshardable_tp_rejected_with_reason(self, cluster):
        config = TransformerConfig(
            name="Tiny-2head", n_layers=6, hidden=256, heads=2,
            vocab=1000, seq_len=64, max_positions=128)
        job = tiny_job(model=build_model(config))
        candidates, rejected = generate_candidates(job, cluster)
        assert all(c.tp <= 2 for c in candidates)
        tp4 = [r for r in rejected if r.tp == 4]
        assert tp4 and all("head" in r.reason for r in tp4)

    def test_demand_dominates_floor(self, job, cluster):
        candidates, _ = generate_candidates(job, cluster)
        for candidate in candidates:
            assert len(candidate.stage_demand_bytes) == max(candidate.pp, 1)
            for demand, floor in zip(candidate.stage_demand_bytes,
                                     candidate.stage_floor_bytes):
                assert demand >= floor

    def test_over_budget_but_floor_fits_is_kept_flagged(self, job, cluster):
        candidates, _ = generate_candidates(job, cluster)
        floors = max(max(c.stage_floor_bytes) for c in candidates)
        demands = max(c.peak_demand_bytes for c in candidates)
        assert demands > floors
        budget = (floors + demands) // 2
        squeezed, rejected = generate_candidates(
            job, cluster, budget_bytes=budget)
        flagged = [c for c in squeezed if not c.fits_unaided]
        assert flagged                   # pressured shapes kept, not dropped
        for candidate in flagged:
            assert max(candidate.stage_floor_bytes) <= budget


# -- layer 2: contended pricing ------------------------------------------


def _price_all(job, cluster, budget=None, config=None):
    config = config or AutoPlanConfig()
    budget = budget if budget is not None else default_budget_bytes(cluster)
    candidates, _ = generate_candidates(job, cluster)
    flat = cluster.as_server()
    return [
        price_candidate(job, cluster, candidate,
                        shape_cluster_config(candidate.shape, config),
                        budget, flat_server=flat)
        for candidate in candidates
    ]


class TestPricing:
    def test_contended_never_cheaper_than_independent(self, job, cluster):
        prices = _price_all(job, cluster)
        assert any(p.crosses_fabric for p in prices)
        for price in prices:
            assert price.contended_sync_seconds >= \
                price.independent_sync_seconds - 1e-12
            assert price.contention_seconds >= 0.0

    def test_no_contention_without_tp_or_fabric(self, job, cluster):
        for price in _price_all(job, cluster):
            if price.tp == 1 and not price.crosses_fabric:
                assert price.contention_seconds == pytest.approx(0.0)

    def test_overflow_charges_pcie_pressure(self, job, cluster):
        candidates, _ = generate_candidates(job, cluster)
        floors = max(max(c.stage_floor_bytes) for c in candidates)
        demands = max(c.peak_demand_bytes for c in candidates)
        budget = (floors + demands) // 2
        config = AutoPlanConfig()
        flat = cluster.as_server()
        squeezed, _ = generate_candidates(job, cluster, budget_bytes=budget)
        prices = [
            price_candidate(job, cluster, candidate,
                            shape_cluster_config(candidate.shape, config),
                            budget, flat_server=flat)
            for candidate in squeezed
        ]
        over = [p for p in prices if not p.fits_unaided]
        assert over and all(p.pressure_seconds > 0 for p in over)
        assert all(p.pressure_seconds == 0 for p in prices if p.fits_unaided)

    @settings(max_examples=8, deadline=None)
    @given(
        microbatch_size=st.integers(min_value=1, max_value=4),
        microbatches=st.integers(min_value=2, max_value=8),
    )
    def test_contention_property_over_job_geometry(
            self, microbatch_size, microbatches):
        cluster = Cluster(name="2x-small",
                          servers=(small_server(), small_server()))
        job = tiny_job(microbatch_size=microbatch_size,
                       microbatches_per_minibatch=microbatches)
        for price in _price_all(job, cluster):
            assert price.contended_sync_seconds >= \
                price.independent_sync_seconds - 1e-12
            if price.tp == 1 and not price.crosses_fabric:
                assert price.contention_seconds == pytest.approx(0.0)


# -- layer 3: the frontier search ----------------------------------------


class TestFrontierSize:
    def test_fraction_and_cap(self):
        assert frontier_size(16, AutoPlanConfig()) == 4
        assert frontier_size(30, AutoPlanConfig()) == 8
        assert frontier_size(16, AutoPlanConfig(max_frontier=2)) == 2
        assert frontier_size(1, AutoPlanConfig()) == 1
        assert frontier_size(0, AutoPlanConfig()) == 0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            AutoPlanConfig(frontier_fraction=0.0)
        with pytest.raises(ConfigurationError):
            AutoPlanConfig(frontier_fraction=1.5)
        with pytest.raises(ConfigurationError):
            AutoPlanConfig(max_frontier=0)
        with pytest.raises(ConfigurationError):
            AutoPlanConfig(budget_gib=-1)


class TestAutoplan:
    def test_winner_matches_exhaustive_grid(self, job, cluster):
        report = autoplan(job, cluster)
        assert report.simulated_fraction <= 0.30
        assert report.best is not None and report.best.ok
        shapes = full_shape_grid(job, cluster)
        cells = cluster_scaling_sweep(job, cluster, shapes=shapes)
        winner = grid_winner(cells)
        assert report.best.shape == (winner.tp, winner.dp, winner.pp)
        assert report.best.samples_per_second == pytest.approx(
            winner.samples_per_second)

    def test_counters_consistent(self, job, cluster):
        report = autoplan(job, cluster)
        assert report.n_enumerated == report.n_valid + report.n_rejected
        assert report.n_priced == report.n_valid == len(report.ranked)
        assert report.n_simulated == \
            sum(1 for row in report.ranked if row.simulated)
        assert report.n_simulated == frontier_size(
            report.n_valid, report.config)

    def test_ranking_is_deterministic(self, job, cluster):
        first = autoplan(job, cluster)
        second = autoplan(job, cluster)
        assert [r.shape for r in first.ranked] == \
            [r.shape for r in second.ranked]
        assert [r.reason for r in first.rejected] == \
            [r.reason for r in second.rejected]

    def test_report_json_surface(self, job, cluster):
        report = autoplan(job, cluster)
        payload = json.loads(report.json_text(job))
        assert payload["cluster"] == cluster.name
        assert payload["best"]["tp"] == report.best.price.tp
        assert payload["counters"]["n_simulated"] == report.n_simulated
        assert len(payload["ranked"]) == len(report.ranked)
        row = payload["best"]
        for key in ("exposed_tp_sync", "exposed_allreduce",
                    "contention_seconds", "peak_demand_gib", "peak_gib",
                    "samples_per_second", "cache_key"):
            assert key in row
        assert report.summary().startswith("autoplan over")

    def test_infeasible_budget_reports_rejections(self, job, cluster):
        report = autoplan(job, cluster, budget_gib=2 ** -20)  # 1 KiB
        assert report.best is None
        assert report.n_valid == 0
        assert report.n_rejected == report.n_enumerated > 0
        assert all("budget" in r.reason for r in report.rejected)

    def test_accepts_bare_server(self, job):
        report = autoplan(job, small_server())
        assert report.best is not None and report.best.ok
        assert all(row.price.dp * row.price.tp * max(row.price.pp, 1) <= 4
                   for row in report.ranked)

    def test_heterogeneous_cluster(self, job, mixed_cluster):
        report = autoplan(job, mixed_cluster)
        assert report.best is not None and report.best.ok
        assert report.simulated_fraction <= 0.30


# -- canonical tie-breaking ----------------------------------------------


class TestTieBreaks:
    def test_cluster_key_prefers_packed_then_stage_major(self):
        base = dict(chains=(((0, 1),), ((2, 3),)), tp_score=0.0,
                    allreduce_score=0.5, pipeline_score=0.5)
        packed = ClusterPlacement(mode="packed", stage_major=True, **base)
        spread = ClusterPlacement(mode="spread", stage_major=True, **base)
        minor = ClusterPlacement(mode="packed", stage_major=False, **base)
        assert packed.canonical_key < spread.canonical_key
        assert packed.canonical_key < minor.canonical_key
        assert sorted([spread, minor, packed],
                      key=lambda p: p.canonical_key)[0] is packed

    def test_replica_key_is_alphabetical_at_equal_score(self):
        base = dict(groups=((0, 1), (2, 3)),
                    allreduce_score=0.5, pipeline_score=0.5)
        contiguous = ReplicaPlacement(mode="contiguous", **base)
        islands = ReplicaPlacement(mode="islands", **base)
        strided = ReplicaPlacement(mode="strided", **base)
        ordered = sorted([strided, islands, contiguous],
                         key=lambda p: p.canonical_key)
        assert [p.mode for p in ordered] == \
            ["contiguous", "islands", "strided"]

    def test_cluster_placement_is_stable(self, cluster):
        first = cluster_placement(cluster.topology, 2, 2, 2)
        second = cluster_placement(cluster.topology, 2, 2, 2)
        assert first == second


# -- the SimTask surface -------------------------------------------------


class TestSimTaskAutoplan:
    def test_requires_cluster(self, job):
        with pytest.raises(ConfigurationError, match="Cluster"):
            SimTask(label="t", job=job, system="mpress",
                    autoplan=AutoPlanConfig())

    def test_rejects_explicit_cluster_config(self, job, cluster):
        from repro.parallel.cluster import ClusterConfig

        with pytest.raises(ConfigurationError, match="shape"):
            SimTask(label="t", job=job, system="mpress", cluster=cluster,
                    cluster_config=ClusterConfig(tp=1, dp=2, pp=2),
                    autoplan=AutoPlanConfig())

    def test_key_payload_is_gated(self, job, cluster):
        from repro.parallel.cluster import ClusterConfig

        plain = SimTask(label="t", job=job, system="mpress", cluster=cluster,
                        cluster_config=ClusterConfig(tp=1, dp=2, pp=2))
        auto = SimTask(label="t", job=job, system="mpress", cluster=cluster,
                       autoplan=AutoPlanConfig())
        assert "autoplan" not in plain.key_payload()
        assert "autoplan" in auto.key_payload()
        assert plain.cache_key() != auto.cache_key()

    def test_execute_mirrors_winner(self, job, cluster):
        task = SimTask(label="t", job=job, system="mpress", cluster=cluster,
                       autoplan=AutoPlanConfig(max_frontier=2))
        record = execute_task(task)
        assert record["ok"]
        report = record["autoplan"]
        assert report["counters"]["n_simulated"] == 2
        best = report["best"]
        assert record["samples_per_second"] == \
            pytest.approx(best["samples_per_second"])
        assert record["tflops"] == pytest.approx(best["tflops"])

    def test_frontier_keys_match_exhaustive_cells(self, job, cluster):
        """Autoplan frontier tasks warm the same cache as grid sweeps."""
        from repro.analysis.cluster_scaling import cluster_scaling_tasks

        shape = (1, 2, 2)
        frontier_config = shape_cluster_config(shape, AutoPlanConfig())
        frontier = SimTask(
            label="autoplan/mpress/2x-small/tp=1,dp=2,pp=2", job=job,
            system="mpress", cluster=cluster,
            cluster_config=frontier_config)
        [sweep] = cluster_scaling_tasks(job, cluster, shapes=[shape])
        assert frontier.cache_key() == sweep.cache_key()


# -- the jobspec surface -------------------------------------------------


class TestJobspecAutoplan:
    SPEC = {"model": "gpt-5.3", "server": "dgx1", "n_minibatches": 2}

    def test_shape_auto_builds_autoplan_task(self):
        task = task_from_spec({**self.SPEC, "shape": "auto"})
        assert task.autoplan is not None
        assert task.cluster is not None       # forced even for one box
        assert task.cluster_config is None
        assert task.label.endswith("/shape=auto")

    def test_budget_gib_flows_through(self):
        task = task_from_spec(
            {**self.SPEC, "nodes": 2, "shape": "auto", "budget_gib": 12})
        assert task.autoplan.budget_gib == 12.0
        assert task.cluster.n_servers == 2

    def test_explicit_degrees_conflict(self):
        with pytest.raises(ConfigurationError, match="tp"):
            task_from_spec({**self.SPEC, "shape": "auto", "tp": 2})

    def test_budget_without_auto_rejected(self):
        with pytest.raises(ConfigurationError, match="budget_gib"):
            task_from_spec({**self.SPEC, "budget_gib": 12})

    def test_unknown_shape_rejected(self):
        with pytest.raises(ConfigurationError, match="shape"):
            task_from_spec({**self.SPEC, "shape": "best"})

    def test_explicit_shape_unchanged(self):
        task = task_from_spec({**self.SPEC, "nodes": 2, "tp": 2, "dp": 2})
        assert task.autoplan is None
        assert task.cluster_config is not None
