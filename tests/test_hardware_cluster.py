"""The hierarchical cluster fabric: tiers, channels, identity."""

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.hardware.cluster import (
    Cluster,
    ClusterTopology,
    dgx1_cluster,
    dgx2_cluster,
    make_cluster,
)
from repro.hardware.links import ETH_100G, IB_EDR, IB_HDR, NVLINK2
from repro.hardware.server import dgx1_server
from repro.hardware.topology import dgx1_topology, dgx2_topology


@pytest.fixture
def topo():
    return dgx1_cluster(2).topology


# -- structure -----------------------------------------------------------


def test_global_numbering_is_server_contiguous(topo):
    assert topo.n_servers == 2
    assert topo.n_gpus == 16
    assert topo.server_offsets() == [0, 8]
    assert topo.server_devices(0) == tuple(range(8))
    assert topo.server_devices(1) == tuple(range(8, 16))
    assert topo.server_of(7) == 0
    assert topo.server_of(8) == 1
    assert topo.local_index(11) == (1, 3)


def test_heterogeneous_servers_offsets():
    mixed = ClusterTopology(servers=(dgx1_topology(), dgx2_topology(4)))
    assert mixed.n_gpus == 12
    assert mixed.server_offsets() == [0, 8]
    assert mixed.local_index(10) == (1, 2)


# -- tiers ---------------------------------------------------------------


def test_tiers_local_fabric_rack():
    topo = dgx1_cluster(4, racks=((0, 1), (2, 3)),
                        inter_rack_fabric=ETH_100G).topology
    assert topo.tier(0, 7) == "local"
    assert topo.tier(0, 8) == "fabric"
    assert topo.tier(0, 16) == "rack"
    assert topo.link_for(0, 3) == NVLINK2
    assert topo.link_for(0, 8) == IB_EDR
    assert topo.link_for(0, 16) == ETH_100G


def test_local_pairs_keep_server_asymmetry(topo):
    # DGX-1 brick counts survive on both boxes, at global offsets.
    assert topo.lanes(0, 3) == 2
    assert topo.lanes(0, 1) == 1
    assert topo.lanes(8, 11) == 2
    assert topo.lanes(3, 4) == 0      # unlinked local pair stays unlinked
    assert topo.lanes(0, 8) == 1      # cross-server: one NIC lane


def test_link_for_routes_by_tier(topo):
    assert topo.link_for(1, 2) == NVLINK2
    assert topo.link_for(2, 14) == IB_EDR
    assert topo.tier(2, 14) == "fabric"   # no racks declared -> one rack


# -- channels ------------------------------------------------------------


def test_local_channels_are_prefixed_per_server(topo):
    left = topo.lane_channels(0, 3)
    right = topo.lane_channels(8, 11)
    assert all(key[:2] == ("srv", 0) for key in left)
    assert all(key[:2] == ("srv", 1) for key in right)
    assert len(left) == len(right) == 2
    assert set(left).isdisjoint(right)


def test_cross_server_channels_are_per_source_gpu(topo):
    assert topo.lane_channels(0, 8) == [("nic", 0, 0)]
    assert topo.lane_channels(8, 0) == [("nic", 8, 0)]
    with pytest.raises(TopologyError):
        topo.lane_channels(3, 4)      # no local route, not cross-server


def test_all_lane_channels_cover_both_tiers(topo):
    keys = topo.all_lane_channels()
    local = dgx1_topology().all_lane_channels()
    assert len(keys) == 2 * len(local) + 16   # two boxes + one NIC per GPU
    assert len(set(keys)) == len(keys)


def test_neighbors_spans_fabric(topo):
    peers = topo.neighbors(0)
    assert set(range(8, 16)) <= set(peers)    # every remote GPU
    assert 3 in peers and 5 not in peers      # local NVLink peers only


# -- identity ------------------------------------------------------------


def test_topology_key_distinguishes_fabric_and_shape():
    a = dgx1_cluster(2).topology.topology_key()
    b = dgx1_cluster(2, fabric=IB_HDR).topology.topology_key()
    c = dgx1_cluster(3).topology.topology_key()
    d = dgx2_cluster(2).topology.topology_key()
    assert len({a, b, c, d}) == 4
    assert a == dgx1_cluster(2).topology.topology_key()
    hash(a)                                    # memoisation key


# -- validation ----------------------------------------------------------


def test_rejects_non_fabric_link():
    with pytest.raises(TopologyError):
        ClusterTopology(servers=(dgx1_topology(),) * 2, fabric=NVLINK2)


def test_rejects_bad_racks():
    with pytest.raises(TopologyError):
        dgx1_cluster(3, racks=((0, 1),)).topology
    with pytest.raises(TopologyError):
        dgx1_cluster(2, racks=((0, 1), (1,))).topology


def test_rejects_empty_cluster():
    with pytest.raises(ConfigurationError):
        Cluster(name="empty", servers=())
    with pytest.raises(ConfigurationError):
        make_cluster(dgx1_server, 0)


def test_out_of_range_gpu():
    topo = dgx1_cluster(2).topology
    with pytest.raises(TopologyError):
        topo.lanes(0, 16)
    with pytest.raises(TopologyError):
        topo.server_devices(2)


# -- the flat server view ------------------------------------------------


def test_as_server_presents_all_gpus():
    cluster = dgx1_cluster(2)
    flat = cluster.as_server()
    assert flat.n_gpus == 16
    assert flat.topology.kind == "cluster"
    assert flat.name == "2x-dgx1"
    assert flat.host == cluster.servers[0].host
