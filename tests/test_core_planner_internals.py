"""Planner internals: congestion model, demand vectors, budgets."""

import pytest

from repro.core.cost_model import CostModel
from repro.core.plan import Action
from repro.core.planner import Planner, PlannerConfig
from repro.core.profiler import Profiler
from repro.graph.tensor import TensorKind

from tests.conftest import small_server, tiny_job, tiny_model


@pytest.fixture(scope="module")
def setup():
    job = tiny_job(
        server=small_server(),
        model=tiny_model(n_layers=10),
        microbatch_size=8,
        microbatches_per_minibatch=6,
    )
    planner = Planner(job, PlannerConfig())
    profile = Profiler(job).run()
    planner._device_map = list(range(job.n_stages))
    planner._classes_by_key = {c.key: c for c in profile.classes}
    planner._intervals = profile.intervals
    cost_model = CostModel(job, planner._device_map, profile.intervals)
    return job, planner, profile, cost_model


def _act(profile, stage=0):
    acts = [
        c for c in profile.classes_of_stage(stage)
        if c.kind is TensorKind.ACTIVATION
    ]
    return max(acts, key=lambda c: c.size)


class TestCongestionModel:
    def test_swap_seconds_is_pcie_round_trip(self, setup):
        job, planner, profile, _ = setup
        cls = _act(profile)
        expected = 2.0 * cls.size / job.server.pcie.sustained_bandwidth
        assert planner._swap_seconds(cls) == pytest.approx(expected)

    def test_optimizer_swap_amortized_over_minibatch(self, setup):
        job, planner, profile, _ = setup
        opt = next(
            c for c in profile.classes
            if c.kind is TensorKind.OPTIMIZER_STATE and c.stage == 0
        )
        per_mb = planner._swap_seconds(opt)
        raw = 2.0 * opt.size / job.server.pcie.sustained_bandwidth
        assert per_mb == pytest.approx(raw / job.microbatches_per_minibatch)

    def test_load_accumulates_with_assignments(self, setup):
        _, planner, profile, _ = setup
        cls = _act(profile)
        empty_load = planner._stage_pcie_load(0, {})
        loaded = planner._stage_pcie_load(0, {cls.key: (Action.CPU_SWAP, None)})
        assert empty_load == 0.0
        assert loaded == pytest.approx(planner._swap_seconds(cls))

    def test_congestion_surfaces_beyond_budget(self, setup):
        _, planner, profile, _ = setup
        cls = _act(profile)
        # With a saturated stage the extra approaches the swap time.
        acts = [
            c for c in profile.classes_of_stage(0)
            if c.kind is TensorKind.ACTIVATION
        ]
        assignments = {c.key: (Action.CPU_SWAP, None) for c in acts}
        extra = planner._congested_cpu_extra(cls, 0.0, assignments)
        assert extra > 0.0
        assert extra <= planner._swap_seconds(cls) + 1e-12


class TestDemandAndBudgets:
    def test_demand_zero_without_overflow(self, setup):
        _, planner, profile, _ = setup
        assert planner._d2d_demand_for(0, 0, profile) == 0

    def test_demand_covers_parked_instances(self, setup):
        _, planner, profile, _ = setup
        cls = _act(profile)
        overflow = cls.size  # less than one class's saving
        demand = planner._d2d_demand_for(0, overflow, profile)
        # One whole class parks size*instances (+slack).
        assert demand >= cls.size * cls.instances

    def test_demand_scales_with_overflow(self, setup):
        _, planner, profile, _ = setup
        small = planner._d2d_demand_for(0, 10 * 2**20, profile)
        large = planner._d2d_demand_for(0, 200 * 2**20, profile)
        assert large >= small

    def test_global_headroom_respects_import_cap(self, setup):
        job, planner, _, _ = setup
        capacity = job.server.gpu_memory
        budgets = planner._global_headroom([0, capacity, capacity * 2, 0])
        assert budgets[1] == 0
        assert budgets[2] == 0
        assert budgets[0] > 0
        assert budgets[0] < capacity

    def test_state_bytes_counts_state_kinds(self, setup):
        _, planner, profile, _ = setup
        classes = profile.classes_of_stage(0)
        expected = sum(
            c.peak_bytes for c in classes
            if c.kind in (TensorKind.WORKING_STATE, TensorKind.OPTIMIZER_STATE,
                          TensorKind.STASHED_PARAMS)
        )
        assert planner._state_bytes(classes) == expected


class TestClaims:
    def test_claim_deducts_budget(self, setup):
        _, planner, profile, cost_model = setup
        cls = _act(profile)
        budgets = {dev: cls.size * cls.instances * 2 for dev in (1, 2, 3)}
        before = dict(budgets)
        stripe = planner._claim_d2d(cls, cost_model, budgets)
        assert stripe is not None
        spent = sum(before[d] - budgets[d] for d in budgets)
        assert spent == stripe.tensor_bytes * cls.instances

    def test_partial_claim_when_budget_tight(self, setup):
        _, planner, profile, cost_model = setup
        cls = _act(profile)
        # Budget holds only ~half the parked bytes.
        budgets = {dev: cls.size * cls.instances // 4 for dev in (1, 2, 3)}
        stripe = planner._claim_d2d(cls, cost_model, budgets)
        assert stripe is not None
        assert stripe.tensor_bytes < cls.size

    def test_claim_fails_without_budget(self, setup):
        _, planner, profile, cost_model = setup
        cls = _act(profile)
        assert planner._claim_d2d(cls, cost_model, {}) is None
        tiny = {dev: 1024 for dev in (1, 2, 3)}
        assert planner._claim_d2d(cls, cost_model, tiny) is None
