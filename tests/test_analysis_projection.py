"""Section V projection tests."""

import pytest

from repro.analysis.projection import (
    GRACE_HOPPER,
    SuperchipSpec,
    gpt3_model,
    project,
)
from repro.errors import ConfigurationError
from repro.units import GBps


def test_gpt3_parameter_count():
    model = gpt3_model()
    assert abs(model.total_params - 175e9) / 175e9 < 0.05


def test_gpt3_overflows_grace_hopper_hbm():
    # The paper: "even with 96GB (HBM) + 512GB ... training 175B GPT-3
    # still faces the OOM problem" on the fast tier.
    report = project()
    assert not report.fits_hbm
    assert report.fits_with_cpu_memory


def test_required_hiding_bandwidth_exceeds_paper_threshold():
    # Paper: "we expect the PCI-e bandwidth to exceed 140 GB/s".
    report = project()
    assert report.required_hiding_bandwidth > 140 * GBps
    # And the chip's 64 GB/s link exposes substantial swap time.
    assert report.swap_exposed_fraction > 0.1


def test_recompute_waste_is_quarter_of_compute():
    # Paper: D2D can save "25% of wasted resources by Recomputation".
    assert project().recompute_waste_fraction == pytest.approx(0.25)


def test_bigger_fleet_relieves_pressure():
    eight = project(n_devices=8)
    sixteen = project(n_devices=16)
    assert sixteen.state_bytes_per_device < eight.state_bytes_per_device


def test_faster_link_hides_more():
    fat_link = SuperchipSpec(
        name="future",
        hbm_bytes=GRACE_HOPPER.hbm_bytes,
        cpu_bytes=GRACE_HOPPER.cpu_bytes,
        cpu_link_bandwidth=200 * GBps,
        peak_fp16=GRACE_HOPPER.peak_fp16,
    )
    assert project(superchip=fat_link).swap_exposed_fraction < (
        project().swap_exposed_fraction
    )


def test_small_model_fits_everywhere():
    from tests.conftest import tiny_model

    report = project(model=tiny_model(), n_devices=2)
    assert report.fits_hbm
    assert report.swap_exposed_fraction == 0.0


def test_summary_mentions_key_quantities():
    text = project().summary()
    assert "GB/s" in text and "GiB" in text and "recomputation" in text.lower()


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        SuperchipSpec("bad", 0, 1, 1.0, 1.0)
    with pytest.raises(ConfigurationError):
        SuperchipSpec("bad", 1, 1, 0.0, 1.0)
