"""Executor edge cases: device maps, comm fallback, schedules."""

import pytest

from repro.core.plan import MemorySavingPlan
from repro.errors import SimulationError
from repro.sim.executor import PipelineExecutor, simulate

from tests.conftest import tiny_job


class TestDeviceMaps:
    def test_permuted_device_map_executes(self):
        job = tiny_job()
        plan = MemorySavingPlan(device_map=[3, 1, 0, 2])
        result = simulate(job, plan, strict=False)
        assert result.ok
        # Stage 0's compute landed on device 3.
        fwd_devices = {e.device for e in result.trace.events if e.kind == "fwd"}
        assert fwd_devices == {0, 1, 2, 3}

    def test_pcie_fallback_for_unlinked_stages(self):
        # The small topology links every pair, so build a map where
        # adjacency still holds, then check DGX-1 where it can break.
        from repro.hardware.server import dgx1_server
        from repro.models import bert_variant
        from repro.job import pipedream_job

        job = pipedream_job(bert_variant(0.35), dgx1_server(), n_minibatches=4)
        # GPU0 and GPU5 share no NVLink lane on the DGX-1 cube mesh;
        # force stages 0->1 onto that pair.
        device_map = [0, 5, 1, 2, 3, 4, 6, 7]
        plan = MemorySavingPlan(device_map=device_map)
        result = simulate(job, plan, strict=False)
        assert result.ok
        # A direct mapping communicates faster than the PCIe detour.
        direct = simulate(job, strict=False)
        assert direct.minibatch_time <= result.minibatch_time

    def test_wrong_length_device_map_rejected(self):
        job = tiny_job()
        plan = MemorySavingPlan(device_map=[0, 1, 2])
        with pytest.raises(SimulationError):
            PipelineExecutor(job, plan)


class TestGeometry:
    def test_single_microbatch_minibatch(self):
        job = tiny_job(microbatches_per_minibatch=1, n_minibatches=3)
        result = simulate(job, strict=False)
        assert result.ok

    def test_many_minibatches_steady_state(self):
        short = simulate(tiny_job(n_minibatches=2), strict=False)
        long = simulate(tiny_job(n_minibatches=6), strict=False)
        # Steady-state per-minibatch period is stable across horizon.
        assert long.minibatch_time == pytest.approx(short.minibatch_time, rel=0.15)

    def test_more_microbatches_amortize_bubble(self):
        few = simulate(tiny_job(microbatches_per_minibatch=4), strict=False)
        many = simulate(tiny_job(microbatches_per_minibatch=16), strict=False)
        assert many.tflops > few.tflops


class TestTraceContents:
    def test_comm_events_present(self):
        result = simulate(tiny_job(), strict=False)
        comm = result.trace.by_kind("comm")
        # fwd and bwd boundary transfers between 3 stage boundaries.
        assert len(comm) == 2 * 3 * tiny_job().schedule.total_microbatches

    def test_opt_events_per_stage_per_minibatch(self):
        job = tiny_job(n_minibatches=3)
        result = simulate(job, strict=False)
        opts = result.trace.by_kind("opt")
        assert len(opts) == 3 * job.n_stages

    def test_per_layer_events(self):
        job = tiny_job()
        result = simulate(job, strict=False)
        fwd = result.trace.by_kind("fwd")
        assert len(fwd) == job.model.n_layers * job.schedule.total_microbatches
        assert all(e.layer >= 0 for e in fwd)
