"""Collective lowering onto the instruction IR.

The analytic model prices each round at its bottleneck pair and sums
rounds; the lowered program runs the same rounds on per-lane channels
behind barriers.  These tests pin the two paths against each other.
"""

import pytest

from repro.collectives import (
    all_reduce_schedule,
    collective_time,
    hierarchical_all_reduce,
    lower_collective,
    ring_all_reduce,
    ring_order,
    simulate_collective,
    simulate_collective_time,
    tree_all_reduce,
)
from repro.sim.ir import Barrier, ExecOptions, P2PSend
from repro.units import MiB

from tests.conftest import small_server, small_switched_server

SIZE = 8 * MiB


def lanes_of(server, step):
    return server.topology.lanes(step.src, step.dst)


def test_program_structure_matches_schedule():
    server = small_server()
    sched = ring_all_reduce(ring_order(server.topology, range(4)), SIZE)
    program = lower_collective(server, sched)
    sends = [i for i in program.instructions if isinstance(i, P2PSend)]
    barriers = [i for i in program.instructions if isinstance(i, Barrier)]
    # One barrier per non-empty round; one send per lane per linked
    # step, one per unlinked step.
    assert len(barriers) == sched.n_rounds
    expected_sends = sum(
        max(1, lanes_of(server, step))
        for rnd in sched.rounds for step in rnd
    )
    assert len(sends) == expected_sends


def test_simulated_time_matches_analytic_ring():
    server = small_server()
    topo = server.topology
    sched = ring_all_reduce(ring_order(topo, range(4)), SIZE)
    analytic = collective_time(sched, topo)
    simulated = simulate_collective_time(server, sched)
    assert simulated == pytest.approx(analytic, rel=1e-6)


def test_simulated_time_matches_analytic_hierarchical():
    server = small_server()
    topo = server.topology
    sched = hierarchical_all_reduce(topo, range(4), SIZE)
    assert simulate_collective_time(server, sched) == pytest.approx(
        collective_time(sched, topo), rel=1e-6)


def test_simulated_time_matches_analytic_tree_switched():
    server = small_switched_server()
    topo = server.topology
    sched = tree_all_reduce((0, 1, 2, 3), SIZE)
    assert simulate_collective_time(server, sched) == pytest.approx(
        collective_time(sched, topo), rel=1e-6)


def test_rounds_are_barrier_ordered():
    """No send of round r+1 may start before round r's barrier."""
    server = small_switched_server()
    sched = ring_all_reduce((0, 1, 2, 3), SIZE)
    result = simulate_collective(
        server, sched, ExecOptions(record_trace=True))
    assert result.ok
    events = [e for e in result.trace.events if e.kind == "coll"]
    assert events, "record_trace must emit one event per step"
    # Round indices (stored in the microbatch slot) never regress
    # along the timeline.
    ordered = sorted(events, key=lambda e: e.start)
    indices = [e.microbatch for e in ordered]
    assert indices == sorted(indices)


def test_lowering_uses_pcie_fallback_for_unlinked_pairs():
    server = small_server()
    sched = all_reduce_schedule(server.topology, range(4), SIZE,
                                algorithm="tree")
    program = lower_collective(server, sched)
    names = [i.name for i in program.instructions]
    linked = {frozenset(p) for p in server.topology.adjacency}
    has_unlinked = any(
        frozenset((step.src, step.dst)) not in linked
        for rnd in sched.rounds for step in rnd
    )
    assert has_unlinked == any(name.endswith(".pcie") for name in names)
