"""Paged KV-cache ledger: refcounts, prefix sharing, and book parity."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.inference.kvcache import KVBlockManager
from repro.sim.memory import DeviceMemory

BLOCK = 64


def manager(capacity_blocks: int = 100) -> KVBlockManager:
    book = DeviceMemory("gpu0", capacity=capacity_blocks * BLOCK, strict=True)
    return KVBlockManager(book, block_bytes=BLOCK)


class TestLifecycle:
    def test_admit_append_free_balance_the_book(self):
        kv = manager()
        assert kv.admit(1, 3, now=0.0) == 3 * BLOCK
        assert kv.bytes_in_use == 3 * BLOCK
        assert kv.append(1, 2, now=1.0) == 2 * BLOCK
        assert kv.blocks_of(1) == [0, 1, 2, 3, 4]
        assert kv.free_request(1, now=2.0) == 5 * BLOCK
        assert kv.bytes_in_use == 0
        kv.check_books()

    def test_evict_then_restore_round_trips(self):
        kv = manager()
        kv.admit(1, 4, now=0.0)
        freed = kv.evict_private(1, now=1.0)
        assert freed == 4 * BLOCK
        assert kv.blocks_of(1) == []
        kv.restore_private(1, 4, now=2.0)
        assert kv.private_blocks(1) == 4
        kv.check_books()

    def test_can_allocate_respects_capacity(self):
        kv = manager(capacity_blocks=4)
        kv.admit(1, 3, now=0.0)
        assert kv.can_allocate(1)
        assert not kv.can_allocate(2)

    def test_double_admit_rejected(self):
        kv = manager()
        kv.admit(1, 1, now=0.0)
        with pytest.raises(SimulationError, match="admitted twice"):
            kv.admit(1, 1, now=1.0)

    def test_double_free_rejected(self):
        kv = manager()
        kv.admit(1, 2, now=0.0)
        kv.free_request(1, now=1.0)
        with pytest.raises(SimulationError, match="no KV blocks"):
            kv.free_request(1, now=2.0)


class TestPrefixSharing:
    def test_second_sharer_allocates_no_prefix_bytes(self):
        kv = manager()
        first = kv.admit(1, 5, now=0.0, prefix_key="sys", prefix_blocks=2)
        assert first == 5 * BLOCK
        second = kv.admit(2, 4, now=1.0, prefix_key="sys", prefix_blocks=2)
        assert second == 2 * BLOCK  # only the private tail
        assert kv.blocks_of(1)[:2] == kv.blocks_of(2)[:2]
        kv.check_books()

    def test_prefix_survives_all_sharers_leaving(self):
        kv = manager()
        kv.admit(1, 3, now=0.0, prefix_key="sys", prefix_blocks=2)
        freed = kv.free_request(1, now=1.0)
        assert freed == 1 * BLOCK  # index still holds the prefix
        assert kv.has_prefix("sys")
        assert kv.bytes_in_use == 2 * BLOCK
        assert kv.drop_prefix("sys", now=2.0) == 2 * BLOCK
        assert kv.bytes_in_use == 0
        kv.check_books()

    def test_eviction_keeps_the_shared_prefix(self):
        kv = manager()
        kv.admit(1, 4, now=0.0, prefix_key="sys", prefix_blocks=2)
        assert kv.evict_private(1, now=1.0) == 2 * BLOCK
        assert kv.blocks_of(1) == kv._prefix_index["sys"]
        kv.check_books()

    def test_mismatched_prefix_width_rejected(self):
        kv = manager()
        kv.admit(1, 3, now=0.0, prefix_key="sys", prefix_blocks=2)
        with pytest.raises(SimulationError, match="cached with 2 blocks"):
            kv.admit(2, 3, now=1.0, prefix_key="sys", prefix_blocks=3)


# -- property: the ledger never drifts from the DeviceMemory book ----------

_commands = st.lists(
    st.tuples(
        st.sampled_from(["admit", "admit_shared", "append", "evict",
                         "restore", "free"]),
        st.integers(min_value=0, max_value=4),     # rid
        st.integers(min_value=1, max_value=3),     # block count
    ),
    max_size=60,
)


@given(cmds=_commands)
@settings(max_examples=200)
def test_ledger_matches_book_under_any_interleaving(cmds):
    """No double-free, refcounts never negative, ledger == book, always.

    Drives admit/append/evict/restore/free in arbitrary interleavings
    (including invalid ones, which must raise rather than corrupt) and
    checks after every step that the manager's byte ledger equals the
    strict DeviceMemory book's per-tag balance.
    """
    kv = manager(capacity_blocks=10_000)
    admitted = set()
    evicted = set()
    now = 0.0
    for op, rid, count in cmds:
        now += 1.0
        if op in ("admit", "admit_shared"):
            kwargs = {}
            if op == "admit_shared":
                kwargs = {"prefix_key": "sys", "prefix_blocks": 1}
            if rid in admitted:
                with pytest.raises(SimulationError):
                    kv.admit(rid, count, now, **kwargs)
            else:
                kv.admit(rid, count, now, **kwargs)
                admitted.add(rid)
                evicted.discard(rid)
        elif op == "append":
            if rid not in admitted:
                with pytest.raises(SimulationError):
                    kv.append(rid, count, now)
            else:
                kv.append(rid, count, now)
                evicted.discard(rid)
        elif op == "evict":
            if rid not in admitted:
                with pytest.raises(SimulationError):
                    kv.evict_private(rid, now)
            else:
                kv.evict_private(rid, now)
                evicted.add(rid)
        elif op == "restore":
            if rid not in admitted:
                with pytest.raises(SimulationError):
                    kv.restore_private(rid, count, now)
            else:
                kv.restore_private(rid, count, now)
                evicted.discard(rid)
        elif op == "free":
            if rid not in admitted:
                with pytest.raises(SimulationError):
                    kv.free_request(rid, now)
            else:
                kv.free_request(rid, now)
                admitted.discard(rid)
                evicted.discard(rid)
        # Invariants hold after every operation, valid or rejected.
        assert all(c > 0 for c in kv._refcount.values())
        assert kv.bytes_in_use == kv.book.usage_by_tag().get("kv", 0)
        kv.check_books()
    # Teardown: freeing everything leaves only the cached prefix.
    for rid in sorted(admitted):
        kv.free_request(rid, now)
    if kv.has_prefix("sys"):
        kv.drop_prefix("sys", now)
    assert kv.bytes_in_use == 0
    assert kv.book.in_use == 0
