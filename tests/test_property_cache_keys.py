"""Property-based tests for content-addressed cache keys.

The cache key must be a pure function of a task's *semantics*:

* rebuilding the same task from the same parameters — or
  round-tripping a component through its JSON codec — yields the
  same key (otherwise caching silently never hits);
* changing any semantic field yields a different key (otherwise the
  cache serves stale physics);
* cosmetic fields (the display label) do not participate.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.faults.spec import FaultSchedule, random_schedule
from repro.runtime.task import SimTask
from tests.conftest import small_server, tiny_job, tiny_model

SYSTEMS = ("none", "recomputation", "gpu-cpu-swap", "d2d-only", "mpress")


def _task(n_layers=4, hidden=128, microbatch_size=2, n_minibatches=2,
          system="recomputation", precision="fp16", seed=None,
          label="prop"):
    job = tiny_job(
        model=tiny_model(n_layers=n_layers, hidden=hidden),
        microbatch_size=microbatch_size,
        n_minibatches=n_minibatches,
        precision=precision,
    )
    faults = None
    if seed is not None:
        faults = random_schedule(seed=seed, n_devices=4, horizon=1.0)
    return SimTask(label=label, job=job, system=system, faults=faults)


@settings(max_examples=20, deadline=None)
@given(
    n_layers=st.integers(min_value=2, max_value=8),
    hidden=st.sampled_from((64, 128, 256)),
    microbatch_size=st.integers(min_value=1, max_value=4),
    n_minibatches=st.integers(min_value=1, max_value=3),
    system=st.sampled_from(SYSTEMS),
    seed=st.one_of(st.none(), st.integers(min_value=0, max_value=10**6)),
)
def test_rebuilding_a_task_reproduces_its_key(
        n_layers, hidden, microbatch_size, n_minibatches, system, seed):
    kwargs = dict(n_layers=n_layers, hidden=hidden,
                  microbatch_size=microbatch_size,
                  n_minibatches=n_minibatches, system=system, seed=seed)
    assert _task(**kwargs).cache_key() == _task(**kwargs).cache_key()


@settings(max_examples=20, deadline=None)
@given(
    base_layers=st.integers(min_value=2, max_value=6),
    field=st.sampled_from(
        ("n_layers", "hidden", "microbatch_size", "n_minibatches",
         "system", "precision", "seed")),
)
def test_changing_any_semantic_field_changes_the_key(base_layers, field):
    base = dict(n_layers=base_layers, hidden=128, microbatch_size=2,
                n_minibatches=2, system="recomputation", precision="fp16",
                seed=3)
    changed = dict(base)
    changed[field] = {
        "n_layers": base_layers + 1,
        "hidden": 256,
        "microbatch_size": 3,
        "n_minibatches": 1,
        "system": "mpress",
        "precision": "fp32",
        "seed": 4,
    }[field]
    assert _task(**base).cache_key() != _task(**changed).cache_key()


def test_label_is_cosmetic():
    assert (_task(label="alpha").cache_key()
            == _task(label="omega").cache_key())


def test_adding_faults_changes_the_key():
    assert _task(seed=None).cache_key() != _task(seed=1).cache_key()
    empty = _task(seed=None)
    explicit_empty = SimTask(label=empty.label, job=empty.job,
                             system=empty.system, faults=FaultSchedule())
    # An empty schedule simulates identically to no schedule, but the
    # key may legitimately differ; what matters is determinism.
    assert (explicit_empty.cache_key() == explicit_empty.cache_key())


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_fault_schedule_json_roundtrip_preserves_the_key(seed):
    schedule = random_schedule(seed=seed, n_devices=4, horizon=1.0)
    rebuilt = FaultSchedule.from_json(schedule.to_json())
    job = tiny_job(model=tiny_model(n_layers=3, hidden=64))
    left = SimTask(label="rt", job=job, system="none", faults=schedule)
    right = SimTask(label="rt", job=job, system="none", faults=rebuilt)
    assert left.cache_key() == right.cache_key()


def test_different_servers_get_different_keys():
    from repro.units import GiB

    small = tiny_job(server=small_server())
    bigger = tiny_job(server=small_server(gpu_memory=4 * GiB))
    a = SimTask(label="srv", job=small, system="none")
    b = SimTask(label="srv", job=bigger, system="none")
    assert a.cache_key() != b.cache_key()
