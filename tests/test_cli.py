"""Command-line interface tests (fast paths on the small fixtures)."""

import json

import pytest

from repro.cli import _parse_model, build_parser, main
from repro.errors import ConfigurationError


class TestModelSpecParsing:
    def test_bert_spec(self):
        model = _parse_model("bert-0.35")
        assert model.config.name == "Bert-0.35B"

    def test_gpt_spec_case_insensitive(self):
        model = _parse_model("GPT-5.3b")
        assert model.config.name == "GPT-5.3B"

    def test_bad_specs_rejected(self):
        for spec in ("bert", "llama-7", "bert-xx"):
            with pytest.raises(ConfigurationError):
                _parse_model(spec)


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("run", "profile", "plan", "zero", "capacity", "project"):
            assert command in text

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--model", "bert-0.35"])
        assert args.server == "dgx1"
        assert args.system == "mpress"


class TestCommands:
    def test_project_command(self, capsys):
        assert main(["project"]) == 0
        out = capsys.readouterr().out
        assert "GPT-3-175B" in out

    def test_zero_command(self, capsys):
        assert main(["zero", "--model", "gpt-5.3", "--variant", "offload"]) == 0
        out = capsys.readouterr().out
        assert "TFLOPS" in out

    def test_profile_command(self, capsys):
        assert main(["profile", "--model", "bert-0.35"]) == 0
        out = capsys.readouterr().out
        assert "stage 0" in out and "breakdown" in out

    def test_run_small_model_ok(self, capsys, tmp_path):
        plan_path = str(tmp_path / "plan.json")
        code = main([
            "run", "--model", "bert-0.35", "--system", "none",
            "--save-plan", plan_path,
        ])
        assert code == 0
        with open(plan_path) as handle:
            payload = json.load(handle)
        assert payload["device_map"] == list(range(8))

    def test_run_oom_returns_nonzero(self):
        assert main(["run", "--model", "bert-0.64", "--system", "none"]) == 1

    def test_bad_model_returns_error_code(self, capsys):
        assert main(["run", "--model", "nope-1"]) == 2
        assert "error" in capsys.readouterr().err

    def test_chrome_trace_export(self, tmp_path):
        trace_path = str(tmp_path / "trace.json")
        code = main([
            "run", "--model", "bert-0.35", "--system", "none",
            "--chrome-trace", trace_path,
        ])
        assert code == 0
        with open(trace_path) as handle:
            doc = json.load(handle)
        assert doc["traceEvents"]


class TestFaultFlags:
    def test_seeded_campaign_prints_goodput(self, capsys, tmp_path):
        report_path = str(tmp_path / "resilience.json")
        code = main([
            "run", "--model", "bert-0.35", "--system", "none",
            "--faults", "seed:7", "--faults-report", report_path,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault campaign" in out and "goodput" in out
        with open(report_path) as handle:
            payload = json.load(handle)
        assert "goodput_samples_per_second" in payload
        assert payload["schedule"]["faults"]

    def test_schedule_file_accepted(self, capsys, tmp_path):
        from repro.faults import FaultKind, FaultSchedule, FaultSpec, save_faults

        schedule = FaultSchedule(faults=(
            FaultSpec(kind=FaultKind.DEVICE_SLOWDOWN, start=0.0, duration=100.0,
                      device=0, factor=0.5),
        ))
        path = str(tmp_path / "faults.json")
        save_faults(schedule, path)
        code = main([
            "run", "--model", "bert-0.35", "--system", "none", "--faults", path,
        ])
        assert code == 0
        assert "fault campaign" in capsys.readouterr().out

    def test_bad_seed_spec_is_config_error(self, capsys):
        code = main([
            "run", "--model", "bert-0.35", "--system", "none",
            "--faults", "seed:abc",
        ])
        assert code == 2
        assert "seed" in capsys.readouterr().err


class TestPlannerKnobs:
    def test_no_striping_and_identity_mapping(self, capsys):
        code = main([
            "run", "--model", "bert-0.35", "--system", "mpress",
            "--no-striping", "--mapping", "identity",
        ])
        assert code == 0
        out = capsys.readouterr().out
        # Identity mapping shows in the printed plan.
        assert "[0, 1, 2, 3, 4, 5, 6, 7]" in out

    def test_mapping_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--model", "x", "--mapping", "best"])
