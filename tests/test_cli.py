"""Command-line interface tests (fast paths on the small fixtures)."""

import json

import pytest

from repro.cli import _parse_model, build_parser, main
from repro.errors import ConfigurationError


class TestModelSpecParsing:
    def test_bert_spec(self):
        model = _parse_model("bert-0.35")
        assert model.config.name == "Bert-0.35B"

    def test_gpt_spec_case_insensitive(self):
        model = _parse_model("GPT-5.3b")
        assert model.config.name == "GPT-5.3B"

    def test_bad_specs_rejected(self):
        for spec in ("bert", "llama-7", "bert-xx"):
            with pytest.raises(ConfigurationError):
                _parse_model(spec)


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("run", "profile", "plan", "zero", "capacity", "project"):
            assert command in text

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--model", "bert-0.35"])
        assert args.server == "dgx1"
        assert args.system == "mpress"


class TestCommands:
    def test_project_command(self, capsys):
        assert main(["project"]) == 0
        out = capsys.readouterr().out
        assert "GPT-3-175B" in out

    def test_zero_command(self, capsys):
        assert main(["zero", "--model", "gpt-5.3", "--variant", "offload"]) == 0
        out = capsys.readouterr().out
        assert "TFLOPS" in out

    def test_profile_command(self, capsys):
        assert main(["profile", "--model", "bert-0.35"]) == 0
        out = capsys.readouterr().out
        assert "stage 0" in out and "breakdown" in out

    def test_run_small_model_ok(self, capsys, tmp_path):
        plan_path = str(tmp_path / "plan.json")
        code = main([
            "run", "--model", "bert-0.35", "--system", "none",
            "--save-plan", plan_path,
        ])
        assert code == 0
        with open(plan_path) as handle:
            payload = json.load(handle)
        assert payload["device_map"] == list(range(8))

    def test_run_oom_returns_nonzero(self):
        assert main(["run", "--model", "bert-0.64", "--system", "none"]) == 1

    def test_bad_model_returns_error_code(self, capsys):
        assert main(["run", "--model", "nope-1"]) == 2
        assert "error" in capsys.readouterr().err

    def test_chrome_trace_export(self, tmp_path):
        trace_path = str(tmp_path / "trace.json")
        code = main([
            "run", "--model", "bert-0.35", "--system", "none",
            "--chrome-trace", trace_path,
        ])
        assert code == 0
        with open(trace_path) as handle:
            doc = json.load(handle)
        assert doc["traceEvents"]


class TestFaultFlags:
    def test_seeded_campaign_prints_goodput(self, capsys, tmp_path):
        report_path = str(tmp_path / "resilience.json")
        code = main([
            "run", "--model", "bert-0.35", "--system", "none",
            "--faults", "seed:7", "--faults-report", report_path,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault campaign" in out and "goodput" in out
        with open(report_path) as handle:
            payload = json.load(handle)
        assert "goodput_samples_per_second" in payload
        assert payload["schedule"]["faults"]

    def test_schedule_file_accepted(self, capsys, tmp_path):
        from repro.faults import FaultKind, FaultSchedule, FaultSpec, save_faults

        schedule = FaultSchedule(faults=(
            FaultSpec(kind=FaultKind.DEVICE_SLOWDOWN, start=0.0, duration=100.0,
                      device=0, factor=0.5),
        ))
        path = str(tmp_path / "faults.json")
        save_faults(schedule, path)
        code = main([
            "run", "--model", "bert-0.35", "--system", "none", "--faults", path,
        ])
        assert code == 0
        assert "fault campaign" in capsys.readouterr().out

    def test_bad_seed_spec_is_config_error(self, capsys):
        code = main([
            "run", "--model", "bert-0.35", "--system", "none",
            "--faults", "seed:abc",
        ])
        assert code == 2
        assert "seed" in capsys.readouterr().err


class TestSweepAndCache:
    def test_sweep_runs_and_writes_csv(self, capsys, tmp_path):
        csv_path = str(tmp_path / "sweep.csv")
        code = main([
            "sweep", "--models", "bert-0.35", "--systems", "none",
            "--quiet", "--csv", csv_path,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "bert-0.35/none" in out
        assert "executed=1" in out
        with open(csv_path) as handle:
            header, row = handle.read().strip().splitlines()
        assert header.startswith("label,system,ok")
        assert row.startswith("bert-0.35/none,none,1,")

    def test_sweep_rerun_is_fully_cached(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        argv = ["sweep", "--models", "bert-0.35", "--systems", "none",
                "--quiet", "--cache", cache_dir]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "executed=1 cached=0" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "executed=0 cached=1" in second

    def test_sweep_requires_preset_or_models(self, capsys):
        assert main(["sweep", "--systems", "none"]) == 2
        assert "either --preset or --models" in capsys.readouterr().err

    def test_unknown_preset_is_config_error(self, capsys):
        assert main(["sweep", "--preset", "fig99"]) == 2

    def test_cache_stats_and_clear(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        main(["sweep", "--models", "bert-0.35", "--systems", "none",
              "--quiet", "--cache", cache_dir])
        capsys.readouterr()
        assert main(["cache", "stats", "--cache", cache_dir]) == 0
        assert "1 entries" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache", cache_dir]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache", cache_dir]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_cache_stats_json(self, capsys, tmp_path):
        import json as jsonlib

        cache_dir = str(tmp_path / "cache")
        main(["sweep", "--models", "bert-0.35", "--systems", "none",
              "--quiet", "--cache", cache_dir])
        capsys.readouterr()
        assert main(["cache", "stats", "--cache", cache_dir, "--json"]) == 0
        stats = jsonlib.loads(capsys.readouterr().out)
        assert stats["entries"] == 1
        assert stats["shards"] == 1
        assert stats["total_bytes"] > 0
        assert stats["root"] == cache_dir
        # A fresh CLI-side ResultCache has served no lookups itself.
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_cache_stats_json_on_missing_directory(self, capsys, tmp_path):
        import json as jsonlib

        cache_dir = str(tmp_path / "never-created")
        assert main(["cache", "stats", "--cache", cache_dir, "--json"]) == 0
        stats = jsonlib.loads(capsys.readouterr().out)
        assert stats == {"root": cache_dir, "entries": 0, "total_bytes": 0,
                         "shards": 0, "hits": 0, "misses": 0,
                         "evictions": 0, "hit_rate": 0.0, "max_bytes": None}

    def test_cache_stats_json_reports_evictions_and_hit_rate(
            self, capsys, tmp_path):
        import json as jsonlib

        from repro.runtime import ResultCache

        cache_dir = str(tmp_path / "cache")
        # Force one eviction via a tiny cap, outside the CLI.
        cache = ResultCache(cache_dir, max_bytes=10)
        cache.put("aa" + "0" * 62, {"label": "one"})
        cache.put("bb" + "0" * 62, {"label": "two"})
        capsys.readouterr()
        assert main(["cache", "stats", "--cache", cache_dir, "--json"]) == 0
        stats = jsonlib.loads(capsys.readouterr().out)
        assert stats["evictions"] == 1      # read back from _meta.json
        assert stats["entries"] == 1
        assert "hit_rate" in stats

    def test_cache_clear_keep_newer_than_spares_fresh_entries(
            self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        main(["sweep", "--models", "bert-0.35", "--systems", "none",
              "--quiet", "--cache", cache_dir])
        capsys.readouterr()
        # Everything was written milliseconds ago: a guarded clear
        # removes nothing.
        assert main(["cache", "clear", "--cache", cache_dir,
                     "--keep-newer-than", "3600"]) == 0
        assert "removed 0 entries" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache", cache_dir]) == 0
        assert "removed 1 entries" in capsys.readouterr().out

    def test_cache_evict_requires_max_mib(self, capsys, tmp_path):
        assert main(["cache", "evict",
                     "--cache", str(tmp_path / "cache")]) == 2

    def test_cache_evict_to_cap(self, capsys, tmp_path):
        import json as jsonlib

        cache_dir = str(tmp_path / "cache")
        main(["sweep", "--models", "bert-0.35", "--systems",
              "none,recomputation", "--quiet", "--cache", cache_dir])
        capsys.readouterr()
        assert main(["cache", "evict", "--cache", cache_dir,
                     "--max-mib", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "evicted" in out
        assert main(["cache", "stats", "--cache", cache_dir,
                     "--json"]) == 0
        stats = jsonlib.loads(capsys.readouterr().out)
        assert stats["entries"] < 2          # at least one LRU victim
        assert stats["total_bytes"] <= int(0.001 * 2**20)
        assert stats["evictions"] >= 1       # persisted in _meta.json


class TestPlannerKnobs:
    def test_no_striping_and_identity_mapping(self, capsys):
        code = main([
            "run", "--model", "bert-0.35", "--system", "mpress",
            "--no-striping", "--mapping", "identity",
        ])
        assert code == 0
        out = capsys.readouterr().out
        # Identity mapping shows in the printed plan.
        assert "[0, 1, 2, 3, 4, 5, 6, 7]" in out

    def test_mapping_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--model", "x", "--mapping", "best"])


class TestHybridCommand:
    def test_registered_in_help(self):
        assert "hybrid" in build_parser().format_help()

    def test_defaults(self):
        args = build_parser().parse_args(["hybrid", "--model", "bert-0.35"])
        assert args.dp == 2
        assert args.system == "mpress"
        assert args.algorithm == "auto"
        assert args.bucket_mib == 25.0
        assert args.placement == "auto"
        assert not args.no_overlap

    def test_hybrid_run(self, capsys):
        code = main([
            "hybrid", "--model", "bert-0.35", "--system", "none",
            "--dp", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "dp=2" in out
        assert "gradient synchronisation" in out
        assert "exposed" in out

    def test_hybrid_dp_must_divide(self, capsys):
        assert main(["hybrid", "--model", "bert-0.35", "--dp", "3"]) == 2

    def test_hybrid_explicit_algorithm_and_placement(self, capsys):
        code = main([
            "hybrid", "--model", "bert-0.35", "--system", "none",
            "--dp", "2", "--algorithm", "ring", "--placement", "contiguous",
            "--no-overlap",
        ])
        assert code == 0
        assert "ring" in capsys.readouterr().out


class TestZeroOptionsFlags:
    def test_flag_defaults_preserve_output(self, capsys):
        argv = ["zero", "--model", "gpt-5.3", "--variant", "offload"]
        assert main(argv) == 0
        baseline = capsys.readouterr().out
        assert main(argv + ["--ring-efficiency", "0.8",
                            "--comm-overlap", "0.5",
                            "--comm-model", "analytic"]) == 0
        assert capsys.readouterr().out == baseline

    def test_comm_model_collective_changes_comm(self, capsys):
        # bert-0.35 has little compute to hide behind, so the pricier
        # schedule-based comm model visibly changes the exposed time.
        argv = ["zero", "--model", "bert-0.35", "--variant", "offload"]
        assert main(argv) == 0
        analytic = capsys.readouterr().out
        assert main(argv + ["--comm-model", "collective"]) == 0
        collective = capsys.readouterr().out
        assert collective != analytic


class TestCacheEdgeCases:
    def test_stats_on_missing_directory(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "never-created")
        assert main(["cache", "stats", "--cache", cache_dir]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_clear_on_missing_directory(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "never-created")
        assert main(["cache", "clear", "--cache", cache_dir]) == 0
        assert "removed 0 entries" in capsys.readouterr().out

    def test_stats_and_clear_on_empty_directory(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "empty")
        (tmp_path / "empty").mkdir()
        assert main(["cache", "stats", "--cache", cache_dir]) == 0
        assert "0 entries" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache", cache_dir]) == 0
        assert "removed 0 entries" in capsys.readouterr().out


class TestServeCommand:
    def test_registered_in_help(self):
        assert "serve" in build_parser().format_help()

    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8787
        assert args.jobs == 1
        assert args.cache is None
        assert args.cache_max_mib is None
        assert args.retries == 2
        assert not args.quiet

    def test_cache_cap_flag_parses(self):
        args = build_parser().parse_args([
            "serve", "--port", "0", "--jobs", "4",
            "--cache", "/tmp/c", "--cache-max-mib", "64",
        ])
        assert args.cache == "/tmp/c"
        assert args.cache_max_mib == 64.0


class TestAutoplanCommand:
    def test_registered_in_help(self):
        assert "autoplan" in build_parser().format_help()

    def test_defaults(self):
        args = build_parser().parse_args(["autoplan", "--model", "bert-0.35"])
        assert args.system == "mpress"
        assert args.budget_gib is None
        assert args.frontier_fraction == 0.25
        assert args.max_frontier is None
        assert not args.json

    def test_autoplan_run(self, capsys):
        code = main([
            "autoplan", "--model", "bert-0.35", "--max-frontier", "1",
            "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "autoplan over" in out
        assert "simulated" in out

    def test_autoplan_json(self, capsys):
        code = main([
            "autoplan", "--model", "bert-0.35", "--max-frontier", "1",
            "--quiet", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["best"]["simulated"] is True
        assert payload["counters"]["n_simulated"] == 1
        assert payload["ranked"]
        for key in ("tp", "dp", "pp", "samples_per_second",
                    "exposed_allreduce", "peak_demand_gib"):
            assert key in payload["best"]

    def test_infeasible_budget_fails(self, capsys):
        code = main([
            "autoplan", "--model", "gpt-5.3", "--budget-gib", "0.001",
            "--quiet",
        ])
        assert code == 1
        assert "rejected" in capsys.readouterr().out


class TestPlanJson:
    def test_plan_json(self, capsys):
        code = main(["plan", "--model", "bert-0.35", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["feasible"] is True
        assert payload["shape"] is None
        assert len(payload["per_gpu_peak_gib"]) == 8

    def test_plan_json_cluster_shape(self, capsys):
        code = main([
            "plan", "--model", "gpt-5.3", "--nodes", "2", "--tp", "2",
            "--dp", "2", "--pp", "2", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        shape = payload["shape"]
        assert (shape["tp"], shape["dp"], shape["pp"]) == (2, 2, 2)
        assert shape["cluster"] == "2x-dgx1"
        assert shape["score"] > 0


class TestServeSim:
    def test_reports_latency_and_throughput(self, capsys):
        code = main([
            "serve-sim", "--model", "gpt-5.3", "--requests", "6",
            "--kv-swap", "d2d",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "tokens/sec" in out
        assert "TTFT p50/p95/p99" in out
        assert "TPOT p50/p95/p99" in out

    def test_json_metrics(self, capsys):
        code = main([
            "serve-sim", "--model", "gpt-5.3", "--requests", "4", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_requests"] == 4
        assert payload["kv_swap"] == "d2d"
        assert payload["tokens_per_second"] > 0

    def test_swap_forcing_pool_reports_spill(self, capsys):
        code = main([
            "serve-sim", "--model", "gpt-5.3", "--requests", "10",
            "--seed", "3", "--arrival-rate", "32", "--max-batch", "6",
            "--kv-pool-mib", "199", "--kv-swap", "pcie", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["swapped_bytes"] > 0

    def test_bad_kv_pool_rejected(self, capsys):
        code = main([
            "serve-sim", "--model", "gpt-5.3", "--kv-pool-mib", "-1",
        ])
        assert code == 2
        assert "kv_pool_mib" in capsys.readouterr().err


class TestSingleNodeGuard:
    def test_guard_names_the_offending_flag(self, capsys):
        code = main(["run", "--model", "bert-0.35", "--nodes", "2"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--nodes 2" in err
        assert "'run' simulates one server" in err

    def test_profile_guard_names_the_offending_flag(self, capsys):
        code = main(["profile", "--model", "bert-0.35", "--nodes", "3"])
        assert code == 2
        assert "--nodes 3" in capsys.readouterr().err
