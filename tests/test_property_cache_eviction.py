"""Property tests: LRU eviction against a pure-python reference model.

Records are ``{"pad": "x" * n}`` so every entry's on-disk size is a
deterministic function of its key and pad length — the reference
model can predict byte totals exactly and replay the cache's
documented policy (hit bumps recency, put evicts oldest-first, the
just-written entry is protected) without touching the filesystem.
Divergence between model and cache is a policy bug by construction.
"""

from __future__ import annotations

import json
import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.cache import ResultCache

# Small pool of fixed keys spread over distinct buckets.
KEYS = [format(i * 0x11, "02x") * 32 for i in range(8)]


def entry_size(key: str, pad: int) -> int:
    """Exact on-disk size of a cache entry (mirrors ``put``)."""
    entry = {"version": 1, "key": key, "record": {"pad": "x" * pad}}
    return len(json.dumps(entry, sort_keys=True))


class ModelCache:
    """Reference LRU: dict of key -> (recency, size), replayed in python."""

    def __init__(self, max_bytes):
        self.max_bytes = max_bytes
        self.entries = {}
        self.clock = 0
        self.evictions = 0

    def _tick(self):
        self.clock += 1
        return self.clock

    def get(self, key):
        if key in self.entries:
            _, size = self.entries[key]
            self.entries[key] = (self._tick(), size)
            return True
        return False

    def put(self, key, size):
        self.entries[key] = (self._tick(), size)
        if self.max_bytes is None:
            return
        total = sum(s for _, s in self.entries.values())
        while total > self.max_bytes:
            victims = [(recency, k) for k, (recency, _) in
                       self.entries.items() if k != key]
            if not victims:
                break                    # only the protected entry left
            _, victim = min(victims)
            total -= self.entries.pop(victim)[1]
            self.evictions += 1

    def keys(self):
        return sorted(self.entries)


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(KEYS),
                  st.integers(min_value=0, max_value=400)),
        st.tuples(st.just("get"), st.sampled_from(KEYS)),
    ),
    min_size=1, max_size=40,
)

CAPS = st.one_of(st.none(), st.integers(min_value=200, max_value=1200))


@settings(max_examples=60, deadline=None)
@given(ops=OPS, cap=CAPS)
def test_cache_tracks_reference_model(ops, cap):
    with tempfile.TemporaryDirectory() as root:
        cache = ResultCache(os.path.join(root, "c"), max_bytes=cap)
        model = ModelCache(cap)
        for op in ops:
            if op[0] == "put":
                _, key, pad = op
                cache.put(key, {"pad": "x" * pad})
                model.put(key, entry_size(key, pad))
            else:
                _, key = op
                hit = cache.get(key) is not None
                assert hit == model.get(key), (
                    f"get({key[:8]}) disagreed with the model")
        assert cache.keys() == model.keys()
        assert cache.evictions == model.evictions
        # Stats agree with the on-disk layout.
        stats = cache.stats()
        assert stats.entries == len(model.entries)
        assert stats.total_bytes == sum(
            s for _, s in model.entries.values())
        assert stats.shards == len({k[:2] for k in model.entries})


@settings(max_examples=60, deadline=None)
@given(ops=OPS, cap=CAPS)
def test_cap_is_soft_by_at_most_the_protected_entry(ops, cap):
    with tempfile.TemporaryDirectory() as root:
        cache = ResultCache(os.path.join(root, "c"), max_bytes=cap)
        last_put = None
        for op in ops:
            if op[0] == "put":
                _, key, pad = op
                cache.put(key, {"pad": "x" * pad})
                last_put = key
            else:
                cache.get(op[1])
            if cap is not None and last_put is not None:
                # Over-cap only when the just-put entry alone exceeds it.
                total = cache.total_bytes()
                assert total <= cap or cache.keys() == sorted([last_put])


@settings(max_examples=40, deadline=None)
@given(pads=st.lists(st.integers(min_value=0, max_value=200),
                     min_size=3, max_size=3),
       new_pad=st.integers(min_value=0, max_value=200))
def test_a_just_hit_entry_is_never_the_next_victim(pads, new_pad):
    """Hit an entry, then overflow with a put: the hit entry survives
    whenever the cap can hold it plus the new entry at all."""
    a, b, c, d = KEYS[:4]
    sizes = {k: entry_size(k, p) for k, p in zip((a, b, c), pads)}
    new_size = entry_size(d, new_pad)
    # Cap holds all of a, b, c; the put of d overflows it by exactly
    # one byte, so precisely one entry — the least recent — must go.
    cap = sum(sizes.values()) + new_size - 1
    with tempfile.TemporaryDirectory() as root:
        cache = ResultCache(os.path.join(root, "c"), max_bytes=cap)
        for key, pad in zip((a, b, c), pads):
            cache.put(key, {"pad": "x" * pad})
        assert cache.get(a) is not None      # a is now most recent
        cache.put(d, {"pad": "x" * new_pad})
        # Recency order at the overflow was b < c < a < d: b is the
        # victim, the just-hit a and just-put d both survive.
        assert cache.keys() == sorted([a, c, d])
        assert cache.evictions == 1


@settings(max_examples=40, deadline=None)
@given(ops=OPS, target=st.integers(min_value=0, max_value=800))
def test_evict_to_enforces_target_and_counts(ops, target):
    with tempfile.TemporaryDirectory() as root:
        cache = ResultCache(os.path.join(root, "c"))
        for op in ops:
            if op[0] == "put":
                cache.put(op[1], {"pad": "x" * op[2]})
            else:
                cache.get(op[1])
        before = set(cache.keys())
        removed = cache.evict_to(target)
        after = set(cache.keys())
        assert len(before) - len(after) == removed
        assert after <= before
        # With no protected entry, evict_to reaches the target exactly
        # (or empties the cache trying).
        assert cache.total_bytes() <= target or not after
        assert cache.total_evictions() >= removed
        # The cap restored afterwards: an uncapped put evicts nothing.
        cache.put(KEYS[0], {"pad": "x" * 10})
        assert KEYS[0] in cache.keys()
