"""GPipe schedule tests."""

import pytest

from repro.errors import ScheduleError
from repro.pipeline.gpipe import gpipe_schedule
from repro.pipeline.schedule import OpKind
from repro.sim.executor import simulate

from tests.conftest import tiny_job


class TestSchedule:
    def test_all_forwards_precede_all_backwards(self):
        sched = gpipe_schedule(3, 1, 4)
        for stage in range(3):
            ops = sched.stage_ops(stage)
            last_fwd = max(i for i, op in enumerate(ops) if op.kind is OpKind.FORWARD)
            first_bwd = min(i for i, op in enumerate(ops) if op.kind is OpKind.BACKWARD)
            assert last_fwd < first_bwd

    def test_backwards_run_in_reverse_microbatch_order(self):
        sched = gpipe_schedule(2, 1, 4)
        bwds = [op.microbatch for op in sched.stage_ops(0) if op.kind is OpKind.BACKWARD]
        assert bwds == [3, 2, 1, 0]

    def test_full_in_flight_at_turning_point(self):
        # GPipe's defining memory property: every stage holds ALL
        # microbatches at the forward/backward boundary.
        sched = gpipe_schedule(4, 1, 6)
        for stage in range(4):
            assert sched.max_in_flight(stage) == 6

    def test_single_weight_version(self):
        sched = gpipe_schedule(4, 2, 4)
        assert all(sched.weight_versions(s) == 1 for s in range(4))

    def test_optimizer_per_minibatch(self):
        sched = gpipe_schedule(2, 3, 2)
        opts = [op for op in sched.stage_ops(1) if op.kind is OpKind.OPTIMIZER]
        assert len(opts) == 3

    def test_invalid_counts_rejected(self):
        with pytest.raises(ScheduleError):
            gpipe_schedule(0, 1, 1)

    def test_bubble_count_per_stage(self):
        # Classic GPipe bubble: each stage idles for (n_stages - 1)
        # slots per direction, so a stage's op count is the same for
        # every stage (bubbles are implicit waits, not ops) and the
        # fill/drain ramp shows up in simulated makespan instead.
        n_stages, n_micro = 4, 6
        sched = gpipe_schedule(n_stages, 1, n_micro)
        for stage in range(n_stages):
            ops = sched.stage_ops(stage)
            fwd = sum(1 for op in ops if op.kind is OpKind.FORWARD)
            bwd = sum(1 for op in ops if op.kind is OpKind.BACKWARD)
            assert fwd == n_micro
            assert bwd == n_micro

    def test_stage_op_ordering_invariants(self):
        # Per stage and minibatch: forwards in ascending microbatch
        # order, then backwards descending, then exactly one optimizer
        # op — the flush boundary GPipe is defined by.
        n_stages, n_minibatches, n_micro = 3, 2, 4
        sched = gpipe_schedule(n_stages, n_minibatches, n_micro)
        for stage in range(n_stages):
            ops = sched.stage_ops(stage)
            per_minibatch = [[] for _ in range(n_minibatches)]
            minibatch = 0
            for op in ops:
                per_minibatch[minibatch].append(op)
                if op.kind is OpKind.OPTIMIZER:
                    minibatch += 1
            assert minibatch == n_minibatches
            for group in per_minibatch:
                kinds = [op.kind for op in group]
                assert kinds == (
                    [OpKind.FORWARD] * n_micro
                    + [OpKind.BACKWARD] * n_micro
                    + [OpKind.OPTIMIZER]
                )
                fwds = [op.microbatch for op in group if op.kind is OpKind.FORWARD]
                bwds = [op.microbatch for op in group if op.kind is OpKind.BACKWARD]
                assert fwds == sorted(fwds)
                assert bwds == sorted(bwds, reverse=True)


class TestExecution:
    def test_simulates_without_deadlock(self):
        job = tiny_job(system="gpipe")
        result = simulate(job, strict=False)
        assert result.ok
        assert result.tflops > 0

    def test_uses_more_memory_than_dapple(self):
        # All microbatches in flight everywhere vs depth-bounded 1F1B.
        gpipe = simulate(
            tiny_job(system="gpipe", microbatches_per_minibatch=8), strict=False
        )
        dapple = simulate(
            tiny_job(system="dapple", microbatches_per_minibatch=8), strict=False
        )
        assert gpipe.memory.gpu(3).peak > dapple.memory.gpu(3).peak

    def test_mpress_plans_on_gpipe(self):
        from repro.core.mpress import run_system
        from repro.units import MiB
        from tests.conftest import small_server, tiny_model, tiny_job as build

        job = build(
            server=small_server(gpu_memory=48 * MiB),
            model=tiny_model(n_layers=10),
            system="gpipe",
            microbatch_size=8,
            microbatches_per_minibatch=6,
        )
        assert not run_system(job, "none").ok
        assert run_system(job, "mpress").ok
