"""Property-based plan serialization round-trips."""

from hypothesis import given, settings, strategies as st

from repro.core.plan import Action, MemorySavingPlan, PlanEntry
from repro.core.serialization import plan_from_dict, plan_to_dict
from repro.core.striping import build_stripe_plan
from repro.errors import PlanError
from repro.graph.tensor import TensorClass, TensorKind
from repro.hardware.topology import dgx1_topology

TOPO = dgx1_topology()

kinds = st.sampled_from([TensorKind.ACTIVATION, TensorKind.OPTIMIZER_STATE,
                         TensorKind.STASHED_PARAMS])


@st.composite
def entries(draw):
    kind = draw(kinds)
    stage = draw(st.integers(min_value=0, max_value=7))
    layer = draw(st.integers(min_value=0, max_value=60)) if (
        kind is TensorKind.ACTIVATION
    ) else -1
    size = draw(st.integers(min_value=1024, max_value=2**30))
    instances = draw(st.integers(min_value=1, max_value=8))
    cls = TensorClass(kind, stage, layer, size, instances,
                      kind is TensorKind.ACTIVATION)
    if kind is TensorKind.ACTIVATION:
        action = draw(st.sampled_from(
            [Action.RECOMPUTE, Action.CPU_SWAP, Action.D2D_SWAP]
        ))
    else:
        action = draw(st.sampled_from([Action.CPU_SWAP, Action.D2D_SWAP]))
    stripe = None
    tier = "host"
    if action is Action.D2D_SWAP:
        budgets = {dev: size * 2 for dev in TOPO.neighbors(stage)}
        try:
            stripe = build_stripe_plan(TOPO, stage, budgets, size)
        except PlanError:
            action = Action.CPU_SWAP
    if action is Action.CPU_SWAP:
        tier = draw(st.sampled_from(["host", "nvme"]))
    return PlanEntry(cls=cls, action=action, stripe=stripe, tier=tier)


@given(entry_list=st.lists(entries(), max_size=12))
@settings(max_examples=50, deadline=None)
def test_roundtrip_is_identity(entry_list):
    plan = MemorySavingPlan(device_map=list(range(8)))
    for entry in entry_list:
        plan.assign(entry)
    restored = plan_from_dict(plan_to_dict(plan))
    assert restored.device_map == plan.device_map
    assert set(restored.entries) == set(plan.entries)
    for key, original in plan.entries.items():
        copy = restored.entries[key]
        assert copy.cls == original.cls
        assert copy.action == original.action
        assert copy.tier == original.tier
        if original.stripe is None:
            assert copy.stripe is None
        else:
            assert copy.stripe.exporter == original.stripe.exporter
            assert copy.stripe.tensor_bytes == original.stripe.tensor_bytes
            assert copy.stripe.blocks == original.stripe.blocks
    # Saved-bytes accounting survives the trip.
    assert restored.saved_by_action() == plan.saved_by_action()
