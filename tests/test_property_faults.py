"""Property-based tests for fault injection.

Three families of invariants:

* *Null effect*: an absent or do-nothing fault schedule leaves the
  simulation bit-identical to the fault-free baseline.
* *Monotonicity*: goodput never improves as fault severity grows —
  checked on anomaly-free scenarios (uniform whole-horizon slowdowns
  and FIFO chains), since selectively slowing one task in a DAG can
  legitimately *reduce* makespan (Graham's scheduling anomalies).
* *Reproducibility*: a seeded campaign is deterministic end to end —
  the schedule, the simulation, and the report bytes.
"""

from hypothesis import given, settings, strategies as st

from repro.faults import FaultKind, FaultSchedule, FaultSpec, random_schedule
from repro.sim.engine import Engine, Task
from repro.sim.executor import simulate
from repro.sim.resources import Stream

from tests.conftest import tiny_job


def _trace_tuples(result):
    return [
        (e.name, e.kind, e.device, e.microbatch, e.start, e.end, e.layer)
        for e in result.trace.events
    ]


# -- null effect -------------------------------------------------------------


def test_empty_schedule_is_bit_identical():
    job = tiny_job()
    plain = simulate(job)
    empty = simulate(job, faults=FaultSchedule())
    assert empty.makespan == plain.makespan
    assert _trace_tuples(empty) == _trace_tuples(plain)


@given(
    start=st.floats(min_value=0.0, max_value=0.01, allow_nan=False),
    duration=st.floats(min_value=0.0, max_value=0.01, allow_nan=False),
    device=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=10, deadline=None)
def test_unit_factor_window_is_bit_identical(start, duration, device):
    """A factor-1.0 slowdown changes nothing, wherever it lands."""
    job = tiny_job()
    plain = simulate(job)
    noop = FaultSchedule(faults=(
        FaultSpec(kind=FaultKind.DEVICE_SLOWDOWN, start=start,
                  duration=duration, device=device, factor=1.0),
    ))
    result = simulate(job, faults=noop)
    assert result.makespan == plain.makespan
    assert _trace_tuples(result) == _trace_tuples(plain)


# -- monotonicity ------------------------------------------------------------


@given(
    factors=st.lists(
        st.floats(min_value=0.1, max_value=1.0, allow_nan=False),
        min_size=2,
        max_size=4,
    ),
)
@settings(max_examples=10, deadline=None)
def test_uniform_slowdown_makespan_monotone_in_severity(factors):
    """Slowing *every* device for the whole run scales the timeline;
    a harsher uniform factor can never finish sooner."""
    job = tiny_job()
    horizon = simulate(job).makespan * 20
    results = []
    for factor in sorted(factors, reverse=True):  # mild -> harsh
        faults = FaultSchedule(faults=tuple(
            FaultSpec(kind=FaultKind.DEVICE_SLOWDOWN, start=0.0,
                      duration=horizon, device=device, factor=factor)
            for device in range(job.server.n_gpus)
        ))
        results.append(simulate(job, faults=faults).makespan)
    for milder, harsher in zip(results, results[1:]):
        assert harsher >= milder - 1e-9


@given(
    durations=st.lists(
        st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
        min_size=1,
        max_size=8,
    ),
    severities=st.lists(
        st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
        min_size=2,
        max_size=4,
    ),
    factor=st.floats(min_value=0.2, max_value=0.9, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_fifo_chain_slowdown_monotone_in_severity(durations, severities, factor):
    """On a single FIFO chain (no scheduling anomalies possible), a
    severity-scaled whole-horizon slowdown is monotone in severity."""
    def makespan(applied_factor):
        engine = Engine()
        stream = Stream("s")
        engine.register_stream(stream)
        for index, duration in enumerate(durations):
            stream.submit(Task(f"t{index}", duration))
        engine.schedule_callback(
            0.0, lambda: engine.set_stream_rate(stream, applied_factor)
        )
        return engine.run()

    spans = [makespan(factor ** severity) for severity in sorted(severities)]
    for milder, harsher in zip(spans, spans[1:]):
        assert harsher >= milder - 1e-9


@given(severity=st.floats(min_value=0.0, max_value=2.0, allow_nan=False))
@settings(max_examples=10, deadline=None)
def test_goodput_never_exceeds_fault_free_under_uniform_slowdown(severity):
    job = tiny_job()
    base = simulate(job)
    horizon = base.makespan * 20
    faults = FaultSchedule(faults=tuple(
        FaultSpec(kind=FaultKind.DEVICE_SLOWDOWN, start=0.0, duration=horizon,
                  device=device, factor=0.5)
        for device in range(job.server.n_gpus)
    )).scaled(severity)
    result = simulate(job, faults=faults)
    assert result.ok
    goodput = result.resilience.goodput_samples_per_second
    assert goodput <= base.samples_per_second * (1 + 1e-9)


@given(restart=st.floats(min_value=0.0, max_value=0.5, allow_nan=False))
@settings(max_examples=10, deadline=None)
def test_goodput_monotone_in_restart_latency(restart):
    job = tiny_job()
    base = simulate(job)
    when = base.makespan * 0.5

    def goodput(latency):
        faults = FaultSchedule(faults=(
            FaultSpec(kind=FaultKind.DEVICE_FAIL, start=when, device=0,
                      restart_latency=latency),
        ))
        return simulate(job, faults=faults).resilience.goodput_samples_per_second

    assert goodput(restart + 0.1) <= goodput(restart) + 1e-9


# -- reproducibility ---------------------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    n_devices=st.integers(min_value=1, max_value=16),
    horizon=st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
)
@settings(max_examples=50, deadline=None)
def test_random_schedule_is_seed_deterministic(seed, n_devices, horizon):
    a = random_schedule(seed=seed, n_devices=n_devices, horizon=horizon)
    b = random_schedule(seed=seed, n_devices=n_devices, horizon=horizon)
    assert a == b
    assert a.to_json() == b.to_json()
    assert FaultSchedule.from_json(a.to_json()) == a


@given(seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=5, deadline=None)
def test_seeded_campaign_report_is_byte_identical(seed):
    job = tiny_job()
    horizon = simulate(job).makespan

    def campaign():
        faults = random_schedule(
            seed=seed, n_devices=job.server.n_gpus, horizon=horizon, n_faults=3
        )
        return simulate(job, faults=faults)

    first, second = campaign(), campaign()
    assert first.makespan == second.makespan
    assert first.resilience.to_json() == second.resilience.to_json()
    assert _trace_tuples(first) == _trace_tuples(second)
