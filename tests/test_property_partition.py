"""Property-based tests for the linear partition DP."""

from hypothesis import given, settings, strategies as st

from repro.pipeline.partition import linear_partition

weight_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=40
)


@given(weights=weight_lists, data=st.data())
def test_partition_structure(weights, data):
    n_parts = data.draw(st.integers(min_value=1, max_value=len(weights)))
    starts = linear_partition(weights, n_parts)
    # Right number of parts, starting at zero, strictly increasing.
    assert len(starts) == n_parts
    assert starts[0] == 0
    assert all(a < b for a, b in zip(starts, starts[1:]))
    assert starts[-1] < len(weights)


@given(weights=weight_lists, data=st.data())
@settings(max_examples=50)
def test_partition_is_optimal_vs_bruteforce(weights, data):
    import itertools

    if len(weights) > 10:
        weights = weights[:10]
    n_parts = data.draw(st.integers(min_value=1, max_value=len(weights)))
    starts = linear_partition(weights, n_parts)
    bounds = starts + [len(weights)]
    achieved = max(
        sum(weights[bounds[i]: bounds[i + 1]]) for i in range(n_parts)
    )
    # Brute-force all contiguous partitions.
    best = float("inf")
    for cuts in itertools.combinations(range(1, len(weights)), n_parts - 1):
        candidate_bounds = [0, *cuts, len(weights)]
        worst = max(
            sum(weights[candidate_bounds[i]: candidate_bounds[i + 1]])
            for i in range(n_parts)
        )
        best = min(best, worst)
    assert achieved <= best + 1e-6


@given(
    n_items=st.integers(min_value=1, max_value=30),
    n_parts=st.integers(min_value=1, max_value=30),
)
def test_uniform_weights_balance(n_items, n_parts):
    if n_parts > n_items:
        n_parts = n_items
    starts = linear_partition([1.0] * n_items, n_parts)
    bounds = starts + [n_items]
    sizes = [bounds[i + 1] - bounds[i] for i in range(n_parts)]
    assert max(sizes) - min(sizes) <= 1
