"""DP-scaling sweep tests (hybrid throughput vs. replica count)."""

import pytest

from repro.analysis.dp_scaling import (
    dp_scaling_sweep,
    dp_scaling_tasks,
    to_csv,
)
from repro.runtime import ResultCache, RuntimeConfig, SweepRuntime

from tests.conftest import tiny_job


def scaling_job():
    return tiny_job(system="dapple", n_minibatches=2)


@pytest.fixture(scope="module")
def cells():
    return dp_scaling_sweep(scaling_job(), dp_grid=(1, 2), system="none")


def test_tasks_are_labeled_and_hybrid(server):
    tasks = dp_scaling_tasks(scaling_job(), dp_grid=(1, 2), system="none")
    assert [t.hybrid.dp for t in tasks] == [1, 2]
    assert all(t.label.startswith("dp-scaling/none/") for t in tasks)
    # Distinct degrees must address distinct cache entries.
    assert len({t.cache_key() for t in tasks}) == 2


def test_curve_shape(cells):
    assert [cell.dp for cell in cells] == [1, 2]
    assert all(cell.ok for cell in cells)
    assert cells[0].scaling_efficiency == pytest.approx(1.0)
    assert cells[0].exposed_allreduce == 0.0
    assert cells[1].exposed_allreduce >= 0.0
    assert all(cell.samples_per_second > 0 for cell in cells)


def test_efficiency_is_rate_over_ideal(cells):
    base = cells[0].samples_per_second
    assert cells[1].scaling_efficiency == pytest.approx(
        cells[1].samples_per_second / (2 * base))


def test_sweep_caches_like_any_other(tmp_path):
    cache = ResultCache(str(tmp_path))
    runtime = SweepRuntime(RuntimeConfig(jobs=1, cache=cache))
    first = dp_scaling_sweep(scaling_job(), dp_grid=(1, 2), system="none",
                             runtime=runtime)
    again = dp_scaling_sweep(scaling_job(), dp_grid=(1, 2), system="none",
                             runtime=runtime)
    assert again == first
    # Every cell of the second curve came from the cache.
    report = runtime.run(
        dp_scaling_tasks(scaling_job(), dp_grid=(1, 2), system="none"))
    assert report.cached == 2 and report.executed == 0


def test_csv_round_trip(cells):
    text = to_csv(cells)
    lines = text.strip().splitlines()
    assert lines[0].startswith("dp,ok,samples_per_second")
    assert len(lines) == 1 + len(cells)
    assert lines[1].startswith("1,1,")
