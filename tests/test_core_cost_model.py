"""Cost model tests (Table III behaviour)."""

import pytest

from repro.core.cost_model import CostModel, TensorCosts
from repro.core.profiler import Profiler
from repro.graph.tensor import TensorKind

from tests.conftest import tiny_job


@pytest.fixture(scope="module")
def profiled():
    job = tiny_job()
    profile = Profiler(job).run()
    model = CostModel(job, list(range(job.n_stages)), profile.intervals)
    return job, profile, model


def _first_act(profile, stage=0):
    return next(
        cls for cls in profile.classes
        if cls.kind is TensorKind.ACTIVATION and cls.stage == stage and cls.layer > 0
    )


class TestCosts:
    def test_cpu_swap_is_a_pcie_round_trip(self, profiled):
        job, profile, model = profiled
        cls = _first_act(profile)
        expected = 2 * (
            job.server.pcie.latency + cls.size / job.server.pcie.sustained_bandwidth
        )
        assert model.cpu_swap_cost(cls) == pytest.approx(expected)

    def test_recompute_cost_is_layer_forward_time(self, profiled):
        job, profile, model = profiled
        cls = _first_act(profile)
        layer = job.model.layers[cls.layer]
        assert model.recompute_cost(cls) == pytest.approx(
            job.layer_forward_time(layer, 0)
        )

    def test_recompute_none_for_state(self, profiled):
        _, profile, model = profiled
        opt = next(c for c in profile.classes if c.kind is TensorKind.OPTIMIZER_STATE)
        assert model.recompute_cost(opt) is None

    def test_d2d_beats_cpu_swap(self, profiled):
        # The 7.6x D2D advantage of the paper's t5 example, in spirit.
        job, profile, model = profiled
        cls = _first_act(profile)
        budgets = {dev: cls.size * 4 for dev in range(1, 4)}
        stripe = model.candidate_stripe(cls, budgets)
        assert stripe is not None
        assert model.d2d_swap_cost(cls, stripe) < model.cpu_swap_cost(cls)

    def test_candidate_stripe_excludes_exporter(self, profiled):
        job, profile, model = profiled
        cls = _first_act(profile)
        budgets = {dev: cls.size * 4 for dev in range(0, 4)}  # includes exporter
        stripe = model.candidate_stripe(cls, budgets)
        assert 0 not in stripe.importers

    def test_candidate_stripe_none_when_unreachable(self, profiled):
        _, profile, model = profiled
        cls = _first_act(profile)
        assert model.candidate_stripe(cls, {}) is None


class TestExtraOverhead:
    def test_long_interval_hides_swap(self):
        costs = TensorCosts(
            cls_key=("activation", 0, 1),
            live_interval=1.0,
            recompute=0.01,
            cpu_swap=0.5,
            d2d_swap=0.05,
        )
        assert costs.cpu_swap_extra == 0.0
        assert costs.d2d_swap_extra == 0.0
        # Recomputation always burns compute (paper Sec. III-D).
        assert costs.recompute_extra == 0.01

    def test_short_interval_exposes_swap(self):
        costs = TensorCosts(
            cls_key=("activation", 0, 1),
            live_interval=0.1,
            recompute=0.05,
            cpu_swap=0.5,
            d2d_swap=0.2,
        )
        assert costs.cpu_swap_extra == pytest.approx(0.4)
        assert costs.d2d_swap_extra == pytest.approx(0.1)

    def test_cheapest_action_table3_t1(self):
        # Long interval: CPU swap is free, so it wins and D2D is kept
        # for tenser cases (the paper's t1 reasoning).
        costs = TensorCosts(("activation", 0, 1), 1.0, 0.004, 0.042, 0.006)
        assert costs.cheapest_action() == "cpu-swap"

    def test_cheapest_action_table3_t2(self):
        # Short interval: both swaps exposed, recompute costs 3 ms,
        # D2D 3 ms exposed-free if hidden... here D2D hides fully.
        costs = TensorCosts(("activation", 0, 1), 0.016, 0.003, 0.022, 0.003)
        assert costs.cheapest_action() == "d2d-swap"

    def test_cheapest_action_prefers_not_spending_gpu_memory(self):
        # Equal overheads: recompute preferred over D2D (paper's t3).
        costs = TensorCosts(("activation", 0, 1), 0.002, 0.004, 0.042, 0.006)
        assert costs.cheapest_action() == "recompute"

    def test_extra_overhead_by_action(self, profiled):
        _, profile, model = profiled
        cls = _first_act(profile)
        assert model.extra_overhead(cls, "recompute") > 0
        assert model.extra_overhead(cls, "none") == 0.0
