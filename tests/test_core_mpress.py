"""MPress facade and run_system dispatch tests."""

import pytest

from repro.core.mpress import MPress, run_system
from repro.core.planner import PlannerConfig
from repro.units import MiB

from tests.conftest import small_server, tiny_job, tiny_model


def _pressured_job():
    return tiny_job(
        server=small_server(gpu_memory=48 * MiB),
        model=tiny_model(n_layers=10),
        microbatch_size=8,
        microbatches_per_minibatch=6,
    )


class TestMPress:
    def test_plan_is_cached(self):
        mpress = MPress(_pressured_job())
        assert mpress.build_plan() is mpress.build_plan()

    def test_run_returns_successful_result(self):
        result = MPress(_pressured_job()).run()
        assert result.ok
        assert result.tflops > 0
        assert result.samples_per_second > 0

    def test_planner_report_available_before_run(self):
        mpress = MPress(_pressured_job())
        assert mpress.planner_report is not None

    def test_custom_config_respected(self):
        config = PlannerConfig(allow_d2d=False, mapping_mode="identity")
        result = MPress(_pressured_job(), config).run()
        assert result.plan.device_map == list(range(4))


class TestRunSystem:
    def test_none_system_is_uncompacted(self):
        job = tiny_job()  # fits without compaction
        result = run_system(job, "none")
        assert result.ok
        assert not result.plan.entries

    def test_none_system_ooms_under_pressure(self):
        result = run_system(_pressured_job(), "none")
        assert not result.ok

    @pytest.mark.parametrize("system", ["recomputation", "gpu-cpu-swap", "mpress"])
    def test_memory_saving_systems_survive_pressure(self, system):
        result = run_system(_pressured_job(), system)
        assert result.ok, system

    def test_mpress_at_least_matches_swap_baseline(self):
        job = _pressured_job()
        swap = run_system(job, "gpu-cpu-swap")
        mpress = run_system(job, "mpress")
        assert mpress.tflops >= swap.tflops

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            run_system(_pressured_job(), "megatron")


class TestRunSystemReports:
    def test_none_feasibility_flag_matches_fit(self):
        fits = run_system(tiny_job(), "none")
        assert fits.planner_report.feasible
        pressured = run_system(_pressured_job(), "none")
        assert not pressured.planner_report.feasible

    def test_result_exposes_simulation(self):
        result = run_system(tiny_job(), "none")
        assert result.simulation.makespan > 0
        assert len(result.simulation.peak_memory_per_gpu) == 4
