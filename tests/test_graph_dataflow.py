"""Data-flow program construction tests."""

import pytest

from repro.errors import ScheduleError
from repro.graph.dataflow import build_program
from repro.pipeline.dapple import dapple_schedule
from repro.pipeline.partition import partition_model
from repro.pipeline.pipedream import pipedream_schedule
from repro.pipeline.schedule import OpKind

from tests.conftest import tiny_model


def _program(n_stages=3, system="dapple"):
    model = tiny_model(n_layers=7)
    plan = partition_model(model, n_stages)
    if system == "dapple":
        sched = dapple_schedule(n_stages, 2, 4)
    else:
        sched = pipedream_schedule(n_stages, 4, 1)
    return build_program(plan, sched)


def test_forward_depends_on_upstream_forward():
    program = _program()
    node = program.node(OpKind.FORWARD, 1, 2)
    upstream = program.node(OpKind.FORWARD, 0, 2)
    assert upstream in node.deps


def test_first_stage_forward_has_no_cross_deps():
    program = _program()
    node = program.node(OpKind.FORWARD, 0, 0)
    assert node.deps == []


def test_backward_depends_on_own_forward_and_downstream_backward():
    program = _program()
    node = program.node(OpKind.BACKWARD, 1, 1)
    dep_keys = {d.key for d in node.deps}
    assert ("fwd", 1, 1) in dep_keys
    assert ("bwd", 2, 1) in dep_keys


def test_last_stage_backward_depends_only_on_forward():
    program = _program()
    node = program.node(OpKind.BACKWARD, 2, 0)
    assert {d.key for d in node.deps} == {("fwd", 2, 0)}


def test_node_lookup_raises_for_missing():
    program = _program()
    with pytest.raises(ScheduleError):
        program.node(OpKind.FORWARD, 0, 99)


def test_order_indices_match_schedule_positions():
    program = _program()
    for stage_nodes in program.per_stage:
        assert [n.order for n in stage_nodes] == list(range(len(stage_nodes)))


def test_predecessor_on_stage():
    program = _program()
    node = program.per_stage[0][5]
    assert program.predecessor_on_stage(node, 2) is program.per_stage[0][3]
    assert program.predecessor_on_stage(program.per_stage[0][0], 1) is None
    with pytest.raises(ScheduleError):
        program.predecessor_on_stage(node, 0)


def test_stage_count_mismatch_rejected():
    model = tiny_model()
    plan = partition_model(model, 3)
    sched = dapple_schedule(4, 1, 4)
    with pytest.raises(ScheduleError):
        build_program(plan, sched)


def test_node_count():
    program = _program(n_stages=3)
    # Per stage: 2 minibatches x 4 microbatches x (fwd+bwd) + 2 opt.
    for stage_nodes in program.per_stage:
        assert len(stage_nodes) == 2 * 4 * 2 + 2
