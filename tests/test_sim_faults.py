"""Fault injection tests: engine rescaling math and executor recovery."""

import pytest

from repro.errors import SimulationError
from repro.faults import FaultKind, FaultSchedule, FaultSpec
from repro.hardware.bandwidth import transfer_time
from repro.sim.audit import audit_simulation
from repro.sim.engine import Engine, Task
from repro.sim.executor import simulate
from repro.sim.resources import Stream

from tests.conftest import tiny_job


def _setup(mode="fifo"):
    engine = Engine()
    stream = Stream("s", mode=mode)
    engine.register_stream(stream)
    return engine, stream


class TestEngineRescaling:
    def test_whole_run_half_rate_doubles_duration(self):
        engine, stream = _setup()
        stream.submit(Task("t", 2.0))
        engine.schedule_callback(0.0, lambda: engine.set_stream_rate(stream, 0.5))
        assert engine.run() == pytest.approx(4.0)

    def test_mid_task_window_charges_exactly_the_slowed_portion(self):
        # 0.5s at full rate, 1.0s at half rate (0.5 work), then the
        # remaining 1.0 work at full rate: 0.5 + 1.0 + 1.0 = 2.5.
        engine, stream = _setup()
        stream.submit(Task("t", 2.0))
        engine.schedule_callback(0.5, lambda: engine.set_stream_rate(stream, 0.5))
        engine.schedule_callback(1.5, lambda: engine.set_stream_rate(stream, 1.0))
        assert engine.run() == pytest.approx(2.5)

    def test_zero_length_window_is_a_no_op(self):
        engine, stream = _setup()
        stream.submit(Task("t", 2.0))
        engine.schedule_callback(1.0, lambda: engine.set_stream_rate(stream, 0.5))
        engine.schedule_callback(1.0, lambda: engine.set_stream_rate(stream, 1.0))
        assert engine.run() == pytest.approx(2.0)

    def test_queued_task_starts_at_current_rate(self):
        engine, stream = _setup()
        stream.submit(Task("a", 1.0))
        stream.submit(Task("b", 1.0))
        engine.schedule_callback(0.0, lambda: engine.set_stream_rate(stream, 0.5))
        # Both tasks run entirely at half rate.
        assert engine.run() == pytest.approx(4.0)

    def test_rate_change_only_touches_its_stream(self):
        engine = Engine()
        s1, s2 = Stream("s1"), Stream("s2")
        engine.register_stream(s1)
        engine.register_stream(s2)
        a = s1.submit(Task("a", 2.0))
        b = s2.submit(Task("b", 2.0))
        engine.schedule_callback(0.0, lambda: engine.set_stream_rate(s1, 0.5))
        engine.run()
        assert a.end_time == pytest.approx(4.0)
        assert b.end_time == pytest.approx(2.0)

    def test_non_positive_rate_rejected(self):
        engine, stream = _setup()
        with pytest.raises(SimulationError):
            engine.set_stream_rate(stream, 0.0)
        with pytest.raises(SimulationError):
            engine.set_stream_rate(stream, -1.0)

    def test_stall_shifts_running_and_queued_work(self):
        engine, stream = _setup()
        a = stream.submit(Task("a", 2.0))
        b = stream.submit(Task("b", 1.0))
        engine.schedule_callback(1.0, lambda: engine.stall_all(3.0))
        engine.run()
        assert a.end_time == pytest.approx(5.0)
        assert b.start_time == pytest.approx(5.0)
        assert b.end_time == pytest.approx(6.0)

    def test_no_task_starts_inside_a_stall(self):
        engine, stream = _setup()
        stream.submit(Task("a", 1.0))
        b = stream.submit(Task("b", 1.0))
        engine.schedule_callback(0.5, lambda: engine.stall_all(2.0))
        engine.run()
        assert not 0.5 < b.start_time < 2.5

    def test_rate_change_during_stall_does_not_reenter_the_window(self):
        # A slowdown window closing while the pipeline is stalled must
        # not treat the paused span as work done at the old rate.
        engine, stream = _setup()
        task = stream.submit(Task("t", 2.0))
        engine.schedule_callback(0.0, lambda: engine.set_stream_rate(stream, 0.5))
        engine.schedule_callback(0.5, lambda: engine.stall_all(4.0))
        engine.schedule_callback(1.0, lambda: engine.set_stream_rate(stream, 1.0))
        engine.run()
        # 0.25 work done before the stall; the rest runs at full rate
        # only after the stall lifts at 4.5.
        assert task.end_time == pytest.approx(4.5 + 1.75)

    def test_overlapping_slowdowns_compose_and_unwind_exactly(self):
        engine, stream = _setup()
        task = stream.submit(Task("t", 4.0))
        active = []

        def apply():
            rate = 1.0
            for f in active:
                rate *= f
            engine.set_stream_rate(stream, rate)

        def push(f):
            active.append(f)
            apply()

        def pop(f):
            active.remove(f)
            apply()

        engine.schedule_callback(1.0, lambda: push(0.5))
        engine.schedule_callback(2.0, lambda: push(0.5))
        engine.schedule_callback(3.0, lambda: pop(0.5))
        engine.schedule_callback(4.0, lambda: pop(0.5))
        engine.run()
        # Work by segment: 1.0 + 0.5 + 0.25 + 0.5 = 2.25 by t=4,
        # remaining 1.75 at exactly rate 1.0 again.
        assert stream.rate == 1.0
        assert task.end_time == pytest.approx(5.75)


class TestExecutorFaults:
    def test_slowdown_stretches_makespan(self):
        job = tiny_job()
        base = simulate(job)
        faults = FaultSchedule(faults=(
            FaultSpec(kind=FaultKind.DEVICE_SLOWDOWN, start=0.0,
                      duration=base.makespan * 2, device=0, factor=0.5),
        ))
        slowed = simulate(job, faults=faults)
        assert slowed.ok
        assert slowed.makespan > base.makespan
        assert slowed.resilience is not None
        assert not slowed.resilience.failures
        report = audit_simulation(slowed)
        assert report.ok, report.violations

    def test_failure_accounting_is_exact(self):
        job = tiny_job()
        base = simulate(job)
        restart = 0.05
        when = base.makespan * 0.5
        faults = FaultSchedule(faults=(
            FaultSpec(kind=FaultKind.DEVICE_FAIL, start=when, device=1,
                      restart_latency=restart),
        ))
        result = simulate(job, faults=faults)
        assert result.ok
        [failure] = result.resilience.failures
        assert failure.device == 1
        assert failure.time == pytest.approx(when)
        assert failure.reload_seconds == pytest.approx(
            transfer_time(failure.reload_bytes, job.server.pcie, lanes=1)
        )
        recovery = restart + failure.reload_seconds + failure.lost_seconds
        assert failure.recovery_seconds == pytest.approx(recovery)
        assert failure.resume_time == pytest.approx(when + recovery)
        # A stall is a pure shift: the whole remaining schedule moves
        # right by exactly the recovery time.
        assert result.makespan == pytest.approx(base.makespan + recovery)
        report = audit_simulation(result)
        assert report.ok, report.violations

    def test_failure_before_first_checkpoint_loses_everything(self):
        job = tiny_job()
        base = simulate(job)
        when = base.makespan * 0.25  # before any minibatch is durable
        faults = FaultSchedule(faults=(
            FaultSpec(kind=FaultKind.DEVICE_FAIL, start=when, device=0),
        ))
        result = simulate(job, faults=faults)
        [failure] = result.resilience.failures
        assert failure.lost_seconds == pytest.approx(when)

    def test_failure_after_training_finishes_is_ignored(self):
        job = tiny_job()
        base = simulate(job)
        faults = FaultSchedule(faults=(
            FaultSpec(kind=FaultKind.DEVICE_FAIL, start=base.makespan * 10,
                      device=0, restart_latency=1.0),
        ))
        result = simulate(job, faults=faults)
        assert result.resilience is not None
        assert not result.resilience.failures
        assert result.makespan == base.makespan

    def test_recovery_timeline_is_sorted(self):
        job = tiny_job()
        base = simulate(job)
        faults = FaultSchedule(faults=(
            FaultSpec(kind=FaultKind.DEVICE_FAIL, start=base.makespan * 0.6,
                      device=2, restart_latency=0.01),
            FaultSpec(kind=FaultKind.DEVICE_FAIL, start=base.makespan * 0.3,
                      device=1, restart_latency=0.01),
        ))
        result = simulate(job, faults=faults)
        timeline = result.resilience.recovery_timeline()
        assert len(timeline) == 2
        starts = [start for start, _end, _dev in timeline]
        assert starts == sorted(starts)
        # Outages must not overlap: the second failure fires after the
        # first recovery shifted the schedule.
        assert timeline[0][1] <= timeline[1][0] + 1e-12
        report = audit_simulation(result)
        assert report.ok, report.violations

    def test_goodput_accounts_for_recoveries(self):
        job = tiny_job()
        base = simulate(job)
        faults = FaultSchedule(faults=(
            FaultSpec(kind=FaultKind.DEVICE_FAIL, start=base.makespan * 0.5,
                      device=0, restart_latency=0.05),
        ))
        result = simulate(job, faults=faults)
        goodput = result.resilience.goodput_samples_per_second
        assert goodput < base.samples_per_second
        assert goodput == pytest.approx(result.resilience.samples / result.makespan)

    def test_link_degrade_and_nvme_stall_run_clean(self):
        job = tiny_job()
        base = simulate(job)
        faults = FaultSchedule(faults=(
            FaultSpec(kind=FaultKind.LINK_DEGRADE, start=0.0,
                      duration=base.makespan, device=0, peer=1, factor=0.5),
            FaultSpec(kind=FaultKind.LINK_DEGRADE, start=0.0,
                      duration=base.makespan, device=2, factor=0.5),
            FaultSpec(kind=FaultKind.NVME_STALL, start=0.0,
                      duration=base.makespan, factor=0.5),
        ))
        result = simulate(job, faults=faults)
        assert result.ok
        assert result.makespan >= base.makespan - 1e-12
        report = audit_simulation(result)
        assert report.ok, report.violations

    def test_overlapping_faults_on_one_device(self):
        job = tiny_job()
        base = simulate(job)
        span = base.makespan
        faults = FaultSchedule(faults=(
            FaultSpec(kind=FaultKind.DEVICE_SLOWDOWN, start=0.0,
                      duration=span * 4, device=0, factor=0.5),
            FaultSpec(kind=FaultKind.DEVICE_SLOWDOWN, start=span * 0.5,
                      duration=span, device=0, factor=0.5),
        ))
        both = simulate(job, faults=faults)
        single = simulate(job, faults=FaultSchedule(faults=faults.faults[:1]))
        assert both.ok
        assert both.makespan >= single.makespan - 1e-12
        report = audit_simulation(both)
        assert report.ok, report.violations

    def test_empty_schedule_is_bit_identical_to_no_faults(self):
        job = tiny_job()
        plain = simulate(job)
        empty = simulate(job, faults=FaultSchedule())
        assert empty.resilience is None
        assert empty.makespan == plain.makespan
        assert [tuple(e.__dict__.items()) if hasattr(e, "__dict__") else e
                for e in empty.trace.events] == \
               [tuple(e.__dict__.items()) if hasattr(e, "__dict__") else e
                for e in plain.trace.events]


class TestTraceIntegrity:
    """Event traces stay well-formed even when durations are rescaled
    mid-flight (regression for the generation-counter heap)."""

    def _faulted_result(self):
        job = tiny_job(system="pipedream")
        base = simulate(job)
        span = base.makespan
        faults = FaultSchedule(faults=(
            FaultSpec(kind=FaultKind.DEVICE_SLOWDOWN, start=span * 0.1,
                      duration=span * 0.3, device=0, factor=0.4),
            FaultSpec(kind=FaultKind.DEVICE_SLOWDOWN, start=span * 0.2,
                      duration=span * 0.4, device=1, factor=0.6),
            FaultSpec(kind=FaultKind.DEVICE_FAIL, start=span * 0.6, device=2,
                      restart_latency=0.01),
        ))
        result = simulate(job, faults=faults)
        assert result.ok
        return result

    def test_compute_events_sorted_and_non_overlapping_per_device(self):
        result = self._faulted_result()
        per_device = {}
        for event in result.trace.events:
            if event.kind in ("fwd", "bwd", "opt", "recompute"):
                per_device.setdefault(event.device, []).append(event)
        assert per_device
        for device, events in per_device.items():
            ordered = sorted(events, key=lambda e: (e.start, e.end))
            for first, second in zip(ordered, ordered[1:]):
                assert first.end <= second.start + 1e-9, (
                    f"device {device}: {first.name} overlaps {second.name}"
                )

    def test_swap_events_non_overlapping_per_channel(self):
        result = self._faulted_result()
        per_channel = {}
        for event in result.trace.events:
            if event.kind in ("swap_out", "swap_in"):
                per_channel.setdefault((event.device, event.kind), []).append(event)
        for channel, events in per_channel.items():
            ordered = sorted(events, key=lambda e: (e.start, e.end))
            for first, second in zip(ordered, ordered[1:]):
                assert first.end <= second.start + 1e-9, (
                    f"channel {channel}: {first.name} overlaps {second.name}"
                )

    def test_every_event_has_non_negative_duration(self):
        result = self._faulted_result()
        for event in result.trace.events:
            assert event.end >= event.start - 1e-12
