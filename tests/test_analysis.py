"""Metrics and reporting helper tests."""

import pytest

from repro.analysis.metrics import speedup, throughput_summary
from repro.analysis.reporting import format_series, format_table
from repro.sim.executor import simulate

from tests.conftest import tiny_job


def test_throughput_summary_of_successful_run():
    result = simulate(tiny_job(), strict=False)
    summary = throughput_summary(result)
    assert summary["ok"] == 1.0
    assert summary["tflops"] > 0
    assert summary["samples_per_second"] > 0


def test_speedup_ratios():
    assert speedup(20.0, 10.0) == pytest.approx(2.0)
    assert speedup(0.0, 10.0) is None
    assert speedup(10.0, 0.0) is None


def test_format_table_alignment():
    text = format_table(
        ["model", "tflops"],
        [["Bert-0.64B", 66.1], ["GPT-5.3B", 281.52]],
        title="Figure 7",
    )
    lines = text.splitlines()
    assert lines[0] == "Figure 7"
    assert "model" in lines[1] and "tflops" in lines[1]
    assert lines[2].startswith("---")
    assert len(lines) == 5
    # Columns align: every row has the separator at the same offset.
    offset = lines[1].index("tflops")
    assert lines[3][offset - 2: offset] == "  "


def test_format_series():
    text = format_series("MPress", ["0.35B", "0.64B"], [62.0, 66.123], unit=" TF")
    assert text == "MPress: 0.35B=62.00 TF, 0.64B=66.12 TF"


def test_format_series_with_ints():
    assert format_series("x", [1], [2]) == "x: 1=2"
