"""Device memory tracking tests."""

import pytest

from repro.errors import OutOfMemoryError, SimulationError
from repro.sim.memory import DeviceMemory, MemoryModel, PinnedPool


class TestDeviceMemory:
    def test_alloc_free_roundtrip(self):
        mem = DeviceMemory("gpu0", capacity=100)
        mem.alloc(40, 1.0, tag="a")
        mem.alloc(30, 2.0, tag="b")
        mem.free(40, 3.0, tag="a")
        assert mem.in_use == 30
        assert mem.peak == 70

    def test_strict_raises_on_overflow(self):
        mem = DeviceMemory("gpu0", capacity=100, strict=True)
        mem.alloc(80, 0.0)
        with pytest.raises(OutOfMemoryError) as err:
            mem.alloc(30, 1.0)
        assert err.value.device == "gpu0"
        assert err.value.requested == 30

    def test_non_strict_records_overflow(self):
        mem = DeviceMemory("gpu0", capacity=100)
        mem.alloc(150, 0.0)
        assert mem.overflow == 50
        assert mem.headroom == 0

    def test_headroom_when_fitting(self):
        mem = DeviceMemory("gpu0", capacity=100)
        mem.alloc(60, 0.0)
        assert mem.headroom == 40

    def test_free_more_than_held_rejected(self):
        mem = DeviceMemory("gpu0", capacity=100)
        mem.alloc(10, 0.0, tag="x")
        with pytest.raises(SimulationError):
            mem.free(20, 1.0, tag="x")

    def test_free_unknown_tag_rejected(self):
        mem = DeviceMemory("gpu0", capacity=100)
        with pytest.raises(SimulationError):
            mem.free(1, 0.0, tag="ghost")

    def test_timeline_records_every_change(self):
        mem = DeviceMemory("gpu0", capacity=100)
        mem.alloc(10, 1.0)
        mem.free(10, 2.0)
        assert mem.timeline == [(1.0, 10), (2.0, 0)]

    def test_composition_at_replays_history(self):
        mem = DeviceMemory("gpu0", capacity=100)
        mem.alloc(10, 1.0, tag="a")
        mem.alloc(20, 2.0, tag="b")
        mem.free(10, 3.0, tag="a")
        assert mem.composition_at(2.5) == {"a": 10, "b": 20}
        assert mem.composition_at(3.5) == {"b": 20}

    def test_usage_by_tag(self):
        mem = DeviceMemory("gpu0", capacity=100)
        mem.alloc(10, 0.0, tag="a")
        mem.alloc(5, 0.0, tag="b")
        mem.free(5, 1.0, tag="b")
        assert mem.usage_by_tag() == {"a": 10}


class TestMemoryModel:
    def test_per_gpu_tracking(self):
        model = MemoryModel([100, 200], host_capacity=1000)
        model.gpu(0).alloc(50, 0.0)
        model.gpu(1).alloc(150, 0.0)
        assert model.peaks() == [50, 150]
        assert model.total_peak() == 200

    def test_overflow_detection(self):
        model = MemoryModel([100, 100], host_capacity=1000)
        model.gpu(1).alloc(120, 0.0)
        assert model.any_overflow()
        assert model.overflowed_gpus() == [1]

    def test_imbalance_ratio(self):
        model = MemoryModel([100] * 4, host_capacity=1000)
        for index, amount in enumerate((80, 40, 20, 10)):
            model.gpu(index).alloc(amount, 0.0)
        assert model.imbalance_ratio() == pytest.approx(8.0)

    def test_imbalance_with_idle_gpu(self):
        model = MemoryModel([100, 100], host_capacity=1000)
        model.gpu(0).alloc(10, 0.0)
        assert model.imbalance_ratio() == float("inf")

    def test_gpu_index_bounds(self):
        model = MemoryModel([100], host_capacity=10)
        with pytest.raises(SimulationError):
            model.gpu(1)


class TestPinnedPool:
    def test_take_give(self):
        pool = PinnedPool(capacity=100)
        pool.take(60)
        pool.give(10)
        assert pool.in_use == 50
        assert pool.peak == 60

    def test_exhaustion_raises(self):
        pool = PinnedPool(capacity=100)
        pool.take(90)
        with pytest.raises(OutOfMemoryError):
            pool.take(20)

    def test_invalid_give_rejected(self):
        pool = PinnedPool(capacity=100)
        with pytest.raises(SimulationError):
            pool.give(1)
