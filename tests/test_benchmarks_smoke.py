"""Every benchmark module must import cleanly and expose tests.

The benchmarks replay full DGX-scale experiments, so tier-1 cannot
afford to *run* them — but an import error or a module that silently
lost its test functions would otherwise go unnoticed until someone
regenerates the paper figures.  Importing also type-checks each
module's wiring against the runtime/preset APIs it uses.
"""

from __future__ import annotations

import glob
import importlib.util
import inspect
import os

import pytest

BENCH_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks")
BENCH_FILES = sorted(glob.glob(os.path.join(BENCH_DIR, "bench_*.py")))


def _load(path):
    name = f"bench_smoke_{os.path.splitext(os.path.basename(path))[0]}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_benchmark_files_exist():
    assert len(BENCH_FILES) >= 15


@pytest.mark.parametrize(
    "path", BENCH_FILES, ids=[os.path.basename(p) for p in BENCH_FILES])
def test_benchmark_imports_and_has_tests(path):
    module = _load(path)
    tests = [
        obj for name, obj in vars(module).items()
        if name.startswith("test_") and inspect.isfunction(obj)
    ]
    assert tests, f"{os.path.basename(path)} defines no test functions"
    for func in tests:
        # Every parameter must be a fixture our conftest or pytest
        # provides — a renamed fixture fails here, not at bench time.
        for param in inspect.signature(func).parameters:
            assert param in {"once", "benchmark", "runtime", "server",
                             "request", "tmp_path", "capsys"}, (
                f"{func.__name__} requests unknown fixture {param!r}"
            )
