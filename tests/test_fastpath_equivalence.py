"""Differential harness: fast path == reference, bit for bit.

Every golden configuration is replayed three ways — the reference
:class:`~repro.sim.interpreter.Interpreter`, the dispatched
:func:`~repro.sim.fastpath.run_program` fast path, and the
:class:`~repro.sim.incremental.IncrementalSimulator` — and the three
results must agree on every observable byte: step times, memory
peaks and per-tag books, trace digests, counter-sample counts, and
cache digests.  A Hypothesis property extends the same claim to
random plans with shrinking.

This is the enforcement arm of the equivalence contract documented
in docs/fastpath.md: the fast path is an *optimization*, never a
semantic fork.
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mpress import MPress
from repro.core.planner import baseline_config
from repro.runtime.task import SimTask, execute_task, trace_digest
from repro.sim.fastpath import (
    fast_path_runs,
    reference_runs,
    run_program,
    wants_fast_path,
)
from repro.sim.incremental import IncrementalSimulator
from repro.sim.interpreter import Interpreter
from repro.sim.ir import ExecOptions
from repro.sim.lowering import Lowering
from tests.conftest import small_server, tiny_job, tiny_model
from tests.test_goldens import (
    GOLDENS,
    HYBRID_GOLDENS,
    golden_path,
    golden_task,
    hybrid_golden_task,
)

MiB = 2**20


def result_fingerprint(result) -> tuple:
    """Every observable of a simulation, as comparable plain data."""
    return (
        result.ok,
        result.makespan,
        result.minibatch_time,
        tuple(result.memory.peaks()),
        tuple(tuple(sorted(book._tags.items())) for book in result.memory.gpus),
        tuple(sorted(result.memory.host._tags.items())),
        tuple(result.memory.host.timeline),
        trace_digest(result.trace),
        len(result.trace.events),
        len(result.trace.counters),
    )


def _golden_program(name: str):
    """Lower one golden config exactly as ``execute_task`` would."""
    task = golden_task(name)
    system = GOLDENS[name][4]
    if system == "none":
        from repro.core.plan import empty_plan

        plan = empty_plan(task.job.n_stages)
        prefetch_lead = 3
    else:
        mpress = MPress(task.job, baseline_config(system), faults=task.faults)
        plan = mpress.build_plan()
        prefetch_lead = mpress.config.prefetch_lead
    options = ExecOptions(strict=True, prefetch_lead=prefetch_lead,
                          faults=task.faults)
    return Lowering(task.job, options).lower(plan)


@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_golden_three_way_equivalence(name):
    """reference == dispatched fast path == incremental, per golden."""
    program = _golden_program(name)
    reference = result_fingerprint(Interpreter(program).run())
    dispatched = result_fingerprint(run_program(program))
    incremental = result_fingerprint(IncrementalSimulator().run(program))
    assert dispatched == reference
    assert incremental == reference


@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_golden_record_matches_pinned_bytes(name):
    """The dispatched execution path reproduces the pinned golden
    record byte-for-byte — the records were minted by the reference
    interpreter, so this ties the fast path to history."""
    record = execute_task(golden_task(name))
    with open(golden_path(name)) as handle:
        golden = json.load(handle)
    assert json.dumps(record, sort_keys=True) == \
        json.dumps(golden["record"], sort_keys=True)


@pytest.mark.parametrize("name", sorted(HYBRID_GOLDENS))
def test_hybrid_golden_record_matches_pinned_bytes(name):
    """Hybrid replicas dispatch through the fast path too; their
    pinned records (incl. per-replica trace digests) must not move."""
    before = fast_path_runs()
    record = execute_task(hybrid_golden_task(name))
    assert fast_path_runs() > before
    with open(golden_path(name)) as handle:
        golden = json.load(handle)
    assert json.dumps(record, sort_keys=True) == \
        json.dumps(golden["record"], sort_keys=True)


def test_faulted_goldens_take_reference_path():
    """A fault schedule is observational: the dispatcher must refuse
    the fast path and the two paths trivially agree."""
    faulted = [name for name, row in GOLDENS.items() if row[6] is not None]
    assert faulted, "golden matrix lost its faulted configs"
    for name in faulted:
        program = _golden_program(name)
        assert not wants_fast_path(program)
        before = reference_runs()
        run_program(program)
        assert reference_runs() == before + 1


def test_cache_keys_are_execution_strategy_free():
    """Fast-path results share cache entries with full simulations:
    nothing about *how* a task is simulated reaches its cache key."""
    job = tiny_job()
    traced = SimTask(label="a", job=job, system="recomputation")
    untraced = dataclasses.replace(traced, label="b", record_trace=False)
    assert traced.cache_key() == untraced.cache_key()
    payload = json.dumps(traced.key_payload(), sort_keys=True, default=str)
    for leak in ("fast", "interpreter", "record_trace", "search"):
        assert leak not in payload


# -- property: random plans ---------------------------------------------------


def _pressured_job():
    return tiny_job(server=small_server(gpu_memory=64 * MiB),
                    model=tiny_model(n_layers=12, hidden=512),
                    microbatches_per_minibatch=6)


@pytest.fixture(scope="module")
def plan_pool():
    """A planner-built plan plus the job and a shared lowering."""
    job = _pressured_job()
    plan = MPress(job).build_plan()
    lowering = Lowering(job, ExecOptions(strict=False, prefetch_lead=2))
    return job, plan, lowering


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_random_plans_fast_equals_reference(plan_pool, data):
    """fast_path_result == reference_result over random plan subsets."""
    _job, plan, lowering = plan_pool
    keys = sorted(plan.entries, key=repr)
    keep = data.draw(st.sets(st.sampled_from(keys)), label="kept entries")
    candidate = dataclasses.replace(
        plan, entries={k: v for k, v in plan.entries.items() if k in keep})
    program = lowering.lower(candidate)
    assert wants_fast_path(program)
    fast = result_fingerprint(run_program(program))
    reference = result_fingerprint(Interpreter(program).run())
    assert fast == reference


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_random_deltas_incremental_equals_reference(plan_pool, data):
    """Incremental re-simulation after a baseline run agrees with a
    fresh reference run of the delta — resumed or not."""
    _job, plan, lowering = plan_pool
    simulator = IncrementalSimulator()
    simulator.run(lowering.lower(plan))  # warm artifacts
    keys = sorted(plan.entries, key=repr)
    dropped = data.draw(st.sampled_from(keys), label="dropped entry")
    candidate = dataclasses.replace(
        plan, entries={k: v for k, v in plan.entries.items() if k != dropped})
    program = lowering.lower(candidate)
    incremental = result_fingerprint(simulator.run(program))
    reference = result_fingerprint(Interpreter(program).run())
    assert incremental == reference
