"""Property-based tests for the device-mapping search."""

from hypothesis import given, settings, strategies as st

from repro.core.device_mapping import assign_spare_memory, search_device_mapping
from repro.hardware.topology import dgx1_topology, dgx2_topology

TOPO = dgx1_topology()

byte_vectors = st.lists(
    st.integers(min_value=0, max_value=30 * 2**30), min_size=8, max_size=8
)


@given(overflow=byte_vectors, spare=byte_vectors)
@settings(max_examples=30, deadline=None)
def test_assignment_invariants(overflow, spare):
    evaluation = assign_spare_memory(TOPO, tuple(range(8)), overflow, spare)
    # Per-importer totals never exceed that importer's spare.
    received = {}
    for exporter, alloc in evaluation.assignments.items():
        assert overflow[exporter] > 0
        for importer, amount in alloc.items():
            assert amount > 0
            received[importer] = received.get(importer, 0) + amount
    for importer, amount in received.items():
        assert amount <= spare[importer]
    # Per-exporter totals never exceed the exporter's demand.
    for exporter, alloc in evaluation.assignments.items():
        assert sum(alloc.values()) <= overflow[exporter]
    # Placed fraction is consistent.
    total_overflow = sum(overflow)
    placed = sum(sum(a.values()) for a in evaluation.assignments.values())
    if total_overflow:
        assert abs(evaluation.placed_fraction - placed / total_overflow) < 1e-9
    # Only NVLink-reachable pairs are used.
    for exporter, alloc in evaluation.assignments.items():
        for importer in alloc:
            assert TOPO.lanes(exporter, importer) > 0


@given(overflow=byte_vectors, spare=byte_vectors)
@settings(max_examples=10, deadline=None)
def test_search_returns_valid_permutation(overflow, spare):
    result = search_device_mapping(TOPO, overflow, spare, mode="greedy")
    assert sorted(result.device_map) == list(range(8))
    assert 0.0 <= result.placed_fraction <= 1.0


@given(overflow=byte_vectors, spare=byte_vectors)
@settings(max_examples=10, deadline=None)
def test_search_never_worse_than_identity(overflow, spare):
    from repro.core.device_mapping import _score

    identity_eval = assign_spare_memory(TOPO, tuple(range(8)), overflow, spare)
    result = search_device_mapping(TOPO, overflow, spare, mode="greedy")
    # Greedy anchors stage 0 at device 0 but still explores 5040
    # mappings including the identity, so its *score* (the search
    # objective — revenue over transfer time, which may trade a sliver
    # of placed bytes for a faster layout) cannot lose to identity's.
    assert result.score >= _score(identity_eval) - 1e-9


@given(overflow=byte_vectors, spare=byte_vectors)
@settings(max_examples=20, deadline=None)
def test_switched_topology_places_all_reachable(overflow, spare):
    # A stage never both overflows and offers spare (the planner
    # derives them from the same peak), so zero out the conflicts.
    spare = [0 if overflow[i] > 0 else spare[i] for i in range(8)]
    topo = dgx2_topology()
    evaluation = assign_spare_memory(topo, tuple(range(8)), overflow, spare)
    # Full crossbar: placement is only limited by totals.
    expected = min(sum(overflow), sum(spare))
    placed = sum(sum(a.values()) for a in evaluation.assignments.values())
    assert placed >= expected * 0.99 - 8  # rounding slack
