"""3D parallelism over the cluster fabric: TP sharding, placement,
``run_cluster``, and the acceptance criteria of the cluster refactor
(fast path == reference bit-for-bit, analytic == lowered collectives).
"""

import json

import pytest

from repro.collectives import (
    all_reduce_schedule,
    collective_time,
    simulate_collective_time,
)
from repro.errors import ConfigurationError
from repro.hardware.cluster import dgx1_cluster, dgx2_cluster
from repro.job import dapple_job
from repro.models import gpt_variant
from repro.models.layers import LayerKind
from repro.parallel.cluster import (
    ClusterConfig,
    cluster_placement,
    plan_chain_job,
    run_cluster,
)
from repro.parallel.tensor import tp_shard_model, tp_sync_time
from repro.runtime.task import SimTask, execute_task
from repro.sim.memory import tensor_parallel_activation_scale
from repro.units import MiB


@pytest.fixture(scope="module")
def cluster():
    return dgx1_cluster(2)


@pytest.fixture(scope="module")
def job(cluster):
    return dapple_job(gpt_variant(5.3), cluster.servers[0], n_minibatches=2)


# -- tensor-parallel sharding --------------------------------------------


def test_tp_shard_scales_params_flops_not_norms():
    model = gpt_variant(5.3)
    shard = tp_shard_model(model, 2)
    base = next(l for l in model.layers if l.kind is LayerKind.TRANSFORMER)
    cut = next(l for l in shard.layers if l.kind is LayerKind.TRANSFORMER)
    hidden = model.config.hidden
    # Matmul weights halve; the 13h layernorm/bias terms replicate.
    assert cut.params == (12 * hidden * hidden) // 2 + 13 * hidden
    assert 2 * cut.params > base.params
    assert cut.forward_flops(2) == pytest.approx(base.forward_flops(2) / 2)
    # Plain TP re-materialises the full boundary tensor on every rank.
    assert cut.boundary_bytes(2) == base.boundary_bytes(2)


def test_tp_activation_scale_plain_vs_sequence_parallel():
    assert tensor_parallel_activation_scale(1) == 1.0
    plain = tensor_parallel_activation_scale(4)
    sp = tensor_parallel_activation_scale(4, sequence_parallel=True)
    # SP shards the replicated fraction too: exactly 1/tp.
    assert sp == pytest.approx(0.25)
    assert 0.25 < plain < 1.0
    model = gpt_variant(5.3)
    base = next(l for l in model.layers if l.kind is LayerKind.TRANSFORMER)
    cut = next(l for l in tp_shard_model(model, 2, True).layers
               if l.kind is LayerKind.TRANSFORMER)
    assert cut.activation_bytes(2) < base.activation_bytes(2)
    assert cut.boundary_bytes(2) == base.boundary_bytes(2) // 2


def test_tp_shard_identity_and_validation():
    model = gpt_variant(5.3)
    assert tp_shard_model(model, 1) is model
    with pytest.raises(ConfigurationError):
        tp_shard_model(model, 1000)          # more ranks than heads
    with pytest.raises(ConfigurationError):
        tp_shard_model(model, 0)


def test_tp_sync_time_counts_both_directions(cluster, job):
    topo = cluster.topology
    shard = tp_shard_model(job.model, 2)
    transformers = [l for l in shard.layers
                    if l.kind is LayerKind.TRANSFORMER]
    one = tp_sync_time(transformers[:1], topo, (0, 3), job.microbatch_size)
    # A transformer layer all-reduces twice per direction.
    from repro.collectives.cost import all_reduce_time
    from repro.models.costs import tp_allreduce_bytes

    payload = tp_allreduce_bytes(shard.config.hidden, shard.config.seq_len,
                                 job.microbatch_size)
    assert one == pytest.approx(
        4 * all_reduce_time(topo, (0, 3), payload, "ring"))
    assert tp_sync_time(transformers, topo, (0,), job.microbatch_size) == 0.0


# -- placement -----------------------------------------------------------


def test_placement_shapes_and_groups(cluster):
    topo = cluster.topology
    placement = cluster_placement(topo, tp=2, dp=2, pp=2)
    assert (placement.tp, placement.dp, placement.pp) == (2, 2, 2)
    used = [d for r in placement.chains for c in r for d in c]
    assert len(set(used)) == 8
    # Chains never straddle a server.
    for replica in placement.chains:
        for chain in replica:
            assert len({topo.server_of(d) for d in chain}) == 1
    # Groups are consistent views of the same grid.
    assert placement.tp_group(0, 0) == tuple(
        placement.chain(0, t)[0] for t in range(2))
    assert placement.dp_group(0, 0) == tuple(
        placement.chain(r, 0)[0] for r in range(2))


def test_placement_spread_forces_cross_server(cluster):
    topo = cluster.topology
    spread = cluster_placement(topo, tp=1, dp=2, pp=8, mode="spread")
    servers = {topo.server_of(replica[0][0]) for replica in spread.chains}
    assert servers == {0, 1}
    assert spread.mode == "spread"


def test_placement_rejects_oversized_shapes(cluster):
    topo = cluster.topology
    with pytest.raises(ConfigurationError):
        cluster_placement(topo, tp=2, dp=2, pp=8)     # 32 > 16 GPUs
    with pytest.raises(ConfigurationError):
        cluster_placement(topo, tp=4, dp=1, pp=4)     # block > one server
    with pytest.raises(ConfigurationError):
        cluster_placement(topo, tp=0, dp=2, pp=2)


def test_placement_fills_heterogeneous_free_lists():
    # dp=4 blocks of 4 GPUs pack two per server.
    topo = dgx1_cluster(2).topology
    placement = cluster_placement(topo, tp=2, dp=4, pp=2, mode="packed")
    assert len({d for r in placement.chains for c in r for d in c}) == 16


# -- run_cluster ---------------------------------------------------------


def test_run_cluster_tp2_dp2_pp2_acceptance(cluster, job):
    """The ISSUE's acceptance shape: GPT-5.3B, TP=2 x DP=2 x PP=2."""
    result = run_cluster(job, cluster, ClusterConfig(tp=2, dp=2, pp=2))
    assert result.ok
    assert (result.tp, result.dp, result.pp) == (2, 2, 2)
    assert len(result.chains) == 2 and len(result.chains[0]) == 2
    # Both sync planes are live and additive.
    assert result.exposed_tp_sync > 0
    assert result.exposed_allreduce > 0
    assert result.minibatch_time == pytest.approx(
        result.chain_minibatch_time + result.exposed_tp_sync
        + result.exposed_allreduce)
    assert result.samples_per_second > 0
    assert result.tflops > 0
    peaks = result.peak_memory_per_gpu()
    assert len(peaks) == 16
    assert sum(p > 0 for p in peaks) == 8     # tp*dp*pp GPUs busy


def test_run_cluster_fastpath_matches_reference(cluster, job, monkeypatch):
    """Chain simulations dispatch through the fast path; forcing the
    reference interpreter must not move a single byte of the record
    (trace digests included)."""
    task = SimTask(label="cluster-equiv", job=job, system="mpress",
                   cluster=cluster,
                   cluster_config=ClusterConfig(tp=2, dp=2, pp=2))
    fast = execute_task(task)
    monkeypatch.setattr("repro.sim.fastpath.wants_fast_path",
                        lambda *args, **kwargs: False)
    reference = execute_task(task)
    assert json.dumps(fast, sort_keys=True) == \
        json.dumps(reference, sort_keys=True)
    assert fast["cluster"]["chain_trace_digests"] == \
        reference["cluster"]["chain_trace_digests"]


def test_cluster_hierarchical_analytic_matches_lowered(cluster):
    """Acceptance: the inter-node tier of the hierarchical all-reduce
    prices identically through the analytic model and the IR
    interpreter (1e-6 relative)."""
    flat = cluster.as_server()
    topo = cluster.topology
    for algorithm in ("ring", "tree", "hierarchical"):
        sched = all_reduce_schedule(topo, range(16), 64 * MiB,
                                    algorithm=algorithm)
        analytic = collective_time(sched, topo)
        simulated = simulate_collective_time(flat, sched)
        assert simulated == pytest.approx(analytic, rel=1e-6), algorithm


def test_cluster_dp_crosses_fabric_costs_more():
    """Spreading replicas over the NIC fabric must price the DP
    all-reduce higher than packing them on NVLink."""
    cluster = dgx1_cluster(2)
    job = dapple_job(gpt_variant(5.3), cluster.servers[0], n_minibatches=2)
    packed = run_cluster(job, cluster, ClusterConfig(
        tp=2, dp=2, pp=2, placement_mode="packed"))
    spread = run_cluster(job, cluster, ClusterConfig(
        tp=2, dp=2, pp=2, placement_mode="spread"))
    assert packed.ok and spread.ok
    assert spread.exposed_allreduce >= packed.exposed_allreduce
    assert packed.minibatch_time <= spread.minibatch_time


def test_run_cluster_single_server_tp_only():
    """tp>1 on a one-box cluster: the degenerate fabric case."""
    cluster = dgx1_cluster(1)
    job = dapple_job(gpt_variant(5.3), cluster.servers[0], n_minibatches=2)
    result = run_cluster(job, cluster, ClusterConfig(tp=2, dp=1, pp=4))
    assert result.ok
    assert result.exposed_allreduce == 0.0    # no DP plane
    assert result.exposed_tp_sync > 0


def test_run_cluster_sequence_parallel_saves_memory(cluster, job):
    plain = run_cluster(job, cluster, ClusterConfig(tp=2, dp=2, pp=2))
    sp = run_cluster(job, cluster, ClusterConfig(
        tp=2, dp=2, pp=2, sequence_parallel=True))
    assert plain.ok and sp.ok
    assert max(sp.peak_memory_per_gpu()) < max(plain.peak_memory_per_gpu())


def test_plan_chain_job_is_one_chain(cluster, job):
    chain, placement = plan_chain_job(job, cluster,
                                      ClusterConfig(tp=2, dp=2, pp=2))
    assert chain.server.n_gpus == 2           # pp devices
    assert chain.n_stages == 2
    assert placement.chain(0, 0) in [
        tuple(c) for r in placement.chains for c in r]
    # The chain's model is the TP shard, not the full model.
    assert chain.model.layers[1].params < job.model.layers[1].params


# -- cluster tasks in the runtime ----------------------------------------


def test_cluster_task_validation(cluster, job):
    from repro.parallel.hybrid import HybridConfig

    with pytest.raises(ConfigurationError):
        SimTask(label="x", job=job, system="mpress", cluster=cluster)
    with pytest.raises(ConfigurationError):
        SimTask(label="x", job=job, system="mpress",
                cluster_config=ClusterConfig(tp=2))
    with pytest.raises(ConfigurationError):
        SimTask(label="x", job=job, system="mpress", cluster=cluster,
                cluster_config=ClusterConfig(tp=2), hybrid=HybridConfig(dp=2))


def test_cluster_task_key_depends_on_shape(cluster, job):
    a = SimTask(label="x", job=job, system="mpress", cluster=cluster,
                cluster_config=ClusterConfig(tp=2, dp=2, pp=2))
    b = SimTask(label="x", job=job, system="mpress", cluster=cluster,
                cluster_config=ClusterConfig(tp=1, dp=2, pp=4))
    c = SimTask(label="x", job=job, system="mpress",
                cluster=dgx2_cluster(2),
                cluster_config=ClusterConfig(tp=2, dp=2, pp=2))
    assert len({a.cache_key(), b.cache_key(), c.cache_key()}) == 3
    assert a.cache_key() == SimTask(
        label="x", job=job, system="mpress", cluster=dgx1_cluster(2),
        cluster_config=ClusterConfig(tp=2, dp=2, pp=2)).cache_key()


def test_plain_task_key_unchanged_by_cluster_fields(job):
    """Single-server cache keys must not see the new fields at all."""
    task = SimTask(label="x", job=job, system="recomputation")
    payload = task.key_payload()
    assert "cluster" not in payload
    assert "cluster_config" not in payload
