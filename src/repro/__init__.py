"""MPress reproduction: memory-saving inter-operator parallel training.

Public API quick reference::

    from repro import bert_variant, dgx1_server, pipedream_job, run_system

    job = pipedream_job(bert_variant(0.64), dgx1_server())
    result = run_system(job, "mpress")
    print(result.tflops, result.simulation.peak_memory_per_gpu)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.hardware import dgx1_server, dgx2_server
from repro.job import TrainingJob, dapple_job, pipedream_job
from repro.models import bert_variant, gpt_variant

__version__ = "1.0.0"

__all__ = [
    "bert_variant",
    "gpt_variant",
    "dgx1_server",
    "dgx2_server",
    "TrainingJob",
    "pipedream_job",
    "dapple_job",
    "run_system",
    "simulate",
    "MPress",
    "run_zero",
    "run_hybrid",
    "HybridConfig",
    "FaultSpec",
    "FaultSchedule",
    "random_schedule",
]


def __getattr__(name):
    # Heavier subsystems import lazily to keep `import repro` light.
    if name in ("run_system", "MPress"):
        from repro.core import mpress

        return getattr(mpress, name)
    if name == "simulate":
        from repro.sim.executor import simulate

        return simulate
    if name == "run_zero":
        from repro.baselines.zero import run_zero

        return run_zero
    if name in ("run_hybrid", "HybridConfig"):
        from repro.parallel import hybrid

        return getattr(hybrid, name)
    if name in ("FaultSpec", "FaultSchedule", "random_schedule"):
        from repro import faults

        return getattr(faults, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
