"""Training job description: model + server + pipeline configuration.

A :class:`TrainingJob` bundles everything needed to simulate one
training run: the model variant, the server, the inter-operator
training system (PipeDream, DAPPLE, or GPipe), batch geometry, numeric
precision, and the partition strategy.  It derives the stage plan,
schedule, and per-stage compute times used everywhere downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property

from repro.errors import ConfigurationError
from repro.hardware.server import Server
from repro.models.layers import LayerSpec, ModelSpec
from repro.pipeline.dapple import dapple_schedule
from repro.pipeline.gpipe import gpipe_schedule
from repro.pipeline.partition import partition_model
from repro.pipeline.pipedream import pipedream_schedule
from repro.pipeline.schedule import PipelineSchedule
from repro.pipeline.stage import StagePlan

# Model FLOPs utilization actually achieved by the two systems'
# kernels.  DAPPLE runs fp16 tensor-core kernels at lower relative
# utilization; PipeDream runs fp32 at higher relative utilization —
# the absolute fp16 throughput is still far higher (the paper's
# "result gap between PipeDream and DAPPLE", Section IV-C).
DEFAULT_MFU = {"fp32": 0.60, "fp16": 0.45}

# Bytes the optimizer touches per parameter during one Adam step:
# read fp16 grad + fp32 master/m/v, write fp32 master/m/v + fp16 param.
_OPTIMIZER_TRAFFIC_PER_PARAM = 30


@dataclass(frozen=True)
class TrainingJob:
    """One pipelined training run on one server."""

    model: ModelSpec
    server: Server
    system: str                       # "pipedream" | "dapple" | "gpipe"
    microbatch_size: int
    microbatches_per_minibatch: int
    n_minibatches: int
    precision: str                    # "fp32" | "fp16"
    mfu: float
    partition_strategy: str = "computation"

    def __post_init__(self) -> None:
        if self.system not in ("pipedream", "dapple", "gpipe"):
            raise ConfigurationError(f"unknown training system {self.system!r}")
        if self.precision not in ("fp32", "fp16"):
            raise ConfigurationError(f"unknown precision {self.precision!r}")
        if min(self.microbatch_size, self.microbatches_per_minibatch, self.n_minibatches) < 1:
            raise ConfigurationError("batch geometry values must be positive")
        if not 0 < self.mfu <= 1:
            raise ConfigurationError("mfu must be in (0, 1]")

    # -- derived structure -------------------------------------------------

    @property
    def n_stages(self) -> int:
        return self.server.n_gpus

    @property
    def bytes_per_element(self) -> int:
        """Activation element width: fp32 doubles activation memory."""
        return 4 if self.precision == "fp32" else 2

    @cached_property
    def stage_plan(self) -> StagePlan:
        return partition_model(
            self.model,
            self.n_stages,
            strategy=self.partition_strategy,
            microbatch=self.microbatch_size,
        )

    @cached_property
    def schedule(self) -> PipelineSchedule:
        if self.system == "pipedream":
            return pipedream_schedule(
                self.n_stages, self.n_minibatches, self.microbatches_per_minibatch
            )
        if self.system == "gpipe":
            return gpipe_schedule(
                self.n_stages, self.n_minibatches, self.microbatches_per_minibatch
            )
        return dapple_schedule(
            self.n_stages, self.n_minibatches, self.microbatches_per_minibatch
        )

    # -- timing ------------------------------------------------------------

    def _throughput(self, device: int) -> float:
        gpu = self.server.gpu(device)
        return gpu.peak_flops(self.precision) * self.mfu

    def forward_time(self, stage: int, device: int) -> float:
        flops = self.stage_plan.stage(stage).forward_flops(self.microbatch_size)
        return flops / self._throughput(device)

    def backward_time(self, stage: int, device: int) -> float:
        flops = self.stage_plan.stage(stage).backward_flops(self.microbatch_size)
        return flops / self._throughput(device)

    def layer_forward_time(self, layer: LayerSpec, device: int) -> float:
        """Recomputation cost of one layer (an extra forward pass)."""
        return layer.forward_flops(self.microbatch_size) / self._throughput(device)

    def optimizer_time(self, stage: int, device: int) -> float:
        """Adam step duration: HBM-bandwidth-bound elementwise update."""
        params = self.stage_plan.stage(stage).params
        gpu = self.server.gpu(device)
        return params * _OPTIMIZER_TRAFFIC_PER_PARAM / gpu.hbm_bandwidth

    # -- workload metrics ----------------------------------------------------

    @property
    def samples_per_minibatch(self) -> int:
        return self.microbatch_size * self.microbatches_per_minibatch

    def minibatch_flops(self) -> float:
        """Model FLOPs of one minibatch (fwd + bwd), for TFLOPS reporting."""
        return self.model.iteration_flops(self.samples_per_minibatch)

    def with_minibatches(self, n: int) -> "TrainingJob":
        return replace(self, n_minibatches=n)


def pipedream_job(
    model: ModelSpec,
    server: Server,
    microbatch_size: int = 12,
    microbatches_per_minibatch: int = 1,
    n_minibatches: int = None,
    mfu: float = None,
) -> TrainingJob:
    """PipeDream-style job: asynchronous scheduling, fp32 kernels.

    Original PipeDream pipelines *minibatches* — every microbatch is
    a minibatch with its own weight update — which is exactly what
    makes weight stashing grow with pipeline depth (Section II-C).
    ``n_minibatches`` defaults to enough updates for the pipeline to
    reach steady state.
    """
    if n_minibatches is None:
        n_minibatches = 3 * server.n_gpus
    return TrainingJob(
        model=model,
        server=server,
        system="pipedream",
        microbatch_size=microbatch_size,
        microbatches_per_minibatch=microbatches_per_minibatch,
        n_minibatches=n_minibatches,
        precision="fp32",
        mfu=mfu if mfu is not None else DEFAULT_MFU["fp32"],
    )


def dapple_job(
    model: ModelSpec,
    server: Server,
    microbatch_size: int = 2,
    microbatches_per_minibatch: int = None,
    n_minibatches: int = 2,
    mfu: float = None,
) -> TrainingJob:
    """DAPPLE-style job: synchronous scheduling, fp16 kernels."""
    return TrainingJob(
        model=model,
        server=server,
        system="dapple",
        microbatch_size=microbatch_size,
        microbatches_per_minibatch=microbatches_per_minibatch or 2 * server.n_gpus,
        n_minibatches=n_minibatches,
        precision="fp16",
        mfu=mfu if mfu is not None else DEFAULT_MFU["fp16"],
    )


def gpipe_job(
    model: ModelSpec,
    server: Server,
    microbatch_size: int = 2,
    microbatches_per_minibatch: int = None,
    n_minibatches: int = 2,
    mfu: float = None,
) -> TrainingJob:
    """GPipe-style job: synchronous all-forward-then-all-backward.

    GPipe holds every in-flight microbatch's activations at the
    forward/backward boundary, so its memory high-water mark exceeds
    DAPPLE's at equal geometry — more room for MPress to reclaim.
    """
    return TrainingJob(
        model=model,
        server=server,
        system="gpipe",
        microbatch_size=microbatch_size,
        microbatches_per_minibatch=microbatches_per_minibatch or 2 * server.n_gpus,
        n_minibatches=n_minibatches,
        precision="fp16",
        mfu=mfu if mfu is not None else DEFAULT_MFU["fp16"],
    )
