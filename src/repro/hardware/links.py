"""Interconnect link specifications.

A :class:`LinkSpec` describes one physical lane type (one NVLink 2.0
brick, one PCIe 3.0 x16 slot, ...).  Effective throughput for a given
message size is computed in :mod:`repro.hardware.bandwidth`; the specs
here carry the peak bandwidth, a per-transfer setup latency, and a
sustained-efficiency factor calibrated against the paper's Figure 4
measurements (PCIe ~11.7 GB/s, 2 NVLinks ~45 GB/s, 6 NVLinks
~146 GB/s unidirectional).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GBps, US


class LinkType(enum.Enum):
    """Kinds of point-to-point lanes in a server or cluster."""

    NVLINK = "nvlink"
    PCIE = "pcie"
    NVME = "nvme"
    FABRIC = "fabric"


@dataclass(frozen=True)
class LinkSpec:
    """One physical lane.

    ``peak_bandwidth``: vendor peak, unidirectional, bytes/s.
    ``efficiency``: sustained fraction of peak achievable for large
    transfers (protocol overhead, flow control).
    ``latency``: per-transfer setup cost in seconds; this produces the
    low-bandwidth ramp for small messages in Figure 4.
    """

    link_type: LinkType
    peak_bandwidth: float
    efficiency: float
    latency: float

    def __post_init__(self) -> None:
        if self.peak_bandwidth <= 0:
            raise ConfigurationError("link peak bandwidth must be positive")
        if not 0 < self.efficiency <= 1:
            raise ConfigurationError("link efficiency must be in (0, 1]")
        if self.latency < 0:
            raise ConfigurationError("link latency must be non-negative")

    @property
    def sustained_bandwidth(self) -> float:
        """Large-message unidirectional bandwidth in bytes/s."""
        return self.peak_bandwidth * self.efficiency


# One NVLink 2.0 brick: 25 GB/s peak per direction.  At 0.97
# efficiency, two bricks sustain ~48.5 GB/s and six ~145.5 GB/s,
# matching the paper's 45 / 146 GB/s measurements.
NVLINK2 = LinkSpec(
    link_type=LinkType.NVLINK,
    peak_bandwidth=25 * GBps,
    efficiency=0.97,
    latency=10 * US,
)

# NVLink 3.0 brick (A100 generation): same per-brick data rate as
# NVLink 2.0 in the unidirectional accounting we use; the DGX-2-class
# machine differs by *topology* (symmetric crossbar), not lane speed.
NVLINK3 = LinkSpec(
    link_type=LinkType.NVLINK,
    peak_bandwidth=25 * GBps,
    efficiency=0.97,
    latency=8 * US,
)

# PCIe 3.0 x16: 15.75 GB/s raw; sustained ~11.7 GB/s, the paper's
# GPU-CPU swap bandwidth.
PCIE3_X16 = LinkSpec(
    link_type=LinkType.PCIE,
    peak_bandwidth=15.75 * GBps,
    efficiency=0.745,
    latency=25 * US,
)


# Inter-node fabrics.  Peak bandwidth is per NIC lane, unidirectional;
# the per-transfer setup latency is dominated by the network round
# trip rather than DMA engine start-up, so fabrics ramp to their
# sustained bandwidth at much larger message sizes than NVLink —
# which is exactly why hierarchical collectives keep bulk traffic
# inside the server and cross the fabric once per chunk position.

# InfiniBand EDR, 100 Gb/s per port (~12.5 GB/s raw).
IB_EDR = LinkSpec(
    link_type=LinkType.FABRIC,
    peak_bandwidth=12.5 * GBps,
    efficiency=0.92,
    latency=5 * US,
)

# InfiniBand HDR, 200 Gb/s per port (~25 GB/s raw): the p4d/DGX-A100
# generation fabric.
IB_HDR = LinkSpec(
    link_type=LinkType.FABRIC,
    peak_bandwidth=25 * GBps,
    efficiency=0.92,
    latency=5 * US,
)

# 100 GbE with RoCE-style transport: same raw rate as EDR but lower
# sustained efficiency and a far higher per-message setup cost.
ETH_100G = LinkSpec(
    link_type=LinkType.FABRIC,
    peak_bandwidth=12.5 * GBps,
    efficiency=0.85,
    latency=30 * US,
)

FABRICS = {"ib-edr": IB_EDR, "ib-hdr": IB_HDR, "eth-100g": ETH_100G}


def nvme_link(read_bandwidth: float, latency: float = 80 * US) -> LinkSpec:
    """Build a LinkSpec describing an NVMe device's transfer path."""
    return LinkSpec(
        link_type=LinkType.NVME,
        peak_bandwidth=read_bandwidth,
        efficiency=1.0,
        latency=latency,
    )
