"""Whole-server assembly: GPUs + topology + host + storage."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigurationError
from repro.hardware.device import (
    A100,
    DGX2_HOST,
    FAST_NVME,
    GPUSpec,
    HostSpec,
    NVMeSpec,
    P3DN_HOST,
    SLOW_NVME,
    V100,
)
from repro.hardware.links import LinkSpec, PCIE3_X16
from repro.hardware.topology import Topology, dgx1_topology, dgx2_topology


@dataclass(frozen=True)
class Server:
    """A single multi-GPU training server.

    This is the object every simulation, planner, and baseline takes
    as its hardware description.
    """

    name: str
    gpus: List[GPUSpec]
    topology: Topology
    host: HostSpec
    pcie: LinkSpec = PCIE3_X16
    nvme: NVMeSpec = field(default=FAST_NVME)

    def __post_init__(self) -> None:
        if len(self.gpus) != self.topology.n_gpus:
            raise ConfigurationError(
                f"server {self.name}: {len(self.gpus)} GPUs but topology "
                f"describes {self.topology.n_gpus}"
            )
        if not self.gpus:
            raise ConfigurationError("a server needs at least one GPU")

    @property
    def n_gpus(self) -> int:
        return len(self.gpus)

    @property
    def gpu_memory(self) -> int:
        """Per-GPU memory capacity in bytes (homogeneous servers)."""
        return self.gpus[0].memory_bytes

    @property
    def total_gpu_memory(self) -> int:
        return sum(gpu.memory_bytes for gpu in self.gpus)

    def gpu(self, index: int) -> GPUSpec:
        if not 0 <= index < self.n_gpus:
            raise ConfigurationError(f"GPU index {index} out of range")
        return self.gpus[index]


def dgx1_server() -> Server:
    """The DGX-1-class machine: 8x V100-32GB, hybrid cube-mesh, 768 GiB host."""
    return Server(
        name="DGX-1-V100",
        gpus=[V100] * 8,
        topology=dgx1_topology(),
        host=P3DN_HOST,
        nvme=FAST_NVME,
    )


def dgx2_server() -> Server:
    """The DGX-2-class machine: 8x A100-40GB, symmetric NVSwitch, slow NVMe.

    The slow NVMe mirrors the rented server in Section IV-C whose SSD
    bandwidth bottlenecked ZeRO-Infinity (Figure 8b).
    """
    return Server(
        name="DGX-2-A100",
        gpus=[A100] * 8,
        topology=dgx2_topology(),
        host=DGX2_HOST,
        nvme=SLOW_NVME,
    )
