"""Simulated multi-GPU server hardware: devices, links, topologies.

This subpackage is the substitute for the paper's physical DGX-1 /
DGX-2 testbeds.  It models GPUs, NVLink/PCIe/NVMe interconnects with
message-size-dependent effective bandwidth, and the asymmetric
(hybrid cube-mesh) and symmetric (crossbar) topologies the paper
evaluates on.
"""

from repro.hardware.device import GPUSpec, HostSpec, NVMeSpec, A100, V100
from repro.hardware.links import (
    LinkType,
    LinkSpec,
    NVLINK2,
    PCIE3_X16,
    IB_EDR,
    IB_HDR,
    ETH_100G,
    FABRICS,
)
from repro.hardware.bandwidth import effective_bandwidth, transfer_time
from repro.hardware.topology import Topology, dgx1_topology, dgx2_topology
from repro.hardware.server import Server, dgx1_server, dgx2_server
from repro.hardware.cluster import (
    Cluster,
    ClusterTopology,
    make_cluster,
    dgx1_cluster,
    dgx2_cluster,
)

__all__ = [
    "GPUSpec",
    "HostSpec",
    "NVMeSpec",
    "A100",
    "V100",
    "LinkType",
    "LinkSpec",
    "NVLINK2",
    "PCIE3_X16",
    "effective_bandwidth",
    "transfer_time",
    "Topology",
    "dgx1_topology",
    "dgx2_topology",
    "Server",
    "dgx1_server",
    "dgx2_server",
    "IB_EDR",
    "IB_HDR",
    "ETH_100G",
    "FABRICS",
    "Cluster",
    "ClusterTopology",
    "make_cluster",
    "dgx1_cluster",
    "dgx2_cluster",
]
