"""Message-size-dependent effective bandwidth.

Reproduces the behaviour measured in the paper's Figure 4: effective
bandwidth ramps up with message size (per-transfer latency dominates
small messages) and saturates at the sustained aggregate bandwidth of
the lanes used.  Striping across ``n`` parallel lanes multiplies the
saturated bandwidth but not the setup latency.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hardware.links import LinkSpec


def transfer_time(size_bytes: int, link: LinkSpec, lanes: int = 1) -> float:
    """Seconds to move ``size_bytes`` across ``lanes`` parallel lanes.

    The transfer is modelled as one setup latency plus streaming at
    the aggregate sustained bandwidth.  A zero-byte transfer still
    pays the setup latency (a real cudaMemcpyAsync does too).
    """
    if size_bytes < 0:
        raise ConfigurationError("transfer size must be non-negative")
    if lanes < 1:
        raise ConfigurationError("lane count must be >= 1")
    aggregate = link.sustained_bandwidth * lanes
    return link.latency + size_bytes / aggregate


def effective_bandwidth(size_bytes: int, link: LinkSpec, lanes: int = 1) -> float:
    """Observed bandwidth (bytes/s) for a transfer of ``size_bytes``.

    This is what Figure 4 plots: ``size / transfer_time``.
    """
    if size_bytes <= 0:
        raise ConfigurationError("effective bandwidth needs a positive size")
    return size_bytes / transfer_time(size_bytes, link, lanes)


def striped_transfer_time(block_sizes, link: LinkSpec) -> float:
    """Time for a striped transfer whose sub-blocks move concurrently.

    Each sub-block travels over its own lane; completion time is the
    slowest lane.  ``block_sizes`` is an iterable of byte counts.
    """
    sizes = list(block_sizes)
    if not sizes:
        raise ConfigurationError("striped transfer needs at least one block")
    return max(transfer_time(int(size), link, lanes=1) for size in sizes)
