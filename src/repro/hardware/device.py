"""Device specifications: GPUs, host CPU memory, NVMe storage.

The numbers mirror the two servers in the paper's Section IV-A:

* DGX-1-class: AWS EC2 p3dn.24xlarge — 8x V100 (32 GiB), 768 GiB host.
* DGX-2-class: rented server — 8x A100 (40 GiB), 948 GiB host, 6 TB NVMe
  whose I/O bandwidth the paper observed to be *lower* than the DGX-1
  machine's (the cause of ZeRO-Infinity's slowdown in Figure 8b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GiB, TFLOP, GBps, TiB


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU device.

    ``peak_fp32`` / ``peak_fp16`` are peak throughputs in FLOP/s;
    achieved throughput is derated by the model cost layer, not here.
    """

    name: str
    memory_bytes: int
    peak_fp32: float
    peak_fp16: float
    hbm_bandwidth: float = 900 * GBps

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ConfigurationError(f"GPU {self.name}: memory must be positive")
        if self.peak_fp32 <= 0 or self.peak_fp16 <= 0:
            raise ConfigurationError(f"GPU {self.name}: peak FLOPS must be positive")
        if self.hbm_bandwidth <= 0:
            raise ConfigurationError(f"GPU {self.name}: HBM bandwidth must be positive")

    def peak_flops(self, precision: str) -> float:
        """Peak FLOP/s for ``precision`` ('fp32' or 'fp16')."""
        if precision == "fp32":
            return self.peak_fp32
        if precision == "fp16":
            return self.peak_fp16
        raise ConfigurationError(f"unknown precision {precision!r}")


@dataclass(frozen=True)
class HostSpec:
    """Host (CPU) side of the server: memory capacity and core count."""

    memory_bytes: int
    vcpus: int = 96

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ConfigurationError("host memory must be positive")


@dataclass(frozen=True)
class NVMeSpec:
    """NVMe storage attached to the host (used by ZeRO-Infinity)."""

    capacity_bytes: int
    read_bandwidth: float
    write_bandwidth: float

    def __post_init__(self) -> None:
        if min(self.read_bandwidth, self.write_bandwidth) <= 0:
            raise ConfigurationError("NVMe bandwidth must be positive")


# Tesla V100-SXM2-32GB: 15.7 TFLOPS fp32, 125 TFLOPS fp16 tensor core.
V100 = GPUSpec(
    name="V100-SXM2-32GB",
    memory_bytes=32 * GiB,
    peak_fp32=15.7 * TFLOP,
    peak_fp16=125.0 * TFLOP,
    hbm_bandwidth=900 * GBps,
)

# A100-SXM4-40GB: 19.5 TFLOPS fp32, 312 TFLOPS fp16 tensor core.
A100 = GPUSpec(
    name="A100-SXM4-40GB",
    memory_bytes=40 * GiB,
    peak_fp32=19.5 * TFLOP,
    peak_fp16=312.0 * TFLOP,
    hbm_bandwidth=1555 * GBps,
)

# Host configurations from Section IV-A.
P3DN_HOST = HostSpec(memory_bytes=768 * GiB, vcpus=96)
DGX2_HOST = HostSpec(memory_bytes=948 * GiB, vcpus=164)

# A healthy datacenter NVMe array (DGX-1-class machine).
FAST_NVME = NVMeSpec(capacity_bytes=2 * TiB, read_bandwidth=8 * GBps, write_bandwidth=6 * GBps)

# The rented DGX-2's SSDs were observed to be significantly slower
# (paper, Section IV-C) — this is what makes ZeRO-Infinity lose to
# ZeRO-Offload on the largest models in Figure 8b.
SLOW_NVME = NVMeSpec(capacity_bytes=6 * TiB, read_bandwidth=2 * GBps, write_bandwidth=1.5 * GBps)
