"""GPU interconnect topologies.

Two topology kinds cover the paper's servers:

* ``direct`` — point-to-point NVLink bricks between specific GPU
  pairs.  The DGX-1V hybrid cube-mesh is the canonical instance: each
  V100 exposes 6 bricks, and pairs are connected by 1 or 2 bricks
  (the asymmetry the paper's device-mapping search exploits —
  e.g. GPU0-GPU3 has two bricks / 50 GB/s while GPU0-GPU1 has one).

* ``switched`` — every GPU connects all of its bricks to a
  non-blocking switch (NVSwitch), so any pair can communicate and a
  GPU's 6 bricks are a shared egress budget.  This is the DGX-2-class
  symmetric topology.

A *lane* is one brick in one direction.  Transfers in the simulator
occupy individual lane channels; striping (Section III-C) is what
lets one logical tensor move over several lanes concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from repro.errors import TopologyError
from repro.hardware.links import LinkSpec, NVLINK2, NVLINK3

# Channel keys are opaque hashable tuples; the simulator maps each to
# one in-order lane resource.
ChannelKey = Tuple


@dataclass(frozen=True)
class Topology:
    """An interconnect topology over ``n_gpus`` devices.

    ``adjacency`` maps unordered GPU pairs (as frozensets) to brick
    counts; it is only populated for ``kind == "direct"``.
    """

    n_gpus: int
    kind: str
    nvlink: LinkSpec
    lane_budget: int = 6
    adjacency: Dict[FrozenSet[int], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Degenerate single-GPU topologies are valid: a TP group of
        # one or a single-GPU ``sub_server`` carve-out still needs a
        # representable interconnect (with no lanes to anywhere).
        if self.n_gpus < 1:
            raise TopologyError("a topology needs at least one GPU")
        if self.kind not in ("direct", "switched"):
            raise TopologyError(f"unknown topology kind {self.kind!r}")
        if self.kind == "direct":
            self._validate_direct()

    def _validate_direct(self) -> None:
        for pair, count in self.adjacency.items():
            if len(pair) != 2:
                raise TopologyError(f"adjacency key {pair} is not a pair")
            if any(g < 0 or g >= self.n_gpus for g in pair):
                raise TopologyError(f"adjacency pair {pair} out of range")
            if count < 1:
                raise TopologyError(f"pair {pair} has non-positive brick count")
        for gpu in range(self.n_gpus):
            if self.bricks_at(gpu) > self.lane_budget:
                raise TopologyError(
                    f"GPU {gpu} uses {self.bricks_at(gpu)} bricks, "
                    f"budget is {self.lane_budget}"
                )

    # -- queries ---------------------------------------------------------

    @property
    def is_symmetric(self) -> bool:
        """True when every pair sees the same connectivity (DGX-2)."""
        return self.kind == "switched"

    def lanes(self, src: int, dst: int) -> int:
        """Number of lanes usable for a src->dst transfer.

        For a switched topology this is the full egress budget (the
        switch is non-blocking); contention with transfers to other
        destinations is resolved by the simulator's lane channels.
        """
        self._check_gpu(src)
        self._check_gpu(dst)
        if src == dst:
            return 0
        if self.kind == "switched":
            return self.lane_budget
        return self.adjacency.get(frozenset((src, dst)), 0)

    def link_for(self, src: int, dst: int) -> LinkSpec:
        """The lane spec a src->dst transfer runs on.

        Single-server topologies have exactly one intra-box lane type
        (NVLink); tiered cluster topologies override this to return
        the fabric spec for cross-server pairs.
        """
        self._check_gpu(src)
        self._check_gpu(dst)
        return self.nvlink

    def neighbors(self, gpu: int) -> List[int]:
        """GPUs directly reachable from ``gpu`` over NVLink."""
        self._check_gpu(gpu)
        return [peer for peer in range(self.n_gpus) if peer != gpu and self.lanes(gpu, peer) > 0]

    def bricks_at(self, gpu: int) -> int:
        """Total NVLink bricks wired to ``gpu``."""
        self._check_gpu(gpu)
        if self.kind == "switched":
            return self.lane_budget
        return sum(count for pair, count in self.adjacency.items() if gpu in pair)

    def lane_channels(self, src: int, dst: int) -> List[ChannelKey]:
        """Lane channel keys a src->dst transfer may occupy.

        Direct topologies expose one channel per brick per direction
        of each connected pair.  Switched topologies expose the
        source's egress lanes, shared across all destinations.
        """
        n = self.lanes(src, dst)
        if n == 0:
            raise TopologyError(f"no NVLink route from GPU {src} to GPU {dst}")
        if self.kind == "switched":
            return [("egress", src, k) for k in range(self.lane_budget)]
        return [("lane", src, dst, k) for k in range(n)]

    def all_lane_channels(self) -> List[ChannelKey]:
        """Every lane channel key the simulator must instantiate."""
        keys: List[ChannelKey] = []
        if self.kind == "switched":
            for gpu in range(self.n_gpus):
                keys.extend(("egress", gpu, k) for k in range(self.lane_budget))
            return keys
        for pair, count in sorted(self.adjacency.items(), key=lambda kv: sorted(kv[0])):
            a, b = sorted(pair)
            for k in range(count):
                keys.append(("lane", a, b, k))
                keys.append(("lane", b, a, k))
        return keys

    def topology_key(self) -> Tuple:
        """Hashable identity (``adjacency`` is a dict, so not hashable)."""
        if self.kind == "switched":
            return ("switched", self.n_gpus, self.lane_budget)
        edges = tuple(sorted(
            (tuple(sorted(pair)), count)
            for pair, count in self.adjacency.items()
        ))
        return ("direct", self.n_gpus, self.lane_budget, edges)

    def _check_gpu(self, gpu: int) -> None:
        if not 0 <= gpu < self.n_gpus:
            raise TopologyError(f"GPU index {gpu} out of range [0, {self.n_gpus})")


# DGX-1V hybrid cube-mesh: two quads {0..3} and {4..7}; within a quad
# each GPU pairs with its three neighbours using 1/1/2 bricks, and each
# GPU has a 2-brick cross-quad partner.  Every GPU uses exactly 6.
_DGX1_EDGES: Dict[Tuple[int, int], int] = {
    (0, 1): 1, (0, 2): 1, (0, 3): 2,
    (1, 2): 2, (1, 3): 1,
    (2, 3): 1,
    (4, 5): 1, (4, 6): 1, (4, 7): 2,
    (5, 6): 2, (5, 7): 1,
    (6, 7): 1,
    (0, 4): 2, (1, 5): 2, (2, 6): 2, (3, 7): 2,
}


def dgx1_topology() -> Topology:
    """The asymmetric DGX-1V hybrid cube-mesh (Figure 3 of the paper)."""
    adjacency = {frozenset(pair): count for pair, count in _DGX1_EDGES.items()}
    return Topology(n_gpus=8, kind="direct", nvlink=NVLINK2, adjacency=adjacency)


def dgx2_topology(n_gpus: int = 8) -> Topology:
    """The symmetric switched topology of the DGX-2-class server."""
    return Topology(n_gpus=n_gpus, kind="switched", nvlink=NVLINK3)
