"""Multi-server cluster fabrics.

A :class:`Cluster` joins several :class:`~repro.hardware.server.Server`
boxes with an inter-node fabric (InfiniBand or Ethernet NICs).  The
cluster exposes the same topology protocol as a single server —
``lanes`` / ``lane_channels`` / ``link_for`` — so the collectives and
simulation layers price intra-server NVLink and inter-node fabric as
two *tiers* of one model:

* GPU pairs inside one server see that server's own topology
  (hybrid cube-mesh bricks, NVSwitch egress lanes, ...), unchanged.
* GPU pairs in different servers see ``nic_lanes`` fabric lanes per
  source GPU, priced on the fabric's own bandwidth ramp (higher
  latency, lower sustained bandwidth than NVLink).

Racks add an optional third tier: servers in different racks can be
given a distinct (typically oversubscribed) ``inter_rack_fabric``.

GPU numbering is global and server-contiguous: server ``s`` owns
devices ``[offset(s), offset(s) + s.n_gpus)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError, TopologyError
from repro.hardware.device import GPUSpec
from repro.hardware.links import IB_EDR, LinkSpec, LinkType
from repro.hardware.server import Server, dgx1_server, dgx2_server
from repro.hardware.topology import ChannelKey, Topology


@dataclass(frozen=True)
class ClusterTopology:
    """A tiered interconnect over the GPUs of several servers.

    Duck-types the :class:`~repro.hardware.topology.Topology` query
    protocol.  ``servers`` holds each box's local topology; global GPU
    ``g`` lives on the server whose contiguous range contains it.

    ``nic_lanes`` is the number of fabric lanes each *GPU* can drive
    concurrently for cross-server traffic (rail-optimised clusters
    give each GPU its own NIC, so the default is 1).  Cross-server
    channel keys are per source GPU — ``("nic", src, k)`` — so
    concurrent cross-server rings that touch disjoint devices occupy
    disjoint simulator resources, exactly like NVLink lanes.

    ``racks`` optionally groups server indices; pairs of servers in
    different racks use ``inter_rack_fabric`` when given.
    """

    servers: Tuple[Topology, ...]
    fabric: LinkSpec = IB_EDR
    nic_lanes: int = 1
    racks: Tuple[Tuple[int, ...], ...] = ()
    inter_rack_fabric: Optional[LinkSpec] = None

    def __post_init__(self) -> None:
        if not self.servers:
            raise TopologyError("a cluster needs at least one server")
        if self.fabric.link_type is not LinkType.FABRIC:
            raise TopologyError("cluster fabric must be a FABRIC link")
        if self.nic_lanes < 1:
            raise TopologyError("nic_lanes must be at least 1")
        if self.inter_rack_fabric is not None and (
            self.inter_rack_fabric.link_type is not LinkType.FABRIC
        ):
            raise TopologyError("inter-rack fabric must be a FABRIC link")
        if self.racks:
            seen = sorted(s for rack in self.racks for s in rack)
            if seen != list(range(len(self.servers))):
                raise TopologyError(
                    "racks must partition the server indices exactly once"
                )

    # -- structure -------------------------------------------------------

    @property
    def n_servers(self) -> int:
        return len(self.servers)

    @property
    def n_gpus(self) -> int:
        return sum(t.n_gpus for t in self.servers)

    @property
    def kind(self) -> str:
        return "cluster"

    @property
    def nvlink(self) -> LinkSpec:
        """The first server's intra-box lane spec.

        Kept for protocol compatibility; tier-aware code should call
        :meth:`link_for` instead.
        """
        return self.servers[0].nvlink

    @property
    def lane_budget(self) -> int:
        return self.servers[0].lane_budget

    @property
    def is_symmetric(self) -> bool:
        return False

    def server_offsets(self) -> List[int]:
        """Global GPU index where each server's range starts."""
        offsets: List[int] = []
        total = 0
        for topo in self.servers:
            offsets.append(total)
            total += topo.n_gpus
        return offsets

    def server_of(self, gpu: int) -> int:
        """Index of the server owning global GPU ``gpu``."""
        self._check_gpu(gpu)
        total = 0
        for idx, topo in enumerate(self.servers):
            total += topo.n_gpus
            if gpu < total:
                return idx
        raise TopologyError(f"GPU index {gpu} out of range")  # pragma: no cover

    def local_index(self, gpu: int) -> Tuple[int, int]:
        """Map a global GPU index to ``(server, local_gpu)``."""
        server = self.server_of(gpu)
        return server, gpu - self.server_offsets()[server]

    def server_devices(self, server: int) -> Tuple[int, ...]:
        """Global GPU indices owned by ``server``."""
        if not 0 <= server < self.n_servers:
            raise TopologyError(f"server index {server} out of range")
        start = self.server_offsets()[server]
        return tuple(range(start, start + self.servers[server].n_gpus))

    def rack_of(self, server: int) -> int:
        """Rack index of ``server`` (0 when no racks are declared)."""
        if not self.racks:
            return 0
        for idx, rack in enumerate(self.racks):
            if server in rack:
                return idx
        raise TopologyError(f"server {server} not in any rack")  # pragma: no cover

    def tier(self, src: int, dst: int) -> str:
        """Which hierarchy level a src->dst transfer crosses.

        ``"local"`` within one server, ``"fabric"`` between servers in
        one rack, ``"rack"`` across racks.
        """
        s_src, s_dst = self.server_of(src), self.server_of(dst)
        if s_src == s_dst:
            return "local"
        if self.rack_of(s_src) == self.rack_of(s_dst):
            return "fabric"
        return "rack"

    # -- topology protocol -----------------------------------------------

    def lanes(self, src: int, dst: int) -> int:
        self._check_gpu(src)
        self._check_gpu(dst)
        if src == dst:
            return 0
        s_src, l_src = self.local_index(src)
        s_dst, l_dst = self.local_index(dst)
        if s_src == s_dst:
            return self.servers[s_src].lanes(l_src, l_dst)
        return self.nic_lanes

    def link_for(self, src: int, dst: int) -> LinkSpec:
        self._check_gpu(src)
        self._check_gpu(dst)
        s_src, l_src = self.local_index(src)
        s_dst, l_dst = self.local_index(dst)
        if s_src == s_dst:
            return self.servers[s_src].link_for(l_src, l_dst)
        if self.rack_of(s_src) != self.rack_of(s_dst) and self.inter_rack_fabric:
            return self.inter_rack_fabric
        return self.fabric

    def neighbors(self, gpu: int) -> List[int]:
        """All GPUs reachable from ``gpu``: local NVLink peers plus
        every off-server device (the fabric is all-to-all)."""
        self._check_gpu(gpu)
        server, local = self.local_index(gpu)
        start = self.server_offsets()[server]
        local_peers = [start + p for p in self.servers[server].neighbors(local)]
        remote = [
            g for g in range(self.n_gpus)
            if self.server_of(g) != server
        ]
        return sorted(local_peers + remote)

    def bricks_at(self, gpu: int) -> int:
        server, local = self.local_index(gpu)
        return self.servers[server].bricks_at(local)

    def lane_channels(self, src: int, dst: int) -> List[ChannelKey]:
        n = self.lanes(src, dst)
        if n == 0:
            raise TopologyError(f"no route from GPU {src} to GPU {dst}")
        s_src, l_src = self.local_index(src)
        s_dst, l_dst = self.local_index(dst)
        if s_src == s_dst:
            # Prefix local keys with the server index so two boxes'
            # identical local channels stay distinct resources.
            local = self.servers[s_src].lane_channels(l_src, l_dst)
            return [("srv", s_src) + key for key in local]
        return [("nic", src, k) for k in range(self.nic_lanes)]

    def all_lane_channels(self) -> List[ChannelKey]:
        keys: List[ChannelKey] = []
        for idx, topo in enumerate(self.servers):
            keys.extend(("srv", idx) + key for key in topo.all_lane_channels())
        for gpu in range(self.n_gpus):
            keys.extend(("nic", gpu, k) for k in range(self.nic_lanes))
        return keys

    def topology_key(self) -> Tuple:
        rack_key = tuple(tuple(sorted(rack)) for rack in self.racks)
        return (
            "cluster",
            tuple(t.topology_key() for t in self.servers),
            self.fabric,
            self.nic_lanes,
            rack_key,
            self.inter_rack_fabric,
        )

    def _check_gpu(self, gpu: int) -> None:
        if not 0 <= gpu < self.n_gpus:
            raise TopologyError(f"GPU index {gpu} out of range [0, {self.n_gpus})")


@dataclass(frozen=True)
class Cluster:
    """A named collection of servers joined by a fabric.

    The hardware analogue of :class:`~repro.hardware.server.Server`
    one level up: ``topology`` yields the tiered
    :class:`ClusterTopology`, and :meth:`as_server` presents the
    cluster as a flat Server so single-box consumers (the pipeline
    simulator, collective lowering) run unchanged against the tiered
    lane model.
    """

    name: str
    servers: Tuple[Server, ...]
    fabric: LinkSpec = IB_EDR
    nic_lanes: int = 1
    racks: Tuple[Tuple[int, ...], ...] = ()
    inter_rack_fabric: Optional[LinkSpec] = None

    def __post_init__(self) -> None:
        if not self.servers:
            raise ConfigurationError("a cluster needs at least one server")

    @property
    def n_servers(self) -> int:
        return len(self.servers)

    @property
    def n_gpus(self) -> int:
        return sum(s.n_gpus for s in self.servers)

    @property
    def topology(self) -> ClusterTopology:
        return ClusterTopology(
            servers=tuple(s.topology for s in self.servers),
            fabric=self.fabric,
            nic_lanes=self.nic_lanes,
            racks=self.racks,
            inter_rack_fabric=self.inter_rack_fabric,
        )

    @property
    def gpus(self) -> Tuple[GPUSpec, ...]:
        return tuple(gpu for server in self.servers for gpu in server.gpus)

    def server_devices(self, server: int) -> Tuple[int, ...]:
        return self.topology.server_devices(server)

    def as_server(self) -> Server:
        """Flat Server view over all cluster GPUs.

        The embedded topology is the tiered :class:`ClusterTopology`,
        so collectives priced/lowered against this view use NVLink
        lanes within boxes and NIC lanes across them.  Host and NVMe
        specs are taken from the first server (offload stays local to
        each box in this model).
        """
        first = self.servers[0]
        return Server(
            name=self.name,
            gpus=list(self.gpus),
            topology=self.topology,  # type: ignore[arg-type]
            host=first.host,
            pcie=first.pcie,
            nvme=first.nvme,
        )


def make_cluster(
    server_builder,
    n_servers: int,
    name: str = "cluster",
    fabric: LinkSpec = IB_EDR,
    nic_lanes: int = 1,
    racks: Tuple[Tuple[int, ...], ...] = (),
    inter_rack_fabric: Optional[LinkSpec] = None,
) -> Cluster:
    """Build a homogeneous cluster from ``n_servers`` copies of a box."""
    if n_servers < 1:
        raise ConfigurationError("a cluster needs at least one server")
    servers = tuple(server_builder() for _ in range(n_servers))
    return Cluster(
        name=name,
        servers=servers,
        fabric=fabric,
        nic_lanes=nic_lanes,
        racks=racks,
        inter_rack_fabric=inter_rack_fabric,
    )


def dgx1_cluster(n_servers: int = 2, fabric: LinkSpec = IB_EDR, **kwargs) -> Cluster:
    """``n_servers`` DGX-1V boxes on an IB fabric."""
    return make_cluster(
        dgx1_server, n_servers, name=f"{n_servers}x-dgx1", fabric=fabric, **kwargs
    )


def dgx2_cluster(n_servers: int = 2, fabric: LinkSpec = IB_EDR, **kwargs) -> Cluster:
    """``n_servers`` DGX-2-class boxes on an IB fabric."""
    return make_cluster(
        dgx2_server, n_servers, name=f"{n_servers}x-dgx2", fabric=fabric, **kwargs
    )
