"""Throughput and comparison metrics (the paper's Section IV-A)."""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.executor import SimulationResult


def throughput_summary(result: SimulationResult) -> Dict[str, float]:
    """Samples/s, aggregate TFLOPS, and minibatch period of one run."""
    return {
        "ok": 1.0 if result.ok else 0.0,
        "samples_per_second": result.samples_per_second,
        "tflops": result.tflops,
        "minibatch_time": result.minibatch_time,
    }


def speedup(candidate_tflops: float, baseline_tflops: float) -> Optional[float]:
    """Throughput ratio candidate/baseline; None when either failed."""
    if candidate_tflops <= 0 or baseline_tflops <= 0:
        return None
    return candidate_tflops / baseline_tflops
