"""Hardware-trend projection (the paper's Section V).

The paper closes with an analysis of the Grace-Hopper class of
superchips: even with 96 GB HBM + 512 GB of directly-attached CPU
memory per device, GPT-3-175B training still overflows the fast
tier, and hiding the resulting swap traffic completely would need
well above the chip's CPU-link bandwidth — so D2D swap remains
valuable, either rescuing the ~25% compute recomputation wastes or
avoiding double-digit slowdowns from exposed swap time.

This module reproduces that projection analytically from the same
cost formulas the simulator uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.models import costs
from repro.models.config import TransformerConfig
from repro.models.layers import build_model
from repro.units import GiB, GBps, TFLOP


@dataclass(frozen=True)
class SuperchipSpec:
    """One CPU+GPU superchip (Grace-Hopper class)."""

    name: str
    hbm_bytes: int
    cpu_bytes: int
    cpu_link_bandwidth: float   # GPU <-> its CPU memory, unidirectional
    peak_fp16: float
    mfu: float = 0.45

    def __post_init__(self) -> None:
        if min(self.hbm_bytes, self.cpu_bytes) <= 0:
            raise ConfigurationError("superchip memory sizes must be positive")
        if self.cpu_link_bandwidth <= 0 or self.peak_fp16 <= 0:
            raise ConfigurationError("superchip rates must be positive")


# The paper's Section V figures: 96 GB HBM + 512 GB Grace memory and
# a 64 GB/s PCIe-class path to further memory.
GRACE_HOPPER = SuperchipSpec(
    name="Grace-Hopper",
    hbm_bytes=96 * GiB,
    cpu_bytes=512 * GiB,
    cpu_link_bandwidth=64 * GBps,
    peak_fp16=990 * TFLOP,
)


def gpt3_model():
    """GPT-3 175B (96 layers x hidden 12288, sequence 2048)."""
    config = TransformerConfig(
        name="GPT-3-175B",
        n_layers=96,
        hidden=12288,
        heads=96,
        vocab=50_257,
        seq_len=2048,
        max_positions=2048,
    )
    return build_model(config)


@dataclass(frozen=True)
class ProjectionReport:
    """Section V's quantities for one (model, superchip fleet) pair."""

    model_name: str
    n_devices: int
    state_bytes_per_device: int
    activation_bytes_per_device: int
    fits_hbm: bool
    fits_with_cpu_memory: bool
    required_hiding_bandwidth: float  # per device, to fully hide swaps
    swap_exposed_fraction: float      # of iteration time, at chip bandwidth
    recompute_waste_fraction: float   # compute wasted if recomputing instead

    def summary(self) -> str:
        lines = [
            f"{self.model_name} on {self.n_devices} superchips:",
            f"  state/device {self.state_bytes_per_device / GiB:.0f} GiB, "
            f"activations/device {self.activation_bytes_per_device / GiB:.0f} GiB",
            f"  fits in HBM: {self.fits_hbm}; "
            f"fits with CPU memory: {self.fits_with_cpu_memory}",
            f"  bandwidth to fully hide swaps: "
            f"{self.required_hiding_bandwidth / GBps:.0f} GB/s per device",
            f"  exposed swap time at chip bandwidth: "
            f"{100 * self.swap_exposed_fraction:.0f}% of iteration",
            f"  recomputation alternative wastes "
            f"{100 * self.recompute_waste_fraction:.0f}% of compute",
        ]
        return "\n".join(lines)


def project(
    model=None,
    superchip: SuperchipSpec = GRACE_HOPPER,
    n_devices: int = 8,
    microbatch: int = 1,
    in_flight: int = None,
) -> ProjectionReport:
    """Project pipeline training of ``model`` onto superchips.

    The pipeline analysis mirrors the simulator's: stage 0 of an
    ``n_devices``-deep pipeline holds ``in_flight`` microbatch
    generations (default: pipeline depth) of its layer slice.
    """
    if model is None:
        model = gpt3_model()
    if in_flight is None:
        in_flight = n_devices
    params = model.total_params
    state_per_device = params * 16 // n_devices

    layers_per_stage = max(1, model.config.n_layers // n_devices)
    act_per_layer = costs.layer_activation_bytes(
        model.config.hidden, model.config.seq_len, microbatch,
        model.config.heads, bytes_per_element=2,
    )
    act_per_device = act_per_layer * layers_per_stage * in_flight

    demand = state_per_device + act_per_device
    fits_hbm = demand <= superchip.hbm_bytes
    fits_with_cpu = demand <= superchip.hbm_bytes + superchip.cpu_bytes

    # Swap traffic to keep only the working set in HBM: everything
    # beyond HBM round-trips once per iteration window.
    overflow = max(0, demand - superchip.hbm_bytes)
    swap_bytes = 2 * overflow

    # The hiding window: one stage's compute per in-flight generation.
    stage_flops = sum(
        layer.forward_flops(microbatch) + layer.backward_flops(microbatch)
        for layer in model.layers[1:1 + layers_per_stage]
    ) * in_flight
    window = stage_flops / (superchip.peak_fp16 * superchip.mfu)
    required_bandwidth = swap_bytes / window if window > 0 else float("inf")

    swap_time = swap_bytes / superchip.cpu_link_bandwidth
    exposed = max(0.0, swap_time - window)
    swap_exposed_fraction = exposed / (window + exposed) if window > 0 else 1.0

    # Recomputing instead of swapping re-runs the forward pass: one
    # extra forward out of (forward + 2x-forward backward + forward).
    recompute_waste = 1.0 / 4.0

    return ProjectionReport(
        model_name=model.config.name,
        n_devices=n_devices,
        state_bytes_per_device=state_per_device,
        activation_bytes_per_device=act_per_device,
        fits_hbm=fits_hbm,
        fits_with_cpu_memory=fits_with_cpu,
        required_hiding_bandwidth=required_bandwidth,
        swap_exposed_fraction=swap_exposed_fraction,
        recompute_waste_fraction=recompute_waste,
    )
