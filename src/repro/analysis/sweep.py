"""Experiment sweeps: run grids of (model, system) cells and export.

A thin driver over :func:`repro.core.mpress.run_system` and the ZeRO
baselines that collects one row per cell — what the figure benches do
by hand — plus CSV export so results feed external plotting.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.job import TrainingJob


@dataclass(frozen=True)
class SweepCell:
    """One (model, system) measurement."""

    model: str
    system: str
    ok: bool
    tflops: float
    samples_per_second: float
    minibatch_time: float
    peak_gib: float

    @property
    def cell(self) -> str:
        return f"{self.tflops:.0f}" if self.ok else "OOM"


FIELDS = ["model", "system", "ok", "tflops", "samples_per_second",
          "minibatch_time", "peak_gib"]


def run_sweep(
    jobs: Dict[str, TrainingJob],
    systems: Sequence[str],
    runner: Optional[Callable] = None,
) -> List[SweepCell]:
    """Run every (job, system) cell; ``runner`` defaults to run_system."""
    if runner is None:
        from repro.core.mpress import run_system as runner
    cells: List[SweepCell] = []
    for model_name, job in jobs.items():
        for system in systems:
            result = runner(job, system)
            simulation = result.simulation
            peak = max(simulation.peak_memory_per_gpu) if simulation.ok else 0
            cells.append(
                SweepCell(
                    model=model_name,
                    system=system,
                    ok=result.ok,
                    tflops=result.tflops,
                    samples_per_second=result.samples_per_second,
                    minibatch_time=simulation.minibatch_time,
                    peak_gib=peak / 2**30,
                )
            )
    return cells


def to_csv(cells: Sequence[SweepCell]) -> str:
    """Render sweep cells as CSV text."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=FIELDS)
    writer.writeheader()
    for cell in cells:
        writer.writerow({
            "model": cell.model,
            "system": cell.system,
            "ok": int(cell.ok),
            "tflops": f"{cell.tflops:.3f}",
            "samples_per_second": f"{cell.samples_per_second:.3f}",
            "minibatch_time": f"{cell.minibatch_time:.6f}",
            "peak_gib": f"{cell.peak_gib:.3f}",
        })
    return buffer.getvalue()


def save_csv(cells: Sequence[SweepCell], path: str) -> None:
    with open(path, "w") as handle:
        handle.write(to_csv(cells))


def pivot(cells: Sequence[SweepCell]) -> Dict[str, Dict[str, SweepCell]]:
    """model -> system -> cell, for table/figure rendering."""
    table: Dict[str, Dict[str, SweepCell]] = {}
    for cell in cells:
        table.setdefault(cell.model, {})[cell.system] = cell
    return table
