"""Experiment sweeps: run grids of (model, system) cells and export.

A driver that collects one row per (model, system) cell — what the
figure benches do by hand — plus CSV export so results feed external
plotting.  Cells execute through :mod:`repro.runtime`, so a sweep
inherits process-pool parallelism and content-addressed caching; pass
a configured :class:`~repro.runtime.SweepRuntime` to turn those on.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.job import TrainingJob


@dataclass(frozen=True)
class SweepCell:
    """One (model, system) measurement."""

    model: str
    system: str
    ok: bool
    tflops: float
    samples_per_second: float
    minibatch_time: float
    peak_gib: float

    @property
    def cell(self) -> str:
        return f"{self.tflops:.0f}" if self.ok else "OOM"


FIELDS = ["model", "system", "ok", "tflops", "samples_per_second",
          "minibatch_time", "peak_gib"]


def sweep_tasks(
    jobs: Dict[str, TrainingJob], systems: Sequence[str]
) -> List["SimTask"]:
    """Lower a (model, system) grid into runtime tasks."""
    from repro.runtime.task import SimTask

    return [
        SimTask(label=f"{model_name}/{system}", job=job, system=system)
        for model_name, job in jobs.items()
        for system in systems
    ]


def cells_from_records(
    jobs: Dict[str, TrainingJob],
    systems: Sequence[str],
    records: Sequence[Optional[Dict]],
) -> List[SweepCell]:
    """Rebuild sweep cells from runtime records, in grid order."""
    from repro.runtime.task import peak_gib

    cells: List[SweepCell] = []
    grid = [(m, s) for m in jobs for s in systems]
    for (model_name, system), record in zip(grid, records):
        if record is None:
            # The runtime exhausted its retries on this cell; report
            # it like an OOM rather than dropping the row.
            cells.append(SweepCell(model=model_name, system=system, ok=False,
                                   tflops=0.0, samples_per_second=0.0,
                                   minibatch_time=0.0, peak_gib=0.0))
            continue
        cells.append(
            SweepCell(
                model=model_name,
                system=system,
                ok=bool(record["ok"]),
                tflops=record["tflops"],
                samples_per_second=record["samples_per_second"],
                minibatch_time=record["minibatch_time"],
                peak_gib=peak_gib(record),
            )
        )
    return cells


def run_sweep(
    jobs: Dict[str, TrainingJob],
    systems: Sequence[str],
    runner: Optional[Callable] = None,
    runtime: Optional["SweepRuntime"] = None,
) -> List[SweepCell]:
    """Run every (job, system) cell of the grid.

    By default cells route through :mod:`repro.runtime` (serial,
    uncached); pass ``runtime`` for parallelism and caching.  A
    custom ``runner`` callable (legacy interface, used to stub the
    simulator in tests) bypasses the runtime entirely.
    """
    if runner is not None:
        cells: List[SweepCell] = []
        for model_name, job in jobs.items():
            for system in systems:
                result = runner(job, system)
                simulation = result.simulation
                peak = (max(simulation.peak_memory_per_gpu)
                        if simulation.ok else 0)
                cells.append(
                    SweepCell(
                        model=model_name,
                        system=system,
                        ok=result.ok,
                        tflops=result.tflops,
                        samples_per_second=result.samples_per_second,
                        minibatch_time=simulation.minibatch_time,
                        peak_gib=peak / 2**30,
                    )
                )
        return cells

    from repro.runtime.pool import run_tasks

    report = run_tasks(sweep_tasks(jobs, systems), runtime)
    return cells_from_records(jobs, systems, report.records())


def to_csv(cells: Sequence[SweepCell]) -> str:
    """Render sweep cells as CSV text."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=FIELDS)
    writer.writeheader()
    for cell in cells:
        writer.writerow({
            "model": cell.model,
            "system": cell.system,
            "ok": int(cell.ok),
            "tflops": f"{cell.tflops:.3f}",
            "samples_per_second": f"{cell.samples_per_second:.3f}",
            "minibatch_time": f"{cell.minibatch_time:.6f}",
            "peak_gib": f"{cell.peak_gib:.3f}",
        })
    return buffer.getvalue()


def save_csv(cells: Sequence[SweepCell], path: str) -> None:
    with open(path, "w") as handle:
        handle.write(to_csv(cells))


def pivot(cells: Sequence[SweepCell]) -> Dict[str, Dict[str, SweepCell]]:
    """model -> system -> cell, for table/figure rendering."""
    table: Dict[str, Dict[str, SweepCell]] = {}
    for cell in cells:
        table.setdefault(cell.model, {})[cell.system] = cell
    return table
