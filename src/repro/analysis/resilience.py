"""Resilience sweeps: goodput as a function of failure pressure.

For each mean-time-between-failures value on a grid, generate a
seeded fault campaign (Poisson arrivals over the fault-free run's
makespan), train through it, and record the resulting goodput next
to the fault-free throughput.  One row per (MTBF, trial) cell, CSV
export included, following :mod:`repro.analysis.sweep`.

Both the fault-free baseline and every campaign replay execute
through :mod:`repro.runtime`: campaigns are independent plan replays,
so they parallelize across workers and cache content-addressed (the
cached baseline record carries the plan payload, so a fully cached
sweep performs zero simulations).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.faults.spec import random_schedule
from repro.job import TrainingJob


@dataclass(frozen=True)
class ResilienceCell:
    """One (MTBF, trial) measurement of a fault campaign."""

    mtbf: float
    trial: int
    seed: int
    n_faults: int
    n_failures: int
    ok: bool
    fault_free_samples_per_second: float
    goodput_samples_per_second: float
    recovery_seconds: float
    lost_seconds: float
    makespan: float

    @property
    def goodput_ratio(self) -> float:
        """Goodput as a fraction of fault-free throughput."""
        if self.fault_free_samples_per_second <= 0:
            return 0.0
        return self.goodput_samples_per_second / self.fault_free_samples_per_second


FIELDS = ["mtbf", "trial", "seed", "n_faults", "n_failures", "ok",
          "fault_free_samples_per_second", "goodput_samples_per_second",
          "goodput_ratio", "recovery_seconds", "lost_seconds", "makespan"]


def resilience_sweep(
    job: TrainingJob,
    system: str = "mpress",
    mtbf_grid: Sequence[float] = (2.0, 1.0, 0.5),
    trials: int = 1,
    seed: int = 0,
    restart_latency: Optional[float] = None,
    runtime: Optional["SweepRuntime"] = None,
) -> List[ResilienceCell]:
    """Goodput vs. MTBF grid for one training job.

    ``mtbf_grid`` values are multiples of the fault-free makespan, so
    ``1.0`` means one expected fault per run regardless of model
    scale.  Each (MTBF, trial) cell draws its campaign from
    ``seed + cell index`` — the whole sweep is reproducible from one
    seed.  The plan is built once, fault-free; every campaign replays
    it, so cells differ only in the injected faults.  Campaigns run
    through ``runtime`` (default serial/uncached) as independent plan
    replays.
    """
    from repro.core.serialization import plan_from_dict
    from repro.runtime.pool import run_tasks
    from repro.runtime.task import SimTask

    baseline_task = SimTask(
        label=f"resilience/{system}/baseline", job=job, system=system
    )
    baseline = run_tasks([baseline_task], runtime).records()[0]
    if baseline is None or not baseline["ok"]:
        raise RuntimeError(f"fault-free {system} run is OOM; nothing to sweep")
    horizon = baseline["makespan"]
    fault_free = baseline["samples_per_second"]
    plan = plan_from_dict(baseline["plan"])

    grid = [(mtbf, trial) for mtbf in mtbf_grid for trial in range(trials)]
    tasks: List[SimTask] = []
    schedules = []
    for index, (mtbf, trial) in enumerate(grid):
        cell_seed = seed + index
        schedule = random_schedule(
            seed=cell_seed,
            n_devices=job.server.n_gpus,
            horizon=horizon,
            mtbf=mtbf * horizon,
            restart_latency=restart_latency,
        )
        schedules.append((cell_seed, schedule))
        tasks.append(SimTask(
            label=f"resilience/{system}/mtbf={mtbf:g}/trial={trial}",
            job=job,
            system=system,
            plan=plan,
            faults=schedule,
        ))

    cells: List[ResilienceCell] = []
    records = run_tasks(tasks, runtime).records()
    for (mtbf, trial), (cell_seed, schedule), record in zip(
        grid, schedules, records
    ):
        ok = record is not None and bool(record["ok"])
        report = record.get("resilience") if record else None
        cells.append(
            ResilienceCell(
                mtbf=mtbf,
                trial=trial,
                seed=cell_seed,
                n_faults=len(schedule),
                n_failures=report["n_failures"] if report else 0,
                ok=ok,
                fault_free_samples_per_second=fault_free,
                # A campaign that drew no faults runs at full
                # throughput — its goodput is the plain rate.
                goodput_samples_per_second=(
                    0.0 if not ok
                    else report["goodput_samples_per_second"] if report
                    else record["samples_per_second"]
                ),
                recovery_seconds=report["recovery_seconds"] if report else 0.0,
                lost_seconds=report["lost_seconds"] if report else 0.0,
                makespan=record["makespan"] if ok else 0.0,
            )
        )
    return cells


def to_csv(cells: Sequence[ResilienceCell]) -> str:
    """Render resilience cells as CSV text."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=FIELDS)
    writer.writeheader()
    for cell in cells:
        writer.writerow({
            "mtbf": f"{cell.mtbf:.3f}",
            "trial": cell.trial,
            "seed": cell.seed,
            "n_faults": cell.n_faults,
            "n_failures": cell.n_failures,
            "ok": int(cell.ok),
            "fault_free_samples_per_second":
                f"{cell.fault_free_samples_per_second:.3f}",
            "goodput_samples_per_second":
                f"{cell.goodput_samples_per_second:.3f}",
            "goodput_ratio": f"{cell.goodput_ratio:.4f}",
            "recovery_seconds": f"{cell.recovery_seconds:.6f}",
            "lost_seconds": f"{cell.lost_seconds:.6f}",
            "makespan": f"{cell.makespan:.6f}",
        })
    return buffer.getvalue()


def save_csv(cells: Sequence[ResilienceCell], path: str) -> None:
    with open(path, "w") as handle:
        handle.write(to_csv(cells))


def pivot(cells: Sequence[ResilienceCell]) -> Dict[float, List[ResilienceCell]]:
    """mtbf -> its trial cells, for goodput-vs-MTBF curves."""
    table: Dict[float, List[ResilienceCell]] = {}
    for cell in cells:
        table.setdefault(cell.mtbf, []).append(cell)
    return table
