"""DP-scaling sweeps: hybrid throughput as replicas are added.

For each data-parallel degree on a grid, run the hybrid DP x PP job
through the sweep runtime (each cell a content-addressed
:class:`~repro.runtime.task.SimTask` with a ``HybridConfig``), and
record throughput, the exposed all-reduce tail, and the scaling
efficiency against the ``dp=1`` pipeline.  One row per replica
count, CSV export included, following :mod:`repro.analysis.sweep`.

The job spec is per replica (weak scaling): perfect scaling doubles
samples/s with ``dp``; anything lost went to gradient
synchronisation or to the shorter pipelines' worse bubble ratio.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.job import TrainingJob
from repro.parallel.hybrid import HybridConfig


@dataclass(frozen=True)
class DPScalingCell:
    """One replica-count measurement of a hybrid scaling sweep."""

    dp: int
    ok: bool
    samples_per_second: float
    tflops: float
    minibatch_time: float
    exposed_allreduce: float
    peak_gib: float
    scaling_efficiency: float   # samples/s over dp x the dp=1 rate


FIELDS = ["dp", "ok", "samples_per_second", "tflops", "minibatch_time",
          "exposed_allreduce", "peak_gib", "scaling_efficiency"]


def dp_scaling_tasks(
    job: TrainingJob,
    dp_grid: Sequence[int] = (1, 2, 4),
    system: str = "recomputation",
    algorithm: str = "auto",
    bucket_bytes: Optional[int] = None,
) -> List["SimTask"]:
    """The sweep's task list (one content-addressed cell per degree)."""
    from repro.runtime.task import SimTask

    tasks = []
    for dp in dp_grid:
        kwargs = {"dp": dp, "algorithm": algorithm}
        if bucket_bytes is not None:
            kwargs["bucket_bytes"] = bucket_bytes
        tasks.append(SimTask(
            label=f"dp-scaling/{system}/{job.server.name}/dp={dp}",
            job=job,
            system=system,
            hybrid=HybridConfig(**kwargs),
        ))
    return tasks


def dp_scaling_sweep(
    job: TrainingJob,
    dp_grid: Sequence[int] = (1, 2, 4),
    system: str = "recomputation",
    algorithm: str = "auto",
    bucket_bytes: Optional[int] = None,
    runtime: Optional["SweepRuntime"] = None,
) -> List[DPScalingCell]:
    """Throughput vs. replica count for one (per-replica) job spec.

    Every degree must divide the server's GPU count and leave at
    least two pipeline stages per replica.  Cells run through
    ``runtime`` (default serial/uncached) as independent hybrid
    tasks, so a warmed cache resolves the whole curve without a
    single simulation.
    """
    from repro.runtime.pool import run_tasks
    from repro.runtime.task import peak_gib

    tasks = dp_scaling_tasks(job, dp_grid, system, algorithm, bucket_bytes)
    records = run_tasks(tasks, runtime).records()

    base_rate = 0.0
    for dp, record in zip(dp_grid, records):
        if dp == 1 and record is not None and record["ok"]:
            base_rate = record["samples_per_second"]
    cells: List[DPScalingCell] = []
    for dp, record in zip(dp_grid, records):
        ok = record is not None and bool(record["ok"])
        hybrid = record.get("hybrid") if record else None
        rate = record["samples_per_second"] if ok else 0.0
        efficiency = rate / (dp * base_rate) if ok and base_rate > 0 else 0.0
        cells.append(DPScalingCell(
            dp=dp,
            ok=ok,
            samples_per_second=rate,
            tflops=record["tflops"] if ok else 0.0,
            minibatch_time=record["minibatch_time"] if ok else 0.0,
            exposed_allreduce=(
                hybrid["exposed_allreduce"] if ok and hybrid else 0.0
            ),
            peak_gib=peak_gib(record) if ok else 0.0,
            scaling_efficiency=efficiency,
        ))
    return cells


def to_csv(cells: Sequence[DPScalingCell]) -> str:
    """Render DP-scaling cells as CSV text."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=FIELDS)
    writer.writeheader()
    for cell in cells:
        writer.writerow({
            "dp": cell.dp,
            "ok": int(cell.ok),
            "samples_per_second": f"{cell.samples_per_second:.3f}",
            "tflops": f"{cell.tflops:.3f}",
            "minibatch_time": f"{cell.minibatch_time:.6f}",
            "exposed_allreduce": f"{cell.exposed_allreduce:.6f}",
            "peak_gib": f"{cell.peak_gib:.3f}",
            "scaling_efficiency": f"{cell.scaling_efficiency:.4f}",
        })
    return buffer.getvalue()


def save_csv(cells: Sequence[DPScalingCell], path: str) -> None:
    with open(path, "w") as handle:
        handle.write(to_csv(cells))
