"""Cluster-scaling sweeps: throughput across TP x DP x PP shapes.

For each (tp, dp, pp) shape on a grid, run the 3D-parallel job over a
multi-server cluster through the sweep runtime (each cell a
content-addressed :class:`~repro.runtime.task.SimTask` with a
``ClusterConfig``), and record throughput, both exposed
synchronisation tails (TP collectives and DP gradient buckets), and
per-GPU peak memory.  One row per shape, CSV export included,
following :mod:`repro.analysis.dp_scaling`.

The job spec is per replica (weak scaling), so samples/s scales with
``dp`` at fixed shape quality; what the sweep surfaces is the *shape*
trade-off — deeper pipelines lower per-GPU memory but worsen the
bubble, wider TP buys memory at the price of per-microbatch
all-reduces, and DP across the fabric pays the NIC ramp.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.hardware.cluster import Cluster
from repro.job import TrainingJob
from repro.parallel.cluster import ClusterConfig


@dataclass(frozen=True)
class ClusterScalingCell:
    """One shape measurement of a cluster scaling sweep."""

    tp: int
    dp: int
    pp: int
    ok: bool
    samples_per_second: float
    tflops: float
    minibatch_time: float
    exposed_tp_sync: float
    exposed_allreduce: float
    peak_gib: float
    placement_mode: str


FIELDS = ["tp", "dp", "pp", "ok", "samples_per_second", "tflops",
          "minibatch_time", "exposed_tp_sync", "exposed_allreduce",
          "peak_gib", "placement_mode"]

DEFAULT_SHAPES = ((1, 2, 4), (2, 2, 2), (2, 4, 2), (4, 2, 2))


def cluster_scaling_tasks(
    job: TrainingJob,
    cluster: Cluster,
    shapes: Sequence[Tuple[int, int, int]] = DEFAULT_SHAPES,
    system: str = "mpress",
    sequence_parallel: bool = False,
    algorithm: str = "auto",
    bucket_bytes: Optional[int] = None,
) -> List["SimTask"]:
    """The sweep's task list (one content-addressed cell per shape)."""
    from repro.runtime.task import SimTask

    tasks = []
    for tp, dp, pp in shapes:
        kwargs = {"tp": tp, "dp": dp, "pp": pp, "algorithm": algorithm,
                  "sequence_parallel": sequence_parallel}
        if bucket_bytes is not None:
            kwargs["bucket_bytes"] = bucket_bytes
        tasks.append(SimTask(
            label=(f"cluster-scaling/{system}/{cluster.name}"
                   f"/tp={tp},dp={dp},pp={pp}"),
            job=job,
            system=system,
            cluster=cluster,
            cluster_config=ClusterConfig(**kwargs),
        ))
    return tasks


def cluster_scaling_sweep(
    job: TrainingJob,
    cluster: Cluster,
    shapes: Sequence[Tuple[int, int, int]] = DEFAULT_SHAPES,
    system: str = "mpress",
    sequence_parallel: bool = False,
    algorithm: str = "auto",
    bucket_bytes: Optional[int] = None,
    runtime: Optional["SweepRuntime"] = None,
) -> List[ClusterScalingCell]:
    """Throughput vs. parallelism shape on one cluster.

    Cells run through ``runtime`` (default serial/uncached) as
    independent cluster tasks, so a warmed cache resolves the whole
    grid without a single simulation.
    """
    from repro.runtime.pool import run_tasks
    from repro.runtime.task import peak_gib

    tasks = cluster_scaling_tasks(job, cluster, shapes, system,
                                  sequence_parallel, algorithm, bucket_bytes)
    records = run_tasks(tasks, runtime).records()

    cells: List[ClusterScalingCell] = []
    for (tp, dp, pp), record in zip(shapes, records):
        ok = record is not None and bool(record["ok"])
        info = record.get("cluster") if record else None
        cells.append(ClusterScalingCell(
            tp=tp,
            dp=dp,
            pp=pp,
            ok=ok,
            samples_per_second=record["samples_per_second"] if ok else 0.0,
            tflops=record["tflops"] if ok else 0.0,
            minibatch_time=record["minibatch_time"] if ok else 0.0,
            exposed_tp_sync=info["exposed_tp_sync"] if ok and info else 0.0,
            exposed_allreduce=(
                info["exposed_allreduce"] if ok and info else 0.0
            ),
            peak_gib=peak_gib(record) if ok else 0.0,
            placement_mode=info["placement_mode"] if ok and info else "",
        ))
    return cells


def full_shape_grid(
    job: TrainingJob,
    cluster: Cluster,
    power_of_two: bool = True,
) -> List[Tuple[int, int, int]]:
    """Every simulable (tp, dp, pp) shape on the cluster.

    The exhaustive counterpart of :func:`repro.autoplan.autoplan`'s
    pruned frontier: the same layer-1 candidate generator enumerates
    and budget-checks the grid, so sweeping these shapes measures
    exactly the search space the autoplanner prices — the ground
    truth the ``autoplan-smoke`` CI job compares against.
    """
    from repro.autoplan import generate_candidates

    candidates, _ = generate_candidates(job, cluster,
                                        power_of_two=power_of_two)
    return [candidate.shape for candidate in candidates]


def grid_winner(
    cells: Sequence[ClusterScalingCell],
) -> Optional[ClusterScalingCell]:
    """The best fully simulated cell of a sweep.

    Highest measured samples/s among the ``ok`` cells; exact ties
    resolve on the ascending shape tuple, the same canonical order
    the autoplanner ranks with, so winner comparisons are stable.
    """
    ok_cells = [cell for cell in cells if cell.ok]
    if not ok_cells:
        return None
    return min(ok_cells, key=lambda cell: (
        -cell.samples_per_second, (cell.tp, cell.dp, cell.pp)))


def to_csv(cells: Sequence[ClusterScalingCell]) -> str:
    """Render cluster-scaling cells as CSV text."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=FIELDS)
    writer.writeheader()
    for cell in cells:
        writer.writerow({
            "tp": cell.tp,
            "dp": cell.dp,
            "pp": cell.pp,
            "ok": int(cell.ok),
            "samples_per_second": f"{cell.samples_per_second:.3f}",
            "tflops": f"{cell.tflops:.3f}",
            "minibatch_time": f"{cell.minibatch_time:.6f}",
            "exposed_tp_sync": f"{cell.exposed_tp_sync:.6f}",
            "exposed_allreduce": f"{cell.exposed_allreduce:.6f}",
            "peak_gib": f"{cell.peak_gib:.3f}",
            "placement_mode": cell.placement_mode,
        })
    return buffer.getvalue()


def save_csv(cells: Sequence[ClusterScalingCell], path: str) -> None:
    with open(path, "w") as handle:
        handle.write(to_csv(cells))
