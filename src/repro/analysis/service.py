"""Drive analysis sweeps through a running sweep server.

The remote twin of :mod:`repro.analysis.sweep`: the same
(model × system) grid, but executed by ``repro serve`` over HTTP
instead of a local process pool — so many analysis clients share one
warm cache and one fair-share scheduler.  Records come back in grid
order and lower to the same :class:`~repro.analysis.sweep.SweepCell`
rows, so a remote sweep is a drop-in replacement for a local one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.sweep import SweepCell, cells_from_records


def remote_sweep_specs(models: Sequence[str], systems: Sequence[str],
                       server: str = "dgx1",
                       pipeline: Optional[str] = None) -> List[Dict]:
    """Task specs of a (model × system) grid, in grid order."""
    specs = []
    for model in models:
        for system in systems:
            spec = {
                "model": model,
                "server": server,
                "system": system,
                "label": f"{model}/{system}",
            }
            if pipeline is not None:
                spec["pipeline"] = pipeline
            specs.append(spec)
    return specs


@dataclass
class RemoteSweepReport:
    """A remote sweep's cells plus the server's job accounting."""

    cells: List[SweepCell]
    detail: Dict

    @property
    def executed(self) -> int:
        return self.detail["executed"]

    @property
    def cached(self) -> int:
        return self.detail["cached"]

    @property
    def failed(self) -> int:
        return self.detail["failed"]


def remote_sweep(base_url: str, models: Sequence[str],
                 systems: Sequence[str], server: str = "dgx1",
                 pipeline: Optional[str] = None, tenant: str = "analysis",
                 priority: int = 0,
                 timeout: float = 600.0) -> RemoteSweepReport:
    """Run the grid on the server at ``base_url`` and collect cells.

    Blocks until the job completes (long-polling), like the local
    :func:`~repro.analysis.sweep.run_sweep` blocks on its runtime.
    """
    from repro.serve.client import ServeClient

    client = ServeClient(base_url)
    specs = remote_sweep_specs(models, systems, server=server,
                               pipeline=pipeline)
    job_id = client.submit(tasks=specs, tenant=tenant, priority=priority)
    detail = client.wait(job_id, timeout=timeout, results="full")
    cells = cells_from_records(dict.fromkeys(models), systems,
                               detail["records"])
    return RemoteSweepReport(cells=cells, detail=detail)
