"""Plain-text table and series rendering for benchmark output.

Every benchmark prints the rows/series its paper table or figure
reports, using these helpers so output stays uniform and diffable.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Fixed-width table; all cells rendered with str()."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render(list(headers)))
    lines.append(render(["-" * width for width in widths]))
    lines.extend(render(row) for row in str_rows)
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence, unit: str = "") -> str:
    """One figure series as 'name: x=y' pairs."""
    pairs = ", ".join(f"{x}={_fmt(y)}{unit}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
