"""Serving sweeps: latency/throughput across KV overflow policies.

For each KV-swap mode on a grid (``d2d`` striping to spare GPUs,
``pcie`` host swap, ``none`` preempt+recompute), run the same
serving workload through the sweep runtime (each cell a
content-addressed :class:`~repro.runtime.task.SimTask` with an
``InferenceConfig``), and record TTFT/TPOT percentiles, tokens/sec,
spill volume, and the decode stall the overflow path exposed.  One
row per policy, CSV export included, following
:mod:`repro.analysis.sweep`.

The workload is identical across cells by construction — the
serving scheduler never consults the transport — so spill volume is
equal between ``d2d`` and ``pcie`` and the stall column isolates the
paper's bandwidth argument on the serving side.
"""

from __future__ import annotations

import csv
import dataclasses
import io
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.inference.workload import InferenceConfig
from repro.job import TrainingJob

KV_MODES = ("d2d", "pcie", "none")


@dataclass(frozen=True)
class ServingCell:
    """One KV-policy measurement of a serving sweep."""

    kv_swap: str
    ok: bool
    tokens_per_second: float
    ttft_p50: float
    ttft_p95: float
    ttft_p99: float
    tpot_p50: float
    tpot_p95: float
    tpot_p99: float
    makespan: float
    decode_stall_seconds: float
    swapped_bytes: int
    preemptions: int


FIELDS = ["kv_swap", "ok", "tokens_per_second", "ttft_p50", "ttft_p95",
          "ttft_p99", "tpot_p50", "tpot_p95", "tpot_p99", "makespan",
          "decode_stall_seconds", "swapped_bytes", "preemptions"]


def serving_tasks(
    job: TrainingJob,
    config: InferenceConfig,
    kv_modes: Sequence[str] = KV_MODES,
    system: str = "mpress",
) -> List["SimTask"]:
    """The sweep's task list (one content-addressed cell per policy)."""
    from repro.runtime.task import SimTask

    tasks = []
    for mode in kv_modes:
        tasks.append(SimTask(
            label=(f"serving-sweep/{job.server.name}"
                   f"/{job.model.config.name}/kv={mode}"),
            job=job,
            system=system,
            inference=dataclasses.replace(config, kv_swap=mode),
        ))
    return tasks


def serving_sweep(
    job: TrainingJob,
    config: InferenceConfig,
    kv_modes: Sequence[str] = KV_MODES,
    system: str = "mpress",
    runtime: Optional["SweepRuntime"] = None,
) -> List[ServingCell]:
    """Latency/throughput per KV overflow policy for one workload.

    Cells run through ``runtime`` (default serial/uncached) as
    independent inference tasks, so a warmed cache resolves the whole
    comparison without a single simulation.
    """
    from repro.runtime.pool import run_tasks

    tasks = serving_tasks(job, config, kv_modes, system)
    records = run_tasks(tasks, runtime).records()

    cells: List[ServingCell] = []
    for mode, record in zip(kv_modes, records):
        ok = record is not None and bool(record["ok"])
        serving = record.get("inference") if record else None
        if not ok or not serving:
            cells.append(ServingCell(
                kv_swap=mode, ok=False, tokens_per_second=0.0,
                ttft_p50=0.0, ttft_p95=0.0, ttft_p99=0.0,
                tpot_p50=0.0, tpot_p95=0.0, tpot_p99=0.0,
                makespan=0.0, decode_stall_seconds=0.0,
                swapped_bytes=0, preemptions=0,
            ))
            continue
        cells.append(ServingCell(
            kv_swap=mode,
            ok=True,
            tokens_per_second=serving["tokens_per_second"],
            ttft_p50=serving["ttft_p50"],
            ttft_p95=serving["ttft_p95"],
            ttft_p99=serving["ttft_p99"],
            tpot_p50=serving["tpot_p50"],
            tpot_p95=serving["tpot_p95"],
            tpot_p99=serving["tpot_p99"],
            makespan=serving["makespan"],
            decode_stall_seconds=serving["decode_stall_seconds"],
            swapped_bytes=int(serving["swapped_bytes"]),
            preemptions=int(serving["preemptions"]),
        ))
    return cells


def to_csv(cells: Sequence[ServingCell]) -> str:
    """Render serving cells as CSV text."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=FIELDS)
    writer.writeheader()
    for cell in cells:
        writer.writerow({
            "kv_swap": cell.kv_swap,
            "ok": int(cell.ok),
            "tokens_per_second": f"{cell.tokens_per_second:.3f}",
            "ttft_p50": f"{cell.ttft_p50:.6f}",
            "ttft_p95": f"{cell.ttft_p95:.6f}",
            "ttft_p99": f"{cell.ttft_p99:.6f}",
            "tpot_p50": f"{cell.tpot_p50:.6f}",
            "tpot_p95": f"{cell.tpot_p95:.6f}",
            "tpot_p99": f"{cell.tpot_p99:.6f}",
            "makespan": f"{cell.makespan:.6f}",
            "decode_stall_seconds": f"{cell.decode_stall_seconds:.6f}",
            "swapped_bytes": cell.swapped_bytes,
            "preemptions": cell.preemptions,
        })
    return buffer.getvalue()


def save_csv(cells: Sequence[ServingCell], path: str) -> None:
    with open(path, "w") as handle:
        handle.write(to_csv(cells))
