"""Terminal plotting: bar charts and grouped bars for the figures.

The benchmarks print their numbers as tables; these helpers render
the same data the way the paper's figures look — grouped bars per
model size with one bar per system — entirely in ASCII so results
are readable in CI logs and shell sessions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "",
    title: str = "",
) -> str:
    """A horizontal bar chart; zero/None values render as 'OOM'.

    >>> print(bar_chart(["a", "b"], [2.0, 1.0], width=4))
    a  ████ 2.00
    b  ██   1.00
    """
    cleaned = [0.0 if v is None else float(v) for v in values]
    top = max(cleaned) if cleaned else 0.0
    label_width = max((len(label) for label in labels), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, cleaned):
        if value <= 0:
            bar, rendered = "", "OOM"
        else:
            length = max(1, round(width * value / top)) if top > 0 else 0
            bar = "█" * length
            rendered = f"{value:.2f}{unit}"
        lines.append(f"{label.ljust(label_width)}  {bar.ljust(width)} {rendered}")
    return "\n".join(lines)


def grouped_bars(
    groups: Sequence[str],
    series: Dict[str, Sequence[Optional[float]]],
    width: int = 40,
    unit: str = "",
    title: str = "",
) -> str:
    """Grouped horizontal bars: one block per group, one bar per series.

    Matches the paper's Figure 7/8 layout — groups are model sizes,
    series are the systems.
    """
    flat = [
        float(v)
        for values in series.values()
        for v in values
        if v is not None and v > 0
    ]
    top = max(flat) if flat else 0.0
    name_width = max((len(name) for name in series), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
    for index, group in enumerate(groups):
        lines.append(f"{group}:")
        for name, values in series.items():
            value = values[index] if index < len(values) else None
            if value is None or value <= 0:
                bar, rendered = "", "OOM"
            else:
                length = max(1, round(width * value / top)) if top > 0 else 0
                bar = "█" * length
                rendered = f"{value:.1f}{unit}"
            lines.append(f"  {name.ljust(name_width)}  {bar.ljust(width)} {rendered}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """Compact one-line trend: memory curves, emulation trajectories.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▆█'
    """
    blocks = "▁▂▃▄▅▆▇█"
    cleaned = [float(v) for v in values]
    if not cleaned:
        return ""
    low, high = min(cleaned), max(cleaned)
    span = high - low
    if span == 0:
        return blocks[0] * len(cleaned)
    return "".join(
        blocks[min(len(blocks) - 1, int((v - low) / span * (len(blocks) - 1) + 0.5))]
        for v in cleaned
    )
