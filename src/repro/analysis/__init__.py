"""Metrics and report formatting for experiments."""

from repro.analysis.metrics import throughput_summary, speedup
from repro.analysis.reporting import format_table, format_series

__all__ = ["throughput_summary", "speedup", "format_table", "format_series"]
