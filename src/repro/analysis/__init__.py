"""Metrics and report formatting for experiments."""

from repro.analysis.metrics import throughput_summary, speedup
from repro.analysis.reporting import format_table, format_series
from repro.analysis.resilience import resilience_sweep
from repro.analysis.dp_scaling import dp_scaling_sweep
from repro.analysis.cluster_scaling import (
    cluster_scaling_sweep,
    full_shape_grid,
    grid_winner,
)
from repro.analysis.service import remote_sweep, remote_sweep_specs
from repro.analysis.serving_sweep import serving_sweep

__all__ = ["throughput_summary", "speedup", "format_table", "format_series",
           "resilience_sweep", "dp_scaling_sweep", "cluster_scaling_sweep",
           "full_shape_grid", "grid_winner",
           "remote_sweep", "remote_sweep_specs", "serving_sweep"]
