"""Lower a collective schedule onto the typed instruction IR.

Each :class:`TransferStep` becomes one ``P2PSend`` per NVLink lane
(chunks striped across ``topology.lane_channels``) or a staged PCIe
transfer for unlinked pairs — exactly the channels and bandwidth ramp
the pipeline lowering uses, so a simulated collective contends on the
same substrate as everything else.  A zero-duration ``Barrier`` joins
every round, gating the next one: the simulated makespan therefore
matches the analytic sum-of-round-bottlenecks model to float
precision (modulo ceil-division of striped chunks), which
``tests/test_collectives_lowering.py`` pins down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

from repro.hardware.bandwidth import transfer_time
from repro.hardware.server import Server
from repro.collectives.schedule import CollectiveSchedule
from repro.sim.ir import (
    Barrier,
    ExecOptions,
    InstructionProgram,
    P2PSend,
    Record,
    _InstructionDraft,
    freeze_draft,
)


@dataclass(frozen=True)
class _CollectiveJob:
    """Minimal job shim so the interpreter can run a bare collective."""

    server: Server
    n_minibatches: int = 1
    samples_per_minibatch: int = 0

    def minibatch_flops(self) -> float:
        return 0.0


class _CollectivePlan:
    """Plan shim: every stage 'lives' on the schedule's first member."""

    def __init__(self, device: int):
        self._device = device

    def device_of(self, stage: int) -> int:
        return self._device


def lower_collective(server: Server, schedule: CollectiveSchedule,
                     options: Optional[ExecOptions] = None) -> InstructionProgram:
    """Emit the schedule as a P2PSend/Barrier program."""
    if options is None:
        options = ExecOptions(record_trace=False)
    topology = server.topology
    drafts: List[_InstructionDraft] = []
    edges: List[Tuple[int, int]] = []
    stream_order: List[Tuple[Hashable, str]] = []
    seen_streams = set()

    def emit(factory, name: str, stream: Hashable, duration: float,
             device: int, deps: Tuple[int, ...], done=(), **fields) -> int:
        if stream not in seen_streams:
            seen_streams.add(stream)
            stream_order.append((stream, "pool"))
        iid = len(drafts)
        drafts.append(_InstructionDraft(
            factory=factory, iid=iid, name=name, stream=stream, mode="pool",
            duration=duration, device=device, done_effects=list(done),
            fields=dict(fields),
        ))
        for producer in deps:
            edges.append((iid, producer))
        return iid

    root = schedule.group[0]
    gate: Tuple[int, ...] = ()
    for round_index, steps in enumerate(schedule.rounds):
        if not steps:
            continue
        sends: List[int] = []
        for step in steps:
            lanes = topology.lanes(step.src, step.dst)
            record = ((Record("coll", step.src, round_index),)
                      if options.record_trace else ())
            if lanes > 0:
                link = topology.link_for(step.src, step.dst)
                channels = topology.lane_channels(step.src, step.dst)[:lanes]
                share = max(1, -(-step.size // lanes))
                for lane_index, channel in enumerate(channels):
                    sends.append(emit(
                        P2PSend,
                        name=(f"coll.{schedule.op}.r{round_index}"
                              f".{step.src}->{step.dst}.l{lane_index}"),
                        stream=channel,
                        duration=transfer_time(share, link, lanes=1),
                        device=step.src,
                        deps=gate,
                        done=record if lane_index == 0 else (),
                        src=step.src,
                        dst=step.dst,
                    ))
            else:
                # No direct link: stage through the host like the
                # pipeline's PCIe fallback (up then down).
                sends.append(emit(
                    P2PSend,
                    name=(f"coll.{schedule.op}.r{round_index}"
                          f".{step.src}->{step.dst}.pcie"),
                    stream=("pcie_d2h", step.src),
                    duration=2.0 * transfer_time(step.size, server.pcie, lanes=1),
                    device=step.src,
                    deps=gate,
                    done=record,
                    src=step.src,
                    dst=step.dst,
                ))
        join = emit(
            Barrier,
            name=f"coll.{schedule.op}.r{round_index}.join",
            stream=("collective", root),
            duration=0.0,
            device=root,
            deps=tuple(sends),
        )
        gate = (join,)

    job = _CollectiveJob(server=server)
    return InstructionProgram(
        job=job,
        plan=_CollectivePlan(root),
        options=options,
        instructions=tuple(freeze_draft(draft) for draft in drafts),
        edges=tuple(edges),
        static_effects=(),
        stream_order=tuple(stream_order),
    )


def simulate_collective(server: Server, schedule: CollectiveSchedule,
                        options: Optional[ExecOptions] = None):
    """Run the lowered collective; returns the ``SimulationResult``."""
    from repro.sim.interpreter import Interpreter

    program = lower_collective(server, schedule, options)
    return Interpreter(program).run()


def simulate_collective_time(server: Server, schedule: CollectiveSchedule,
                             options: Optional[ExecOptions] = None) -> float:
    """Simulated completion time (seconds) of one collective."""
    return simulate_collective(server, schedule, options).makespan
