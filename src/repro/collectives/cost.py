"""Closed-form collective costs: the planner's fast path.

A schedule's rounds are barrier-synchronised and its steps within a
round touch disjoint channels, so the analytic time is simply the sum
over rounds of the slowest step — each step priced with the same
:func:`repro.hardware.bandwidth.transfer_time` ramp the instruction
interpreter uses.  ``tests/test_collectives_lowering.py`` pins the
analytic and simulated paths against each other.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.hardware.bandwidth import transfer_time
from repro.hardware.links import PCIE3_X16, LinkSpec
from repro.hardware.topology import Topology
from repro.collectives.schedule import (
    ALL_REDUCE_ALGORITHMS,
    CollectiveSchedule,
    Round,
    all_reduce_schedule,
)


def pair_transfer_time(topology: Topology, src: int, dst: int, size_bytes: int,
                       pcie: LinkSpec = PCIE3_X16) -> float:
    """Seconds to move ``size_bytes`` between one device pair.

    Linked pairs stripe across their lanes on the tier's own spec —
    NVLink within a box, the fabric ramp across boxes (via
    ``topology.link_for``); pairs without a direct link pay the staged
    host round-trip (up then down), mirroring the pipeline lowering's
    PCIe fallback.
    """
    lanes = topology.lanes(src, dst)
    if lanes > 0:
        return transfer_time(size_bytes, topology.link_for(src, dst), lanes=lanes)
    return 2.0 * transfer_time(size_bytes, pcie, lanes=1)


def _round_time(topology: Topology, steps: Round, pcie: LinkSpec) -> float:
    return max(
        pair_transfer_time(topology, step.src, step.dst, step.size, pcie)
        for step in steps
    )


def collective_time(schedule: CollectiveSchedule, topology: Topology,
                    pcie: LinkSpec = PCIE3_X16) -> float:
    """Analytic completion time: sum of per-round bottlenecks."""
    return sum(
        _round_time(topology, steps, pcie)
        for steps in schedule.rounds
        if steps
    )


def all_reduce_time(topology: Topology, group: Sequence[int], size_bytes: int,
                    algorithm: str = "ring",
                    pcie: LinkSpec = PCIE3_X16) -> float:
    """Analytic all-reduce time for a named (or ``auto``) algorithm."""
    if algorithm == "auto":
        return best_all_reduce(topology, group, size_bytes, pcie)[1]
    schedule = all_reduce_schedule(topology, group, size_bytes, algorithm)
    return collective_time(schedule, topology, pcie)


def group_span(topology, group: Sequence[int]) -> int:
    """How many servers a collective group touches.

    1 on any single-box topology (including every plain
    :class:`~repro.hardware.topology.Topology`, which has no server
    structure at all); > 1 means the group's traffic crosses the
    fabric and shares its servers' NIC lanes with every other
    concurrent crossing group — the contention the autoplan pricing
    layer charges for.
    """
    server_of = getattr(topology, "server_of", None)
    if server_of is None:
        return 1
    return len({server_of(device) for device in group})


def best_all_reduce(topology: Topology, group: Sequence[int], size_bytes: int,
                    pcie: LinkSpec = PCIE3_X16,
                    algorithms: Optional[Sequence[str]] = None,
                    ) -> Tuple[CollectiveSchedule, float]:
    """Cheapest all-reduce across the algorithm family.

    Rings amortise bandwidth, trees amortise latency, hierarchical
    exploits island structure — which one wins depends on message
    size and topology, so the planner just asks.
    """
    candidates = tuple(algorithms) if algorithms else ALL_REDUCE_ALGORITHMS
    best: Optional[Tuple[CollectiveSchedule, float]] = None
    for algorithm in candidates:
        schedule = all_reduce_schedule(topology, group, size_bytes, algorithm)
        seconds = collective_time(schedule, topology, pcie)
        if best is None or seconds < best[1]:
            best = (schedule, seconds)
    if best is None:
        raise ConfigurationError("no all-reduce algorithm candidates given")
    return best
