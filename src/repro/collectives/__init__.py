"""Collective-communication models over the simulated interconnect.

The paper's data-parallel baselines and any hybrid DP x PP execution
move gradients and parameters through collectives (all-reduce,
all-gather, reduce-scatter, broadcast).  This package decomposes each
collective into *rounds* of point-to-point transfer steps
(:class:`CollectiveSchedule`), maps rings onto the server topology
(bottleneck-aware ring ordering, NVLink-island detection for the
DGX-1 hybrid cube-mesh), and prices a schedule two ways:

* **analytic** (:mod:`repro.collectives.cost`) — closed-form sum of
  per-round bottleneck transfer times, cheap enough for planners and
  placement searches;
* **simulated** (:mod:`repro.collectives.lowering`) — lowered through
  the typed instruction IR onto the same per-pair NVLink lane / PCIe
  channels the pipeline simulator uses, so collective time emerges
  from the message-size-dependent bandwidth curves of Figure 4.

See ``docs/collectives.md`` for the algorithms and the lowering path.
"""

from repro.collectives.schedule import (
    CollectiveSchedule,
    TransferStep,
    all_reduce_schedule,
    broadcast_schedule,
    hierarchical_all_reduce,
    islands,
    ring_all_gather,
    ring_all_reduce,
    ring_broadcast,
    ring_order,
    ring_reduce_scatter,
    tree_all_reduce,
    tree_broadcast,
    tree_reduce,
)
from repro.collectives.cost import (
    all_reduce_time,
    best_all_reduce,
    collective_time,
    pair_transfer_time,
)
from repro.collectives.lowering import (
    lower_collective,
    simulate_collective,
    simulate_collective_time,
)

__all__ = [
    "CollectiveSchedule",
    "TransferStep",
    "all_reduce_schedule",
    "broadcast_schedule",
    "hierarchical_all_reduce",
    "islands",
    "ring_all_gather",
    "ring_all_reduce",
    "ring_broadcast",
    "ring_order",
    "ring_reduce_scatter",
    "tree_all_reduce",
    "tree_broadcast",
    "tree_reduce",
    "all_reduce_time",
    "best_all_reduce",
    "collective_time",
    "pair_transfer_time",
    "lower_collective",
    "simulate_collective",
    "simulate_collective_time",
]
