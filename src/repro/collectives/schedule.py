"""Collective algorithms as rounds of point-to-point transfer steps.

A :class:`CollectiveSchedule` is the common currency of this package:
an ordered tuple of *rounds*, each round an unordered set of
:class:`TransferStep` pairs that proceed concurrently, with a
synchronisation point between rounds.  The analytic cost model prices
each round at its bottleneck pair; the IR lowering emits one
``P2PSend`` per NVLink lane per step and a zero-duration barrier per
round, so both paths agree on the schedule's structure.

Three algorithm families are modelled:

* **ring** — reduce-scatter / all-gather / all-reduce over a cycle
  through the group.  ``n-1`` rounds per phase, each moving
  ``ceil(S/n)`` bytes on every edge of the cycle, so the cost is set
  by the *weakest* cycle edge.  :func:`ring_order` searches cycle
  permutations for the one that maximises the minimum lane count —
  on the DGX-1 hybrid cube-mesh no Hamiltonian cycle avoids
  single-brick links, which is exactly why hierarchical wins there.
* **tree** — binomial reduce / broadcast over ``ceil(log2 n)`` rounds
  of full-size messages.  Fewer rounds means less latency: trees win
  for small messages, rings for large ones (the NCCL crossover).
* **hierarchical** — ring reduce-scatter inside each NVLink *island*
  (the components of the >=2-lane subgraph; on DGX-1 the two quads
  ``{0,3,4,7}`` / ``{1,2,5,6}``), a cross-island ring all-reduce per
  chunk position, then an intra-island all-gather.  Keeps the bulk of
  the traffic on double-brick links.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.hardware.topology import Topology

Round = Tuple["TransferStep", ...]


@dataclass(frozen=True)
class TransferStep:
    """One point-to-point message: ``size`` bytes from ``src`` to ``dst``."""

    src: int
    dst: int
    size: int

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ConfigurationError(
                f"transfer endpoints must differ, got {self.src}->{self.dst}")
        if self.size <= 0:
            raise ConfigurationError(
                f"transfer size must be positive, got {self.size}")


@dataclass(frozen=True)
class CollectiveSchedule:
    """A collective decomposed into synchronised rounds of transfers."""

    op: str                      # "all_reduce" | "all_gather" | ...
    algorithm: str               # "ring" | "tree" | "hierarchical"
    group: Tuple[int, ...]       # participating device ids
    size_bytes: int              # logical payload of the collective
    rounds: Tuple[Round, ...]

    def __post_init__(self) -> None:
        members = frozenset(self.group)
        if len(self.group) < 2 or len(members) != len(self.group):
            raise ConfigurationError(
                f"collective group needs >= 2 distinct devices, got {self.group}")
        if self.size_bytes <= 0:
            raise ConfigurationError(
                f"collective size must be positive, got {self.size_bytes}")
        for rnd in self.rounds:
            for step in rnd:
                if step.src not in members or step.dst not in members:
                    raise ConfigurationError(
                        f"step {step.src}->{step.dst} leaves group {self.group}")

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    @property
    def n_steps(self) -> int:
        return sum(len(rnd) for rnd in self.rounds)

    def total_bytes(self) -> int:
        """Bytes crossing links over the whole schedule (all steps)."""
        return sum(step.size for rnd in self.rounds for step in rnd)


def _chunk(size: int, parts: int) -> int:
    """Ceil-divide ``size`` into ``parts``, never below one byte."""
    return max(1, -(-size // parts))


def _require_group(group: Sequence[int]) -> Tuple[int, ...]:
    group = tuple(group)
    if len(group) < 2 or len(set(group)) != len(group):
        raise ConfigurationError(
            f"collective group needs >= 2 distinct devices, got {group}")
    return group


# -- ring family ---------------------------------------------------------


def ring_reduce_scatter(order: Sequence[int], size_bytes: int) -> CollectiveSchedule:
    """``n-1`` rounds; every node forwards one ``S/n`` chunk per round."""
    order = _require_group(order)
    n = len(order)
    chunk = _chunk(size_bytes, n)
    rounds = tuple(
        tuple(TransferStep(order[i], order[(i + 1) % n], chunk) for i in range(n))
        for _ in range(n - 1)
    )
    return CollectiveSchedule(op="reduce_scatter", algorithm="ring",
                              group=order, size_bytes=size_bytes, rounds=rounds)


def ring_all_gather(order: Sequence[int], size_bytes: int) -> CollectiveSchedule:
    """Same wire pattern as reduce-scatter, payload flowing instead of sums."""
    scatter = ring_reduce_scatter(order, size_bytes)
    return CollectiveSchedule(op="all_gather", algorithm="ring",
                              group=scatter.group, size_bytes=size_bytes,
                              rounds=scatter.rounds)


def ring_all_reduce(order: Sequence[int], size_bytes: int) -> CollectiveSchedule:
    """Reduce-scatter then all-gather: ``2(n-1)`` rounds of ``S/n`` chunks."""
    scatter = ring_reduce_scatter(order, size_bytes)
    gather = ring_all_gather(order, size_bytes)
    return CollectiveSchedule(op="all_reduce", algorithm="ring",
                              group=scatter.group, size_bytes=size_bytes,
                              rounds=scatter.rounds + gather.rounds)


def ring_broadcast(order: Sequence[int], size_bytes: int) -> CollectiveSchedule:
    """Pipelined chain broadcast from ``order[0]`` down the line.

    The payload is cut into ``n`` chunks that stream down the chain;
    with ``k = n`` chunks the chain drains in ``(n - 2) + k`` rounds,
    each active edge carrying one ``S/n`` chunk.
    """
    order = _require_group(order)
    n = len(order)
    chunk = _chunk(size_bytes, n)
    rounds: List[Round] = []
    for r in range(n - 2 + n):
        steps = tuple(
            TransferStep(order[i], order[i + 1], chunk)
            for i in range(n - 1)
            if 0 <= r - i < n
        )
        if steps:
            rounds.append(steps)
    return CollectiveSchedule(op="broadcast", algorithm="ring",
                              group=order, size_bytes=size_bytes,
                              rounds=tuple(rounds))


# -- tree family ---------------------------------------------------------


def _binomial_rounds(order: Tuple[int, ...], size: int,
                     toward_root: bool) -> Tuple[Round, ...]:
    """Binomial-tree rounds over ``order`` with ``order[0]`` as root."""
    n = len(order)
    rounds: List[Round] = []
    distance = 1
    while distance < n:
        steps = []
        for i in range(distance, n, 2 * distance):
            partner = i - distance
            if toward_root:
                steps.append(TransferStep(order[i], order[partner], size))
            else:
                steps.append(TransferStep(order[partner], order[i], size))
        rounds.append(tuple(steps))
        distance *= 2
    if not toward_root:
        # Reduce combines nearest partners first (ascending distance);
        # broadcast is its mirror — the root seeds the farthest subtree
        # before recipients fan out to their neighbours.
        rounds.reverse()
    return tuple(rounds)


def tree_reduce(order: Sequence[int], size_bytes: int) -> CollectiveSchedule:
    """Binomial reduce to ``order[0]``: ``ceil(log2 n)`` full-size rounds."""
    order = _require_group(order)
    return CollectiveSchedule(op="reduce", algorithm="tree", group=order,
                              size_bytes=size_bytes,
                              rounds=_binomial_rounds(order, size_bytes, True))


def tree_broadcast(order: Sequence[int], size_bytes: int) -> CollectiveSchedule:
    """Binomial broadcast from ``order[0]``."""
    order = _require_group(order)
    return CollectiveSchedule(op="broadcast", algorithm="tree", group=order,
                              size_bytes=size_bytes,
                              rounds=_binomial_rounds(order, size_bytes, False))


def tree_all_reduce(order: Sequence[int], size_bytes: int) -> CollectiveSchedule:
    """Reduce to the root, broadcast back out: ``2 ceil(log2 n)`` rounds."""
    reduce_part = tree_reduce(order, size_bytes)
    bcast_part = tree_broadcast(order, size_bytes)
    return CollectiveSchedule(op="all_reduce", algorithm="tree",
                              group=reduce_part.group, size_bytes=size_bytes,
                              rounds=reduce_part.rounds + bcast_part.rounds)


# -- topology-aware ordering --------------------------------------------


_RING_CACHE: Dict[Tuple, Tuple[int, ...]] = {}


def _topology_key(topology: Topology) -> Tuple:
    """Hashable identity of a topology (``adjacency`` is a dict)."""
    return topology.topology_key()


def _cycle_score(topology: Topology, cycle: Tuple[int, ...]) -> Tuple[int, int]:
    """(weakest edge, total lanes) — the ring cost is set by the weakest."""
    lanes = [topology.lanes(cycle[i], cycle[(i + 1) % len(cycle)])
             for i in range(len(cycle))]
    return (min(lanes), sum(lanes))


def ring_order(topology: Topology, group: Sequence[int]) -> Tuple[int, ...]:
    """Cycle through ``group`` that maximises the weakest-edge lane count.

    On a switched fabric every pair is equivalent, so the sorted group
    is returned as-is.  On a direct topology all distinct cycles
    (permutations fixing the first member, reflections collapsed) are
    scored by ``(min lanes, total lanes)``; ties break on the
    lexicographically smallest cycle so the result is deterministic.
    Memoised per (topology, group) — the DGX-1 8-GPU search visits
    7!/2 = 2520 cycles once, then never again.
    """
    group = _require_group(group)
    members = tuple(sorted(group))
    if topology.kind == "cluster":
        return _cluster_ring_order(topology, members)
    if topology.kind == "switched" or len(members) <= 3:
        return members
    key = (_topology_key(topology), members)
    cached = _RING_CACHE.get(key)
    if cached is not None:
        return cached
    first = members[0]
    best_cycle: Tuple[int, ...] = members
    best_score = _cycle_score(topology, members)
    for perm in itertools.permutations(members[1:]):
        if perm[0] > perm[-1]:
            continue            # a cycle equals its reflection
        cycle = (first,) + perm
        score = _cycle_score(topology, cycle)
        if score > best_score or (score == best_score and cycle < best_cycle):
            best_score = score
            best_cycle = cycle
    _RING_CACHE[key] = best_cycle
    return best_cycle


def _cluster_ring_order(topology, members: Tuple[int, ...]) -> Tuple[int, ...]:
    """Server-contiguous cycle through a cluster-spanning group.

    A permutation search over 16+ devices is intractable and pointless:
    every cross-server hop costs the same NIC lanes, so the best cycle
    visits each server's members consecutively (crossing the fabric
    exactly once per server) with each server segment ordered by its
    own local ring search.  Memoised like the single-box search.
    """
    key = (_topology_key(topology), members)
    cached = _RING_CACHE.get(key)
    if cached is not None:
        return cached
    by_server: Dict[int, List[int]] = {}
    for device in members:
        by_server.setdefault(topology.server_of(device), []).append(device)
    offsets = topology.server_offsets()
    cycle: List[int] = []
    for server in sorted(by_server):
        subset = sorted(by_server[server])
        if len(subset) < 2:
            cycle.extend(subset)
            continue
        base = offsets[server]
        local = ring_order(topology.servers[server],
                           [device - base for device in subset])
        cycle.extend(device + base for device in local)
    result = tuple(cycle)
    _RING_CACHE[key] = result
    return result


def _cluster_islands(topology, members: List[int]) -> Tuple[Tuple[int, ...], ...]:
    """Island partition of a cluster group: islands are servers.

    A group confined to one box delegates to that box's own island
    discovery (so DGX-1 quads still surface), remapped to global ids.
    A cluster-spanning group partitions by server — the NVLink/fabric
    bandwidth cliff dominates any intra-box asymmetry — accepted under
    the same rule as below (>= 2 equal-size islands of >= 2 members).
    """
    by_server: Dict[int, List[int]] = {}
    for device in members:
        by_server.setdefault(topology.server_of(device), []).append(device)
    offsets = topology.server_offsets()
    if len(by_server) == 1:
        server = next(iter(by_server))
        base = offsets[server]
        local = islands(topology.servers[server],
                        [device - base for device in by_server[server]])
        return tuple(tuple(device + base for device in part) for part in local)
    parts = tuple(tuple(sorted(by_server[server]))
                  for server in sorted(by_server))
    sizes = {len(part) for part in parts}
    if len(parts) >= 2 and len(sizes) == 1 and sizes.pop() >= 2:
        return parts
    return (tuple(members),)


def islands(topology: Topology, group: Sequence[int]) -> Tuple[Tuple[int, ...], ...]:
    """Partition ``group`` into NVLink islands for hierarchical collectives.

    On a direct topology the islands are the connected components of
    the subgraph induced by pairs with >= 2 lanes — on the DGX-1 cube
    mesh that yields the two double-brick quads.  The partition is
    accepted only if it has >= 2 equal-size islands of >= 2 members
    each; otherwise an even-size group is split into sorted halves
    (the only sensible partition on a symmetric crossbar), and
    anything else stays a single island.  Cluster topologies partition
    by server first (see :func:`_cluster_islands`).
    """
    group = _require_group(group)
    members = sorted(group)
    if topology.kind == "cluster":
        return _cluster_islands(topology, members)
    if topology.kind == "direct":
        parent = {device: device for device in members}

        def find(device: int) -> int:
            while parent[device] != device:
                parent[device] = parent[parent[device]]
                device = parent[device]
            return device

        for a, b in itertools.combinations(members, 2):
            if topology.lanes(a, b) >= 2:
                parent[find(a)] = find(b)
        components: Dict[int, List[int]] = {}
        for device in members:
            components.setdefault(find(device), []).append(device)
        parts = tuple(sorted(tuple(sorted(c)) for c in components.values()))
        sizes = {len(part) for part in parts}
        if len(parts) >= 2 and len(sizes) == 1 and sizes.pop() >= 2:
            return parts
    if len(members) >= 4 and len(members) % 2 == 0:
        half = len(members) // 2
        return (tuple(members[:half]), tuple(members[half:]))
    return (tuple(members),)


def _align_island(topology: Topology, reference: Tuple[int, ...],
                  cycle: Tuple[int, ...]) -> Tuple[int, ...]:
    """Rotate/reflect ``cycle`` to face ``reference`` over the best lanes.

    Cross-island rings pair position ``p`` of every island, so the
    rotation of each cycle decides which inter-island links carry the
    traffic.  Rotations and reflections leave the intra-island ring
    cost untouched, which makes this alignment free.
    """
    if topology.kind == "switched":
        return cycle
    n = len(cycle)
    variants = []
    for direction in (cycle, tuple(reversed(cycle))):
        for shift in range(n):
            variants.append(direction[shift:] + direction[:shift])
    best = None
    best_score = None
    for variant in variants:
        lanes = [topology.lanes(reference[p], variant[p]) for p in range(n)]
        score = (min(lanes), sum(lanes))
        if best_score is None or score > best_score or (
                score == best_score and variant < best):
            best_score = score
            best = variant
    return best


def _merge_rounds(parts: Sequence[Tuple[Round, ...]]) -> Tuple[Round, ...]:
    """Zip concurrent schedules round-by-round into one round stream."""
    rounds: List[Round] = []
    for zipped in itertools.zip_longest(*parts, fillvalue=()):
        merged = tuple(step for rnd in zipped for step in rnd)
        if merged:
            rounds.append(merged)
    return tuple(rounds)


def hierarchical_all_reduce(topology: Topology, group: Sequence[int],
                            size_bytes: int) -> CollectiveSchedule:
    """Intra-island reduce-scatter, cross-island all-reduce, all-gather.

    With ``g`` islands of ``m`` members: ``m-1`` rounds of ``S/m``
    chunks inside every island (concurrently), ``2(g-1)`` rounds of
    ``S/(m*g)`` chunks across islands (one ring per chunk position,
    concurrently), then ``m-1`` gather rounds.  Falls back to a plain
    topology-ordered ring when no usable island partition exists.
    """
    group = _require_group(group)
    parts = islands(topology, group)
    if len(parts) < 2 or any(len(part) < 2 for part in parts):
        return ring_all_reduce(ring_order(topology, group), size_bytes)
    orders = [ring_order(topology, part) for part in parts]
    reference = orders[0]
    orders = [reference] + [_align_island(topology, reference, cycle)
                            for cycle in orders[1:]]
    m = len(reference)
    g = len(orders)
    chunk = _chunk(size_bytes, m)

    scatter = _merge_rounds([ring_reduce_scatter(order, size_bytes).rounds
                             for order in orders])
    cross_groups = [tuple(order[p] for order in orders) for p in range(m)]
    cross = _merge_rounds([ring_all_reduce(cross_group, chunk).rounds
                           for cross_group in cross_groups])
    gather = _merge_rounds([ring_all_gather(order, size_bytes).rounds
                            for order in orders])
    return CollectiveSchedule(op="all_reduce", algorithm="hierarchical",
                              group=group, size_bytes=size_bytes,
                              rounds=scatter + cross + gather)


# -- dispatchers ---------------------------------------------------------


ALL_REDUCE_ALGORITHMS = ("ring", "tree", "hierarchical")


def all_reduce_schedule(topology: Topology, group: Sequence[int],
                        size_bytes: int, algorithm: str = "ring") -> CollectiveSchedule:
    """Build one all-reduce schedule for a named algorithm."""
    group = _require_group(group)
    if algorithm == "ring":
        return ring_all_reduce(ring_order(topology, group), size_bytes)
    if algorithm == "tree":
        return tree_all_reduce(tuple(sorted(group)), size_bytes)
    if algorithm == "hierarchical":
        return hierarchical_all_reduce(topology, group, size_bytes)
    raise ConfigurationError(
        f"unknown all-reduce algorithm {algorithm!r}; "
        f"expected one of {ALL_REDUCE_ALGORITHMS}")


def broadcast_schedule(topology: Topology, group: Sequence[int],
                       size_bytes: int, algorithm: str = "tree") -> CollectiveSchedule:
    """Build one broadcast schedule for a named algorithm."""
    group = _require_group(group)
    if algorithm == "ring":
        return ring_broadcast(ring_order(topology, group), size_bytes)
    if algorithm == "tree":
        return tree_broadcast(tuple(sorted(group)), size_bytes)
    raise ConfigurationError(
        f"unknown broadcast algorithm {algorithm!r}; expected 'ring' or 'tree'")
