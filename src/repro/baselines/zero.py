"""ZeRO-Offload and ZeRO-Infinity baselines (Figure 8 comparisons).

Both train data-parallel with full state partitioning (ZeRO-3
semantics): every GPU computes the whole model on its slice of the
minibatch, parameters are allgathered per layer, gradients
reduce-scattered, and activation recomputation is enabled — this is
the configuration the paper runs DeepSpeed with.

The model is analytic rather than a discrete-event simulation: data
parallelism has no pipeline interleaving to capture, so per-step
time decomposes into compute, collective traffic, and the
offload-path traffic each variant exposes:

* **ZeRO-Offload** keeps optimizer states in host memory and runs
  the Adam step on the CPU; gradients stream down and updated
  parameters stream up over PCIe each step, and the CPU-side update
  sits on the critical path (the paper's Section II-D: offloading
  "results in frequent data movement between GPU and CPU").
* **ZeRO-Infinity** keeps the optimizer update on the GPU with
  bandwidth-optimal host swapping, touching NVMe for the cold
  fraction of parameters.  On a machine with slow SSDs the exposed
  NVMe time inverts the ranking (the paper's Figure 8b observation).

Calibration constants (documented, not hidden): ``CPU_ADAM_BW``
matches ZeRO-Offload's reported CPU Adam throughput class;
``NVME_COLD_FRACTION`` is the fraction of parameter bytes that miss
the host cache per step under ZeRO-Infinity's prefetcher.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.hardware.server import Server
from repro.models import costs
from repro.models.layers import ModelSpec

# Fraction of peak FLOPs data-parallel ZeRO kernels achieve at the
# small per-GPU batches these experiments use; ZeRO-3's layer-wise
# allgather synchronization keeps utilization below the pipeline
# systems' (calibrated to the paper's MPress-vs-ZeRO gaps).
ZERO_MFU = 0.33

# CPU Adam streaming rate over optimizer state bytes (read + write).
CPU_ADAM_BW = 11e9

# Share of fp16 parameter bytes ZeRO-Infinity touches on NVMe per
# step (host-cache misses of its prefetcher).
NVME_COLD_FRACTION = 0.10

# Collectives overlap this fraction of compute; offload PCIe traffic
# overlaps the backward pass up to this fraction as well.
COMM_OVERLAP = 0.5

# Ring-allreduce efficiency over the aggregate NVLink bandwidth.
RING_EFFICIENCY = 0.8

COMM_MODELS = ("analytic", "collective")


@dataclass(frozen=True)
class ZeroOptions:
    """Calibration knobs of the ZeRO analytic model.

    Defaults reproduce the historical module constants exactly, so
    existing sweeps, goldens, and cache entries are unchanged unless
    a knob is moved.

    ``comm_model`` selects how collective traffic is priced:

    * ``"analytic"`` (default) — the original flat-rate model:
      three full-model fp16 volumes over the aggregate NVLink
      bandwidth derated by ``ring_efficiency``;
    * ``"collective"`` — per-layer ring all-gather (forward and
      backward) plus ring reduce-scatter, priced by the
      topology-aware schedule model in :mod:`repro.collectives`, so
      latency per layer and the actual link graph (e.g. the DGX-1
      cube mesh's weak edges) shape the communication time.
    """

    mfu: float = ZERO_MFU
    ring_efficiency: float = RING_EFFICIENCY
    comm_overlap: float = COMM_OVERLAP
    cpu_adam_bw: float = CPU_ADAM_BW
    nvme_cold_fraction: float = NVME_COLD_FRACTION
    comm_model: str = "analytic"

    def __post_init__(self) -> None:
        if not 0.0 < self.mfu <= 1.0:
            raise ConfigurationError(f"mfu must be in (0, 1], got {self.mfu}")
        if not 0.0 < self.ring_efficiency <= 1.0:
            raise ConfigurationError(
                f"ring efficiency must be in (0, 1], got {self.ring_efficiency}")
        if not 0.0 <= self.comm_overlap <= 1.0:
            raise ConfigurationError(
                f"comm overlap must be in [0, 1], got {self.comm_overlap}")
        if self.cpu_adam_bw <= 0:
            raise ConfigurationError(
                f"CPU Adam bandwidth must be positive, got {self.cpu_adam_bw}")
        if not 0.0 <= self.nvme_cold_fraction <= 1.0:
            raise ConfigurationError(
                f"NVMe cold fraction must be in [0, 1], "
                f"got {self.nvme_cold_fraction}")
        if self.comm_model not in COMM_MODELS:
            raise ConfigurationError(
                f"unknown comm model {self.comm_model!r}; "
                f"options: {COMM_MODELS}")


@dataclass(frozen=True)
class ZeroResult:
    """Outcome of one ZeRO training-step model evaluation."""

    variant: str
    ok: bool
    reason: str
    minibatch_time: float
    compute_time: float
    comm_exposed: float
    offload_exposed: float
    per_gpu_memory: int
    host_bytes: int
    model_flops: float

    @property
    def tflops(self) -> float:
        if not self.ok or self.minibatch_time <= 0:
            return 0.0
        return self.model_flops / self.minibatch_time / 1e12

    @property
    def samples_per_second(self) -> float:
        return 0.0 if not self.ok else self._samples / self.minibatch_time

    # set via object.__setattr__ in run_zero
    _samples: int = 0


def zero_memory_per_gpu(model: ModelSpec, server: Server, local_batch: int) -> int:
    """Per-GPU bytes under ZeRO-3 with recomputation enabled.

    Sharded fp16 params + fp16 grads, the transient unsharded
    working layer (allgather buffer), and checkpointed activations
    for the local batch.
    """
    n = server.n_gpus
    params = model.total_params
    shard = params * (costs.PARAM_BYTES + costs.GRAD_BYTES) // n
    largest_layer = max(layer.params for layer in model.layers)
    gather_buffer = 2 * largest_layer * costs.PARAM_BYTES
    boundaries = sum(
        layer.boundary_bytes(local_batch, 2) for layer in model.layers
    )
    largest_act = max(layer.activation_bytes(local_batch, 2) for layer in model.layers)
    return shard + gather_buffer + boundaries + largest_act


def zero_comm_time(model: ModelSpec, server: Server,
                   options: ZeroOptions) -> float:
    """ZeRO-3 collective traffic per step, priced per ``comm_model``.

    Both models move the same three full-model fp16 volumes (param
    all-gather for forward and for backward, gradient
    reduce-scatter); they differ in how the wire time is computed.
    """
    params = model.total_params
    param_bytes = params * costs.PARAM_BYTES
    if options.comm_model == "analytic":
        ring_bw = (
            server.topology.lane_budget
            * server.topology.nvlink.sustained_bandwidth
            * options.ring_efficiency
        )
        return 3.0 * param_bytes / ring_bw
    from repro.collectives.cost import collective_time
    from repro.collectives.schedule import (
        ring_all_gather,
        ring_order,
        ring_reduce_scatter,
    )

    topology = server.topology
    order = ring_order(topology, tuple(range(server.n_gpus)))
    total = 0.0
    for layer in model.layers:
        layer_bytes = layer.params * costs.PARAM_BYTES
        if layer_bytes <= 0:
            continue
        gather = collective_time(
            ring_all_gather(order, layer_bytes), topology, server.pcie)
        scatter = collective_time(
            ring_reduce_scatter(order, layer_bytes), topology, server.pcie)
        total += 2.0 * gather + scatter
    return total


def run_zero(
    model: ModelSpec,
    server: Server,
    variant: str,
    samples_per_minibatch: int,
    mfu: Optional[float] = None,
    options: Optional[ZeroOptions] = None,
) -> ZeroResult:
    """Evaluate one ZeRO variant's training step on ``server``.

    ``variant`` is ``"offload"`` or ``"infinity"``.  ``options``
    carries the calibration knobs; the legacy ``mfu`` argument, when
    given, overrides ``options.mfu``.
    """
    if variant not in ("offload", "infinity"):
        raise ConfigurationError(f"unknown ZeRO variant {variant!r}")
    if options is None:
        options = ZeroOptions()
    if mfu is not None:
        options = replace(options, mfu=mfu)
    n = server.n_gpus
    if samples_per_minibatch % n != 0:
        raise ConfigurationError("minibatch must divide evenly across GPUs")
    local_batch = samples_per_minibatch // n
    params = model.total_params
    param_bytes = params * costs.PARAM_BYTES
    optimizer_bytes = params * costs.OPTIMIZER_BYTES

    # -- memory feasibility -------------------------------------------------
    per_gpu = zero_memory_per_gpu(model, server, local_batch)
    if per_gpu > server.gpu_memory:
        return _failed(variant, "per-GPU memory exceeds capacity", per_gpu, model)
    host_bytes = optimizer_bytes + 2 * param_bytes  # states + pinned staging
    if variant == "offload" and host_bytes > server.host.memory_bytes:
        return _failed(variant, "host memory exceeds capacity", per_gpu, model)

    # -- timing ----------------------------------------------------------------
    # Recomputation re-runs the forward pass: 4/3 of model FLOPs.
    model_flops = model.iteration_flops(samples_per_minibatch)
    compute = model_flops * (4.0 / 3.0) / (
        n * server.gpus[0].peak_flops("fp16") * options.mfu
    )

    # ZeRO-3 collectives: params allgathered for forward and backward,
    # gradients reduce-scattered — three full-model fp16 volumes.
    comm = zero_comm_time(model, server, options)
    comm_exposed = max(0.0, comm - options.comm_overlap * compute)

    if variant == "offload":
        # Per-step: fp16 gradients stream to host, updated fp16
        # parameters stream back (per-GPU shards).
        pcie = 2.0 * (param_bytes / n) / server.pcie.sustained_bandwidth
        cpu_adam = (optimizer_bytes + param_bytes) / n / options.cpu_adam_bw
        offload_exposed = cpu_adam + max(
            0.0, pcie - options.comm_overlap * compute)
    else:
        # GPU-side update with host swapping: optimizer state round
        # trip over PCIe, largely overlapped; the cold parameter
        # fraction misses the host cache and pays NVMe rates.
        pcie = 2.0 * (optimizer_bytes / n) / server.pcie.sustained_bandwidth
        cold = options.nvme_cold_fraction * param_bytes
        nvme = cold / server.nvme.read_bandwidth + cold / server.nvme.write_bandwidth
        offload_exposed = max(0.0, pcie - 0.7 * compute) + nvme

    step = compute + comm_exposed + offload_exposed
    result = ZeroResult(
        variant=variant,
        ok=True,
        reason="",
        minibatch_time=step,
        compute_time=compute,
        comm_exposed=comm_exposed,
        offload_exposed=offload_exposed,
        per_gpu_memory=per_gpu,
        host_bytes=host_bytes,
        model_flops=model_flops,
    )
    object.__setattr__(result, "_samples", samples_per_minibatch)
    return result


def _failed(variant: str, reason: str, per_gpu: int, model: ModelSpec) -> ZeroResult:
    return ZeroResult(
        variant=variant,
        ok=False,
        reason=reason,
        minibatch_time=0.0,
        compute_time=0.0,
        comm_exposed=0.0,
        offload_exposed=0.0,
        per_gpu_memory=per_gpu,
        host_bytes=0,
        model_flops=model.iteration_flops(1),
    )
