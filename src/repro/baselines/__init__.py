"""Baseline systems the paper compares MPress against.

Pipeline-based baselines (original PipeDream/DAPPLE, recomputation,
GPU-CPU swap, MPress-D2D-only) reuse the planner with technique
toggles — see :func:`repro.core.mpress.run_system`.  The ZeRO family
(data-parallel) is modelled here analytically on the same hardware
specifications.
"""

from repro.baselines.zero import ZeroResult, run_zero, zero_memory_per_gpu

__all__ = ["ZeroResult", "run_zero", "zero_memory_per_gpu"]
