"""Synchronous event bus decoupling observers from the interpreter.

The interpreter publishes what *happened* (an instruction started or
completed, a memory book changed, a device failed, a fault window
opened); subscribers decide what to do with it.  Trace recording,
per-device memory counters, fault-window auditing, and chrome-trace
annotation all hang off this bus instead of being branches inside the
execution loop — adding an observer never touches the hot path.

Publishing is synchronous and in subscription order, so subscriber
side effects land at deterministic points of the simulation (the
golden-trace suite depends on recovery events interleaving exactly
where the legacy executor wrote them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Hashable, List, Tuple, Type, Union

from repro.sim.trace import CounterSample, Trace, TraceEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.ir import Instruction, Record


# -- events -----------------------------------------------------------------


@dataclass(frozen=True)
class InstructionStarted:
    """An instruction began executing on its stream."""

    instruction: "Instruction"
    time: float


@dataclass(frozen=True)
class InstructionCompleted:
    """An instruction carrying a :class:`~repro.sim.ir.Record` effect finished."""

    instruction: "Instruction"
    record: "Record"
    start: float
    end: float


@dataclass(frozen=True)
class MemoryChanged:
    """A device memory book changed by ``delta`` bytes (now ``in_use``)."""

    device: Union[int, str]
    delta: int
    in_use: int
    tag: str
    time: float


@dataclass(frozen=True)
class DeviceFailed:
    """A device failure triggered a synchronous checkpoint-restore."""

    device: int
    time: float
    resume_time: float
    lost_seconds: float
    reload_bytes: int
    reload_seconds: float


@dataclass(frozen=True)
class FaultWindowOpened:
    """A windowed fault started throttling the listed stream keys."""

    kind: str
    device: int
    factor: float
    time: float
    stream_keys: Tuple[Hashable, ...]


@dataclass(frozen=True)
class FaultWindowClosed:
    """A windowed fault stopped throttling the listed stream keys."""

    kind: str
    device: int
    factor: float
    time: float
    stream_keys: Tuple[Hashable, ...]


Event = Union[
    InstructionStarted,
    InstructionCompleted,
    MemoryChanged,
    DeviceFailed,
    FaultWindowOpened,
    FaultWindowClosed,
]


# -- bus --------------------------------------------------------------------


class EventBus:
    """Type-keyed synchronous publish/subscribe."""

    def __init__(self) -> None:
        self._handlers: Dict[type, List[Callable]] = {}

    def subscribe(self, event_type: Type, handler: Callable) -> None:
        """Register ``handler`` for exact instances of ``event_type``."""
        self._handlers.setdefault(event_type, []).append(handler)

    def wants(self, event_type: Type) -> bool:
        """True if any handler listens for ``event_type``.

        The interpreter checks this once per run to skip building
        publish closures nobody would receive.
        """
        return bool(self._handlers.get(event_type))

    def publish(self, event) -> None:
        for handler in self._handlers.get(type(event), ()):
            handler(event)


# -- built-in subscribers ---------------------------------------------------


class TraceRecorder:
    """Writes :class:`~repro.sim.trace.TraceEvent` rows from bus events.

    Attached whenever ``ExecOptions.record_trace`` is set; produces
    exactly the event sequence the legacy inlined hooks did, which is
    what keeps golden chrome-trace digests stable.
    """

    def __init__(self, trace: Trace):
        self.trace = trace

    def attach(self, bus: EventBus) -> None:
        bus.subscribe(InstructionCompleted, self.on_completed)
        bus.subscribe(DeviceFailed, self.on_device_failed)

    def on_completed(self, event: InstructionCompleted) -> None:
        record = event.record
        self.trace.record(
            TraceEvent(
                name=event.instruction.name,
                kind=record.kind,
                device=record.device,
                microbatch=record.microbatch,
                start=event.start,
                end=event.end,
                layer=record.layer,
            )
        )

    def on_device_failed(self, event: DeviceFailed) -> None:
        self.trace.record(
            TraceEvent(
                name=f"recovery.gpu{event.device}",
                kind="recovery",
                device=event.device,
                microbatch=-1,
                start=event.time,
                end=event.resume_time,
            )
        )


class MemoryCounterSampler:
    """Samples per-GPU memory usage into ``trace.counters``.

    The samples feed chrome-trace Counter events (``"ph": "C"``) so
    the memory timeline renders next to the compute/copy tracks; they
    are deliberately kept out of :func:`repro.sim.chrome_trace.trace_to_events`
    so trace digests are unaffected.
    """

    def __init__(self, trace: Trace):
        self.trace = trace

    def attach(self, bus: EventBus) -> None:
        bus.subscribe(MemoryChanged, self.on_memory_changed)

    def on_memory_changed(self, event: MemoryChanged) -> None:
        if not isinstance(event.device, int):
            return  # host residency is not a per-GPU counter track
        self.trace.counters.append(
            CounterSample(
                device=event.device, time=event.time, bytes_in_use=event.in_use
            )
        )
