"""Discrete-event simulation of a multi-GPU training server.

The simulator substitutes for the paper's physical testbed.  It
models CUDA-like in-order streams (one compute stream plus dedicated
swap-in/swap-out copy streams per GPU, Section III-E), individual
NVLink lane channels, PCIe channels, NVMe queues, and per-device
memory accounting over time.
"""

from repro.sim.engine import Engine, Task, TaskState
from repro.sim.resources import Stream, StreamSet
from repro.sim.memory import DeviceMemory, MemoryModel, PinnedPool
from repro.sim.trace import TraceEvent, Trace

__all__ = [
    "Engine",
    "Task",
    "TaskState",
    "Stream",
    "StreamSet",
    "DeviceMemory",
    "MemoryModel",
    "PinnedPool",
    "TraceEvent",
    "Trace",
]
