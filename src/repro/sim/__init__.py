"""Discrete-event simulation of a multi-GPU training server.

The simulator substitutes for the paper's physical testbed.  It
models CUDA-like in-order streams (one compute stream plus dedicated
swap-in/swap-out copy streams per GPU, Section III-E), individual
NVLink lane channels, PCIe channels, NVMe queues, and per-device
memory accounting over time.

Simulation is layered (see ``docs/architecture.md``): a lowering pass
emits a typed instruction program, an interpreter replays it on the
engine/stream/memory substrate, and observers (tracing, memory
counters, fault auditing) subscribe to an event bus.
"""

from repro.sim.engine import Engine, Task, TaskState
from repro.sim.resources import Stream, StreamSet
from repro.sim.memory import DeviceMemory, MemoryModel, PinnedPool
from repro.sim.trace import CounterSample, TraceEvent, Trace
from repro.sim.events import (
    DeviceFailed,
    EventBus,
    FaultWindowClosed,
    FaultWindowOpened,
    InstructionCompleted,
    InstructionStarted,
    MemoryChanged,
    MemoryCounterSampler,
    TraceRecorder,
)
from repro.sim.ir import ExecOptions, InstructionProgram

# The lowering/interpreter/executor layers import planner-side modules
# (repro.core.plan), which themselves reach back into repro.sim via
# repro.graph — resolve them lazily (PEP 562) to keep the package
# importable from either end of that cycle.
_LAZY = {
    "Lowering": ("repro.sim.lowering", "Lowering"),
    "skeleton_build_count": ("repro.sim.lowering", "skeleton_build_count"),
    "Interpreter": ("repro.sim.interpreter", "Interpreter"),
    "SimulationResult": ("repro.sim.interpreter", "SimulationResult"),
    "PipelineExecutor": ("repro.sim.executor", "PipelineExecutor"),
    "simulate": ("repro.sim.executor", "simulate"),
    # Fast path: compiled tape replay, dispatch, and incremental
    # re-simulation across planner candidates (docs/fastpath.md).
    "FastInterpreter": ("repro.sim.fastpath", "FastInterpreter"),
    "ProgramTape": ("repro.sim.fastpath", "ProgramTape"),
    "run_program": ("repro.sim.fastpath", "run_program"),
    "wants_fast_path": ("repro.sim.fastpath", "wants_fast_path"),
    "fast_path_runs": ("repro.sim.fastpath", "fast_path_runs"),
    "reference_runs": ("repro.sim.fastpath", "reference_runs"),
    "reset_run_counters": ("repro.sim.fastpath", "reset_run_counters"),
    "ProgramDiff": ("repro.sim.incremental", "ProgramDiff"),
    "diff_programs": ("repro.sim.incremental", "diff_programs"),
    "splice_programs": ("repro.sim.incremental", "splice_programs"),
    "IncrementalSimulator": ("repro.sim.incremental", "IncrementalSimulator"),
    # Collective lowering lives in repro.collectives but runs on this
    # substrate; re-exported here as part of the executor facade.
    "simulate_collective": ("repro.collectives.lowering", "simulate_collective"),
    "lower_collective": ("repro.collectives.lowering", "lower_collective"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


__all__ = [
    "Engine",
    "Task",
    "TaskState",
    "Stream",
    "StreamSet",
    "DeviceMemory",
    "MemoryModel",
    "PinnedPool",
    "CounterSample",
    "TraceEvent",
    "Trace",
    "EventBus",
    "InstructionStarted",
    "InstructionCompleted",
    "MemoryChanged",
    "DeviceFailed",
    "FaultWindowOpened",
    "FaultWindowClosed",
    "TraceRecorder",
    "MemoryCounterSampler",
    "ExecOptions",
    "InstructionProgram",
    "Lowering",
    "skeleton_build_count",
    "Interpreter",
    "SimulationResult",
    "PipelineExecutor",
    "simulate",
    "FastInterpreter",
    "ProgramTape",
    "run_program",
    "wants_fast_path",
    "fast_path_runs",
    "reference_runs",
    "reset_run_counters",
    "ProgramDiff",
    "diff_programs",
    "splice_programs",
    "IncrementalSimulator",
    "simulate_collective",
    "lower_collective",
]
