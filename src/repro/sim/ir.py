"""Typed device-level instruction IR for the simulator.

Lowering (:mod:`repro.sim.lowering`) turns a ``(TrainingJob,
MemorySavingPlan, ExecOptions)`` triple into an
:class:`InstructionProgram` — a frozen, inspectable description of one
training iteration set: typed instructions (:class:`Compute`,
:class:`SwapOut`, :class:`SwapIn`, :class:`Recompute`,
:class:`P2PSend`/:class:`P2PRecv`, :class:`OptimStep`,
:class:`Barrier` joins) in submission order, a global dependency-edge
tape, and the memory *effects* each instruction applies when it starts
or finishes.  The interpreter (:mod:`repro.sim.interpreter`) replays
the program on the discrete-event substrate without knowing anything
about pipelines, plans, or memory-saving policies.

Determinism contract: the simulator's golden traces are byte-pinned,
and trace event order depends on (a) stream registration order, (b)
per-stream submission order, and (c) the order dependency edges were
declared in (it drives dependent wake-up order on ties).  The IR
therefore records all three explicitly: ``stream_order`` lists stream
keys in first-use order, ``instructions`` is the submission sequence,
and ``edges`` is the edge-declaration tape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple, Union

from repro.faults.spec import FaultSchedule

# Host memory "device" marker in effects (GPU devices are ints).
HOST = "host"

DeviceRef = Union[int, str]


@dataclass(frozen=True)
class ExecOptions:
    """Knobs of one simulation run.

    ``prefetch_lead`` — a swap-in may begin once the compute task
    this many positions before its consumer finishes, keeping the
    copy off the critical path.

    ``swap_backpressure`` — the memory manager's allocator
    backpressure: a layer's forward pass for microbatch ``k`` cannot
    start until the same layer's swap-out for microbatch
    ``k - window`` completed, bounding un-evicted generations in
    flight (a real allocator would stall the same way instead of
    OOMing).
    """

    strict: bool = True
    prefetch_lead: int = 3
    record_trace: bool = True
    gpu_capacity_override: Optional[int] = None
    swap_backpressure: int = 6
    # Optimizer state streams through in chunks so only a couple of
    # chunks are GPU-resident at once (a whole multi-GB blob would
    # not fit next to the working set at billion scale).
    opt_swap_chunk: int = 2 * 1024**3
    # Timed hardware faults injected into the run (slowdowns, link
    # degradation, device failures, NVMe stalls); None or an empty
    # schedule reproduces the fault-free execution exactly.
    faults: Optional[FaultSchedule] = None


# -- effects ----------------------------------------------------------------
#
# Effects are the *semantic* side of an instruction: what it does to
# device memory books and the pinned staging pool when it starts or
# finishes.  The interpreter applies them in list order — the order is
# part of the behaviour contract (strict-mode OOM attribution depends
# on it).


@dataclass(frozen=True)
class Alloc:
    """Reserve ``size`` bytes on ``device`` under ``tag``."""

    device: DeviceRef
    size: int
    tag: str


@dataclass(frozen=True)
class Drop:
    """Release ``size`` bytes of ``tag`` on ``device``."""

    device: DeviceRef
    size: int
    tag: str


@dataclass(frozen=True)
class Pin:
    """Take ``size`` bytes from the pinned staging pool."""

    size: int


@dataclass(frozen=True)
class Unpin:
    """Return ``size`` bytes to the pinned staging pool."""

    size: int


@dataclass(frozen=True)
class Record:
    """Publish a trace record when the instruction completes."""

    kind: str
    device: int
    microbatch: int
    layer: int = -1


Effect = Union[Alloc, Drop, Pin, Unpin, Record]


# -- instructions -----------------------------------------------------------


@dataclass(frozen=True, kw_only=True)
class Instruction:
    """One schedulable unit on one stream.

    ``iid`` is the instruction's index in the program (submission
    order); ``stream`` is the channel key it executes on, with
    ``stream_mode`` selecting FIFO (in-order compute queues) or pool
    (link arbitration) dispatch.
    """

    iid: int
    name: str
    stream: Hashable
    stream_mode: str
    duration: float
    device: DeviceRef
    start_effects: Tuple[Effect, ...] = ()
    done_effects: Tuple[Effect, ...] = ()


@dataclass(frozen=True, kw_only=True)
class Compute(Instruction):
    """One layer's forward or backward kernel (``op`` is fwd/bwd)."""

    stage: int
    microbatch: int
    layer: int
    op: str


@dataclass(frozen=True, kw_only=True)
class Recompute(Instruction):
    """Re-forward of a checkpointed layer before its backward."""

    stage: int
    microbatch: int
    layer: int


@dataclass(frozen=True, kw_only=True)
class OptimStep(Instruction):
    """Optimizer update — the per-minibatch join or one chunk update."""

    stage: int
    minibatch: int


@dataclass(frozen=True, kw_only=True)
class SwapOut(Instruction):
    """GPU→host eviction leg over PCIe."""

    tag: str
    size: int
    tier: str = "host"


@dataclass(frozen=True, kw_only=True)
class SwapIn(Instruction):
    """Host→GPU restore leg over PCIe."""

    tag: str
    size: int
    tier: str = "host"


@dataclass(frozen=True, kw_only=True)
class NvmeWrite(Instruction):
    """Host→NVMe spill continuing a swap-out (ZeRO-Infinity style)."""

    tag: str
    size: int


@dataclass(frozen=True, kw_only=True)
class NvmeRead(Instruction):
    """NVMe→host fetch preceding a swap-in."""

    tag: str
    size: int


@dataclass(frozen=True, kw_only=True)
class P2PSend(Instruction):
    """Point-to-point transfer leaving ``src`` (NVLink lane or staged PCIe)."""

    src: int
    dst: int


@dataclass(frozen=True, kw_only=True)
class P2PRecv(Instruction):
    """Return transfer of striped state back to its exporter."""

    src: int
    dst: int


@dataclass(frozen=True, kw_only=True)
class Barrier(Instruction):
    """Zero-cost join/begin marker gating a group of transfers."""


# -- program ----------------------------------------------------------------


@dataclass(frozen=True)
class InstructionProgram:
    """A lowered simulation: instructions + edges + static state.

    * ``instructions`` — submission order per stream (and globally);
    * ``edges`` — ``(consumer_iid, producer_iid)`` pairs in the order
      the dependencies were declared during lowering;
    * ``static_effects`` — allocations applied at t=0 before any
      instruction runs (resident model state per the plan);
    * ``stream_order`` — ``(key, mode)`` pairs in first-use order, so
      the interpreter registers streams exactly as the legacy
      executor did (registration order breaks simultaneity ties).
    """

    job: "object"
    plan: "object"
    options: ExecOptions
    instructions: Tuple[Instruction, ...]
    edges: Tuple[Tuple[int, int], ...]
    static_effects: Tuple[Alloc, ...]
    stream_order: Tuple[Tuple[Hashable, str], ...]

    def __len__(self) -> int:
        return len(self.instructions)

    def deps_of(self, iid: int) -> List[int]:
        """Producer iids instruction ``iid`` waits on (edge-tape order)."""
        return [producer for consumer, producer in self.edges if consumer == iid]

    def by_stream(self) -> Dict[Hashable, List[Instruction]]:
        """Instructions grouped per stream key, in submission order."""
        grouped: Dict[Hashable, List[Instruction]] = {}
        for instr in self.instructions:
            grouped.setdefault(instr.stream, []).append(instr)
        return grouped

    def for_device(self, device: DeviceRef) -> List[Instruction]:
        """The device's instruction stream (submission order)."""
        return [instr for instr in self.instructions if instr.device == device]

    def counts_by_type(self) -> Dict[str, int]:
        """Instruction counts per type name (inspection/tests)."""
        counts: Dict[str, int] = {}
        for instr in self.instructions:
            name = type(instr).__name__
            counts[name] = counts.get(name, 0) + 1
        return counts


@dataclass
class _InstructionDraft:
    """Mutable instruction under construction (see ``lowering``).

    Lowering mutates effect lists and durations in place (e.g. the
    optimizer join's duration is zeroed once chunked swapping is
    wired); :func:`freeze_draft` seals the result.
    """

    factory: type
    iid: int
    name: str
    stream: Hashable
    mode: str
    duration: float
    device: DeviceRef
    start_effects: List[Effect] = field(default_factory=list)
    done_effects: List[Effect] = field(default_factory=list)
    fields: Dict[str, object] = field(default_factory=dict)


def freeze_draft(draft: _InstructionDraft) -> Instruction:
    return draft.factory(
        iid=draft.iid,
        name=draft.name,
        stream=draft.stream,
        stream_mode=draft.mode,
        duration=draft.duration,
        device=draft.device,
        start_effects=tuple(draft.start_effects),
        done_effects=tuple(draft.done_effects),
        **draft.fields,
    )
