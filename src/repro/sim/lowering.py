"""Lower (job, plan, options) into a typed instruction program.

This is the planning half of the simulated MPress Runtime (Figure 5):
walk the instrumented data-flow program and emit, per device stream,
the typed instructions and memory effects of one training iteration
set.  The interpreter (:mod:`repro.sim.interpreter`) replays the
result; nothing here touches the event loop.

A :class:`Lowering` is bound to one ``(job, options)`` pair and caches
everything *plan-independent* — the data-flow program and the tensor
classification — so the planner's emulate-candidate-plans loop pays
for that graph walk exactly once and only re-runs the cheap per-plan
instruction emission (:meth:`Lowering.lower`).  The module-level
:func:`skeleton_build_count` counter makes that reuse testable.

Ordering is load-bearing throughout (see :mod:`repro.sim.ir`): the
emission order of instructions, dependency edges, effects, and stream
first-uses below matches the legacy monolithic executor exactly, which
is what keeps the golden chrome-trace digests byte-identical.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.plan import Action, MemorySavingPlan, empty_plan, validate_plan
from repro.errors import SimulationError
from repro.graph.dataflow import ComputeNode, Program, build_program
from repro.graph.tensor import TensorClass, TensorKind, tensor_classes_for
from repro.hardware.bandwidth import transfer_time
from repro.job import TrainingJob
from repro.pipeline.schedule import OpKind
from repro.sim.ir import (
    HOST,
    Alloc,
    Barrier,
    Compute,
    Drop,
    ExecOptions,
    InstructionProgram,
    NvmeRead,
    NvmeWrite,
    OptimStep,
    P2PRecv,
    P2PSend,
    Pin,
    Record,
    Recompute,
    SwapIn,
    SwapOut,
    Unpin,
    _InstructionDraft,
    freeze_draft,
)

# How many plan-independent skeletons were built process-wide; tests
# assert the planner loop bumps this once per (job, options), however
# many candidate plans it evaluates.
_SKELETON_BUILDS = 0


def skeleton_build_count() -> int:
    """Process-wide count of plan-independent lowering skeletons built."""
    return _SKELETON_BUILDS


class Lowering:
    """Caches the plan-independent skeleton; lowers plans on demand."""

    def __init__(self, job: TrainingJob, options: ExecOptions = ExecOptions()):
        global _SKELETON_BUILDS
        _SKELETON_BUILDS += 1
        self.job = job
        self.options = options
        self.program: Program = build_program(job.stage_plan, job.schedule)
        self.classes = tensor_classes_for(
            job.stage_plan, job.schedule, job.microbatch_size, job.bytes_per_element
        )
        # Activation classes per stage, in layer order.
        self.stage_acts: Dict[int, List[TensorClass]] = {}
        for cls in self.classes:
            if cls.kind is TensorKind.ACTIVATION:
                self.stage_acts.setdefault(cls.stage, []).append(cls)
        for acts in self.stage_acts.values():
            acts.sort(key=lambda c: c.layer)
        self.by_kind: Dict[Tuple[str, int], TensorClass] = {
            (cls.kind.value, cls.stage): cls
            for cls in self.classes
            if cls.kind in (TensorKind.OPTIMIZER_STATE, TensorKind.STASHED_PARAMS)
        }

    def lower(self, plan: Optional[MemorySavingPlan] = None) -> InstructionProgram:
        """Emit the instruction program of one candidate plan."""
        plan = plan if plan is not None else empty_plan(self.job.n_stages)
        if len(plan.device_map) != self.job.n_stages:
            raise SimulationError("plan device map does not cover all stages")
        validate_plan(plan, self.classes)
        return _PlanLowering(self, plan).build()


class _PlanLowering:
    """One plan's emission pass over the cached skeleton."""

    def __init__(self, skeleton: Lowering, plan: MemorySavingPlan):
        self.skel = skeleton
        self.job = skeleton.job
        self.options = skeleton.options
        self.plan = plan
        self.capacities = [
            self.options.gpu_capacity_override or gpu.memory_bytes
            for gpu in self.job.server.gpus
        ]
        self.drafts: List[_InstructionDraft] = []
        self.edges: List[Tuple[int, int]] = []
        self.static_effects: List[Alloc] = []
        self.stream_order: List[Tuple[Hashable, str]] = []
        self._seen_streams: set = set()
        # Static GPU residency per device, for the backpressure window
        # (the legacy executor read the live memory book here; the
        # books only hold static state at build time).
        self.static_in_use: Dict[int, int] = {}
        # (kind, stage, index) -> first/last per-layer instruction.
        self._node_first: Dict[tuple, int] = {}
        self._node_last: Dict[tuple, int] = {}
        # (stage, microbatch, layer) -> per-layer compute instruction.
        self._fwd_layer: Dict[tuple, int] = {}
        self._bwd_layer: Dict[tuple, int] = {}
        # Per-stage compute instructions in issue order (anchors).
        self._stage_order: Dict[int, List[int]] = {}

    # -- builder primitives ------------------------------------------------

    def _touch_stream(self, key: Hashable, mode: str) -> None:
        if key not in self._seen_streams:
            self._seen_streams.add(key)
            self.stream_order.append((key, mode))

    def _emit(
        self,
        factory: type,
        name: str,
        stream: Hashable,
        mode: str,
        duration: float,
        deps: Tuple[int, ...] = (),
        start: Tuple = (),
        done: Tuple = (),
        device=0,
        **fields,
    ) -> int:
        self._touch_stream(stream, mode)
        iid = len(self.drafts)
        self.drafts.append(
            _InstructionDraft(
                factory=factory,
                iid=iid,
                name=name,
                stream=stream,
                mode=mode,
                duration=duration,
                device=device,
                start_effects=list(start),
                done_effects=list(done),
                fields=dict(fields),
            )
        )
        for dep in deps:
            self.edges.append((iid, dep))
        return iid

    def _edge(self, consumer: int, producer: int) -> None:
        self.edges.append((consumer, producer))

    def build(self) -> InstructionProgram:
        self._lower_static()
        self._lower_compute()
        self._lower_comm()
        self._lower_activation_ops()
        self._lower_optimizer_ops()
        return InstructionProgram(
            job=self.job,
            plan=self.plan,
            options=self.options,
            instructions=tuple(freeze_draft(d) for d in self.drafts),
            edges=tuple(self.edges),
            static_effects=tuple(self.static_effects),
            stream_order=tuple(self.stream_order),
        )

    # -- static state ------------------------------------------------------

    def _device(self, stage: int) -> int:
        return self.plan.device_of(stage)

    def _static_alloc(self, device, size: int, tag: str) -> None:
        self.static_effects.append(Alloc(device=device, size=size, tag=tag))
        if device != HOST:
            self.static_in_use[device] = self.static_in_use.get(device, 0) + size

    def _lower_static(self) -> None:
        """Model state resident from t=0, per the plan."""
        for cls in self.skel.classes:
            device = self._device(cls.stage)
            action = self.plan.action_for(cls)
            if cls.kind is TensorKind.WORKING_STATE:
                self._static_alloc(device, cls.peak_bytes, str(cls.key))
            elif cls.kind is TensorKind.OPTIMIZER_STATE:
                if action is Action.NONE:
                    self._static_alloc(device, cls.peak_bytes, str(cls.key))
                elif action is Action.CPU_SWAP:
                    # NVMe-tier blobs live on storage, not in host RAM.
                    if self.plan.entry_for(cls).tier == "host":
                        self._static_alloc(HOST, cls.peak_bytes, str(cls.key))
                elif action is Action.D2D_SWAP:
                    stripe = self.plan.entry_for(cls).stripe
                    for importer in stripe.importers:
                        self._static_alloc(
                            importer, stripe.bytes_to(importer), str(cls.key)
                        )
            # Activations and stashed versions are allocated dynamically.

    # -- compute -----------------------------------------------------------

    def _lower_compute(self) -> None:
        """Per-layer forward/backward chains on per-device FIFO streams.

        Recomputation instructions are queued immediately before the
        backward of their layer on the same stream, so they contend
        for GPU compute exactly as real recomputation does (the
        paper's up-to-33% recompute delay, Section II-D).
        """
        job = self.job
        for stage_index, stage_nodes in enumerate(self.skel.program.per_stage):
            device = self._device(stage_index)
            stream = ("compute", device)
            self._touch_stream(stream, "fifo")
            order: List[int] = []
            self._stage_order[stage_index] = order
            layers = job.stage_plan.stage(stage_index).layers
            for node in stage_nodes:
                if node.kind is OpKind.OPTIMIZER:
                    iid = self._emit(
                        OptimStep,
                        name=node.name,
                        stream=stream,
                        mode="fifo",
                        duration=job.optimizer_time(node.stage, device),
                        done=(Record("opt", device, node.minibatch),),
                        device=device,
                        stage=node.stage,
                        minibatch=node.minibatch,
                    )
                    self._node_first[node.key] = iid
                    self._node_last[node.key] = iid
                    order.append(iid)
                    continue
                first, last = self._lower_layer_chain(node, layers, device, stream, order)
                self._node_first[node.key] = first
                self._node_last[node.key] = last
        # Cross-node dependencies (same-stage fwd->bwd data edges).
        for node in self.skel.program.nodes():
            for dep in node.deps:
                if dep.stage == node.stage:
                    self._edge(self._node_first[node.key], self._node_last[dep.key])

    def _lower_layer_chain(
        self,
        node: ComputeNode,
        layers,
        device: int,
        stream: Hashable,
        order: List[int],
    ) -> Tuple[int, int]:
        job = self.job
        mb = node.microbatch
        forward = node.kind is OpKind.FORWARD
        chain = layers if forward else list(reversed(layers))
        first: Optional[int] = None
        last: Optional[int] = None
        for layer in chain:
            flops = layer.forward_flops(job.microbatch_size)
            duration = (flops if forward else 2.0 * flops) / (
                job.server.gpu(device).peak_flops(job.precision) * job.mfu
            )
            if not forward:
                self._maybe_lower_recompute(node.stage, mb, layer, device, stream, order)
            iid = self._emit(
                Compute,
                name=f"{node.kind.value}.s{node.stage}.m{mb}.l{layer.index}",
                stream=stream,
                mode="fifo",
                duration=duration,
                done=(Record(node.kind.value, device, mb, layer.index),),
                device=device,
                stage=node.stage,
                microbatch=mb,
                layer=layer.index,
                op=node.kind.value,
            )
            order.append(iid)
            key = (node.stage, mb, layer.index)
            if forward:
                self._fwd_layer[key] = iid
            else:
                self._bwd_layer[key] = iid
            if first is None:
                first = iid
            last = iid
        return first, last

    def _maybe_lower_recompute(
        self, stage: int, mb: int, layer, device: int, stream: Hashable, order: List[int]
    ) -> None:
        cls = self._activation_class(stage, layer.index)
        if cls is None or self.plan.action_for(cls) is not Action.RECOMPUTE:
            return
        iid = self._emit(
            Recompute,
            name=f"recompute.s{stage}.m{mb}.l{layer.index}",
            stream=stream,
            mode="fifo",
            duration=self.job.layer_forward_time(layer, device),
            done=(Record("recompute", device, mb, layer.index),),
            device=device,
            stage=stage,
            microbatch=mb,
            layer=layer.index,
        )
        order.append(iid)
        self._fwd_layer[("recompute", stage, mb, layer.index)] = iid

    def _activation_class(self, stage: int, layer_index: int) -> Optional[TensorClass]:
        for cls in self.skel.stage_acts.get(stage, []):
            if cls.layer == layer_index:
                return cls
        return None

    # -- communication -----------------------------------------------------

    def _lower_link(
        self,
        name: str,
        size: int,
        src_dev: int,
        dst_dev: int,
        deps: Tuple[int, ...],
        kind: str,
        microbatch: int,
    ) -> int:
        """A point-to-point GPU transfer over one NVLink lane.

        Falls back to a staged PCIe route when the devices share no
        direct lane (possible on DGX-1 with a poor device mapping).
        """
        topology = self.job.server.topology
        done = (Record(kind, src_dev, microbatch),)
        if topology.lanes(src_dev, dst_dev) > 0:
            lane = topology.lane_channels(src_dev, dst_dev)[0]
            duration = transfer_time(size, topology.nvlink, lanes=1)
            return self._emit(
                P2PSend,
                name=name,
                stream=lane,
                mode="pool",
                duration=duration,
                deps=deps,
                done=done,
                device=src_dev,
                src=src_dev,
                dst=dst_dev,
            )
        # Staged copy through host memory: D2H then H2D, serialized.
        duration = 2.0 * transfer_time(size, self.job.server.pcie, lanes=1)
        return self._emit(
            P2PSend,
            name=name,
            stream=("pcie_d2h", src_dev),
            mode="pool",
            duration=duration,
            deps=deps,
            done=done,
            device=src_dev,
            src=src_dev,
            dst=dst_dev,
        )

    def _lower_comm(self) -> None:
        """Activation/gradient transfers between adjacent stages."""
        job = self.job
        bpe = job.bytes_per_element
        for node in self.skel.program.nodes():
            for dep in node.deps:
                if dep.stage == node.stage:
                    continue
                size = job.stage_plan.stage(min(dep.stage, node.stage)).boundary_bytes(
                    job.microbatch_size, bpe
                )
                comm = self._lower_link(
                    name=f"comm.{dep.name}->{node.name}",
                    size=size,
                    src_dev=self._device(dep.stage),
                    dst_dev=self._device(node.stage),
                    deps=(self._node_last[dep.key],),
                    kind="comm",
                    microbatch=node.microbatch,
                )
                self._edge(self._node_first[node.key], comm)

    # -- activation memory ops ---------------------------------------------

    def _lower_activation_ops(self) -> None:
        """Per (stage, layer, microbatch) tensor lifecycles.

        Swapped tensors form one eviction sequence per stage in
        generation order (microbatch-major, layer-minor); a new
        swapped tensor may only materialize once the tensor ``W``
        generations earlier has been evicted.  ``W`` is derived from
        the memory left over after resident state — this is the
        allocator's memory-pressure throttling, and it is what slows
        a PCIe-bound GPU-CPU-swap job down to the link rate (the
        paper's 67% swap-only throughput loss, Section II-D).
        """
        for stage in range(self.job.n_stages):
            device = self._device(stage)
            window = self._backpressure_window(stage, device)
            history: List[int] = []
            for node in self.skel.program.per_stage[stage]:
                if node.kind is not OpKind.FORWARD:
                    continue
                mb = node.microbatch
                mb_start = len(history)
                for cls in self.skel.stage_acts.get(stage, []):
                    fwd = self._fwd_layer[(stage, mb, cls.layer)]
                    bwd = self._bwd_layer[(stage, mb, cls.layer)]
                    if window is not None and len(history) >= window:
                        self._edge(fwd, history[len(history) - window])
                    join = self._wire_activation(cls, device, mb, fwd, bwd)
                    if join is not None:
                        history.append(join)
                stash_join = self._wire_stash(stage, mb, device, window, history, mb_start)
                if stash_join is not None:
                    history.append(stash_join)

    def _backpressure_window(self, stage: int, device: int) -> Optional[int]:
        """Un-evicted swapped layer-tensors the allocator tolerates.

        The window is the number of concurrently-resident swapped
        tensors fitting in half the memory left after static state,
        resident activations, and recompute checkpoints (the other
        half covers swap-in prefetches and transients).  ``None``
        means no swapped tensors, hence no throttling.
        """
        swapped_sizes: List[int] = []
        # Static state is exactly what the legacy executor saw in the
        # live memory book at build time.
        resident = self.static_in_use.get(device, 0)
        for cls in self.skel.stage_acts.get(stage, []):
            action = self.plan.action_for(cls)
            if action in (Action.CPU_SWAP, Action.D2D_SWAP):
                swapped_sizes.append(cls.size)
            elif action is Action.NONE:
                resident += cls.size * cls.instances
            elif action is Action.RECOMPUTE:
                boundary = self.job.model.layers[cls.layer].boundary_bytes(
                    self.job.microbatch_size, self.job.bytes_per_element
                )
                resident += boundary * cls.instances + cls.size
        stash = self.skel.by_kind.get((TensorKind.STASHED_PARAMS.value, stage))
        if stash is not None and stash.instances > 0:
            if self.plan.action_for(stash) in (Action.CPU_SWAP, Action.D2D_SWAP):
                swapped_sizes.append(stash.size)
            else:
                resident += stash.size * stash.instances
        if not swapped_sizes:
            return None
        average = sum(swapped_sizes) / len(swapped_sizes)
        budget = max(0, self.capacities[device] - resident)
        window = int(0.5 * budget / average)
        ceiling = self.options.swap_backpressure * max(1, len(swapped_sizes))
        return max(1, min(ceiling, window))

    def _wire_activation(
        self, cls: TensorClass, device: int, mb: int, fwd: int, bwd: int
    ) -> Optional[int]:
        """Wire one layer-tensor's lifecycle; returns its swap-out join."""
        action = self.plan.action_for(cls)
        tag = f"act.s{cls.stage}.l{cls.layer}.m{mb}"
        size = cls.size
        if action is Action.NONE:
            self.drafts[fwd].start_effects.append(Alloc(device, size, tag))
            self.drafts[bwd].done_effects.append(Drop(device, size, tag))
            return None
        if action is Action.RECOMPUTE:
            self._wire_recompute(cls, device, mb, fwd, bwd, tag)
            return None
        self.drafts[fwd].start_effects.append(Alloc(device, size, tag))
        self.drafts[bwd].done_effects.append(Drop(device, size, tag))
        anchor = self._anchor_before(cls.stage, bwd)
        entry = self.plan.entry_for(cls)
        if action is Action.CPU_SWAP:
            return self._wire_cpu_swap(
                tag, size, device, mb, fwd, bwd, anchor, tier=entry.tier
            )
        # Partial D2D: only the striped portion leaves the device.
        stripe = entry.stripe
        return self._wire_d2d_swap(
            tag, stripe.tensor_bytes, stripe, device, mb, fwd, bwd, anchor
        )

    def _anchor_before(self, stage: int, consumer: int) -> Optional[int]:
        """Compute instruction ``prefetch_lead`` positions before ``consumer``."""
        order = self._stage_order[stage]
        try:
            position = order.index(consumer)
        except ValueError:
            return None
        anchor_pos = position - self.options.prefetch_lead
        if anchor_pos < 0:
            return None
        return order[anchor_pos]

    def _wire_recompute(
        self, cls: TensorClass, device: int, mb: int, fwd: int, bwd: int, tag: str
    ) -> None:
        """Per-layer checkpointing: drop internals, keep the boundary.

        The layer's internal activations exist during its forward
        pass, are dropped afterwards (only the boundary checkpoint
        stays), and are re-materialized by the recompute instruction
        queued just before the layer's backward pass.
        """
        boundary = self.job.model.layers[cls.layer].boundary_bytes(
            self.job.microbatch_size, self.job.bytes_per_element
        )
        internals = max(0, cls.size - boundary)
        self.drafts[fwd].start_effects.append(Alloc(device, cls.size, tag))
        self.drafts[fwd].done_effects.append(Drop(device, internals, tag))
        recompute = self._fwd_layer[("recompute", cls.stage, mb, cls.layer)]
        self.drafts[recompute].start_effects.append(Alloc(device, internals, tag))
        self.drafts[bwd].done_effects.append(Drop(device, cls.size, tag))

    def _wire_cpu_swap(
        self,
        tag: str,
        size: int,
        device: int,
        mb: int,
        out_after: int,
        in_before: int,
        anchor: Optional[int],
        tier: str = "host",
    ) -> int:
        """GPU<->CPU swap over PCIe, optionally spilling to NVMe.

        With ``tier == "nvme"`` the tensor only stages through pinned
        host memory and continues to NVMe (ZeRO-Infinity style), so
        host residency stays bounded at the cost of the extra,
        slower NVMe legs.
        """
        duration = transfer_time(size, self.job.server.pcie, lanes=1)
        out = self._emit(
            SwapOut,
            name=f"swapout.{tag}",
            stream=("pcie_d2h", device),
            mode="pool",
            duration=duration,
            deps=(out_after,),
            start=(Alloc(HOST, size, tag), Pin(size)),
            done=(
                Drop(device, size, tag),
                Unpin(size),
                Record("swap_out", device, mb),
            ),
            device=device,
            tag=tag,
            size=size,
            tier=tier,
        )
        eviction_gate = out
        if tier == "nvme":
            nvme = self.job.server.nvme
            spill = self._emit(
                NvmeWrite,
                name=f"nvmewrite.{tag}",
                stream=("nvme", "write"),
                mode="pool",
                duration=size / nvme.write_bandwidth,
                deps=(out,),
                done=(Drop(HOST, size, tag),),
                device=device,
                tag=tag,
                size=size,
            )
            # Host staging is only reclaimed once NVMe absorbed the
            # tensor; gate the eviction sequence on that, so a slow
            # NVMe throttles producers instead of flooding the host.
            eviction_gate = spill
            fetch_deps = (spill,) if anchor is None else (spill, anchor)
            fetch = self._emit(
                NvmeRead,
                name=f"nvmeread.{tag}",
                stream=("nvme", "read"),
                mode="pool",
                duration=size / nvme.read_bandwidth,
                deps=fetch_deps,
                start=(Alloc(HOST, size, tag),),
                device=device,
                tag=tag,
                size=size,
            )
            in_deps = (fetch,)
        else:
            in_deps = (out,) if anchor is None else (out, anchor)

        swap_in = self._emit(
            SwapIn,
            name=f"swapin.{tag}",
            stream=("pcie_h2d", device),
            mode="pool",
            duration=duration,
            deps=in_deps,
            start=(Alloc(device, size, tag), Pin(size)),
            done=(
                Drop(HOST, size, tag),
                Unpin(size),
                Record("swap_in", device, mb),
            ),
            device=device,
            tag=tag,
            size=size,
            tier=tier,
        )
        self._edge(in_before, swap_in)
        return eviction_gate

    def _wire_d2d_swap(
        self,
        tag: str,
        size: int,
        stripe,
        device: int,
        mb: int,
        out_after: int,
        in_before: int,
        anchor: Optional[int],
    ) -> int:
        """Striped device-to-device swap over NVLink lanes (Sec. III-C)."""
        nvlink = self.job.server.topology.nvlink
        out_blocks: List[int] = []
        for index, block in enumerate(stripe.blocks):
            out_blocks.append(
                self._emit(
                    P2PSend,
                    name=f"d2dout.{tag}.b{index}",
                    stream=block.lane,
                    mode="pool",
                    duration=transfer_time(block.size, nvlink, lanes=1),
                    deps=(out_after,),
                    start=(Alloc(block.importer, block.size, tag),),
                    device=device,
                    src=device,
                    dst=block.importer,
                )
            )
        out_join = self._emit(
            Barrier,
            name=f"d2dout.{tag}.join",
            stream=("d2d", device),
            mode="pool",
            duration=0.0,
            deps=tuple(out_blocks),
            done=(Drop(device, size, tag), Record("swap_out", device, mb)),
            device=device,
        )

        in_begin_deps = (out_join,) if anchor is None else (out_join, anchor)
        in_begin = self._emit(
            Barrier,
            name=f"d2din.{tag}.begin",
            stream=("d2d", device),
            mode="pool",
            duration=0.0,
            deps=in_begin_deps,
            done=(Alloc(device, size, tag),),
            device=device,
        )
        in_blocks: List[int] = []
        for index, block in enumerate(stripe.blocks):
            in_blocks.append(
                self._emit(
                    P2PRecv,
                    name=f"d2din.{tag}.b{index}",
                    stream=block.return_lane,
                    mode="pool",
                    duration=transfer_time(block.size, nvlink, lanes=1),
                    deps=(in_begin,),
                    done=(Drop(block.importer, block.size, tag),),
                    device=device,
                    src=block.importer,
                    dst=device,
                )
            )
        in_join = self._emit(
            Barrier,
            name=f"d2din.{tag}.join",
            stream=("d2d", device),
            mode="pool",
            duration=0.0,
            deps=tuple(in_blocks),
            done=(Record("swap_in", device, mb),),
            device=device,
        )
        self._edge(in_before, in_join)
        return out_join

    # -- stashed weight versions (PipeDream) -------------------------------

    def _wire_stash(
        self,
        stage: int,
        mb: int,
        device: int,
        window: Optional[int],
        history: List[int],
        mb_start: int,
    ) -> Optional[int]:
        """One stashed weight version's lifecycle; returns its out join.

        The version materializes when the microbatch's forward
        finishes and retires after its backward.  Swapped versions
        participate in the stage's eviction sequence, so a saturated
        link throttles weight stashing like any other generation.
        """
        cls = self.skel.by_kind.get((TensorKind.STASHED_PARAMS.value, stage))
        if cls is None or cls.instances == 0:
            return None
        action = self.plan.action_for(cls)
        fwd_last = self._node_last[(OpKind.FORWARD.value, stage, mb)]
        bwd_key = (OpKind.BACKWARD.value, stage, mb)
        bwd_first = self._node_first[bwd_key]
        bwd_last = self._node_last[bwd_key]
        tag = f"stash.s{stage}.m{mb}"
        self.drafts[fwd_last].done_effects.append(Alloc(device, cls.size, tag))
        self.drafts[bwd_last].done_effects.append(Drop(device, cls.size, tag))
        if action is Action.NONE:
            return None
        if window is not None and len(history) >= window:
            # The stash version materializes at the end of this
            # microbatch's forward, whose layer instructions already
            # gate on this microbatch's own joins — gating on one of
            # those here would be a self-cycle.  Use strictly older
            # generations only.
            index = min(len(history) - window, mb_start - 1)
            if index >= 0:
                self._edge(fwd_last, history[index])
        anchor = self._anchor_before(stage, bwd_first)
        entry = self.plan.entry_for(cls)
        if action is Action.CPU_SWAP:
            return self._wire_cpu_swap(
                tag, cls.size, device, mb, fwd_last, bwd_first, anchor,
                tier=entry.tier,
            )
        stripe = entry.stripe
        return self._wire_d2d_swap(
            tag, cls.size, stripe, device, mb, fwd_last, bwd_first, anchor
        )

    # -- optimizer state swapping ------------------------------------------

    def _lower_optimizer_ops(self) -> None:
        for stage in range(self.job.n_stages):
            cls = self.skel.by_kind.get((TensorKind.OPTIMIZER_STATE.value, stage))
            if cls is None:
                continue
            action = self.plan.action_for(cls)
            if action is Action.NONE:
                continue
            device = self._device(stage)
            first_bwd_of = self.skel.program.first_backward_by_minibatch(stage)
            previous_outs: Optional[List[int]] = None
            for node in self.skel.program.per_stage[stage]:
                if node.kind is not OpKind.OPTIMIZER:
                    continue
                opt_iid = self._node_first[node.key]
                anchor_node = first_bwd_of.get(node.minibatch)
                anchor = (
                    self._node_first[anchor_node.key] if anchor_node is not None else None
                )
                tag = f"opt.s{stage}.k{node.minibatch}"
                previous_outs = self._wire_opt_swap(
                    cls, action, tag, device, node.minibatch, opt_iid, anchor,
                    previous_outs,
                )

    def _opt_chunks(self, size: int, capacity: int) -> List[int]:
        """Chunk sizes for streaming optimizer state.

        Chunks never exceed 1/16 of device capacity, so a couple of
        in-flight chunks stay a small fraction of the device.
        """
        chunk = max(1, min(self.options.opt_swap_chunk, capacity // 16))
        sizes = []
        remaining = size
        while remaining > 0:
            take = min(chunk, remaining)
            sizes.append(take)
            remaining -= take
        return sizes

    def _wire_opt_swap(
        self,
        cls,
        action: Action,
        tag: str,
        device: int,
        minibatch: int,
        opt_iid: int,
        anchor: Optional[int],
        previous_outs: Optional[List[int]],
    ) -> List[int]:
        """Chunked optimizer-state swap around one optimizer step.

        The blob streams in chunk by chunk; each chunk is updated on
        a dedicated per-device optimizer stream and streamed back out
        immediately, so GPU residency stays at a couple of chunks —
        a whole billion-scale optimizer blob next to the working set
        would never fit.  The original optimizer instruction becomes
        a zero-cost join gating the next minibatch.
        """
        chunks = self._opt_chunks(cls.size, self.capacities[device])
        total = float(cls.size)
        step_time = self.drafts[opt_iid].duration
        self.drafts[opt_iid].duration = 0.0
        update_stream = ("optstep", device)
        self._touch_stream(update_stream, "fifo")
        outs: List[int] = []
        last_update: Optional[int] = None
        for index, chunk in enumerate(chunks):
            chunk_tag = f"{tag}.c{index}"
            in_deps: List[int] = []
            if previous_outs is not None:
                in_deps.append(previous_outs[index])
            if anchor is not None:
                in_deps.append(anchor)
            swap_in = self._opt_chunk_in(
                cls, action, chunk_tag, device, chunk, tuple(in_deps)
            )
            update = self._emit(
                OptimStep,
                name=f"optstep.{chunk_tag}",
                stream=update_stream,
                mode="fifo",
                duration=step_time * (chunk / total),
                deps=(swap_in,),
                device=device,
                stage=cls.stage,
                minibatch=minibatch,
            )
            out = self._opt_chunk_out(cls, action, chunk_tag, device, chunk, (update,))
            outs.append(out)
            last_update = update
        if last_update is not None:
            self._edge(opt_iid, last_update)
        return outs

    def _opt_chunk_in(
        self, cls, action: Action, tag: str, device: int, chunk: int, deps: Tuple[int, ...]
    ) -> int:
        if action is Action.CPU_SWAP:
            entry = self.plan.entry_for(cls)
            if entry.tier == "nvme":
                nvme = self.job.server.nvme
                fetch = self._emit(
                    NvmeRead,
                    name=f"nvmeread.{tag}",
                    stream=("nvme", "read"),
                    mode="pool",
                    duration=chunk / nvme.read_bandwidth,
                    deps=deps,
                    device=device,
                    tag=tag,
                    size=chunk,
                )
                deps = (fetch,)
            return self._emit(
                SwapIn,
                name=f"swapin.{tag}",
                stream=("pcie_h2d", device),
                mode="pool",
                duration=transfer_time(chunk, self.job.server.pcie, lanes=1),
                deps=deps,
                start=(Alloc(device, chunk, tag),),
                done=(Record("swap_in", device, -1),),
                device=device,
                tag=tag,
                size=chunk,
                tier=entry.tier,
            )
        # D2D: pull the chunk's share of every stripe block back.
        stripe = self.plan.entry_for(cls).stripe
        nvlink = self.job.server.topology.nvlink
        begin = self._emit(
            Barrier,
            name=f"d2din.{tag}.begin",
            stream=("d2d", device),
            mode="pool",
            duration=0.0,
            deps=deps,
            done=(Alloc(device, chunk, tag),),
            device=device,
        )
        blocks: List[int] = []
        fraction = chunk / float(cls.size)
        for b_index, block in enumerate(stripe.blocks):
            share = max(1, int(block.size * fraction))
            blocks.append(
                self._emit(
                    P2PRecv,
                    name=f"d2din.{tag}.b{b_index}",
                    stream=block.return_lane,
                    mode="pool",
                    duration=transfer_time(share, nvlink, lanes=1),
                    deps=(begin,),
                    device=device,
                    src=block.importer,
                    dst=device,
                )
            )
        return self._emit(
            Barrier,
            name=f"d2din.{tag}.join",
            stream=("d2d", device),
            mode="pool",
            duration=0.0,
            deps=tuple(blocks),
            done=(Record("swap_in", device, -1),),
            device=device,
        )

    def _opt_chunk_out(
        self, cls, action: Action, tag: str, device: int, chunk: int, deps: Tuple[int, ...]
    ) -> int:
        if action is Action.CPU_SWAP:
            entry = self.plan.entry_for(cls)
            out = self._emit(
                SwapOut,
                name=f"swapout.{tag}",
                stream=("pcie_d2h", device),
                mode="pool",
                duration=transfer_time(chunk, self.job.server.pcie, lanes=1),
                deps=deps,
                done=(Drop(device, chunk, tag), Record("swap_out", device, -1)),
                device=device,
                tag=tag,
                size=chunk,
                tier=entry.tier,
            )
            if entry.tier == "nvme":
                nvme = self.job.server.nvme
                return self._emit(
                    NvmeWrite,
                    name=f"nvmewrite.{tag}",
                    stream=("nvme", "write"),
                    mode="pool",
                    duration=chunk / nvme.write_bandwidth,
                    deps=(out,),
                    device=device,
                    tag=tag,
                    size=chunk,
                )
            return out
        stripe = self.plan.entry_for(cls).stripe
        nvlink = self.job.server.topology.nvlink
        blocks: List[int] = []
        fraction = chunk / float(cls.size)
        for b_index, block in enumerate(stripe.blocks):
            share = max(1, int(block.size * fraction))
            blocks.append(
                self._emit(
                    P2PSend,
                    name=f"d2dout.{tag}.b{b_index}",
                    stream=block.lane,
                    mode="pool",
                    duration=transfer_time(share, nvlink, lanes=1),
                    deps=deps,
                    device=device,
                    src=device,
                    dst=block.importer,
                )
            )
        return self._emit(
            Barrier,
            name=f"d2dout.{tag}.join",
            stream=("d2d", device),
            mode="pool",
            duration=0.0,
            deps=tuple(blocks),
            done=(Drop(device, chunk, tag), Record("swap_out", device, -1)),
            device=device,
        )
