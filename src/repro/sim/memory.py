"""Per-device memory accounting over simulated time.

:class:`DeviceMemory` tracks one device's usage as tasks allocate and
free tensors; :class:`MemoryModel` groups all GPUs plus the host.
Two modes cover the library's two consumers:

* ``strict=True`` — exceeding capacity raises
  :class:`~repro.errors.OutOfMemoryError`, mirroring the red crossed
  OOM marks in Figures 7/8;
* ``strict=False`` — overflow is recorded (peak > capacity) so the
  planner's emulator (Section III-B, step 5) can measure *how much*
  memory a tentative plan still needs.

:class:`PinnedPool` models the host pinned-memory pool the paper
builds outside the PyTorch runtime (Section III-E) — allocation from
the pool is free after a one-time reservation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import OutOfMemoryError, SimulationError

# Fraction of a transformer layer's *linear* activation bytes that a
# Megatron-style TP split leaves replicated on every rank: of the 34
# bytes per token-position in the Korthikanti accounting, the two
# layernorm inputs (4), the two block inputs (4) and the two dropout
# masks (2) sit outside the sharded matmul chains — 10 of 34.
TP_REPLICATED_LINEAR_FRACTION = 10.0 / 34.0


def tensor_parallel_activation_scale(tp: int, sequence_parallel: bool = False) -> float:
    """Scale on a layer's linear activation bytes under a TP split.

    Plain tensor parallelism shards the projection/MLP activations
    ``tp``-ways but keeps the layernorm/dropout/residual tensors
    replicated, so the linear footprint scales by
    ``rho + (1 - rho) / tp`` with ``rho`` the replicated fraction.
    Sequence parallelism (Korthikanti et al.) shards those replicated
    tensors along the sequence axis too, restoring a clean ``1/tp``.
    Attention matrices split over heads and always scale ``1/tp``.
    """
    if tp < 1:
        raise SimulationError(f"tensor-parallel degree must be >= 1, got {tp}")
    if tp == 1:
        return 1.0
    if sequence_parallel:
        return 1.0 / tp
    rho = TP_REPLICATED_LINEAR_FRACTION
    return rho + (1.0 - rho) / tp


@dataclass
class DeviceMemory:
    """Memory tracker for one device (GPU index or ``"host"``)."""

    name: str
    capacity: int
    strict: bool = False
    in_use: int = 0
    peak: int = 0
    timeline: List[Tuple[float, int]] = field(default_factory=list)
    events: List[Tuple[float, int, str]] = field(default_factory=list)
    _tags: Dict[str, int] = field(default_factory=dict)

    def alloc(self, size: int, time: float, tag: str = "anon") -> None:
        if size < 0:
            raise SimulationError(f"{self.name}: negative allocation {size}")
        if self.strict and self.in_use + size > self.capacity:
            raise OutOfMemoryError(self.name, size, self.in_use, self.capacity)
        self.in_use += size
        self._tags[tag] = self._tags.get(tag, 0) + size
        if self.in_use > self.peak:
            self.peak = self.in_use
        self.timeline.append((time, self.in_use))
        self.events.append((time, size, tag))

    def free(self, size: int, time: float, tag: str = "anon") -> None:
        if size < 0:
            raise SimulationError(f"{self.name}: negative free {size}")
        held = self._tags.get(tag, 0)
        if held < size:
            raise SimulationError(
                f"{self.name}: freeing {size} bytes of tag {tag!r} but only {held} held"
            )
        self.in_use -= size
        self._tags[tag] = held - size
        self.timeline.append((time, self.in_use))
        self.events.append((time, -size, tag))

    def composition_at(self, moment: float) -> Dict[str, int]:
        """Bytes held per tag at ``moment`` (replayed from events)."""
        held: Dict[str, int] = {}
        for time, delta, tag in self.events:
            if time > moment:
                break
            held[tag] = held.get(tag, 0) + delta
        return {tag: size for tag, size in held.items() if size > 0}

    @property
    def overflow(self) -> int:
        """Bytes by which peak usage exceeded capacity (0 if it fits)."""
        return max(0, self.peak - self.capacity)

    @property
    def headroom(self) -> int:
        """Bytes of capacity never used at peak (0 if overflowing)."""
        return max(0, self.capacity - self.peak)

    def usage_by_tag(self) -> Dict[str, int]:
        return {tag: size for tag, size in self._tags.items() if size > 0}


class MemoryModel:
    """All device memories of one simulated server."""

    def __init__(self, gpu_capacities: List[int], host_capacity: int, strict: bool = False):
        self.gpus = [
            DeviceMemory(name=f"gpu{i}", capacity=cap, strict=strict)
            for i, cap in enumerate(gpu_capacities)
        ]
        self.host = DeviceMemory(name="host", capacity=host_capacity, strict=strict)
        self.strict = strict

    def gpu(self, index: int) -> DeviceMemory:
        if not 0 <= index < len(self.gpus):
            raise SimulationError(f"GPU index {index} out of range")
        return self.gpus[index]

    def peaks(self) -> List[int]:
        return [gpu.peak for gpu in self.gpus]

    def total_peak(self) -> int:
        return sum(self.peaks())

    def any_overflow(self) -> bool:
        return any(gpu.overflow > 0 for gpu in self.gpus) or self.host.overflow > 0

    def overflowed_gpus(self) -> List[int]:
        return [i for i, gpu in enumerate(self.gpus) if gpu.overflow > 0]

    def imbalance_ratio(self) -> float:
        """Most-used over least-used per-GPU peak (the paper's 7.9x)."""
        peaks = self.peaks()
        least = min(peaks)
        if least <= 0:
            return float("inf") if max(peaks) > 0 else 1.0
        return max(peaks) / least


@dataclass
class PinnedPool:
    """Host pinned-memory pool for swap staging buffers.

    Reserved once at bootstrap; ``take``/``give`` track outstanding
    staging space and fail when the reservation is exhausted, which
    would stall real swapping too.
    """

    capacity: int
    in_use: int = 0
    peak: int = 0

    def take(self, size: int) -> None:
        if size < 0:
            raise SimulationError("pinned pool: negative take")
        if self.in_use + size > self.capacity:
            raise OutOfMemoryError("pinned-pool", size, self.in_use, self.capacity)
        self.in_use += size
        self.peak = max(self.peak, self.in_use)

    def give(self, size: int) -> None:
        if size < 0 or size > self.in_use:
            raise SimulationError("pinned pool: invalid give")
        self.in_use -= size
