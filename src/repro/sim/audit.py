"""Simulation audits: post-run sweeps and a live event-bus auditor.

A completed :class:`~repro.sim.interpreter.SimulationResult` carries
the full event trace and memory books; these audits verify the
invariants any correct execution must satisfy — causality between
matching forward/backward passes, swap pairing, non-overlapping
compute per device, and memory conservation.  They run in tests and
are available to users debugging custom plans.

Faulted runs (a :class:`~repro.faults.report.ResilienceReport` on the
result) get two additional invariants: no compute may start inside a
device-failure outage window, and each recovery's reload bytes must
match the state actually resident on the failed device at the instant
it died.  :class:`FaultWindowAuditor` checks the outage invariant
*live* by subscribing to the interpreter's event bus instead of
scanning the finished trace.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.graph.tensor import TensorKind, tensor_classes_for
from repro.hardware.bandwidth import transfer_time
from repro.sim.events import DeviceFailed, EventBus, InstructionStarted
from repro.sim.interpreter import SimulationResult
from repro.sim.ir import Compute, OptimStep, Recompute


@dataclass
class AuditReport:
    """Violations found by :func:`audit_simulation` (empty = clean)."""

    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def extend(self, issues) -> None:
        self.violations.extend(issues)


def audit_simulation(result: SimulationResult) -> AuditReport:
    """Run every audit against a finished simulation."""
    report = AuditReport()
    if not result.ok:
        report.extend(["simulation did not complete (OOM)"])
        return report
    report.extend(_audit_compute_pairing(result))
    report.extend(_audit_causality(result))
    report.extend(_audit_no_compute_overlap(result))
    report.extend(_audit_swap_pairing(result))
    report.extend(_audit_memory_books(result))
    if result.resilience is not None:
        report.extend(_audit_outage_windows(result))
        report.extend(_audit_recovery_reload(result))
    return report


class FaultWindowAuditor:
    """Live outage-window auditor for the interpreter's event bus.

    Subscribes to :class:`~repro.sim.events.DeviceFailed` and
    :class:`~repro.sim.events.InstructionStarted` and flags any
    compute-class instruction (forward/backward/recompute/optimizer)
    that begins inside a failure's synchronous-recovery window — the
    same invariant :func:`_audit_outage_windows` checks post-hoc,
    verified as the simulation unfolds.

    Usage::

        auditor = FaultWindowAuditor()
        Interpreter(program, subscribers=(auditor,)).run()
        assert auditor.ok
    """

    def __init__(self) -> None:
        self.violations: List[str] = []
        self._outages: List[Tuple[int, float, float]] = []

    @property
    def ok(self) -> bool:
        return not self.violations

    def attach(self, bus: EventBus) -> None:
        bus.subscribe(DeviceFailed, self.on_device_failed)
        bus.subscribe(InstructionStarted, self.on_instruction_started)

    def on_device_failed(self, event: DeviceFailed) -> None:
        self._outages.append((event.device, event.time, event.resume_time))

    def on_instruction_started(self, event: InstructionStarted) -> None:
        instr = event.instruction
        if not isinstance(instr, (Compute, Recompute, OptimStep)):
            return
        for device, start, resume in self._outages:
            if start - 1e-12 < event.time < resume - 1e-9:
                self.violations.append(
                    f"{instr.name} starts at {event.time:.6f} inside the "
                    f"gpu{device} outage [{start:.6f}, {resume:.6f})"
                )


def _compute_events(result: SimulationResult, kind: str):
    return [e for e in result.trace.events if e.kind == kind]


def _audit_compute_pairing(result: SimulationResult) -> List[str]:
    """Every (device, layer, microbatch) forward has one backward."""
    issues = []
    fwd = {(e.device, e.layer, e.microbatch) for e in _compute_events(result, "fwd")}
    bwd = {(e.device, e.layer, e.microbatch) for e in _compute_events(result, "bwd")}
    for key in fwd ^ bwd:
        issues.append(f"unpaired compute for (device, layer, microbatch) {key}")
    return issues


def _audit_causality(result: SimulationResult) -> List[str]:
    """A backward pass never starts before its forward pass ended."""
    issues = []
    fwd_end: Dict[Tuple[int, int, int], float] = {}
    for event in _compute_events(result, "fwd"):
        fwd_end[(event.device, event.layer, event.microbatch)] = event.end
    for event in _compute_events(result, "bwd"):
        key = (event.device, event.layer, event.microbatch)
        if key in fwd_end and event.start < fwd_end[key] - 1e-12:
            issues.append(f"backward before forward for {key}")
    return issues


def _audit_no_compute_overlap(result: SimulationResult) -> List[str]:
    """Compute events on one device never overlap (one compute stream)."""
    issues = []
    by_device: Dict[int, List[Tuple[float, float, str]]] = defaultdict(list)
    for event in result.trace.events:
        if event.kind in ("fwd", "bwd", "opt", "recompute"):
            by_device[event.device].append((event.start, event.end, event.name))
    for device, windows in by_device.items():
        windows.sort()
        for (s1, e1, n1), (s2, _e2, n2) in zip(windows, windows[1:]):
            if s2 < e1 - 1e-9:
                issues.append(
                    f"device {device}: compute overlap between {n1} and {n2}"
                )
    return issues


def _audit_swap_pairing(result: SimulationResult) -> List[str]:
    """Swap-outs and swap-ins balance per device."""
    issues = []
    outs: Dict[int, int] = defaultdict(int)
    ins: Dict[int, int] = defaultdict(int)
    for event in result.trace.events:
        if event.kind == "swap_out":
            outs[event.device] += 1
        elif event.kind == "swap_in":
            ins[event.device] += 1
    for device in set(outs) | set(ins):
        if outs[device] != ins[device]:
            issues.append(
                f"device {device}: {outs[device]} swap-outs vs {ins[device]} swap-ins"
            )
    return issues


def _audit_outage_windows(result: SimulationResult) -> List[str]:
    """No compute starts inside a device-failure outage window.

    A failure stalls the whole pipeline (synchronous checkpoint
    restore), so between the failure instant and the recorded resume
    time no task on *any* device may begin — the dead device most of
    all.
    """
    issues = []
    for failure in result.resilience.failures:
        for event in result.trace.events:
            if event.kind not in ("fwd", "bwd", "opt", "recompute"):
                continue
            if failure.time - 1e-12 < event.start < failure.resume_time - 1e-9:
                issues.append(
                    f"{event.name} starts at {event.start:.6f} inside the "
                    f"gpu{failure.device} outage "
                    f"[{failure.time:.6f}, {failure.resume_time:.6f})"
                )
    return issues


def _audit_recovery_reload(result: SimulationResult) -> List[str]:
    """Recovery reload matches the state resident when the device died."""
    issues = []
    for failure in result.resilience.failures:
        book = result.memory.gpu(failure.device)
        resident = sum(book.composition_at(failure.time).values())
        if failure.reload_bytes != resident:
            issues.append(
                f"gpu{failure.device} recovery reloads {failure.reload_bytes} "
                f"bytes but {resident} were resident at failure time "
                f"{failure.time:.6f}"
            )
        expected = transfer_time(
            failure.reload_bytes, result.job.server.pcie, lanes=1
        )
        if abs(failure.reload_seconds - expected) > 1e-9:
            issues.append(
                f"gpu{failure.device} reload time {failure.reload_seconds:.9f}s "
                f"does not match PCIe transfer model ({expected:.9f}s)"
            )
    return issues


def _audit_memory_books(result: SimulationResult) -> List[str]:
    """At the end only static model state remains resident."""
    issues = []
    job = result.job
    classes = tensor_classes_for(
        job.stage_plan, job.schedule, job.microbatch_size, job.bytes_per_element
    )
    expected: Dict[int, int] = defaultdict(int)
    for cls in classes:
        device = result.plan.device_of(cls.stage)
        action = result.plan.action_for(cls)
        if cls.kind is TensorKind.WORKING_STATE:
            expected[device] += cls.peak_bytes
        elif cls.kind is TensorKind.OPTIMIZER_STATE:
            if action.value == "none":
                expected[device] += cls.peak_bytes
            elif action.value == "d2d-swap":
                stripe = result.plan.entry_for(cls).stripe
                for importer in stripe.importers:
                    expected[importer] += stripe.bytes_to(importer)
    for device in range(job.server.n_gpus):
        actual = result.memory.gpu(device).in_use
        if actual != expected[device]:
            issues.append(
                f"device {device}: {actual} bytes resident at end, "
                f"expected {expected[device]} (leak or double-free)"
            )
    return issues
