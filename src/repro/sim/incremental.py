"""Incremental re-simulation across planner candidates.

The planner's refinement loop lowers one :class:`~repro.sim.lowering.Lowering`
into a *sequence* of programs that differ only where the candidate
plan changed a tensor class's action.  :func:`diff_programs` compares
two such programs by instruction name and computes a conservative
**divergence horizon** ``safe_time``: a simulated instant strictly
before which the two runs are provably event-for-event identical.
:class:`IncrementalSimulator` then replays only the suffix — it
restores the newest :class:`~repro.sim.fastpath.EngineSnapshot` taken
before ``safe_time`` and lets the event loop run to completion on the
new program's tapes.  A diff with no divergence at all short-circuits
to the previous result (memoization).

Soundness argument (tested property-by-property in
``tests/test_sim_incremental.py``):

* An instruction is **tainted** if its name, payload, stream,
  effects, producer-name list, or same-stream predecessor changed.
  Untainted instructions behave identically *until some tainted
  instruction starts*: FIFO heads and pool arbitration scan over the
  same member sequence (the predecessor signature pins per-stream
  order), and a pending-not-ready tainted member blocks/yields
  exactly like its old self.
* An old-side tainted instruction perturbs the old event stream from
  the instant it started — recorded exactly by the previous run.  A
  new-side tainted instruction cannot start before all of its
  producers finish, nor (on a FIFO stream) before its predecessor
  finishes.  An untainted producer's finish time is known exactly
  while the runs are still identical; a tainted producer's finish is
  itself bounded below by its own start bound, so bounds propagate
  through tainted chains.  The minimum bound over every tainted
  instruction (in either program) bounds the first possible
  divergence.
* The one way an *untainted* instruction can reorder events is at its
  own finish, when the engine wakes its dependents' streams in edge
  order: if that stream sequence changed, the instruction's old
  finish time caps ``safe_time`` too.

Everything at a strictly earlier simulated time — heap contents,
memory books, trace rows, stream cursors — is therefore byte-reusable.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import OutOfMemoryError
from repro.sim.fastpath import (
    _DONE,
    _PENDING,
    _RUNNING,
    EngineSnapshot,
    FastInterpreter,
    ProgramTape,
    run_program,
    wants_fast_path,
)
from repro.sim.interpreter import SimulationResult
from repro.sim.ir import InstructionProgram

__all__ = [
    "ProgramDiff",
    "diff_programs",
    "splice_programs",
    "IncrementalSimulator",
]


@dataclass
class ProgramDiff:
    """Outcome of comparing two programs of one lowering."""

    identical: bool
    resumable: bool
    # Strict upper bound on reuse: every event strictly before this
    # simulated time is shared by both runs.  inf when identical.
    safe_time: float
    # (old_iid, new_iid) pairs of untainted instructions.
    matched: List[Tuple[int, int]]
    old_to_new: Dict[int, int]
    n_tainted: int


def _body(instr) -> dict:
    payload = dict(vars(instr))
    payload.pop("iid", None)
    return payload


def diff_programs(
    old: InstructionProgram,
    new: InstructionProgram,
    old_ends: Optional[List[float]] = None,
    old_starts: Optional[List[float]] = None,
) -> ProgramDiff:
    """Match instructions by name and bound the first divergence.

    ``old_ends``/``old_starts`` map old iid -> finish/start time of a
    *completed* run of ``old``; without them the divergence horizon
    degrades to 0 (matching is still computed, which is all
    :func:`splice_programs` needs).  An old-side tainted instruction
    diverges exactly at its recorded start; a new-side one is bounded
    through its dependency (and FIFO-predecessor) chain.
    """
    bail = ProgramDiff(
        identical=False, resumable=False, safe_time=0.0, matched=[],
        old_to_new={}, n_tainted=max(len(old), len(new)),
    )
    old_instrs, new_instrs = old.instructions, new.instructions
    old_index = {i.name: i.iid for i in old_instrs}
    new_index = {i.name: i.iid for i in new_instrs}
    if len(old_index) != len(old_instrs) or len(new_index) != len(new_instrs):
        return bail  # duplicate names: name-keyed matching unsound
    resumable = (
        old.static_effects == new.static_effects
        and old.stream_order == new.stream_order
        and old.options == new.options
    )

    def edge_views(program):
        instrs = program.instructions
        dep_names = [[] for _ in instrs]
        dep_iids = [[] for _ in instrs]
        dependent_streams = [[] for _ in instrs]
        for consumer, producer in program.edges:
            dep_names[consumer].append(instrs[producer].name)
            dep_iids[consumer].append(producer)
            dependent_streams[producer].append(instrs[consumer].stream)
        pred = [None] * len(instrs)
        pred_iid = [None] * len(instrs)
        last_on_stream: Dict[object, Tuple[str, int]] = {}
        for i, instr in enumerate(instrs):
            prev = last_on_stream.get(instr.stream)
            if prev is not None:
                pred[i], pred_iid[i] = prev
            last_on_stream[instr.stream] = (instr.name, i)
        return dep_names, dep_iids, dependent_streams, pred, pred_iid

    old_deps, old_dep_iids, old_dep_streams, old_pred, _ = edge_views(old)
    new_deps, new_dep_iids, new_dep_streams, new_pred, new_pred_iid = \
        edge_views(new)

    matched: List[Tuple[int, int]] = []
    tainted_old: List[int] = []
    tainted_new: List[int] = []
    for name, oi in old_index.items():
        ni = new_index.get(name)
        if ni is None:
            tainted_old.append(oi)
            continue
        if (
            _body(old_instrs[oi]) != _body(new_instrs[ni])
            or old_deps[oi] != new_deps[ni]
            or old_pred[oi] != new_pred[ni]
        ):
            tainted_old.append(oi)
            tainted_new.append(ni)
        else:
            matched.append((oi, ni))
    for name, ni in new_index.items():
        if name not in old_index:
            tainted_new.append(ni)

    old_to_new = dict(matched)
    matched_old = set(old_to_new)
    n_tainted = len(tainted_old) + len(tainted_new)

    if old_ends is None and n_tainted:
        return ProgramDiff(
            identical=False, resumable=False, safe_time=0.0,
            matched=matched, old_to_new=old_to_new, n_tainted=n_tainted,
        )

    def new_side_bounds() -> List[float]:
        """Lower bound on each new-side tainted instruction's start.

        A start is gated by every producer's finish and — on a FIFO
        stream — by the predecessor's finish.  Matched producers
        finish at their recorded old time while the runs are still
        identical; tainted producers contribute their own bound
        (processed in iid order: lowering declares producers before
        consumers, and a forward reference degrades to 0.0).
        """
        tainted_set = set(tainted_new)
        lb: Dict[int, float] = {}
        for i in sorted(tainted_set):
            sources = list(new_dep_iids[i])
            if (
                new_instrs[i].stream_mode == "fifo"
                and new_pred_iid[i] is not None
            ):
                sources.append(new_pred_iid[i])
            best = 0.0
            for p in sources:
                if p in tainted_set:
                    bound = lb.get(p, 0.0)
                else:
                    bound = old_ends[old_index[new_instrs[p].name]]
                if bound > best:
                    best = bound
            lb[i] = best
        return list(lb.values())

    bounds: List[float] = []
    if old_ends is not None:
        if old_starts is not None:
            # An old-side tainted instruction perturbs the old event
            # stream from the instant it started — known exactly.
            bounds.extend(old_starts[oi] for oi in tainted_old)
        else:
            tainted_set = set(tainted_old)
            lb: Dict[int, float] = {}
            for oi in sorted(tainted_set):
                best = 0.0
                for p in old_dep_iids[oi]:
                    bound = lb.get(p, 0.0) if p in tainted_set else old_ends[p]
                    if bound > best:
                        best = bound
                lb[oi] = best
            bounds.extend(lb.values())
        bounds.extend(new_side_bounds())
        # Untainted producers whose dependent-stream wake-up sequence
        # changed reorder kicks at their own finish instant.
        for oi, ni in matched:
            if old_dep_streams[oi] != new_dep_streams[ni]:
                bounds.append(old_ends[oi])

    if not n_tainted and not bounds:
        return ProgramDiff(
            identical=True, resumable=resumable, safe_time=float("inf"),
            matched=matched, old_to_new=old_to_new, n_tainted=0,
        )
    return ProgramDiff(
        identical=False, resumable=resumable,
        safe_time=min(bounds) if bounds else 0.0,
        matched=matched, old_to_new=old_to_new, n_tainted=n_tainted,
    )


def splice_programs(
    old: InstructionProgram,
    new: InstructionProgram,
    diff: Optional[ProgramDiff] = None,
) -> InstructionProgram:
    """Rebuild ``new`` reusing ``old``'s instruction objects where the
    diff proved them untainted.  Prefix-reuse soundness means the
    spliced program equals the fully lowered one, field for field —
    the property test in ``tests/test_sim_incremental.py``."""
    if diff is None:
        diff = diff_programs(old, new)
    instructions = list(new.instructions)
    for oi, ni in diff.matched:
        instructions[ni] = dataclasses.replace(old.instructions[oi], iid=ni)
    return dataclasses.replace(new, instructions=tuple(instructions))


@dataclass
class _RunArtifacts:
    program: InstructionProgram
    tape: ProgramTape
    starts: List[float]
    ends: List[float]
    snapshots: List[EngineSnapshot]
    books: list
    trace: object
    result: SimulationResult


class IncrementalSimulator:
    """Re-simulates a stream of programs from one lowering, reusing
    the shared prefix of consecutive candidates.

    Fault schedules and external subscribers fall back to
    :func:`~repro.sim.fastpath.run_program` (and clear the reuse
    state, since an observed run's artifacts are not kept).
    """

    def __init__(self, min_reuse_events: int = 32):
        self._last: Optional[_RunArtifacts] = None
        self._min_reuse_events = min_reuse_events
        self.n_full = 0
        self.n_resumed = 0
        self.n_memoized = 0

    # -- public API --------------------------------------------------------

    def run(self, program: InstructionProgram) -> SimulationResult:
        if not wants_fast_path(program):
            self._last = None
            return run_program(program)
        art = self._last
        if art is not None and art.program.job is program.job:
            diff = diff_programs(art.program, program, art.ends, art.starts)
            if diff.identical and diff.resumable:
                self.n_memoized += 1
                return dataclasses.replace(
                    art.result, job=program.job, plan=program.plan
                )
            if diff.resumable:
                snapshot = self._pick_snapshot(art, diff.safe_time)
                if snapshot is not None:
                    result = self._resume(art, program, diff, snapshot)
                    if result is not None:
                        self.n_resumed += 1
                        return result
        return self._full(program)

    # -- execution ---------------------------------------------------------

    def _snapshot_stride(self, n: int) -> int:
        return max(self._min_reuse_events, n // 8)

    def _full(self, program: InstructionProgram) -> SimulationResult:
        self.n_full += 1
        interp = FastInterpreter(
            program, snapshot_every=self._snapshot_stride(len(program))
        )
        result = interp.run()
        self._store(program, interp, result)
        return result

    def _store(self, program, interp, result) -> None:
        if result.ok:
            self._last = _RunArtifacts(
                program=program,
                tape=interp.tape,
                starts=interp.starts,
                ends=interp.ends,
                snapshots=interp.snapshots,
                books=interp.books,
                trace=interp.trace,
                result=result,
            )
        else:
            self._last = None

    def _pick_snapshot(
        self, art: _RunArtifacts, safe_time: float
    ) -> Optional[EngineSnapshot]:
        best = None
        for snapshot in art.snapshots:
            if snapshot.now < safe_time and snapshot.n_done >= self._min_reuse_events:
                if best is None or snapshot.n_done > best.n_done:
                    best = snapshot
        return best

    def _resume(
        self,
        art: _RunArtifacts,
        program: InstructionProgram,
        diff: ProgramDiff,
        snapshot: EngineSnapshot,
    ) -> Optional[SimulationResult]:
        old_to_new = diff.old_to_new
        interp = FastInterpreter(
            program, snapshot_every=self._snapshot_stride(len(program))
        )
        interp.mark_consumed()
        tape = interp.tape

        # Every instruction already started by the snapshot instant
        # must survive unchanged in the new program.
        states = interp.states
        starts = interp.starts
        ends = interp.ends
        n_done = 0
        for old_iid, state in enumerate(snapshot.states):
            if state == _PENDING:
                continue
            new_iid = old_to_new.get(old_iid)
            if new_iid is None:
                return None
            states[new_iid] = state
            starts[new_iid] = snapshot.starts[old_iid]
            if state == _DONE:
                ends[new_iid] = art.ends[old_iid]
                n_done += 1

        dep_remaining = [0] * tape.n
        for consumer, producer in program.edges:
            if states[producer] != _DONE:
                dep_remaining[consumer] += 1
        interp.dep_remaining = dep_remaining

        heap = []
        for end, seq, old_iid in snapshot.heap:
            new_iid = old_to_new.get(old_iid)
            if new_iid is None:
                return None
            heap.append((end, seq, new_iid))
        interp._heap = heap  # remapping preserves the heap invariant

        for s, members in enumerate(tape.members):
            head = len(members)
            running = -1
            for pos, iid in enumerate(members):
                if states[iid] == _RUNNING:
                    running = iid
                if head == len(members) and states[iid] != _DONE:
                    head = pos
            interp.heads[s] = head
            interp.scans[s] = head
            interp.running[s] = running

        for book, old_book, saved in zip(interp.books, art.books, snapshot.books):
            in_use, peak, tags, n_timeline, n_events = saved
            book.in_use = in_use
            book.peak = peak
            book._tags = dict(tags)
            book.timeline = list(old_book.timeline[:n_timeline])
            book.events = list(old_book.events[:n_events])
        interp.pinned.in_use, interp.pinned.peak = snapshot.pinned

        trace = interp.trace
        trace.events = list(art.trace.events[: snapshot.trace_events])
        trace.counters = list(art.trace.counters[: snapshot.trace_counters])
        trace.makespan = max((event.end for event in trace.events), default=0.0)

        interp._now = snapshot.now
        interp._counter = snapshot.counter
        interp._last_finish = snapshot.last_finish
        interp._n_done = n_done

        try:
            makespan = interp._loop()
        except OutOfMemoryError as oom:
            result = interp._failure(oom)
            self._last = None
            return result
        result = interp.finalize(makespan)
        self._store(program, interp, result)
        return result
