"""Replay an instruction program on the discrete-event substrate.

The interpreter is the execution half of the split executor: it knows
nothing about pipelines, memory-saving plans, or fault policies — it
materializes the :class:`~repro.sim.ir.InstructionProgram` onto the
existing :class:`~repro.sim.engine.Engine` / stream / memory-book
substrate and runs the event loop.  Everything observational (trace
recording, memory counters, fault auditing) subscribes to the
:class:`~repro.sim.events.EventBus` instead of living in this loop.

Determinism: streams are registered in the program's recorded
first-use order, tasks are submitted in instruction order, and
dependency edges are applied in edge-tape order — the three axes that
fix event ordering on simultaneity ties (see :mod:`repro.sim.ir`).
Effect closures are compiled once at materialization, so a run with no
subscribers pays no per-event dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.errors import OutOfMemoryError, SimulationError
from repro.faults.report import ResilienceReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.inject import FaultInjector
from repro.sim.engine import Engine, Task
from repro.sim.events import (
    EventBus,
    InstructionCompleted,
    InstructionStarted,
    MemoryChanged,
    MemoryCounterSampler,
    TraceRecorder,
)
from repro.sim.ir import (
    HOST,
    Alloc,
    Drop,
    Instruction,
    InstructionProgram,
    Pin,
    Record,
    Unpin,
)
from repro.sim.memory import MemoryModel, PinnedPool
from repro.sim.resources import StreamSet
from repro.sim.trace import Trace


@dataclass
class SimulationResult:
    """Outcome of one simulated training run."""

    job: "object"
    plan: "object"
    ok: bool
    oom: Optional[OutOfMemoryError]
    makespan: float
    memory: MemoryModel
    trace: Trace
    minibatch_time: float
    # Populated when the run was executed under a fault schedule.
    resilience: Optional[ResilienceReport] = None

    @property
    def samples_per_second(self) -> float:
        if not self.ok or self.minibatch_time <= 0:
            return 0.0
        return self.job.samples_per_minibatch / self.minibatch_time

    @property
    def tflops(self) -> float:
        """Aggregate achieved model TFLOPS (the paper's Figures 7/8 metric)."""
        if not self.ok or self.minibatch_time <= 0:
            return 0.0
        return self.job.minibatch_flops() / self.minibatch_time / 1e12

    @property
    def peak_memory_per_gpu(self) -> List[int]:
        return self.memory.peaks()


class Interpreter:
    """One single-use replay of one instruction program.

    ``subscribers`` are objects with an ``attach(bus)`` method; they
    are attached after the built-in trace/counter recorders, so their
    handlers observe events in a deterministic order.
    """

    def __init__(self, program: InstructionProgram, subscribers=()):
        self.program = program
        self.job = program.job
        self.plan = program.plan
        self.options = program.options
        options = program.options
        job = program.job
        self.engine = Engine()
        self.streams = StreamSet(self.engine)
        capacities = [
            options.gpu_capacity_override or gpu.memory_bytes for gpu in job.server.gpus
        ]
        self.memory = MemoryModel(
            capacities, job.server.host.memory_bytes, strict=options.strict
        )
        self.pinned = PinnedPool(capacity=job.server.host.memory_bytes // 2)
        self.trace = Trace()
        self.bus = EventBus()
        if options.record_trace:
            TraceRecorder(self.trace).attach(self.bus)
            MemoryCounterSampler(self.trace).attach(self.bus)
        for subscriber in subscribers:
            subscriber.attach(self.bus)
        self.injector: Optional["FaultInjector"] = None
        if options.faults is not None and not options.faults.is_empty:
            # Imported here: faults.inject subscribes to sim.events,
            # so a module-level import would be circular.
            from repro.faults.inject import FaultInjector

            self.injector = FaultInjector(
                options.faults,
                self.engine,
                self.streams,
                job,
                self.memory,
                self.trace,
                record_trace=options.record_trace,
                bus=self.bus,
            )
            self.injector.arm()
        self._tasks: List[Task] = []
        self._ran = False

    # -- public API --------------------------------------------------------

    def run(self) -> SimulationResult:
        if self._ran:
            raise SimulationError(
                "Interpreter is single-use; build a new one per run"
            )
        self._ran = True
        try:
            self._apply_static()
            self._materialize()
            makespan = self.engine.run()
        except OutOfMemoryError as oom:
            return SimulationResult(
                job=self.job,
                plan=self.plan,
                ok=False,
                oom=oom,
                makespan=0.0,
                memory=self.memory,
                trace=self.trace,
                minibatch_time=0.0,
            )
        resilience = (
            self.injector.build_report(makespan) if self.injector is not None else None
        )
        return SimulationResult(
            job=self.job,
            plan=self.plan,
            ok=True,
            oom=None,
            makespan=makespan,
            memory=self.memory,
            trace=self.trace,
            minibatch_time=self._minibatch_time(makespan),
            resilience=resilience,
        )

    # -- materialization ---------------------------------------------------

    def _book(self, device):
        return self.memory.host if device == HOST else self.memory.gpu(device)

    def _apply_static(self) -> None:
        want_mem = self.bus.wants(MemoryChanged)
        for eff in self.program.static_effects:
            book = self._book(eff.device)
            book.alloc(eff.size, 0.0, tag=eff.tag)
            if want_mem:
                self.bus.publish(
                    MemoryChanged(
                        device=eff.device,
                        delta=eff.size,
                        in_use=book.in_use,
                        tag=eff.tag,
                        time=0.0,
                    )
                )

    def _materialize(self) -> None:
        # Registration order breaks simultaneity ties in the engine's
        # round-robin kick; replay the recorded first-use order before
        # any submission.
        for key, mode in self.program.stream_order:
            self.streams.get(key, mode=mode)
        want_started = self.bus.wants(InstructionStarted)
        tasks = self._tasks
        for instr in self.program.instructions:
            task = Task(
                name=instr.name,
                duration=instr.duration,
                on_start=self._bind(instr, instr.start_effects, started=want_started),
                on_done=self._bind(instr, instr.done_effects),
            )
            self.streams.get(instr.stream, mode=instr.stream_mode).submit(task)
            tasks.append(task)
        # Edges are applied strictly in tape order: ``dependents`` list
        # order drives dependent wake-up order on time ties.
        for consumer, producer in self.program.edges:
            tasks[consumer].add_dep(tasks[producer])

    def _bind(
        self, instr: Instruction, effects, started: bool = False
    ) -> Optional[Callable[[Task, float], None]]:
        """Compile an effect list into one engine hook (or None)."""
        bus = self.bus
        fns: List[Callable[[Task, float], None]] = []
        if started:
            fns.append(
                lambda task, now, i=instr: bus.publish(
                    InstructionStarted(instruction=i, time=now)
                )
            )
        want_mem = bus.wants(MemoryChanged)
        want_completed = bus.wants(InstructionCompleted)
        for eff in effects:
            if isinstance(eff, Alloc):
                fns.append(self._alloc_fn(eff, want_mem))
            elif isinstance(eff, Drop):
                fns.append(self._drop_fn(eff, want_mem))
            elif isinstance(eff, Pin):
                fns.append(lambda task, now, s=eff.size: self.pinned.take(s))
            elif isinstance(eff, Unpin):
                fns.append(lambda task, now, s=eff.size: self.pinned.give(s))
            elif isinstance(eff, Record):
                if want_completed:
                    fns.append(
                        lambda task, now, i=instr, r=eff: bus.publish(
                            InstructionCompleted(
                                instruction=i, record=r, start=task.start_time, end=now
                            )
                        )
                    )
            else:  # pragma: no cover - exhaustive over Effect
                raise TypeError(f"unknown effect {eff!r}")
        if not fns:
            return None
        if len(fns) == 1:
            return fns[0]

        def hook(task: Task, now: float) -> None:
            for fn in fns:
                fn(task, now)

        return hook

    def _alloc_fn(self, eff: Alloc, want_mem: bool):
        book = self._book(eff.device)
        if not want_mem:
            return lambda task, now, b=book, e=eff: b.alloc(e.size, now, tag=e.tag)
        bus = self.bus

        def fn(task, now, b=book, e=eff):
            b.alloc(e.size, now, tag=e.tag)
            bus.publish(
                MemoryChanged(
                    device=e.device, delta=e.size, in_use=b.in_use, tag=e.tag, time=now
                )
            )

        return fn

    def _drop_fn(self, eff: Drop, want_mem: bool):
        book = self._book(eff.device)
        if not want_mem:
            return lambda task, now, b=book, e=eff: b.free(e.size, now, tag=e.tag)
        bus = self.bus

        def fn(task, now, b=book, e=eff):
            b.free(e.size, now, tag=e.tag)
            bus.publish(
                MemoryChanged(
                    device=e.device, delta=-e.size, in_use=b.in_use, tag=e.tag, time=now
                )
            )

        return fn

    # -- metrics -----------------------------------------------------------

    def _minibatch_time(self, makespan: float) -> float:
        """Steady-state minibatch period from stage 0's optimizer steps."""
        device = self.plan.device_of(0)
        opt_ends = sorted(
            event.end
            for event in self.trace.events
            if event.kind == "opt" and event.device == device
        )
        if len(opt_ends) >= 2:
            return (opt_ends[-1] - opt_ends[0]) / (len(opt_ends) - 1)
        if self.job.n_minibatches > 0:
            return makespan / self.job.n_minibatches
        return makespan
