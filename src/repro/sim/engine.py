"""Discrete-event engine with in-order and pooled streams.

Execution model (mirrors CUDA semantics, which the paper's runtime
relies on — Section III-E):

* A :class:`Task` has a fixed duration, a set of dependency tasks,
  and optional start/finish hooks.
* Every task is submitted to exactly one :class:`repro.sim.resources.Stream`.
  FIFO streams (GPU compute queues) execute tasks in submission
  order; pool streams (NVLink lanes, PCIe directions, NVMe queues)
  execute one task at a time but pick any ready one — hardware links
  arbitrate among whichever transfers are pending.
* The engine advances time event by event until no task can run.

Fault modelling hooks (used by :mod:`repro.faults`):

* Every stream has a *rate* — the speed the underlying resource
  currently delivers, as a fraction of nominal.  ``task.duration``
  is nominal work; wall-clock time is ``duration / rate``.  Changing
  a stream's rate mid-flight rescales the *remaining* work of its
  running task, so a slowdown window opening (or closing) halfway
  through a kernel charges exactly the slowed portion.
* :meth:`Engine.schedule_callback` runs arbitrary control logic at a
  wall-clock instant (fault windows opening/closing, failures).
* :meth:`Engine.stall_all` pushes every running task's completion
  out by a fixed delay — a global pause, which is exactly what a
  synchronous checkpoint-restore does to a pipeline.

A schedule that can never complete (a dependency cycle across
streams) is detected and reported as a :class:`ScheduleError` instead
of hanging.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from typing import Callable, List, Optional, Sequence

from repro.errors import ScheduleError, SimulationError

Hook = Callable[["Task", float], None]

# Heap entry discriminators: task completions vs control callbacks.
_TASK = 0
_CALL = 1


class TaskState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"


class Task:
    """One unit of simulated work (compute kernel, transfer, ...)."""

    __slots__ = (
        "name",
        "duration",
        "deps",
        "on_start",
        "on_done",
        "state",
        "start_time",
        "end_time",
        "stream",
        "dependents",
        "tag",
        "scheduled_end",
        "generation",
    )

    def __init__(
        self,
        name: str,
        duration: float,
        deps: Sequence["Task"] = (),
        on_start: Optional[Hook] = None,
        on_done: Optional[Hook] = None,
        tag: Optional[str] = None,
    ):
        if duration < 0:
            raise SimulationError(f"task {name}: negative duration {duration}")
        self.name = name
        self.duration = duration
        self.deps: List[Task] = []
        self.on_start = on_start
        self.on_done = on_done
        self.state = TaskState.PENDING
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.stream = None  # set by Stream.submit
        self.dependents: List[Task] = []
        self.tag = tag
        # Currently-scheduled completion instant and its validity
        # counter; a reschedule bumps the generation so the stale
        # heap entry is skipped when popped.
        self.scheduled_end: Optional[float] = None
        self.generation = 0
        for dep in deps:
            self.add_dep(dep)

    def add_dep(self, dep: "Task") -> None:
        if self.state is not TaskState.PENDING:
            raise SimulationError(f"task {self.name}: cannot add dep after start")
        self.deps.append(dep)
        dep.dependents.append(self)

    @property
    def ready(self) -> bool:
        return all(dep.state is TaskState.DONE for dep in self.deps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task({self.name}, {self.state.value})"


class Engine:
    """Event loop driving a set of streams."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List = []
        self._counter = itertools.count()
        self._streams: List = []
        self._n_done = 0
        self._n_submitted = 0
        self._last_finish = 0.0
        # End of the latest global stall; rate changes that land
        # inside a stall must not treat the paused span as work.
        self._frozen_until = 0.0

    # -- wiring ----------------------------------------------------------

    def register_stream(self, stream) -> None:
        self._streams.append(stream)
        stream.engine = self

    def note_submission(self, task: Task) -> None:
        self._n_submitted += 1

    @property
    def work_remaining(self) -> bool:
        """True while submitted tasks have not all finished."""
        return self._n_done < self._n_submitted

    # -- control events --------------------------------------------------

    def schedule_callback(self, time: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` when simulated time reaches ``time``.

        Control callbacks (fault windows, failures) fire between task
        completions; a callback scheduled in the past fires at the
        current instant.
        """
        when = max(time, self.now)
        heapq.heappush(self._heap, (when, next(self._counter), _CALL, fn, 0))

    def set_stream_rate(self, stream, rate: float) -> None:
        """Change a stream's delivery rate, rescaling its running task.

        The running task's remaining *work* is preserved: remaining
        wall-clock time is recomputed at the new rate from the current
        instant.  Queued tasks simply start at the new rate later.
        """
        if rate <= 0:
            raise SimulationError(f"stream {stream.name}: non-positive rate {rate}")
        old = stream.rate
        if old == rate:
            return
        stream.rate = rate
        running = stream.running_task()
        if running is not None and running.state is TaskState.RUNNING:
            # Work only accrues once any global stall has lifted; the
            # stalled span is a pause, not progress to be rescaled.
            anchor = max(self.now, self._frozen_until)
            remaining_wall = max(0.0, running.scheduled_end - anchor)
            remaining_work = remaining_wall * old
            self._reschedule(running, anchor + remaining_work / rate)

    def stall_all(self, delay: float) -> None:
        """Delay every running task's completion by ``delay`` seconds.

        Because task starts only happen at completion instants, no
        task can start inside the stall window: the entire remaining
        schedule shifts right by exactly ``delay`` — the behaviour of
        a synchronous checkpoint-restore pause.
        """
        if delay < 0:
            raise SimulationError(f"negative stall delay {delay}")
        if delay == 0:
            return
        self._frozen_until = max(self._frozen_until, self.now) + delay
        for entry in list(self._heap):
            _time, _seq, kind, payload, gen = entry
            if kind != _TASK:
                continue
            task = payload
            if gen == task.generation and task.state is TaskState.RUNNING:
                self._reschedule(task, task.scheduled_end + delay)

    def _reschedule(self, task: Task, new_end: float) -> None:
        task.generation += 1
        task.scheduled_end = new_end
        heapq.heappush(
            self._heap, (new_end, next(self._counter), _TASK, task, task.generation)
        )

    # -- execution -------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run all submitted work; returns the finish time.

        Raises :class:`ScheduleError` if tasks remain but none can
        make progress (a cross-stream dependency cycle).
        """
        self._kick_all()
        while self._heap:
            time, _, kind, payload, gen = heapq.heappop(self._heap)
            if kind == _TASK and gen != payload.generation:
                continue  # superseded by a reschedule
            if until is not None and time > until:
                self.now = until
                return self.now
            self.now = time
            if kind == _CALL:
                payload()
            else:
                self._finish(payload)
        if self._n_done != self._n_submitted:
            stuck = self._stuck_tasks()
            names = ", ".join(t.name for t in stuck[:8])
            raise ScheduleError(
                f"deadlock: {self._n_submitted - self._n_done} tasks cannot run "
                f"(e.g. {names})"
            )
        # Trailing control callbacks (e.g. a fault window closing after
        # the last task) must not inflate the reported makespan.
        return self._last_finish

    def _kick_all(self) -> None:
        for stream in self._streams:
            self._try_start(stream)

    def _try_start(self, stream) -> None:
        task = stream.startable()
        if task is None:
            return
        task.state = TaskState.RUNNING
        task.start_time = self.now
        if task.on_start is not None:
            task.on_start(task, self.now)
        end = self.now + task.duration / stream.rate
        task.scheduled_end = end
        heapq.heappush(self._heap, (end, next(self._counter), _TASK, task, task.generation))

    def _finish(self, task: Task) -> None:
        task.state = TaskState.DONE
        task.end_time = self.now
        self._n_done += 1
        if self.now > self._last_finish:
            self._last_finish = self.now
        stream = task.stream
        stream.pop_done(task)
        if task.on_done is not None:
            task.on_done(task, self.now)
        # The finishing task may unblock its own stream's next task and
        # the streams holding its dependents.
        self._try_start(stream)
        seen = {id(stream)}
        for dependent in task.dependents:
            dep_stream = dependent.stream
            if dep_stream is not None and id(dep_stream) not in seen:
                seen.add(id(dep_stream))
                self._try_start(dep_stream)

    def _stuck_tasks(self) -> List[Task]:
        stuck = []
        for stream in self._streams:
            stuck.extend(t for t in stream.pending_tasks() if t.state is TaskState.PENDING)
        return stuck
