"""Discrete-event engine with in-order and pooled streams.

Execution model (mirrors CUDA semantics, which the paper's runtime
relies on — Section III-E):

* A :class:`Task` has a fixed duration, a set of dependency tasks,
  and optional start/finish hooks.
* Every task is submitted to exactly one :class:`repro.sim.resources.Stream`.
  FIFO streams (GPU compute queues) execute tasks in submission
  order; pool streams (NVLink lanes, PCIe directions, NVMe queues)
  execute one task at a time but pick any ready one — hardware links
  arbitrate among whichever transfers are pending.
* The engine advances time event by event until no task can run.

A schedule that can never complete (a dependency cycle across
streams) is detected and reported as a :class:`ScheduleError` instead
of hanging.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from typing import Callable, List, Optional, Sequence

from repro.errors import ScheduleError, SimulationError

Hook = Callable[["Task", float], None]


class TaskState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"


class Task:
    """One unit of simulated work (compute kernel, transfer, ...)."""

    __slots__ = (
        "name",
        "duration",
        "deps",
        "on_start",
        "on_done",
        "state",
        "start_time",
        "end_time",
        "stream",
        "dependents",
        "tag",
    )

    def __init__(
        self,
        name: str,
        duration: float,
        deps: Sequence["Task"] = (),
        on_start: Optional[Hook] = None,
        on_done: Optional[Hook] = None,
        tag: Optional[str] = None,
    ):
        if duration < 0:
            raise SimulationError(f"task {name}: negative duration {duration}")
        self.name = name
        self.duration = duration
        self.deps: List[Task] = []
        self.on_start = on_start
        self.on_done = on_done
        self.state = TaskState.PENDING
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.stream = None  # set by Stream.submit
        self.dependents: List[Task] = []
        self.tag = tag
        for dep in deps:
            self.add_dep(dep)

    def add_dep(self, dep: "Task") -> None:
        if self.state is not TaskState.PENDING:
            raise SimulationError(f"task {self.name}: cannot add dep after start")
        self.deps.append(dep)
        dep.dependents.append(self)

    @property
    def ready(self) -> bool:
        return all(dep.state is TaskState.DONE for dep in self.deps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task({self.name}, {self.state.value})"


class Engine:
    """Event loop driving a set of streams."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List = []
        self._counter = itertools.count()
        self._streams: List = []
        self._n_done = 0
        self._n_submitted = 0

    # -- wiring ----------------------------------------------------------

    def register_stream(self, stream) -> None:
        self._streams.append(stream)
        stream.engine = self

    def note_submission(self, task: Task) -> None:
        self._n_submitted += 1

    # -- execution -------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run all submitted work; returns the finish time.

        Raises :class:`ScheduleError` if tasks remain but none can
        make progress (a cross-stream dependency cycle).
        """
        self._kick_all()
        while self._heap:
            time, _, task = heapq.heappop(self._heap)
            if until is not None and time > until:
                self.now = until
                return self.now
            self.now = time
            self._finish(task)
        if self._n_done != self._n_submitted:
            stuck = self._stuck_tasks()
            names = ", ".join(t.name for t in stuck[:8])
            raise ScheduleError(
                f"deadlock: {self._n_submitted - self._n_done} tasks cannot run "
                f"(e.g. {names})"
            )
        return self.now

    def _kick_all(self) -> None:
        for stream in self._streams:
            self._try_start(stream)

    def _try_start(self, stream) -> None:
        task = stream.startable()
        if task is None:
            return
        task.state = TaskState.RUNNING
        task.start_time = self.now
        if task.on_start is not None:
            task.on_start(task, self.now)
        heapq.heappush(self._heap, (self.now + task.duration, next(self._counter), task))

    def _finish(self, task: Task) -> None:
        task.state = TaskState.DONE
        task.end_time = self.now
        self._n_done += 1
        stream = task.stream
        stream.pop_done(task)
        if task.on_done is not None:
            task.on_done(task, self.now)
        # The finishing task may unblock its own stream's next task and
        # the streams holding its dependents.
        self._try_start(stream)
        seen = {id(stream)}
        for dependent in task.dependents:
            dep_stream = dependent.stream
            if dep_stream is not None and id(dep_stream) not in seen:
                seen.add(id(dep_stream))
                self._try_start(dep_stream)

    def _stuck_tasks(self) -> List[Task]:
        stuck = []
        for stream in self._streams:
            stuck.extend(t for t in stream.pending_tasks() if t.state is TaskState.PENDING)
        return stuck
