"""Execution traces: what ran where and when.

The trace is the simulator's equivalent of the paper's profiler
output (Figure 5, steps 1-2): per-op timestamps from which live
intervals, per-device memory curves, and timeline diagrams (Figure 1)
are derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One completed task occurrence.

    ``layer`` is the model-wide layer index for per-layer compute
    events, or -1 for stage-level events (optimizer steps, swaps).
    """

    name: str
    kind: str
    device: int
    microbatch: int
    start: float
    end: float
    layer: int = -1

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class CounterSample:
    """One per-device memory-usage sample (for counter tracks).

    Samples live alongside — never inside — ``events``: trace digests
    hash the event list only, so counter instrumentation cannot
    perturb golden traces.
    """

    device: int
    time: float
    bytes_in_use: int


@dataclass
class Trace:
    """Ordered record of completed tasks plus simulation-wide stats."""

    events: List[TraceEvent] = field(default_factory=list)
    makespan: float = 0.0
    counters: List[CounterSample] = field(default_factory=list)

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)
        if event.end > self.makespan:
            self.makespan = event.end

    def by_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def by_device(self, device: int) -> List[TraceEvent]:
        return [e for e in self.events if e.device == device]

    def find(self, name: str) -> Optional[TraceEvent]:
        for event in self.events:
            if event.name == name:
                return event
        return None

    def total_time(self, kind: str) -> float:
        return sum(e.duration for e in self.by_kind(kind))

    def gantt_rows(self) -> Dict[int, List[Tuple[str, float, float]]]:
        """Per-device (kind, start, end) rows for timeline rendering."""
        rows: Dict[int, List[Tuple[str, float, float]]] = {}
        for event in self.events:
            rows.setdefault(event.device, []).append((event.kind, event.start, event.end))
        for device_rows in rows.values():
            device_rows.sort(key=lambda row: row[1])
        return rows

    def render_timeline(self, width: int = 80, kinds: Tuple[str, ...] = ("fwd", "bwd")) -> str:
        """ASCII timeline in the style of the paper's Figure 1.

        Forward boxes render as the microbatch digit, backward boxes
        as the digit wrapped in dots.
        """
        if self.makespan <= 0:
            return "(empty trace)"
        scale = width / self.makespan
        lines = []
        for device in sorted({e.device for e in self.events}):
            row = [" "] * width
            for event in self.by_device(device):
                if event.kind not in kinds:
                    continue
                lo = min(width - 1, int(event.start * scale))
                hi = min(width, max(lo + 1, int(event.end * scale)))
                symbol = str(event.microbatch % 10)
                fill = symbol if event.kind == "fwd" else "."
                for col in range(lo, hi):
                    row[col] = fill
                row[lo] = symbol
            lines.append(f"gpu{device} |{''.join(row)}|")
        return "\n".join(lines)
