"""Streams: execution resources with FIFO or pooled dispatch.

Every simulated resource that serializes work is a :class:`Stream`:

* ``fifo`` — a GPU compute queue: tasks run strictly in submission
  order (CUDA stream semantics, which 1F1B scheduling relies on).
* ``pool`` — a hardware link (one NVLink lane direction, one PCIe
  direction, an NVMe queue): one transfer at a time, but the link
  serves whichever pending transfer is ready, as real link
  arbitration does.

A :class:`StreamSet` is a lazily-populated registry keyed by channel
keys (the topology's lane keys, ``("compute", gpu)``, ``("pcie_d2h",
gpu)``, ...).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, Iterable, List, Optional

from repro.errors import SimulationError
from repro.sim.engine import Engine, Task, TaskState


class Stream:
    """A single-server task queue bound to an engine."""

    def __init__(self, name: str, mode: str = "fifo"):
        if mode not in ("fifo", "pool"):
            raise SimulationError(f"unknown stream mode {mode!r}")
        self.name = name
        self.mode = mode
        self.engine: Optional[Engine] = None
        self._queue: Deque[Task] = deque()
        self._running: Optional[Task] = None
        self.busy_time = 0.0
        # Delivery rate as a fraction of nominal speed; fault windows
        # (repro.faults) lower it and the engine rescales the running
        # task's remaining work accordingly.
        self.rate = 1.0

    def submit(self, task: Task) -> Task:
        if self.engine is None:
            raise SimulationError(f"stream {self.name} not registered with an engine")
        if task.stream is not None:
            raise SimulationError(f"task {task.name} already submitted to {task.stream.name}")
        task.stream = self
        self._queue.append(task)
        self.engine.note_submission(task)
        return task

    def startable(self) -> Optional[Task]:
        """A task this stream may start now, if any."""
        if self._running is not None or not self._queue:
            return None
        if self.mode == "fifo":
            head = self._queue[0]
            if head.state is not TaskState.PENDING or not head.ready:
                return None
            self._running = head
            return head
        for task in self._queue:
            if task.state is TaskState.PENDING and task.ready:
                self._running = task
                return task
        return None

    def pop_done(self, task: Task) -> None:
        if self._running is not task:
            raise SimulationError(f"stream {self.name}: finishing a task that is not running")
        self._queue.remove(task)
        self._running = None
        self.busy_time += task.duration

    def pending_tasks(self) -> List[Task]:
        return list(self._queue)

    def running_task(self) -> Optional[Task]:
        """The task currently occupying this stream, if any."""
        return self._running

    def utilization(self, makespan: float) -> float:
        """Fraction of ``makespan`` this stream spent busy."""
        if makespan <= 0:
            return 0.0
        return self.busy_time / makespan


class StreamSet:
    """Registry of streams keyed by hashable channel keys."""

    def __init__(self, engine: Engine):
        self._engine = engine
        self._streams: Dict[Hashable, Stream] = {}

    def get(self, key: Hashable, mode: str = "fifo") -> Stream:
        stream = self._streams.get(key)
        if stream is None:
            stream = Stream(name=str(key), mode=mode)
            self._engine.register_stream(stream)
            self._streams[key] = stream
        return stream

    def submit(self, key: Hashable, task: Task, mode: str = "fifo") -> Task:
        return self.get(key, mode=mode).submit(task)

    def keys(self) -> Iterable[Hashable]:
        return self._streams.keys()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._streams

    def __len__(self) -> int:
        return len(self._streams)
