"""Thin facade: lower a (job, plan) and interpret the result.

This module used to be the simulator's 1000-line monolith; the logic
now lives in three layers (the split mirrors MPress Runtime's
planning/execution separation, Figure 5):

* :mod:`repro.sim.lowering` — walks the data-flow program and emits a
  typed :class:`~repro.sim.ir.InstructionProgram`;
* :mod:`repro.sim.interpreter` — replays the program on the
  discrete-event engine/stream/memory substrate;
* :mod:`repro.sim.events` — the bus observers (tracing, counters,
  auditing, fault reporting) subscribe to.

:func:`simulate` and :class:`PipelineExecutor` keep their historical
signatures so callers (CLI, runtime cache tasks, planner, tests) are
untouched; repeated-emulation callers should hold a
:class:`~repro.sim.lowering.Lowering` and re-lower per plan instead.
"""

from __future__ import annotations

from typing import Optional

from repro.core.plan import MemorySavingPlan
from repro.faults.spec import FaultSchedule
from repro.job import TrainingJob
from repro.sim.fastpath import run_program
from repro.sim.interpreter import SimulationResult
from repro.sim.ir import ExecOptions
from repro.sim.lowering import Lowering

__all__ = ["ExecOptions", "PipelineExecutor", "SimulationResult", "simulate"]


class PipelineExecutor:
    """Builds and runs the instruction program of one training iteration set."""

    def __init__(
        self,
        job: TrainingJob,
        plan: Optional[MemorySavingPlan] = None,
        options: ExecOptions = ExecOptions(),
    ):
        self.job = job
        self.options = options
        # Lower eagerly: invalid plans (bad device map, inconsistent
        # entries) are rejected at construction, as they always were.
        self.program = Lowering(job, options).lower(plan)
        self.plan = self.program.plan

    def run(self) -> SimulationResult:
        # Unobserved fault-free runs take the compiled fast path; runs
        # with a fault schedule replay on the reference interpreter.
        # Both produce bit-identical results (docs/fastpath.md).
        return run_program(self.program)


def simulate(
    job: TrainingJob,
    plan: Optional[MemorySavingPlan] = None,
    strict: bool = True,
    prefetch_lead: int = 3,
    gpu_capacity_override: Optional[int] = None,
    faults: Optional[FaultSchedule] = None,
) -> SimulationResult:
    """Run one simulated training job and return its outcome.

    ``strict=True`` models real hardware — exceeding GPU memory
    aborts the job (result.ok is False).  ``strict=False`` records
    the overflow instead; this is the *emulator* mode the planner
    iterates with.

    ``faults`` injects a timed hardware fault schedule; the result
    then carries a :class:`~repro.faults.report.ResilienceReport`.
    """
    options = ExecOptions(
        strict=strict,
        prefetch_lead=prefetch_lead,
        gpu_capacity_override=gpu_capacity_override,
        faults=faults,
    )
    return PipelineExecutor(job, plan, options).run()
