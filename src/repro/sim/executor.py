"""Lower a (training job, memory-saving plan) into simulated execution.

This is the simulated counterpart of MPress Runtime (Figure 5): the
*executor* walks the instrumented data-flow program, issuing compute
kernels on per-GPU FIFO streams and memory-saving operators
(swap-out/swap-in/drop/recompute) on copy streams and link lanes,
while the *memory manager* tracks per-device usage.

Compute runs at **layer granularity**: each stage's forward/backward
pass is a chain of per-layer tasks, so activations materialize
progressively and swap-outs of early layers overlap the forward of
later ones — the overlap behaviour the paper's runtime gets from
dedicated CUDA copy streams (Section III-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.plan import Action, MemorySavingPlan, empty_plan, validate_plan
from repro.errors import OutOfMemoryError, SimulationError
from repro.faults.inject import FaultInjector
from repro.faults.report import ResilienceReport
from repro.faults.spec import FaultSchedule
from repro.graph.dataflow import ComputeNode, Program, build_program
from repro.graph.tensor import TensorClass, TensorKind, tensor_classes_for
from repro.hardware.bandwidth import transfer_time
from repro.job import TrainingJob
from repro.pipeline.schedule import OpKind
from repro.sim.engine import Engine, Task
from repro.sim.memory import DeviceMemory, MemoryModel, PinnedPool
from repro.sim.resources import StreamSet
from repro.sim.trace import Trace, TraceEvent


@dataclass(frozen=True)
class ExecOptions:
    """Knobs of one simulation run.

    ``prefetch_lead`` — a swap-in may begin once the compute task
    this many positions before its consumer finishes, keeping the
    copy off the critical path.

    ``swap_backpressure`` — the memory manager's allocator
    backpressure: a layer's forward pass for microbatch ``k`` cannot
    start until the same layer's swap-out for microbatch
    ``k - window`` completed, bounding un-evicted generations in
    flight (a real allocator would stall the same way instead of
    OOMing).
    """

    strict: bool = True
    prefetch_lead: int = 3
    record_trace: bool = True
    gpu_capacity_override: Optional[int] = None
    swap_backpressure: int = 6
    # Optimizer state streams through in chunks so only a couple of
    # chunks are GPU-resident at once (a whole multi-GB blob would
    # not fit next to the working set at billion scale).
    opt_swap_chunk: int = 2 * 1024**3
    # Timed hardware faults injected into the run (slowdowns, link
    # degradation, device failures, NVMe stalls); None or an empty
    # schedule reproduces the fault-free execution exactly.
    faults: Optional[FaultSchedule] = None


@dataclass
class SimulationResult:
    """Outcome of one simulated training run."""

    job: TrainingJob
    plan: MemorySavingPlan
    ok: bool
    oom: Optional[OutOfMemoryError]
    makespan: float
    memory: MemoryModel
    trace: Trace
    minibatch_time: float
    # Populated when the run was executed under a fault schedule.
    resilience: Optional[ResilienceReport] = None

    @property
    def samples_per_second(self) -> float:
        if not self.ok or self.minibatch_time <= 0:
            return 0.0
        return self.job.samples_per_minibatch / self.minibatch_time

    @property
    def tflops(self) -> float:
        """Aggregate achieved model TFLOPS (the paper's Figures 7/8 metric)."""
        if not self.ok or self.minibatch_time <= 0:
            return 0.0
        return self.job.minibatch_flops() / self.minibatch_time / 1e12

    @property
    def peak_memory_per_gpu(self) -> List[int]:
        return self.memory.peaks()


class PipelineExecutor:
    """Builds and runs the task graph of one training iteration set."""

    def __init__(
        self,
        job: TrainingJob,
        plan: Optional[MemorySavingPlan] = None,
        options: ExecOptions = ExecOptions(),
    ):
        self.job = job
        self.options = options
        self.plan = plan if plan is not None else empty_plan(job.n_stages)
        if len(self.plan.device_map) != job.n_stages:
            raise SimulationError("plan device map does not cover all stages")
        self.program: Program = build_program(job.stage_plan, job.schedule)
        self.classes = tensor_classes_for(
            job.stage_plan, job.schedule, job.microbatch_size, job.bytes_per_element
        )
        validate_plan(self.plan, self.classes)

        self.engine = Engine()
        self.streams = StreamSet(self.engine)
        capacities = [
            options.gpu_capacity_override or gpu.memory_bytes for gpu in job.server.gpus
        ]
        self.memory = MemoryModel(
            capacities, job.server.host.memory_bytes, strict=options.strict
        )
        self.pinned = PinnedPool(capacity=job.server.host.memory_bytes // 2)
        self.trace = Trace()
        self.injector: Optional[FaultInjector] = None
        if options.faults is not None and not options.faults.is_empty:
            self.injector = FaultInjector(
                options.faults,
                self.engine,
                self.streams,
                job,
                self.memory,
                self.trace,
                record_trace=options.record_trace,
            )
            self.injector.arm()

        # (kind, stage, index) -> first/last per-layer task of the node.
        self._node_first: Dict[tuple, Task] = {}
        self._node_last: Dict[tuple, Task] = {}
        # (stage, microbatch, layer) -> per-layer compute task.
        self._fwd_layer: Dict[Tuple[int, int, int], Task] = {}
        self._bwd_layer: Dict[Tuple[int, int, int], Task] = {}
        # Per-stage compute tasks in issue order (for prefetch anchors).
        self._stage_order: Dict[int, List[Task]] = {}
        # Activation classes per stage, in layer order.
        self._stage_acts: Dict[int, List[TensorClass]] = {}
        for cls in self.classes:
            if cls.kind is TensorKind.ACTIVATION:
                self._stage_acts.setdefault(cls.stage, []).append(cls)
        for acts in self._stage_acts.values():
            acts.sort(key=lambda c: c.layer)
        self._by_kind: Dict[Tuple[str, int], TensorClass] = {
            (cls.kind.value, cls.stage): cls
            for cls in self.classes
            if cls.kind in (TensorKind.OPTIMIZER_STATE, TensorKind.STASHED_PARAMS)
        }

    # -- public API --------------------------------------------------------

    def run(self) -> SimulationResult:
        try:
            self._allocate_static()
            self._build_tasks()
            makespan = self.engine.run()
        except OutOfMemoryError as oom:
            return SimulationResult(
                job=self.job,
                plan=self.plan,
                ok=False,
                oom=oom,
                makespan=0.0,
                memory=self.memory,
                trace=self.trace,
                minibatch_time=0.0,
            )
        resilience = (
            self.injector.build_report(makespan) if self.injector is not None else None
        )
        return SimulationResult(
            job=self.job,
            plan=self.plan,
            ok=True,
            oom=None,
            makespan=makespan,
            memory=self.memory,
            trace=self.trace,
            minibatch_time=self._minibatch_time(makespan),
            resilience=resilience,
        )

    # -- hooks ----------------------------------------------------------------

    def _record(self, kind: str, device: int, microbatch: int, layer: int = -1):
        if not self.options.record_trace:
            return None

        def hook(task: Task, now: float) -> None:
            self.trace.record(
                TraceEvent(
                    name=task.name,
                    kind=kind,
                    device=device,
                    microbatch=microbatch,
                    start=task.start_time,
                    end=now,
                    layer=layer,
                )
            )

        return hook

    def _alloc_hook(self, device_mem: DeviceMemory, size: int, tag: str):
        def hook(task: Task, now: float) -> None:
            device_mem.alloc(size, now, tag=tag)

        return hook

    def _free_hook(self, device_mem: DeviceMemory, size: int, tag: str):
        def hook(task: Task, now: float) -> None:
            device_mem.free(size, now, tag=tag)

        return hook

    def _pin_hook(self, size: int):
        def hook(task: Task, now: float) -> None:
            self.pinned.take(size)

        return hook

    def _unpin_hook(self, size: int):
        def hook(task: Task, now: float) -> None:
            self.pinned.give(size)

        return hook

    @staticmethod
    def _chain(*hooks):
        live = [h for h in hooks if h is not None]
        if not live:
            return None
        if len(live) == 1:
            return live[0]

        def hook(task: Task, now: float) -> None:
            for h in live:
                h(task, now)

        return hook

    # -- static state --------------------------------------------------------

    def _device(self, stage: int) -> int:
        return self.plan.device_of(stage)

    def _allocate_static(self) -> None:
        """Model state resident from t=0, per the plan."""
        for cls in self.classes:
            device = self._device(cls.stage)
            gpu = self.memory.gpu(device)
            action = self.plan.action_for(cls)
            if cls.kind is TensorKind.WORKING_STATE:
                gpu.alloc(cls.peak_bytes, 0.0, tag=str(cls.key))
            elif cls.kind is TensorKind.OPTIMIZER_STATE:
                if action is Action.NONE:
                    gpu.alloc(cls.peak_bytes, 0.0, tag=str(cls.key))
                elif action is Action.CPU_SWAP:
                    # NVMe-tier blobs live on storage, not in host RAM.
                    if self.plan.entry_for(cls).tier == "host":
                        self.memory.host.alloc(cls.peak_bytes, 0.0, tag=str(cls.key))
                elif action is Action.D2D_SWAP:
                    stripe = self.plan.entry_for(cls).stripe
                    for importer in stripe.importers:
                        self.memory.gpu(importer).alloc(
                            stripe.bytes_to(importer), 0.0, tag=str(cls.key)
                        )
            # Activations and stashed versions are allocated dynamically.

    # -- task construction -----------------------------------------------

    def _build_tasks(self) -> None:
        self._build_compute_tasks()
        self._build_comm_tasks()
        self._build_activation_ops()
        self._build_optimizer_ops()

    def _build_compute_tasks(self) -> None:
        """Per-layer forward/backward chains on per-device FIFO streams.

        Recomputation tasks are queued immediately before the backward
        of their layer on the same stream, so they contend for GPU
        compute exactly as real recomputation does (the paper's
        up-to-33% recompute delay, Section II-D).
        """
        job = self.job
        for stage_index, stage_nodes in enumerate(self.program.per_stage):
            device = self._device(stage_index)
            compute = self.streams.get(("compute", device), mode="fifo")
            order: List[Task] = []
            self._stage_order[stage_index] = order
            layers = job.stage_plan.stage(stage_index).layers
            for node in stage_nodes:
                if node.kind is OpKind.OPTIMIZER:
                    task = Task(
                        name=node.name,
                        duration=job.optimizer_time(node.stage, device),
                        on_done=self._record("opt", device, node.minibatch),
                    )
                    self._node_first[node.key] = task
                    self._node_last[node.key] = task
                    compute.submit(task)
                    order.append(task)
                    continue
                first, last = self._submit_layer_chain(node, layers, device, compute, order)
                self._node_first[node.key] = first
                self._node_last[node.key] = last
        # Cross-node dependencies (same-stage fwd->bwd data edges).
        for node in self.program.nodes():
            for dep in node.deps:
                if dep.stage == node.stage:
                    self._node_first[node.key].add_dep(self._node_last[dep.key])

    def _submit_layer_chain(
        self,
        node: ComputeNode,
        layers,
        device: int,
        compute,
        order: List[Task],
    ) -> Tuple[Task, Task]:
        job = self.job
        mb = node.microbatch
        forward = node.kind is OpKind.FORWARD
        chain = layers if forward else list(reversed(layers))
        first: Optional[Task] = None
        last: Optional[Task] = None
        for layer in chain:
            flops = layer.forward_flops(job.microbatch_size)
            duration = (flops if forward else 2.0 * flops) / (
                job.server.gpu(device).peak_flops(job.precision) * job.mfu
            )
            if not forward:
                self._maybe_submit_recompute(node.stage, mb, layer, device, compute, order)
            task = Task(
                name=f"{node.kind.value}.s{node.stage}.m{mb}.l{layer.index}",
                duration=duration,
                on_done=self._record(node.kind.value, device, mb, layer.index),
            )
            compute.submit(task)
            order.append(task)
            key = (node.stage, mb, layer.index)
            if forward:
                self._fwd_layer[key] = task
            else:
                self._bwd_layer[key] = task
            if first is None:
                first = task
            last = task
        return first, last

    def _maybe_submit_recompute(
        self, stage: int, mb: int, layer, device: int, compute, order: List[Task]
    ) -> None:
        cls = self._activation_class(stage, layer.index)
        if cls is None or self.plan.action_for(cls) is not Action.RECOMPUTE:
            return
        task = Task(
            name=f"recompute.s{stage}.m{mb}.l{layer.index}",
            duration=self.job.layer_forward_time(layer, device),
            on_done=self._record("recompute", device, mb, layer.index),
        )
        compute.submit(task)
        order.append(task)
        self._fwd_layer[("recompute", stage, mb, layer.index)] = task

    def _activation_class(self, stage: int, layer_index: int) -> Optional[TensorClass]:
        for cls in self._stage_acts.get(stage, []):
            if cls.layer == layer_index:
                return cls
        return None

    # -- communication ---------------------------------------------------------

    def _link_task(
        self,
        name: str,
        size: int,
        src_dev: int,
        dst_dev: int,
        deps: List[Task],
        kind: str,
        microbatch: int,
        on_start=None,
        on_done=None,
    ) -> Task:
        """A point-to-point GPU transfer over one NVLink lane.

        Falls back to a staged PCIe route when the devices share no
        direct lane (possible on DGX-1 with a poor device mapping).
        """
        topology = self.job.server.topology
        record = self._record(kind, src_dev, microbatch)
        done = self._chain(record, on_done)
        if topology.lanes(src_dev, dst_dev) > 0:
            lane = topology.lane_channels(src_dev, dst_dev)[0]
            duration = transfer_time(size, topology.nvlink, lanes=1)
            task = Task(name, duration, deps=deps, on_start=on_start, on_done=done)
            self.streams.get(lane, mode="pool").submit(task)
            return task
        # Staged copy through host memory: D2H then H2D, serialized.
        duration = 2.0 * transfer_time(size, self.job.server.pcie, lanes=1)
        task = Task(name, duration, deps=deps, on_start=on_start, on_done=done)
        self.streams.get(("pcie_d2h", src_dev), mode="pool").submit(task)
        return task

    def _build_comm_tasks(self) -> None:
        """Activation/gradient transfers between adjacent stages."""
        job = self.job
        bpe = job.bytes_per_element
        for node in self.program.nodes():
            for dep in node.deps:
                if dep.stage == node.stage:
                    continue
                size = job.stage_plan.stage(min(dep.stage, node.stage)).boundary_bytes(
                    job.microbatch_size, bpe
                )
                comm = self._link_task(
                    name=f"comm.{dep.name}->{node.name}",
                    size=size,
                    src_dev=self._device(dep.stage),
                    dst_dev=self._device(node.stage),
                    deps=[self._node_last[dep.key]],
                    kind="comm",
                    microbatch=node.microbatch,
                )
                self._node_first[node.key].add_dep(comm)

    # -- activation memory ops --------------------------------------------------

    def _build_activation_ops(self) -> None:
        """Per (stage, layer, microbatch) tensor lifecycles.

        Swapped tensors form one eviction sequence per stage in
        generation order (microbatch-major, layer-minor); a new
        swapped tensor may only materialize once the tensor ``W``
        generations earlier has been evicted.  ``W`` is derived from
        the memory left over after resident state — this is the
        allocator's memory-pressure throttling, and it is what slows
        a PCIe-bound GPU-CPU-swap job down to the link rate (the
        paper's 67% swap-only throughput loss, Section II-D).
        """
        for stage in range(self.job.n_stages):
            device = self._device(stage)
            gpu = self.memory.gpu(device)
            window = self._backpressure_window(stage, gpu)
            history: List[Task] = []
            for node in self.program.per_stage[stage]:
                if node.kind is not OpKind.FORWARD:
                    continue
                mb = node.microbatch
                mb_start = len(history)
                for cls in self._stage_acts.get(stage, []):
                    fwd = self._fwd_layer[(stage, mb, cls.layer)]
                    bwd = self._bwd_layer[(stage, mb, cls.layer)]
                    if window is not None and len(history) >= window:
                        fwd.add_dep(history[len(history) - window])
                    join = self._wire_activation(cls, gpu, device, mb, fwd, bwd)
                    if join is not None:
                        history.append(join)
                stash_join = self._wire_stash(
                    stage, mb, gpu, device, window, history, mb_start
                )
                if stash_join is not None:
                    history.append(stash_join)

    def _backpressure_window(self, stage: int, gpu: DeviceMemory) -> Optional[int]:
        """Un-evicted swapped layer-tensors the allocator tolerates.

        The window is the number of concurrently-resident swapped
        tensors fitting in half the memory left after static state,
        resident activations, and recompute checkpoints (the other
        half covers swap-in prefetches and transients).  ``None``
        means no swapped tensors, hence no throttling.
        """
        swapped_sizes: List[int] = []
        resident = gpu.in_use  # static state was allocated before tasks
        for cls in self._stage_acts.get(stage, []):
            action = self.plan.action_for(cls)
            if action in (Action.CPU_SWAP, Action.D2D_SWAP):
                swapped_sizes.append(cls.size)
            elif action is Action.NONE:
                resident += cls.size * cls.instances
            elif action is Action.RECOMPUTE:
                boundary = self.job.model.layers[cls.layer].boundary_bytes(
                    self.job.microbatch_size, self.job.bytes_per_element
                )
                resident += boundary * cls.instances + cls.size
        stash = self._by_kind.get((TensorKind.STASHED_PARAMS.value, stage))
        if stash is not None and stash.instances > 0:
            if self.plan.action_for(stash) in (Action.CPU_SWAP, Action.D2D_SWAP):
                swapped_sizes.append(stash.size)
            else:
                resident += stash.size * stash.instances
        if not swapped_sizes:
            return None
        average = sum(swapped_sizes) / len(swapped_sizes)
        budget = max(0, gpu.capacity - resident)
        window = int(0.5 * budget / average)
        ceiling = self.options.swap_backpressure * max(1, len(swapped_sizes))
        return max(1, min(ceiling, window))

    def _wire_activation(
        self,
        cls: TensorClass,
        gpu: DeviceMemory,
        device: int,
        mb: int,
        fwd: Task,
        bwd: Task,
    ) -> Optional[Task]:
        """Wire one layer-tensor's lifecycle; returns its swap-out join."""
        action = self.plan.action_for(cls)
        tag = f"act.s{cls.stage}.l{cls.layer}.m{mb}"
        size = cls.size
        if action is Action.NONE:
            fwd.on_start = self._chain(fwd.on_start, self._alloc_hook(gpu, size, tag))
            bwd.on_done = self._chain(bwd.on_done, self._free_hook(gpu, size, tag))
            return None
        if action is Action.RECOMPUTE:
            self._wire_recompute(cls, gpu, device, mb, fwd, bwd, tag)
            return None
        fwd.on_start = self._chain(fwd.on_start, self._alloc_hook(gpu, size, tag))
        bwd.on_done = self._chain(bwd.on_done, self._free_hook(gpu, size, tag))
        anchor = self._anchor_before(cls.stage, bwd)
        entry = self.plan.entry_for(cls)
        if action is Action.CPU_SWAP:
            return self._wire_cpu_swap(
                tag, size, gpu, device, mb, fwd, bwd, anchor, tier=entry.tier
            )
        # Partial D2D: only the striped portion leaves the device.
        stripe = entry.stripe
        return self._wire_d2d_swap(
            tag, stripe.tensor_bytes, stripe, gpu, device, mb, fwd, bwd, anchor
        )

    def _anchor_before(self, stage: int, consumer: Task) -> Optional[Task]:
        """Compute task ``prefetch_lead`` positions before ``consumer``."""
        order = self._stage_order[stage]
        try:
            position = order.index(consumer)
        except ValueError:
            return None
        anchor_pos = position - self.options.prefetch_lead
        if anchor_pos < 0:
            return None
        return order[anchor_pos]

    def _wire_recompute(
        self,
        cls: TensorClass,
        gpu: DeviceMemory,
        device: int,
        mb: int,
        fwd: Task,
        bwd: Task,
        tag: str,
    ) -> None:
        """Per-layer checkpointing: drop internals, keep the boundary.

        The layer's internal activations exist during its forward
        pass, are dropped afterwards (only the boundary checkpoint
        stays), and are re-materialized by the recompute task queued
        just before the layer's backward pass.
        """
        boundary = self.job.model.layers[cls.layer].boundary_bytes(
            self.job.microbatch_size, self.job.bytes_per_element
        )
        internals = max(0, cls.size - boundary)
        fwd.on_start = self._chain(fwd.on_start, self._alloc_hook(gpu, cls.size, tag))
        fwd.on_done = self._chain(fwd.on_done, self._free_hook(gpu, internals, tag))
        recompute = self._fwd_layer[("recompute", cls.stage, mb, cls.layer)]
        recompute.on_start = self._chain(
            recompute.on_start, self._alloc_hook(gpu, internals, tag)
        )
        bwd.on_done = self._chain(bwd.on_done, self._free_hook(gpu, cls.size, tag))

    def _wire_cpu_swap(
        self,
        tag: str,
        size: int,
        gpu: DeviceMemory,
        device: int,
        mb: int,
        out_after: Task,
        in_before: Task,
        anchor: Optional[Task],
        tier: str = "host",
    ) -> Task:
        """GPU<->CPU swap over PCIe, optionally spilling to NVMe.

        With ``tier == "nvme"`` the tensor only stages through pinned
        host memory and continues to NVMe (ZeRO-Infinity style), so
        host residency stays bounded at the cost of the extra,
        slower NVMe legs.
        """
        host = self.memory.host
        duration = transfer_time(size, self.job.server.pcie, lanes=1)
        out = Task(
            name=f"swapout.{tag}",
            duration=duration,
            deps=[out_after],
            on_start=self._chain(self._alloc_hook(host, size, tag), self._pin_hook(size)),
            on_done=self._chain(
                self._free_hook(gpu, size, tag),
                self._unpin_hook(size),
                self._record("swap_out", device, mb),
            ),
        )
        self.streams.get(("pcie_d2h", device), mode="pool").submit(out)

        eviction_gate = out
        if tier == "nvme":
            nvme = self.job.server.nvme
            spill = Task(
                name=f"nvmewrite.{tag}",
                duration=size / nvme.write_bandwidth,
                deps=[out],
                on_done=self._free_hook(host, size, tag),
            )
            self.streams.get(("nvme", "write"), mode="pool").submit(spill)
            # Host staging is only reclaimed once NVMe absorbed the
            # tensor; gate the eviction sequence on that, so a slow
            # NVMe throttles producers instead of flooding the host.
            eviction_gate = spill
            fetch_deps = [spill] if anchor is None else [spill, anchor]
            fetch = Task(
                name=f"nvmeread.{tag}",
                duration=size / nvme.read_bandwidth,
                deps=fetch_deps,
                on_start=self._alloc_hook(host, size, tag),
            )
            self.streams.get(("nvme", "read"), mode="pool").submit(fetch)
            in_deps = [fetch]
        else:
            in_deps = [out] if anchor is None else [out, anchor]

        swap_in = Task(
            name=f"swapin.{tag}",
            duration=duration,
            deps=in_deps,
            on_start=self._chain(self._alloc_hook(gpu, size, tag), self._pin_hook(size)),
            on_done=self._chain(
                self._free_hook(host, size, tag),
                self._unpin_hook(size),
                self._record("swap_in", device, mb),
            ),
        )
        self.streams.get(("pcie_h2d", device), mode="pool").submit(swap_in)
        in_before.add_dep(swap_in)
        return eviction_gate

    def _wire_d2d_swap(
        self,
        tag: str,
        size: int,
        stripe,
        gpu: DeviceMemory,
        device: int,
        mb: int,
        out_after: Task,
        in_before: Task,
        anchor: Optional[Task],
    ) -> Task:
        """Striped device-to-device swap over NVLink lanes (Sec. III-C)."""
        nvlink = self.job.server.topology.nvlink
        out_blocks: List[Task] = []
        for index, block in enumerate(stripe.blocks):
            importer_mem = self.memory.gpu(block.importer)
            task = Task(
                name=f"d2dout.{tag}.b{index}",
                duration=transfer_time(block.size, nvlink, lanes=1),
                deps=[out_after],
                on_start=self._alloc_hook(importer_mem, block.size, tag),
            )
            self.streams.get(block.lane, mode="pool").submit(task)
            out_blocks.append(task)
        out_join = Task(
            name=f"d2dout.{tag}.join",
            duration=0.0,
            deps=out_blocks,
            on_done=self._chain(
                self._free_hook(gpu, size, tag), self._record("swap_out", device, mb)
            ),
        )
        self.streams.get(("d2d", device), mode="pool").submit(out_join)

        in_begin_deps = [out_join] if anchor is None else [out_join, anchor]
        in_begin = Task(
            name=f"d2din.{tag}.begin",
            duration=0.0,
            deps=in_begin_deps,
            on_done=self._alloc_hook(gpu, size, tag),
        )
        self.streams.get(("d2d", device), mode="pool").submit(in_begin)
        in_blocks: List[Task] = []
        for index, block in enumerate(stripe.blocks):
            importer_mem = self.memory.gpu(block.importer)
            task = Task(
                name=f"d2din.{tag}.b{index}",
                duration=transfer_time(block.size, nvlink, lanes=1),
                deps=[in_begin],
                on_done=self._free_hook(importer_mem, block.size, tag),
            )
            self.streams.get(block.return_lane, mode="pool").submit(task)
            in_blocks.append(task)
        in_join = Task(
            name=f"d2din.{tag}.join",
            duration=0.0,
            deps=in_blocks,
            on_done=self._record("swap_in", device, mb),
        )
        self.streams.get(("d2d", device), mode="pool").submit(in_join)
        in_before.add_dep(in_join)
        return out_join

    # -- stashed weight versions (PipeDream) -------------------------------

    def _wire_stash(
        self,
        stage: int,
        mb: int,
        gpu: DeviceMemory,
        device: int,
        window: Optional[int],
        history: List[Task],
        mb_start: int,
    ) -> Optional[Task]:
        """One stashed weight version's lifecycle; returns its out join.

        The version materializes when the microbatch's forward
        finishes and retires after its backward.  Swapped versions
        participate in the stage's eviction sequence, so a saturated
        link throttles weight stashing like any other generation.
        """
        cls = self._by_kind.get((TensorKind.STASHED_PARAMS.value, stage))
        if cls is None or cls.instances == 0:
            return None
        action = self.plan.action_for(cls)
        fwd_last = self._node_last[(OpKind.FORWARD.value, stage, mb)]
        bwd_key = (OpKind.BACKWARD.value, stage, mb)
        bwd_first = self._node_first[bwd_key]
        bwd_last = self._node_last[bwd_key]
        tag = f"stash.s{stage}.m{mb}"
        fwd_last.on_done = self._chain(
            fwd_last.on_done, self._alloc_hook(gpu, cls.size, tag)
        )
        bwd_last.on_done = self._chain(
            bwd_last.on_done, self._free_hook(gpu, cls.size, tag)
        )
        if action is Action.NONE:
            return None
        if window is not None and len(history) >= window:
            # The stash version materializes at the end of this
            # microbatch's forward, whose layer tasks already gate on
            # this microbatch's own joins — gating on one of those
            # here would be a self-cycle.  Use strictly older
            # generations only.
            index = min(len(history) - window, mb_start - 1)
            if index >= 0:
                fwd_last.add_dep(history[index])
        anchor = self._anchor_before(stage, bwd_first)
        entry = self.plan.entry_for(cls)
        if action is Action.CPU_SWAP:
            return self._wire_cpu_swap(
                tag, cls.size, gpu, device, mb, fwd_last, bwd_first, anchor,
                tier=entry.tier,
            )
        stripe = entry.stripe
        return self._wire_d2d_swap(
            tag, cls.size, stripe, gpu, device, mb, fwd_last, bwd_first, anchor
        )

    # -- optimizer state swapping ----------------------------------------------

    def _build_optimizer_ops(self) -> None:
        for stage in range(self.job.n_stages):
            cls = self._by_kind.get((TensorKind.OPTIMIZER_STATE.value, stage))
            if cls is None:
                continue
            action = self.plan.action_for(cls)
            if action is Action.NONE:
                continue
            device = self._device(stage)
            gpu = self.memory.gpu(device)
            first_bwd_of = self._first_backward_by_minibatch(stage)
            previous_outs: Optional[List[Task]] = None
            for node in self.program.per_stage[stage]:
                if node.kind is not OpKind.OPTIMIZER:
                    continue
                opt_task = self._node_first[node.key]
                anchor_node = first_bwd_of.get(node.minibatch)
                anchor = (
                    self._node_first[anchor_node.key] if anchor_node is not None else None
                )
                tag = f"opt.s{stage}.k{node.minibatch}"
                previous_outs = self._wire_opt_swap(
                    cls, action, tag, gpu, device, opt_task, anchor, previous_outs
                )

    def _first_backward_by_minibatch(self, stage: int) -> Dict[int, ComputeNode]:
        first: Dict[int, ComputeNode] = {}
        for node in self.program.per_stage[stage]:
            if node.kind is OpKind.BACKWARD and node.minibatch not in first:
                first[node.minibatch] = node
        return first

    def _opt_chunks(self, size: int, capacity: int) -> List[int]:
        """Chunk sizes for streaming optimizer state.

        Chunks never exceed 1/16 of device capacity, so a couple of
        in-flight chunks stay a small fraction of the device.
        """
        chunk = max(1, min(self.options.opt_swap_chunk, capacity // 16))
        sizes = []
        remaining = size
        while remaining > 0:
            take = min(chunk, remaining)
            sizes.append(take)
            remaining -= take
        return sizes

    def _wire_opt_swap(
        self,
        cls,
        action: Action,
        tag: str,
        gpu: DeviceMemory,
        device: int,
        opt_task: Task,
        anchor: Optional[Task],
        previous_outs: Optional[List[Task]],
    ) -> List[Task]:
        """Chunked optimizer-state swap around one optimizer step.

        The blob streams in chunk by chunk; each chunk is updated on
        a dedicated per-device optimizer stream and streamed back out
        immediately, so GPU residency stays at a couple of chunks —
        a whole billion-scale optimizer blob next to the working set
        would never fit.  The original optimizer task becomes a
        zero-cost join gating the next minibatch.
        """
        chunks = self._opt_chunks(cls.size, gpu.capacity)
        total = float(cls.size)
        step_time = opt_task.duration
        opt_task.duration = 0.0
        update_stream = self.streams.get(("optstep", device), mode="fifo")
        outs: List[Task] = []
        last_update: Optional[Task] = None
        for index, chunk in enumerate(chunks):
            chunk_tag = f"{tag}.c{index}"
            in_deps = []
            if previous_outs is not None:
                in_deps.append(previous_outs[index])
            if anchor is not None:
                in_deps.append(anchor)
            swap_in = self._opt_chunk_in(
                cls, action, chunk_tag, gpu, device, chunk, index, in_deps
            )
            update = Task(
                name=f"optstep.{chunk_tag}",
                duration=step_time * (chunk / total),
                deps=[swap_in],
            )
            update_stream.submit(update)
            out = self._opt_chunk_out(
                cls, action, chunk_tag, gpu, device, chunk, index, [update]
            )
            outs.append(out)
            last_update = update
        if last_update is not None:
            opt_task.add_dep(last_update)
        return outs

    def _opt_chunk_in(
        self, cls, action, tag, gpu, device, chunk, index, deps
    ) -> Task:
        if action is Action.CPU_SWAP:
            entry = self.plan.entry_for(cls)
            if entry.tier == "nvme":
                nvme = self.job.server.nvme
                fetch = Task(
                    name=f"nvmeread.{tag}",
                    duration=chunk / nvme.read_bandwidth,
                    deps=deps,
                )
                self.streams.get(("nvme", "read"), mode="pool").submit(fetch)
                deps = [fetch]
            swap_in = Task(
                name=f"swapin.{tag}",
                duration=transfer_time(chunk, self.job.server.pcie, lanes=1),
                deps=deps,
                on_start=self._alloc_hook(gpu, chunk, tag),
                on_done=self._record("swap_in", device, -1),
            )
            self.streams.get(("pcie_h2d", device), mode="pool").submit(swap_in)
            return swap_in
        # D2D: pull the chunk's share of every stripe block back.
        stripe = self.plan.entry_for(cls).stripe
        nvlink = self.job.server.topology.nvlink
        begin = Task(
            name=f"d2din.{tag}.begin",
            duration=0.0,
            deps=deps,
            on_done=self._alloc_hook(gpu, chunk, tag),
        )
        self.streams.get(("d2d", device), mode="pool").submit(begin)
        blocks = []
        fraction = chunk / float(cls.size)
        for b_index, block in enumerate(stripe.blocks):
            share = max(1, int(block.size * fraction))
            task = Task(
                name=f"d2din.{tag}.b{b_index}",
                duration=transfer_time(share, nvlink, lanes=1),
                deps=[begin],
            )
            self.streams.get(block.return_lane, mode="pool").submit(task)
            blocks.append(task)
        join = Task(
            name=f"d2din.{tag}.join",
            duration=0.0,
            deps=blocks,
            on_done=self._record("swap_in", device, -1),
        )
        self.streams.get(("d2d", device), mode="pool").submit(join)
        return join

    def _opt_chunk_out(
        self, cls, action, tag, gpu, device, chunk, index, deps
    ) -> Task:
        if action is Action.CPU_SWAP:
            entry = self.plan.entry_for(cls)
            out = Task(
                name=f"swapout.{tag}",
                duration=transfer_time(chunk, self.job.server.pcie, lanes=1),
                deps=deps,
                on_done=self._chain(
                    self._free_hook(gpu, chunk, tag), self._record("swap_out", device, -1)
                ),
            )
            self.streams.get(("pcie_d2h", device), mode="pool").submit(out)
            if entry.tier == "nvme":
                nvme = self.job.server.nvme
                spill = Task(
                    name=f"nvmewrite.{tag}",
                    duration=chunk / nvme.write_bandwidth,
                    deps=[out],
                )
                self.streams.get(("nvme", "write"), mode="pool").submit(spill)
                return spill
            return out
        stripe = self.plan.entry_for(cls).stripe
        nvlink = self.job.server.topology.nvlink
        blocks = []
        fraction = chunk / float(cls.size)
        for b_index, block in enumerate(stripe.blocks):
            share = max(1, int(block.size * fraction))
            task = Task(
                name=f"d2dout.{tag}.b{b_index}",
                duration=transfer_time(share, nvlink, lanes=1),
                deps=deps,
            )
            self.streams.get(block.lane, mode="pool").submit(task)
            blocks.append(task)
        join = Task(
            name=f"d2dout.{tag}.join",
            duration=0.0,
            deps=blocks,
            on_done=self._chain(
                self._free_hook(gpu, chunk, tag), self._record("swap_out", device, -1)
            ),
        )
        self.streams.get(("d2d", device), mode="pool").submit(join)
        return join

    # -- metrics -------------------------------------------------------------

    def _minibatch_time(self, makespan: float) -> float:
        """Steady-state minibatch period from stage 0's optimizer steps."""
        device = self._device(0)
        opt_ends = sorted(
            event.end
            for event in self.trace.events
            if event.kind == "opt" and event.device == device
        )
        if len(opt_ends) >= 2:
            return (opt_ends[-1] - opt_ends[0]) / (len(opt_ends) - 1)
        if self.job.n_minibatches > 0:
            return makespan / self.job.n_minibatches
        return makespan


def simulate(
    job: TrainingJob,
    plan: Optional[MemorySavingPlan] = None,
    strict: bool = True,
    prefetch_lead: int = 3,
    gpu_capacity_override: Optional[int] = None,
    faults: Optional[FaultSchedule] = None,
) -> SimulationResult:
    """Run one simulated training job and return its outcome.

    ``strict=True`` models real hardware — exceeding GPU memory
    aborts the job (result.ok is False).  ``strict=False`` records
    the overflow instead; this is the *emulator* mode the planner
    iterates with.

    ``faults`` injects a timed hardware fault schedule; the result
    then carries a :class:`~repro.faults.report.ResilienceReport`.
    """
    options = ExecOptions(
        strict=strict,
        prefetch_lead=prefetch_lead,
        gpu_capacity_override=gpu_capacity_override,
        faults=faults,
    )
    return PipelineExecutor(job, plan, options).run()
