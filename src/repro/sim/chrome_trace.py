"""Export simulation traces to Chrome's trace-event format.

Open the produced JSON in ``chrome://tracing`` (or Perfetto) to see
the pipeline execution the way the paper draws Figure 1: one row per
simulated resource, compute boxes interleaved with swap transfers.
Pass the fault schedule of a faulted run to overlay the injected
fault windows on their devices.

Times are exported in microseconds, as the format expects.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.sim.trace import Trace

# One process per device; lanes/copy engines become threads.
_KIND_THREADS = {
    "fwd": "compute",
    "bwd": "compute",
    "opt": "compute",
    "recompute": "compute",
    "comm": "nvlink",
    "swap_out": "swap",
    "swap_in": "swap",
    "recovery": "faults",
}

_KIND_COLORS = {
    "fwd": "good",
    "bwd": "bad",
    "recompute": "terrible",
    "opt": "yellow",
    "comm": "grey",
    "swap_out": "thread_state_iowait",
    "swap_in": "thread_state_running",
    "recovery": "terrible",
}

# pid for fault windows that touch no particular device (NVMe stalls).
_FAULT_PID = -1


def trace_to_events(trace: Trace) -> List[Dict]:
    """Lower a :class:`Trace` into chrome trace-event dicts."""
    events: List[Dict] = []
    for event in trace.events:
        thread = _KIND_THREADS.get(event.kind, "other")
        record = {
            "name": event.name,
            "cat": event.kind,
            "ph": "X",  # complete event
            "ts": event.start * 1e6,
            "dur": max(0.0, event.duration) * 1e6,
            "pid": event.device,
            "tid": thread,
            "args": {"microbatch": event.microbatch, "layer": event.layer},
        }
        color = _KIND_COLORS.get(event.kind)
        if color is not None:
            record["cname"] = color
        events.append(record)
    return events


def counter_events(trace: Trace) -> List[Dict]:
    """Per-device memory Counter events (``"ph": "C"``).

    Built from the ``trace.counters`` samples the interpreter's
    :class:`~repro.sim.events.MemoryCounterSampler` collects off the
    event bus; each device gets a ``GPU<i> mem (MiB)`` counter track
    rendered next to its compute/copy rows.  Deliberately excluded
    from :func:`trace_to_events` so golden trace digests are
    unaffected by counter instrumentation.
    """
    events: List[Dict] = []
    for sample in trace.counters:
        events.append({
            "name": f"GPU{sample.device} mem (MiB)",
            "ph": "C",
            "ts": sample.time * 1e6,
            "pid": sample.device,
            "args": {"MiB": sample.bytes_in_use / 2**20},
        })
    return events


def fault_events(faults) -> List[Dict]:
    """Chrome events marking every injected fault window.

    ``faults`` is a :class:`~repro.faults.spec.FaultSchedule`; windows
    land on the ``faults`` thread of the device they degrade, device
    failures as zero-duration instants followed by nothing (the
    recovery box comes from the trace itself).
    """
    events: List[Dict] = []
    for fault in faults:
        pid = fault.device if fault.device is not None else _FAULT_PID
        record = {
            "name": fault.kind.value,
            "cat": "fault",
            "ph": "X",
            "ts": fault.start * 1e6,
            "dur": max(0.0, fault.duration) * 1e6,
            "pid": pid,
            "tid": "faults",
            "cname": "terrible",
            "args": {"kind": fault.kind.value, "factor": fault.factor},
        }
        if fault.peer is not None:
            record["args"]["peer"] = fault.peer
        events.append(record)
    return events


def trace_to_chrome(trace: Trace, device_names: Dict[int, str] = None,
                    faults=None) -> Dict:
    """Full chrome-trace document (events + process metadata)."""
    events = trace_to_events(trace)
    if faults is not None:
        events.extend(fault_events(faults))
    events.extend(counter_events(trace))
    devices = sorted({e["pid"] for e in events})
    for device in devices:
        if device == _FAULT_PID:
            label = "faults"
        else:
            label = (device_names or {}).get(device, f"gpu{device}")
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": device,
            "args": {"name": label},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def save_chrome_trace(trace: Trace, path: str, device_names: Dict[int, str] = None,
                      faults=None) -> None:
    """Write the trace to ``path`` for chrome://tracing."""
    with open(path, "w") as handle:
        json.dump(trace_to_chrome(trace, device_names, faults=faults), handle)
