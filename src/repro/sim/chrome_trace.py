"""Export simulation traces to Chrome's trace-event format.

Open the produced JSON in ``chrome://tracing`` (or Perfetto) to see
the pipeline execution the way the paper draws Figure 1: one row per
simulated resource, compute boxes interleaved with swap transfers.

Times are exported in microseconds, as the format expects.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.sim.trace import Trace

# One process per device; lanes/copy engines become threads.
_KIND_THREADS = {
    "fwd": "compute",
    "bwd": "compute",
    "opt": "compute",
    "recompute": "compute",
    "comm": "nvlink",
    "swap_out": "swap",
    "swap_in": "swap",
}

_KIND_COLORS = {
    "fwd": "good",
    "bwd": "bad",
    "recompute": "terrible",
    "opt": "yellow",
    "comm": "grey",
    "swap_out": "thread_state_iowait",
    "swap_in": "thread_state_running",
}


def trace_to_events(trace: Trace) -> List[Dict]:
    """Lower a :class:`Trace` into chrome trace-event dicts."""
    events: List[Dict] = []
    for event in trace.events:
        thread = _KIND_THREADS.get(event.kind, "other")
        record = {
            "name": event.name,
            "cat": event.kind,
            "ph": "X",  # complete event
            "ts": event.start * 1e6,
            "dur": max(0.0, event.duration) * 1e6,
            "pid": event.device,
            "tid": thread,
            "args": {"microbatch": event.microbatch, "layer": event.layer},
        }
        color = _KIND_COLORS.get(event.kind)
        if color is not None:
            record["cname"] = color
        events.append(record)
    return events


def trace_to_chrome(trace: Trace, device_names: Dict[int, str] = None) -> Dict:
    """Full chrome-trace document (events + process metadata)."""
    events = trace_to_events(trace)
    devices = sorted({e.device for e in trace.events})
    for device in devices:
        label = (device_names or {}).get(device, f"gpu{device}")
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": device,
            "args": {"name": label},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def save_chrome_trace(trace: Trace, path: str, device_names: Dict[int, str] = None) -> None:
    """Write the trace to ``path`` for chrome://tracing."""
    with open(path, "w") as handle:
        json.dump(trace_to_chrome(trace, device_names), handle)
