"""Unobserved fast path: compiled event-tape replay of a program.

:class:`FastInterpreter` replays an :class:`~repro.sim.ir.InstructionProgram`
without building :class:`~repro.sim.engine.Task` objects, effect
closures, or an :class:`~repro.sim.events.EventBus`.  The program is
compiled once into a :class:`ProgramTape` — flat numpy/array tapes of
durations, stream bindings, dependency counts, and opcode-encoded
effects — and the event loop walks those tapes directly.  Memory
accounting still goes through the *real*
:class:`~repro.sim.memory.DeviceMemory` books and
:class:`~repro.sim.memory.PinnedPool`, so peaks, per-tag holdings,
timelines, and OOM attribution are identical to the reference
interpreter by construction, not by reimplementation.

Equivalence contract (enforced by ``tests/test_fastpath_equivalence.py``):
for any program with no external bus subscribers and no fault
schedule, :func:`run_program` produces a
:class:`~repro.sim.interpreter.SimulationResult` that is
*bit-identical* to ``Interpreter(program).run()`` — same event order,
same trace rows and counter samples, same memory books, same
makespan/minibatch floats.  The loop replicates the engine's exact
tie-breaking: streams kick in registration order, heap entries carry a
monotonically increasing sequence number (so equal completion times
pop in push order), and a finishing instruction wakes its own stream
first, then its dependents' streams in edge-declaration order.

Anything observational — external subscribers, fault schedules —
forces the reference :class:`~repro.sim.interpreter.Interpreter`;
:func:`wants_fast_path` is the single gate, and module counters
(:func:`fast_path_runs` / :func:`reference_runs`) record every
dispatch so tests can assert which path fired.

The interpreter can also snapshot its complete machine state every few
hundred completions; :mod:`repro.sim.incremental` resumes a later,
slightly different program of the same :class:`~repro.sim.lowering.Lowering`
from the newest snapshot that precedes the first divergence.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.errors import OutOfMemoryError, ScheduleError, SimulationError
from repro.sim.interpreter import Interpreter, SimulationResult
from repro.sim.ir import (
    HOST,
    Alloc,
    Drop,
    InstructionProgram,
    Pin,
    Record,
    Unpin,
)
from repro.sim.memory import MemoryModel, PinnedPool
from repro.sim.trace import CounterSample, Trace, TraceEvent

__all__ = [
    "FastInterpreter",
    "ProgramTape",
    "EngineSnapshot",
    "run_program",
    "wants_fast_path",
    "fast_path_runs",
    "reference_runs",
    "reset_run_counters",
]

# Effect opcodes on the compiled tape.
_ALLOC, _DROP, _PIN, _UNPIN, _RECORD = 0, 1, 2, 3, 4

# Task states (mirrors engine.TaskState, as small ints).
_PENDING, _RUNNING, _DONE = 0, 1, 2


class ProgramTape:
    """One program compiled to flat evaluation tapes.

    Compilation is vectorized where arrays help (durations via
    ``np.fromiter``, dependency fan-in via ``np.bincount`` over the
    edge tape); the hot loop then indexes plain lists, which is what a
    data-dependent arbitration loop evaluates fastest in CPython.  A
    tape is immutable and reusable across any number of runs of the
    same program.
    """

    __slots__ = (
        "program",
        "n",
        "names",
        "durations",
        "stream_keys",
        "stream_modes",
        "stream_of",
        "members",
        "dep_count",
        "dependents",
        "start_effects",
        "done_effects",
        "n_gpus",
    )

    def __init__(self, program: InstructionProgram):
        self.program = program
        instrs = program.instructions
        n = len(instrs)
        self.n = n
        self.names: List[str] = [i.name for i in instrs]
        self.durations: List[float] = np.fromiter(
            (i.duration for i in instrs), dtype=np.float64, count=n
        ).tolist()
        self.n_gpus = len(program.job.server.gpus)

        # Streams, in the recorded registration order; any stream a
        # program somehow uses without recording registers at first
        # submission, exactly as StreamSet.get would.
        index_of: Dict[Hashable, int] = {}
        self.stream_keys: List[Hashable] = []
        self.stream_modes: List[str] = []
        for key, mode in program.stream_order:
            if key not in index_of:
                index_of[key] = len(self.stream_keys)
                self.stream_keys.append(key)
                self.stream_modes.append(mode)
        stream_of: List[int] = []
        for instr in instrs:
            s = index_of.get(instr.stream)
            if s is None:
                s = len(self.stream_keys)
                index_of[instr.stream] = s
                self.stream_keys.append(instr.stream)
                self.stream_modes.append(instr.stream_mode)
            stream_of.append(s)
        self.stream_of = stream_of
        self.members: List[List[int]] = [[] for _ in self.stream_keys]
        for iid, s in enumerate(stream_of):
            self.members[s].append(iid)

        # Dependency fan-in per consumer and the per-producer dependent
        # list in edge-declaration order (drives wake-up order).
        if program.edges:
            edge_arr = np.asarray(program.edges, dtype=np.int64)
            self.dep_count: List[int] = np.bincount(
                edge_arr[:, 0], minlength=n
            ).tolist()
        else:
            self.dep_count = [0] * n
        dependents: List[List[int]] = [[] for _ in range(n)]
        for consumer, producer in program.edges:
            dependents[producer].append(consumer)
        self.dependents = dependents

        self.start_effects = [self._compile(i.start_effects) for i in instrs]
        self.done_effects = [self._compile(i.done_effects) for i in instrs]

    def _compile(self, effects) -> Optional[List[tuple]]:
        """Encode an effect list as opcode tuples (book index -1 = host)."""
        if not effects:
            return None
        ops: List[tuple] = []
        for eff in effects:
            if isinstance(eff, Alloc):
                ops.append((_ALLOC, -1 if eff.device == HOST else eff.device,
                            eff.size, eff.tag))
            elif isinstance(eff, Drop):
                ops.append((_DROP, -1 if eff.device == HOST else eff.device,
                            eff.size, eff.tag))
            elif isinstance(eff, Pin):
                ops.append((_PIN, eff.size))
            elif isinstance(eff, Unpin):
                ops.append((_UNPIN, eff.size))
            elif isinstance(eff, Record):
                ops.append((_RECORD, eff.kind, eff.device, eff.microbatch,
                            eff.layer))
            else:  # pragma: no cover - exhaustive over Effect
                raise TypeError(f"unknown effect {eff!r}")
        return ops


@dataclass
class EngineSnapshot:
    """Complete machine state between two event completions.

    Everything needed to resume the run from this instant: the event
    heap, per-instruction states and start times, per-stream dispatch
    cursors, and the sizes/usage of every memory book and the trace.
    Book timelines and trace rows are *not* copied — a resume slices
    the prefix out of the originating run's (append-only) lists.
    """

    now: float
    last_finish: float
    counter: int
    n_done: int
    heap: List[tuple]
    states: List[int]
    dep_remaining: List[int]
    starts: List[float]
    heads: List[int]
    running: List[int]
    scans: List[int]
    # Per book (gpu0..gpuN, host): (in_use, peak, tags, len(timeline), len(events))
    books: List[Tuple[int, int, Dict[str, int], int, int]]
    pinned: Tuple[int, int]
    trace_events: int
    trace_counters: int


class FastInterpreter:
    """Single-use tape replay of one program (no bus, no Task objects)."""

    def __init__(
        self,
        program: InstructionProgram,
        tape: Optional[ProgramTape] = None,
        snapshot_every: int = 0,
    ):
        self.program = program
        self.job = program.job
        self.plan = program.plan
        self.options = program.options
        self.tape = tape if tape is not None else ProgramTape(program)
        options = program.options
        job = program.job
        capacities = [
            options.gpu_capacity_override or gpu.memory_bytes for gpu in job.server.gpus
        ]
        self.memory = MemoryModel(
            capacities, job.server.host.memory_bytes, strict=options.strict
        )
        # books[-1] is the host, so the tape's -1 device index lands there.
        self.books = list(self.memory.gpus) + [self.memory.host]
        self.pinned = PinnedPool(capacity=job.server.host.memory_bytes // 2)
        self.trace = Trace()
        self._record = options.record_trace

        n = self.tape.n
        self.states: List[int] = [_PENDING] * n
        self.dep_remaining: List[int] = list(self.tape.dep_count)
        self.starts: List[float] = [0.0] * n
        self.ends: List[float] = [0.0] * n
        n_streams = len(self.tape.stream_keys)
        self.heads: List[int] = [0] * n_streams          # fifo dispatch cursor
        self.scans: List[int] = [0] * n_streams          # pool done-prefix skip
        self.running: List[int] = [-1] * n_streams
        self._heap: List[tuple] = []
        self._counter = 0
        self._now = 0.0
        self._last_finish = 0.0
        self._n_done = 0
        self._ran = False
        self.snapshot_every = snapshot_every
        self.snapshots: List[EngineSnapshot] = []
        self._since_snapshot = 0

    # -- public API --------------------------------------------------------

    def run(self) -> SimulationResult:
        if self._ran:
            raise SimulationError(
                "FastInterpreter is single-use; build a new one per run"
            )
        self._ran = True
        try:
            self._apply_static()
            self._kick_all()
            makespan = self._loop()
        except OutOfMemoryError as oom:
            return self._failure(oom)
        return self.finalize(makespan)

    def mark_consumed(self) -> None:
        """Reserve this interpreter for an externally driven resume."""
        if self._ran:
            raise SimulationError(
                "FastInterpreter is single-use; build a new one per run"
            )
        self._ran = True

    def finalize(self, makespan: float) -> SimulationResult:
        return SimulationResult(
            job=self.job,
            plan=self.plan,
            ok=True,
            oom=None,
            makespan=makespan,
            memory=self.memory,
            trace=self.trace,
            minibatch_time=self._minibatch_time(makespan),
            resilience=None,
        )

    def _failure(self, oom: OutOfMemoryError) -> SimulationResult:
        return SimulationResult(
            job=self.job,
            plan=self.plan,
            ok=False,
            oom=oom,
            makespan=0.0,
            memory=self.memory,
            trace=self.trace,
            minibatch_time=0.0,
        )

    # -- machine ----------------------------------------------------------

    def _apply_static(self) -> None:
        record = self._record
        counters = self.trace.counters
        for eff in self.program.static_effects:
            dev = -1 if eff.device == HOST else eff.device
            book = self.books[dev]
            book.alloc(eff.size, 0.0, tag=eff.tag)
            if record and dev >= 0:
                counters.append(
                    CounterSample(device=dev, time=0.0, bytes_in_use=book.in_use)
                )

    def _kick_all(self) -> None:
        for s in range(len(self.tape.stream_keys)):
            self._try_start(s)

    def _try_start(self, s: int) -> None:
        if self.running[s] >= 0:
            return
        tape = self.tape
        members = tape.members[s]
        states = self.states
        dep_remaining = self.dep_remaining
        if tape.stream_modes[s] == "fifo":
            head = self.heads[s]
            if head >= len(members):
                return
            iid = members[head]
            if states[iid] != _PENDING or dep_remaining[iid] != 0:
                return
        else:
            # Pool arbitration: first pending+ready task in submission
            # order among the not-yet-done members (the reference scans
            # a deque that pop_done removes finished tasks from).
            scan = self.scans[s]
            limit = len(members)
            while scan < limit and states[members[scan]] == _DONE:
                scan += 1
            self.scans[s] = scan
            iid = -1
            for pos in range(scan, limit):
                candidate = members[pos]
                if states[candidate] == _PENDING and dep_remaining[candidate] == 0:
                    iid = candidate
                    break
            if iid < 0:
                return
        now = self._now
        states[iid] = _RUNNING
        self.running[s] = iid
        self.starts[iid] = now
        effects = tape.start_effects[iid]
        if effects is not None:
            self._apply(effects, iid, now)
        self._counter += 1
        heapq.heappush(self._heap, (now + tape.durations[iid], self._counter, iid))

    def _finish(self, iid: int) -> None:
        now = self._now
        tape = self.tape
        states = self.states
        states[iid] = _DONE
        self.ends[iid] = now
        self._n_done += 1
        if now > self._last_finish:
            self._last_finish = now
        s = tape.stream_of[iid]
        self.running[s] = -1
        if tape.stream_modes[s] == "fifo":
            self.heads[s] += 1
        effects = tape.done_effects[iid]
        if effects is not None:
            self._apply(effects, iid, now)
        dependents = tape.dependents[iid]
        dep_remaining = self.dep_remaining
        for consumer in dependents:
            dep_remaining[consumer] -= 1
        # Own stream first, then dependents' streams in edge order —
        # the engine's exact wake-up discipline.
        self._try_start(s)
        seen = {s}
        stream_of = tape.stream_of
        for consumer in dependents:
            cs = stream_of[consumer]
            if cs not in seen:
                seen.add(cs)
                self._try_start(cs)

    def _apply(self, effects: List[tuple], iid: int, now: float) -> None:
        books = self.books
        record = self._record
        for op in effects:
            code = op[0]
            if code == _ALLOC:
                book = books[op[1]]
                book.alloc(op[2], now, tag=op[3])
                if record and op[1] >= 0:
                    self.trace.counters.append(
                        CounterSample(device=op[1], time=now, bytes_in_use=book.in_use)
                    )
            elif code == _DROP:
                book = books[op[1]]
                book.free(op[2], now, tag=op[3])
                if record and op[1] >= 0:
                    self.trace.counters.append(
                        CounterSample(device=op[1], time=now, bytes_in_use=book.in_use)
                    )
            elif code == _PIN:
                self.pinned.take(op[1])
            elif code == _UNPIN:
                self.pinned.give(op[1])
            elif record:  # _RECORD
                self.trace.record(
                    TraceEvent(
                        name=self.tape.names[iid],
                        kind=op[1],
                        device=op[2],
                        microbatch=op[3],
                        start=self.starts[iid],
                        end=now,
                        layer=op[4],
                    )
                )

    def _loop(self) -> float:
        heap = self._heap
        heappop = heapq.heappop
        snapshot_every = self.snapshot_every
        while heap:
            now, _seq, iid = heappop(heap)
            self._now = now
            self._finish(iid)
            if snapshot_every:
                self._since_snapshot += 1
                if self._since_snapshot >= snapshot_every and heap:
                    self._since_snapshot = 0
                    self.snapshots.append(self._snapshot())
        if self._n_done != self.tape.n:
            stuck = self._stuck_names()
            names = ", ".join(stuck[:8])
            raise ScheduleError(
                f"deadlock: {self.tape.n - self._n_done} tasks cannot run "
                f"(e.g. {names})"
            )
        return self._last_finish

    def _stuck_names(self) -> List[str]:
        names = []
        for members in self.tape.members:
            for iid in members:
                if self.states[iid] == _PENDING:
                    names.append(self.tape.names[iid])
        return names

    def _snapshot(self) -> EngineSnapshot:
        return EngineSnapshot(
            now=self._now,
            last_finish=self._last_finish,
            counter=self._counter,
            n_done=self._n_done,
            heap=list(self._heap),
            states=list(self.states),
            dep_remaining=list(self.dep_remaining),
            starts=list(self.starts),
            heads=list(self.heads),
            running=list(self.running),
            scans=list(self.scans),
            books=[
                (b.in_use, b.peak, dict(b._tags), len(b.timeline), len(b.events))
                for b in self.books
            ],
            pinned=(self.pinned.in_use, self.pinned.peak),
            trace_events=len(self.trace.events),
            trace_counters=len(self.trace.counters),
        )

    # -- metrics -----------------------------------------------------------

    def _minibatch_time(self, makespan: float) -> float:
        device = self.plan.device_of(0)
        opt_ends = sorted(
            event.end
            for event in self.trace.events
            if event.kind == "opt" and event.device == device
        )
        if len(opt_ends) >= 2:
            return (opt_ends[-1] - opt_ends[0]) / (len(opt_ends) - 1)
        if self.job.n_minibatches > 0:
            return makespan / self.job.n_minibatches
        return makespan


# -- dispatch ----------------------------------------------------------------

_RUNS = {"fast": 0, "reference": 0}


def wants_fast_path(program: InstructionProgram, subscribers=()) -> bool:
    """True when the run is unobserved: no external bus subscribers
    and no fault schedule.  Built-in trace/counter recording does not
    disqualify a run — the tape replay produces those natively."""
    if subscribers:
        return False
    faults = program.options.faults
    return faults is None or faults.is_empty


def run_program(program: InstructionProgram, subscribers=()) -> SimulationResult:
    """Run a program on the cheapest path that preserves its semantics."""
    if wants_fast_path(program, subscribers):
        _RUNS["fast"] += 1
        return FastInterpreter(program).run()
    _RUNS["reference"] += 1
    return Interpreter(program, subscribers=subscribers).run()


def fast_path_runs() -> int:
    """Process-wide count of fast-path dispatches (tests/benchmarks)."""
    return _RUNS["fast"]


def reference_runs() -> int:
    """Process-wide count of reference-interpreter dispatches."""
    return _RUNS["reference"]


def reset_run_counters() -> None:
    _RUNS["fast"] = 0
    _RUNS["reference"] = 0
