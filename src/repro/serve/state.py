"""Job lifecycle state shared between HTTP handlers and dispatchers.

A *job* is one client submission: an ordered list of tasks plus the
tenant it bills to.  The registry is the single source of truth the
HTTP layer reads (polling, long-poll waits, progress streams) and the
dispatcher threads write (unit started / unit resolved).  Every state
change bumps a per-job ``version`` and wakes the registry condition,
which is what makes long-polling and progress streams cheap: a reader
sleeps on the condition instead of spinning on ``GET /jobs/<id>``.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.runtime.task import SimTask
from repro.serve.backend import TaskResolution

QUEUED = "queued"
RUNNING = "running"
DONE = "done"


class JobState:
    """One submission's tasks and their resolutions (registry-locked)."""

    def __init__(self, job_id: str, tenant: str, priority: int,
                 tasks: Sequence[SimTask]):
        self.id = job_id
        self.tenant = tenant
        self.priority = priority
        self.tasks = list(tasks)
        n = len(self.tasks)
        self.unit_status: List[str] = [QUEUED] * n
        self.records: List[Optional[Dict]] = [None] * n
        self.sources: List[Optional[str]] = [None] * n
        self.errors: List[Optional[str]] = [None] * n
        self.attempts: List[int] = [0] * n
        self.version = 0
        self.created = time.time()
        self.finished: Optional[float] = None

    # -- derived ----------------------------------------------------------

    @property
    def total(self) -> int:
        return len(self.tasks)

    @property
    def done(self) -> int:
        return sum(1 for s in self.unit_status if s == DONE)

    @property
    def running(self) -> int:
        return sum(1 for s in self.unit_status if s == RUNNING)

    @property
    def status(self) -> str:
        if self.done == self.total:
            return DONE
        if self.running or self.done:
            return RUNNING
        return QUEUED

    @property
    def executed(self) -> int:
        return sum(1 for i, s in enumerate(self.sources)
                   if s in ("pool", "inline") and self.records[i] is not None)

    @property
    def cached(self) -> int:
        return sum(1 for s in self.sources if s == "cache")

    @property
    def coalesced(self) -> int:
        return sum(1 for s in self.sources if s == "coalesced")

    @property
    def failed(self) -> int:
        return sum(1 for i, s in enumerate(self.unit_status)
                   if s == DONE and self.records[i] is None)

    # -- JSON shapes -------------------------------------------------------

    def summary(self) -> Dict:
        return {
            "id": self.id,
            "tenant": self.tenant,
            "priority": self.priority,
            "status": self.status,
            "total": self.total,
            "done": self.done,
            "running": self.running,
            "executed": self.executed,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "failed": self.failed,
            "version": self.version,
            "created": self.created,
            "finished": self.finished,
        }

    def detail(self, results: str = "summary") -> Dict:
        """``results``: "none" | "summary" (per-task rows) | "full"."""
        payload = self.summary()
        if results in ("summary", "full"):
            payload["tasks"] = [
                {
                    "index": i,
                    "label": task.label,
                    "status": self.unit_status[i],
                    "source": self.sources[i],
                    "attempts": self.attempts[i],
                    "error": self.errors[i],
                    "ok": (self.records[i] is not None
                           if self.unit_status[i] == DONE else None),
                }
                for i, task in enumerate(self.tasks)
            ]
        if results == "full":
            payload["records"] = list(self.records)
        return payload


class JobRegistry:
    """Thread-safe registry of every job the server has accepted."""

    def __init__(self):
        self._cond = threading.Condition()
        self._jobs: Dict[str, JobState] = {}
        self._seq = 0
        self._tenants: Dict[str, Dict[str, int]] = {}

    # -- writes ------------------------------------------------------------

    def create(self, tenant: str, priority: int,
               tasks: Sequence[SimTask]) -> JobState:
        with self._cond:
            self._seq += 1
            job = JobState(f"j{self._seq:06d}", tenant, priority, tasks)
            self._jobs[job.id] = job
            account = self._tenants.setdefault(tenant, {
                "jobs": 0, "tasks": 0, "executed": 0, "cached": 0,
                "coalesced": 0, "failed": 0,
            })
            account["jobs"] += 1
            account["tasks"] += len(job.tasks)
            return job

    def mark_running(self, job_id: str, index: int) -> None:
        with self._cond:
            job = self._jobs[job_id]
            job.unit_status[index] = RUNNING
            job.version += 1
            self._cond.notify_all()

    def record(self, job_id: str, index: int,
               resolution: TaskResolution) -> None:
        with self._cond:
            job = self._jobs[job_id]
            job.unit_status[index] = DONE
            job.records[index] = resolution.record
            job.sources[index] = resolution.source
            job.errors[index] = resolution.error
            job.attempts[index] = resolution.attempts
            job.version += 1
            if job.done == job.total:
                job.finished = time.time()
            account = self._tenants[job.tenant]
            if resolution.source == "cache":
                account["cached"] += 1
            elif resolution.source == "coalesced":
                account["coalesced"] += 1
            elif resolution.ok:
                account["executed"] += 1
            if not resolution.ok:
                account["failed"] += 1
            self._cond.notify_all()

    # -- reads -------------------------------------------------------------

    def get(self, job_id: str) -> Optional[JobState]:
        with self._cond:
            return self._jobs.get(job_id)

    def summaries(self) -> List[Dict]:
        with self._cond:
            return [job.summary() for job in self._jobs.values()]

    def detail(self, job_id: str, results: str = "summary") -> Optional[Dict]:
        with self._cond:
            job = self._jobs.get(job_id)
            return job.detail(results) if job is not None else None

    def tenants(self) -> Dict[str, Dict[str, int]]:
        with self._cond:
            return {name: dict(account)
                    for name, account in self._tenants.items()}

    def wait(self, job_id: str, after_version: int = -1,
             timeout: Optional[float] = None,
             until_done: bool = False) -> Optional[Dict]:
        """Block until the job changes (or completes), then snapshot.

        Returns the job summary, or None for an unknown id.  With
        ``until_done`` the wait only ends at completion (or timeout);
        otherwise any version above ``after_version`` wakes it.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    return None
                ready = (job.status == DONE if until_done
                         else job.version > after_version)
                if ready:
                    return job.summary()
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return job.summary()
                self._cond.wait(timeout=remaining)
