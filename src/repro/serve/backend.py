"""Shared execution backend of the sweep server.

One :class:`ExecutionBackend` serves every tenant of a
:class:`~repro.serve.server.SweepServer`.  It is the long-running
sibling of :class:`~repro.runtime.pool.SweepRuntime`: the same worker
function (``repro.runtime.pool.execute_task``), the same
retry-with-exclusion crash semantics, but a *persistent* process pool
shared across requests instead of one pool per sweep, plus two layers
the one-shot runtime does not need:

* **shared cache** — all tenants read and write one
  :class:`~repro.runtime.ResultCache`, so a request warmed by any
  client is warm for every client;
* **in-flight coalescing** — two concurrent requests for the same
  content address run *one* simulation; the second blocks on the
  first's completion and shares its record.  Without this, identical
  sweeps racing each other would both miss the cache and duplicate
  every simulation.

A worker crash (the pool breaks) discards the pool generation and
rebuilds the pool; the task is retried up to ``retries`` times and
then *excluded* — attempted once inline in the server process, where
an ordinary exception is recorded per-task instead of taking the
server down.  This mirrors ``SweepRuntime._run_pool`` (docs/runtime.md),
so the runtime's battle-tested crash semantics apply to both paths.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.runtime import pool as pool_module
from repro.runtime.cache import ResultCache
from repro.runtime.task import SimTask


def _warmup() -> int:
    """No-op worker task used to pre-spawn pool processes."""
    import os

    return os.getpid()


@dataclass
class TaskResolution:
    """How the backend resolved one task."""

    key: str
    record: Optional[Dict]
    source: str            # "cache" | "pool" | "inline" | "coalesced"
    attempts: int = 1
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.record is not None


@dataclass
class _Inflight:
    """Rendezvous for requests coalesced onto one running simulation."""

    done: threading.Event = field(default_factory=threading.Event)
    record: Optional[Dict] = None
    error: Optional[str] = None
    waiters: int = 0


class ExecutionBackend:
    """Execute tasks on a shared persistent pool with a shared cache.

    Thread-safe: the server's dispatcher threads all call
    :meth:`execute` concurrently.  ``jobs`` bounds both the pool's
    worker processes and, via the server's dispatcher count, the
    number of concurrently running simulations.
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None,
                 retries: int = 2):
        if jobs < 1:
            raise ConfigurationError("backend jobs must be >= 1")
        if retries < 0:
            raise ConfigurationError("backend retries must be >= 0")
        self.jobs = jobs
        self.cache = cache
        self.retries = retries
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._inflight: Dict[str, _Inflight] = {}
        self._inflight_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self.executed = 0
        self.cache_hits = 0
        self.coalesced = 0
        self.failures = 0
        self.inline_runs = 0
        self.pool_generations = 0
        self._closed = False

    # -- pool lifecycle ---------------------------------------------------

    def _mp_context(self):
        import multiprocessing

        try:
            return multiprocessing.get_context("fork")
        except ValueError:                  # pragma: no cover — non-POSIX
            return multiprocessing.get_context()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._closed:
                raise RuntimeError("backend is shut down")
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs, mp_context=self._mp_context())
                self.pool_generations += 1
                # Spawn the workers now, before dispatcher threads are
                # hammering the queue, so forks happen from a quiet
                # process.
                for future in [self._pool.submit(_warmup)
                               for _ in range(self.jobs)]:
                    try:
                        future.result()
                    except BrokenProcessPool:   # pragma: no cover
                        break
            return self._pool

    def _discard_pool(self, broken: ProcessPoolExecutor) -> None:
        """Throw away a broken pool generation (next use rebuilds)."""
        with self._pool_lock:
            if self._pool is broken:
                self._pool = None
        broken.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # -- execution --------------------------------------------------------

    def execute(self, task: SimTask) -> TaskResolution:
        """Resolve one task: cache hit, coalesce, pool, or inline.

        Never raises on task failure — persistent errors come back in
        ``TaskResolution.error``, exactly like the sweep runtime's
        per-task outcomes.  Cached and coalesced records are re-labelled
        with the *caller's* task label, matching the runtime's
        cache-hit behaviour.
        """
        key = task.cache_key()
        if self.cache is not None:
            record = self.cache.get(key)
            if record is not None:
                with self._counter_lock:
                    self.cache_hits += 1
                return TaskResolution(key=key,
                                      record=dict(record, label=task.label),
                                      source="cache")

        # Coalesce concurrent requests for the same content address:
        # the first requester becomes the owner and simulates; the
        # rest wait for the owner's record.
        with self._inflight_lock:
            entry = self._inflight.get(key)
            owner = entry is None
            if owner:
                entry = self._inflight[key] = _Inflight()
            else:
                entry.waiters += 1

        if not owner:
            entry.done.wait()
            with self._counter_lock:
                self.coalesced += 1
                if entry.record is None:
                    self.failures += 1
            record = (dict(entry.record, label=task.label)
                      if entry.record is not None else None)
            return TaskResolution(key=key, record=record,
                                  source="coalesced", error=entry.error)

        try:
            resolution = self._run_with_retries(task, key)
        except BaseException:
            # The owner must never leave waiters hanging, even on an
            # interpreter-level abort.
            entry.error = "backend aborted"
            with self._inflight_lock:
                self._inflight.pop(key, None)
            entry.done.set()
            raise
        if resolution.ok and self.cache is not None:
            self.cache.put(key, resolution.record)
        with self._counter_lock:
            if resolution.ok:
                self.executed += 1
            else:
                self.failures += 1
        # Publish to waiters only after the cache write: a request
        # landing between the two would otherwise miss both layers
        # and duplicate the simulation.
        entry.record = resolution.record
        entry.error = resolution.error
        with self._inflight_lock:
            self._inflight.pop(key, None)
        entry.done.set()
        return resolution

    # -- single-task retry/exclusion --------------------------------------

    def _run_with_retries(self, task: SimTask, key: str) -> TaskResolution:
        """Pool attempts up to ``retries``+1, then the inline exclusion."""
        attempts = 0
        error: Optional[str] = None
        while attempts <= self.retries:
            attempts += 1
            pool = self._ensure_pool()
            try:
                future = pool.submit(pool_module.execute_task, task)
            except (RuntimeError, BrokenProcessPool):
                # Pool broken by a concurrent task's crash; rebuild
                # without charging this task an attempt.
                self._discard_pool(pool)
                attempts -= 1
                continue
            try:
                record = future.result()
            except BrokenProcessPool:
                # A worker died (crash, OOM-kill): this generation is
                # gone.  Rebuild and charge the task one attempt —
                # the same accounting as SweepRuntime._run_pool.
                self._discard_pool(pool)
                error = "BrokenProcessPool: worker crashed"
                continue
            except Exception as exc:    # noqa: BLE001 — retried, recorded
                error = f"{type(exc).__name__}: {exc}"
                continue
            return TaskResolution(key=key, record=record, source="pool",
                                  attempts=attempts)
        # Exclusion: one last inline attempt in the server process,
        # where a crashing config raises a catchable exception instead
        # of killing a worker.
        attempts += 1
        with self._counter_lock:
            self.inline_runs += 1
        try:
            record = pool_module.execute_task(task)
        except Exception as exc:        # noqa: BLE001 — recorded per-task
            error = f"{type(exc).__name__}: {exc}"
            record = None
        return TaskResolution(key=key, record=record, source="inline",
                              attempts=attempts, error=error if record is None else None)

    # -- introspection ----------------------------------------------------

    def counters(self) -> Dict:
        with self._counter_lock:
            return {
                "executed": self.executed,
                "cache_hits": self.cache_hits,
                "coalesced": self.coalesced,
                "failures": self.failures,
                "inline_runs": self.inline_runs,
                "pool_generations": self.pool_generations,
            }
