"""Planning-as-a-service: the multi-tenant sweep server.

``repro serve`` turns the sweep runtime into a long-running HTTP/JSON
capacity-planning service: jobspec-shaped requests are validated,
scheduled fair-share across tenants on a shared persistent process
pool, coalesced against in-flight duplicates, and answered from one
shared content-addressed result cache with LRU eviction.  See
``docs/serving.md`` for the API and tenancy model.
"""

from repro.serve.backend import ExecutionBackend, TaskResolution
from repro.serve.client import ServeClient, ServeError
from repro.serve.scheduler import FairShareScheduler, TaskUnit
from repro.serve.schemas import SubmitRequest, parse_submit
from repro.serve.server import SweepServer, serve
from repro.serve.state import JobRegistry, JobState

__all__ = [
    "ExecutionBackend",
    "TaskResolution",
    "ServeClient",
    "ServeError",
    "FairShareScheduler",
    "TaskUnit",
    "SubmitRequest",
    "parse_submit",
    "SweepServer",
    "serve",
    "JobRegistry",
    "JobState",
]
