"""The sweep server: planning-as-a-service over stdlib HTTP.

``repro serve`` boots one :class:`SweepServer`: a ThreadingHTTPServer
front end, ``jobs`` dispatcher threads pulling task units from a
:class:`~repro.serve.scheduler.FairShareScheduler`, and one shared
:class:`~repro.serve.backend.ExecutionBackend` (persistent process
pool + shared result cache).  Every sweep preset and job spec the CLI
understands is thereby a network workload.

API (all JSON; see docs/serving.md):

* ``GET  /healthz`` — liveness.
* ``POST /v1/jobs`` — submit a preset or task list; returns the job id.
* ``GET  /v1/jobs`` — job summaries.
* ``GET  /v1/jobs/<id>?results=none|summary|full`` — status, per-task
  progress, and (with ``full``) the simulation records.
* ``GET  /v1/jobs/<id>/wait?timeout=S&results=...`` — long-poll until
  the job completes (or the timeout lapses), then the same payload.
* ``GET  /v1/jobs/<id>/events`` — newline-delimited JSON progress
  stream, one summary per state change, closing when the job is done.
* ``GET  /v1/stats`` — backend counters, cache stats (hit rate,
  evictions), per-tenant accounting, scheduler backlog.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence
from urllib.parse import parse_qs, urlparse

from repro.errors import ConfigurationError
from repro.runtime.cache import ResultCache
from repro.runtime.task import SimTask
from repro.serve.backend import ExecutionBackend, TaskResolution
from repro.serve.scheduler import FairShareScheduler, TaskUnit
from repro.serve.schemas import parse_submit
from repro.serve.state import JobRegistry, JobState

_RESULT_LEVELS = ("none", "summary", "full")


class SweepServer:
    """Long-running multi-tenant sweep service (see module docstring)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 jobs: int = 1, cache: Optional[ResultCache] = None,
                 retries: int = 2, verbose: bool = False):
        self.backend = ExecutionBackend(jobs=jobs, cache=cache,
                                        retries=retries)
        self.scheduler = FairShareScheduler()
        self.registry = JobRegistry()
        self.verbose = verbose
        self.started = time.time()
        self._stopping = threading.Event()
        self._dispatchers: List[threading.Thread] = []
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.sweep_server = self
        self._http_thread: Optional[threading.Thread] = None

    # -- addressing --------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "SweepServer":
        """Start dispatchers and the HTTP listener (non-blocking)."""
        for n in range(self.backend.jobs):
            thread = threading.Thread(target=self._dispatch_loop,
                                      name=f"serve-dispatch-{n}",
                                      daemon=True)
            thread.start()
            self._dispatchers.append(thread)
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="serve-http", daemon=True)
        self._http_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting and executing; drains dispatchers."""
        self._stopping.set()
        self.scheduler.close()
        for thread in self._dispatchers:
            thread.join(timeout=30)
        self.backend.shutdown()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=10)

    def serve_forever(self) -> None:
        """Block until interrupted (the CLI entry point)."""
        try:
            while not self._stopping.is_set():
                time.sleep(0.5)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    # -- submission --------------------------------------------------------

    def submit(self, tenant: str, priority: int,
               tasks: Sequence[SimTask]) -> JobState:
        """Accept one job: register it and enqueue its task units."""
        if self._stopping.is_set():
            raise ConfigurationError("server is shutting down")
        if not tasks:
            raise ConfigurationError("a job needs at least one task")
        job = self.registry.create(tenant, priority, tasks)
        self.scheduler.submit([
            TaskUnit(tenant=tenant, job_id=job.id, index=index, task=task,
                     priority=priority)
            for index, task in enumerate(tasks)
        ])
        return job

    # -- dispatch ----------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            unit = self.scheduler.next_unit()
            if unit is None:
                return
            self.registry.mark_running(unit.job_id, unit.index)
            try:
                resolution = self.backend.execute(unit.task)
            except Exception as exc:    # noqa: BLE001 — server must survive
                resolution = TaskResolution(
                    key="", record=None, source="error",
                    error=f"{type(exc).__name__}: {exc}")
            self.registry.record(unit.job_id, unit.index, resolution)

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict:
        cache = self.backend.cache
        summaries = self.registry.summaries()
        return {
            "server": {
                "started": self.started,
                "uptime": time.time() - self.started,
                "jobs_slots": self.backend.jobs,
            },
            "backend": self.backend.counters(),
            "cache": cache.stats_dict() if cache is not None else None,
            "scheduler": {
                "backlog": self.scheduler.backlog(),
                "service": self.scheduler.service(),
            },
            "tenants": self.registry.tenants(),
            "jobs": {
                "total": len(summaries),
                "done": sum(1 for s in summaries if s["status"] == "done"),
                "running": sum(1 for s in summaries
                               if s["status"] == "running"),
                "queued": sum(1 for s in summaries
                              if s["status"] == "queued"),
            },
        }


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"

    @property
    def sweep(self) -> SweepServer:
        return self.server.sweep_server

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.sweep.verbose:
            super().log_message(format, *args)

    # -- plumbing ----------------------------------------------------------

    def _send_json(self, payload, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _query(self) -> Dict[str, str]:
        parsed = parse_qs(urlparse(self.path).query)
        return {key: values[-1] for key, values in parsed.items()}

    def _results_level(self, query: Dict[str, str], default="summary"):
        level = query.get("results", default)
        if level not in _RESULT_LEVELS:
            raise ConfigurationError(
                f"results must be one of {_RESULT_LEVELS}")
        return level

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        path = urlparse(self.path).path.rstrip("/")
        try:
            if path == "/healthz":
                self._send_json({"ok": True, "service": "repro-serve"})
            elif path == "/v1/stats":
                self._send_json(self.sweep.stats())
            elif path == "/v1/jobs":
                self._send_json({"jobs": self.sweep.registry.summaries()})
            elif path.startswith("/v1/jobs/"):
                self._get_job(path[len("/v1/jobs/"):])
            else:
                self._send_error_json(404, f"no such endpoint: {path}")
        except ConfigurationError as error:
            self._send_error_json(400, str(error))
        except BrokenPipeError:     # pragma: no cover — client went away
            self.close_connection = True

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        path = urlparse(self.path).path.rstrip("/")
        try:
            if path == "/v1/jobs":
                self._submit_job()
            else:
                self._send_error_json(404, f"no such endpoint: {path}")
        except ConfigurationError as error:
            self._send_error_json(400, str(error))
        except BrokenPipeError:     # pragma: no cover — client went away
            self.close_connection = True

    def _submit_job(self) -> None:
        length = int(self.headers.get("Content-Length", 0) or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ConfigurationError(f"invalid JSON body ({error})")
        request = parse_submit(payload)
        job = self.sweep.submit(request.tenant, request.priority,
                                request.tasks)
        self._send_json(job.summary(), status=202)

    def _get_job(self, tail: str) -> None:
        query = self._query()
        parts = tail.split("/")
        job_id = parts[0]
        action = parts[1] if len(parts) > 1 else None
        registry = self.sweep.registry
        if registry.get(job_id) is None:
            self._send_error_json(404, f"no such job: {job_id}")
            return
        if action is None:
            level = self._results_level(query)
            self._send_json(registry.detail(job_id, results=level))
        elif action == "wait":
            timeout = float(query.get("timeout", 60.0))
            registry.wait(job_id, until_done=True, timeout=timeout)
            level = self._results_level(query)
            self._send_json(registry.detail(job_id, results=level))
        elif action == "events":
            self._stream_events(job_id)
        else:
            self._send_error_json(404, f"no such job action: {action}")

    def _stream_events(self, job_id: str) -> None:
        """Newline-delimited JSON progress stream until the job is done.

        Close-delimited (``Connection: close``, no Content-Length), so
        any HTTP client that can read lines can follow progress.
        """
        registry = self.sweep.registry
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        version = -1
        while True:
            summary = registry.wait(job_id, after_version=version,
                                    timeout=0.5)
            if summary is None:     # pragma: no cover — job vanished
                return
            if summary["version"] > version or summary["status"] == "done":
                self.wfile.write(
                    (json.dumps(summary, sort_keys=True) + "\n")
                    .encode("utf-8"))
                self.wfile.flush()
                version = summary["version"]
                if summary["status"] == "done":
                    return
            if self.sweep._stopping.is_set():
                return


def serve(host: str = "127.0.0.1", port: int = 8787, jobs: int = 1,
          cache: Optional[ResultCache] = None, retries: int = 2,
          verbose: bool = False) -> SweepServer:
    """Build and start a server (the programmatic entry point)."""
    server = SweepServer(host=host, port=port, jobs=jobs, cache=cache,
                         retries=retries, verbose=verbose)
    return server.start()
