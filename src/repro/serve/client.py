"""Stdlib HTTP client for the sweep server.

Thin, dependency-free (urllib) wrapper over the JSON API — the
programmatic way to drive ``repro serve`` from scripts, tests, and
:mod:`repro.analysis.service`.  One instance is cheap and stateless;
every method opens its own connection.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Iterator, List, Optional
from urllib.error import HTTPError
from urllib.request import Request, urlopen

from repro.errors import ReproError


class ServeError(ReproError):
    """The server rejected a request or a job id is unknown."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(f"HTTP {status}: {message}")


class ServeClient:
    """Talk to one sweep server (``base_url`` like ``http://host:port``)."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------

    def _request(self, path: str, payload: Optional[Dict] = None,
                 timeout: Optional[float] = None) -> Dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = Request(url, data=data, headers=headers)
        try:
            with urlopen(request,
                         timeout=timeout or self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except HTTPError as error:
            try:
                message = json.loads(error.read().decode("utf-8"))["error"]
            except Exception:   # noqa: BLE001 — non-JSON error body
                message = error.reason
            raise ServeError(error.code, message)

    # -- API ---------------------------------------------------------------

    def health(self) -> Dict:
        return self._request("/healthz")

    def stats(self) -> Dict:
        return self._request("/v1/stats")

    def jobs(self) -> List[Dict]:
        return self._request("/v1/jobs")["jobs"]

    def submit(self, tasks: Optional[List[Dict]] = None,
               preset: Optional[str] = None, tenant: str = "default",
               priority: int = 0) -> str:
        """Submit task specs or a named preset; returns the job id."""
        payload: Dict = {"tenant": tenant, "priority": priority}
        if preset is not None:
            payload["preset"] = preset
        if tasks is not None:
            payload["tasks"] = tasks
        return self._request("/v1/jobs", payload=payload)["id"]

    def job(self, job_id: str, results: str = "summary") -> Dict:
        return self._request(f"/v1/jobs/{job_id}?results={results}")

    def wait(self, job_id: str, timeout: float = 300.0,
             results: str = "summary", poll: float = 10.0) -> Dict:
        """Block until the job is done (long-polling ``/wait``).

        Raises :class:`ServeError` (status 0) on timeout so callers
        don't mistake a half-finished job for a result.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeError(0, f"job {job_id} not done after {timeout}s")
            slice_ = min(poll, max(remaining, 0.05))
            detail = self._request(
                f"/v1/jobs/{job_id}/wait?timeout={slice_:.3f}"
                f"&results={results}",
                timeout=slice_ + self.timeout)
            if detail["status"] == "done":
                return detail

    def events(self, job_id: str,
               timeout: Optional[float] = None) -> Iterator[Dict]:
        """Follow a job's progress stream (one summary per change).

        Yields until the server closes the stream — which it does
        when the job completes.
        """
        url = f"{self.base_url}/v1/jobs/{job_id}/events"
        with urlopen(Request(url),
                     timeout=timeout or self.timeout) as response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
