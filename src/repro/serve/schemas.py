"""Request/response schemas of the sweep server's JSON API.

Submission bodies reuse the job-spec vocabulary (``repro.jobspec``):
one task spec is exactly a job spec plus ``system``/``label``/fault
keys, so any checked-in experiment spec can be POSTed verbatim.  Two
submission shapes exist::

    {"tenant": "alice", "priority": 1, "preset": "fig7"}
    {"tenant": "bob", "tasks": [
        {"model": "bert-0.35", "server": "dgx1", "system": "mpress"},
        {"model": "gpt-5.3", "server": "dgx1", "system": "recomputation",
         "nodes": 2, "tp": 2, "dp": 2},
        {"model": "gpt-5.3", "server": "dgx1", "nodes": 2, "shape": "auto"}
    ]}

``"shape": "auto"`` tasks run the autoplan shape search
(:mod:`repro.autoplan`) server-side; the record carries the ranked
report under ``"autoplan"`` and the winner's metrics at top level,
and the search's frontier shapes share the tenant-wide result cache
with explicit-shape sweeps of the same grid.

Validation errors raise :class:`~repro.errors.ConfigurationError`,
which the HTTP layer maps to a 400 with the message in the body.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.jobspec import task_from_spec
from repro.runtime.task import SimTask

DEFAULT_TENANT = "default"

# One submission is bounded so a single client cannot enqueue an
# unbounded amount of work in one request; sweeps larger than this
# should be split (and will then interleave fairly anyway).
MAX_TASKS_PER_REQUEST = 4096


@dataclass(frozen=True)
class SubmitRequest:
    """A validated job submission."""

    tenant: str
    priority: int
    tasks: List[SimTask]


def parse_submit(payload: Dict) -> SubmitRequest:
    """Validate a ``POST /v1/jobs`` body into tasks."""
    if not isinstance(payload, dict):
        raise ConfigurationError("submit body must be a JSON object")
    unknown = set(payload) - {"tenant", "priority", "preset", "tasks"}
    if unknown:
        raise ConfigurationError(f"unknown submit keys: {sorted(unknown)}")

    tenant = payload.get("tenant", DEFAULT_TENANT)
    if not isinstance(tenant, str) or not tenant:
        raise ConfigurationError("tenant must be a non-empty string")
    priority = payload.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ConfigurationError("priority must be an integer")

    preset = payload.get("preset")
    specs = payload.get("tasks")
    if (preset is None) == (specs is None):
        raise ConfigurationError(
            "submit body needs exactly one of 'preset' or 'tasks'")
    if preset is not None:
        from repro.runtime.presets import preset_tasks

        tasks = preset_tasks(preset)
    else:
        if not isinstance(specs, list) or not specs:
            raise ConfigurationError("'tasks' must be a non-empty list")
        tasks = [task_from_spec(spec) for spec in specs]
    if len(tasks) > MAX_TASKS_PER_REQUEST:
        raise ConfigurationError(
            f"submission of {len(tasks)} tasks exceeds the per-request "
            f"cap of {MAX_TASKS_PER_REQUEST}")
    return SubmitRequest(tenant=tenant, priority=priority, tasks=tasks)
