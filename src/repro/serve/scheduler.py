"""Fair-share, priority-aware task scheduling across tenants.

The server decomposes every submitted job into :class:`TaskUnit`\\ s —
one simulation each — and feeds them through one
:class:`FairShareScheduler`.  Dispatcher threads pull units one at a
time, so scheduling decisions happen at simulation granularity: a
tenant that submitted a 200-cell sweep cannot lock out a tenant that
arrives a moment later with a 2-cell one.

Policy (deterministic, so tests can pin it):

* **across tenants** — least-service-first: the next unit comes from
  the tenant with the fewest units dispatched so far among tenants
  with queued work; ties break on tenant name.  Two tenants with
  steady backlogs therefore alternate 1:1 regardless of queue depth.
* **within a tenant** — highest ``priority`` first, FIFO within a
  priority level (submission sequence).

Service is charged at dispatch time, one unit per task, including
units later resolved by the cache — the charge model is "scheduler
attention", not simulation seconds.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.runtime.task import SimTask


@dataclass(frozen=True)
class TaskUnit:
    """One schedulable simulation: a task plus its queueing identity."""

    tenant: str
    job_id: str
    index: int             # position within the job's task list
    task: SimTask
    priority: int = 0
    seq: int = 0           # global submission sequence (FIFO tiebreak)

    def sort_key(self):
        return (-self.priority, self.seq)


@dataclass
class _TenantQueue:
    service: int = 0
    heap: List = field(default_factory=list)

    def push(self, unit: TaskUnit) -> None:
        heapq.heappush(self.heap, (unit.sort_key(), unit))

    def pop(self) -> TaskUnit:
        return heapq.heappop(self.heap)[1]

    def __len__(self) -> int:
        return len(self.heap)


class FairShareScheduler:
    """Thread-safe multi-tenant unit queue (see module docstring)."""

    def __init__(self):
        self._cond = threading.Condition()
        self._tenants: Dict[str, _TenantQueue] = {}
        self._seq = 0
        self._closed = False

    def submit(self, units: Sequence[TaskUnit]) -> List[TaskUnit]:
        """Enqueue units (stamping their global sequence numbers)."""
        stamped: List[TaskUnit] = []
        with self._cond:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            for unit in units:
                self._seq += 1
                unit = TaskUnit(tenant=unit.tenant, job_id=unit.job_id,
                                index=unit.index, task=unit.task,
                                priority=unit.priority, seq=self._seq)
                queue = self._tenants.get(unit.tenant)
                if queue is None:
                    queue = self._tenants[unit.tenant] = _TenantQueue()
                queue.push(unit)
                stamped.append(unit)
            self._cond.notify_all()
        return stamped

    def next_unit(self, timeout: Optional[float] = None) -> Optional[TaskUnit]:
        """Dequeue the next unit, blocking; None when closed or timed out."""
        with self._cond:
            while True:
                candidates = [(queue.service, name)
                              for name, queue in self._tenants.items()
                              if len(queue)]
                if candidates:
                    _, name = min(candidates)
                    queue = self._tenants[name]
                    queue.service += 1
                    return queue.pop()
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None

    def close(self) -> None:
        """Stop the queue: blocked ``next_unit`` calls return None."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # -- introspection ----------------------------------------------------

    def backlog(self) -> Dict[str, int]:
        with self._cond:
            return {name: len(queue)
                    for name, queue in self._tenants.items() if len(queue)}

    def service(self) -> Dict[str, int]:
        """Units dispatched per tenant since the server started."""
        with self._cond:
            return {name: queue.service
                    for name, queue in self._tenants.items()}
