"""Command-line interface.

Examples::

    python -m repro run --model bert-0.64 --server dgx1 --system mpress
    python -m repro run --model gpt-5.3 --server dgx1 --faults seed:42
    python -m repro profile --model gpt-10.3 --server dgx1
    python -m repro plan --model gpt-20.4 --server dgx1 --out plan.json
    python -m repro zero --model gpt-25.5 --server dgx2 --variant infinity
    python -m repro capacity --family bert --server dgx1 --system recomputation
    python -m repro serve-sim --model gpt-5.3 --server dgx1 --kv-swap d2d
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.hardware.server import Server, dgx1_server, dgx2_server
from repro.job import TrainingJob, dapple_job, gpipe_job, pipedream_job
from repro.models import bert_variant, gpt_variant
from repro.models.bert import BERT_VARIANTS
from repro.models.gpt import GPT_VARIANTS
from repro.units import fmt_bytes

SERVERS = {"dgx1": dgx1_server, "dgx2": dgx2_server}
SYSTEMS = ("none", "recomputation", "gpu-cpu-swap", "d2d-only", "mpress")


def _parse_model(spec: str):
    """'bert-0.64' / 'gpt-10.3' -> a model variant."""
    try:
        family, size = spec.split("-", 1)
        billions = float(size.rstrip("bB"))
    except ValueError:
        raise ConfigurationError(
            f"model spec {spec!r} must look like 'bert-0.64' or 'gpt-10.3'"
        )
    if family.lower() == "bert":
        return bert_variant(billions)
    if family.lower() == "gpt":
        return gpt_variant(billions)
    raise ConfigurationError(f"unknown model family {family!r}")


def _build_server(name: str) -> Server:
    builder = SERVERS.get(name)
    if builder is None:
        raise ConfigurationError(f"unknown server {name!r}; options: {sorted(SERVERS)}")
    return builder()


def _build_cluster(args, force: bool = False):
    """``--nodes``/``--fabric`` -> a Cluster, or None for one box.

    ``force`` builds a single-server cluster even at ``--nodes 1`` so
    TP-only runs go through the cluster path.
    """
    from repro.hardware.cluster import make_cluster
    from repro.hardware.links import FABRICS

    nodes = getattr(args, "nodes", 1) or 1
    if nodes <= 1 and not force:
        return None
    fabric_name = getattr(args, "fabric", "ib-edr")
    fabric = FABRICS.get(fabric_name)
    if fabric is None:
        raise ConfigurationError(
            f"unknown fabric {fabric_name!r}; options: {sorted(FABRICS)}")
    builder = SERVERS.get(args.server)
    if builder is None:
        raise ConfigurationError(
            f"unknown server {args.server!r}; options: {sorted(SERVERS)}")
    return make_cluster(builder, nodes, name=f"{nodes}x-{args.server}",
                        fabric=fabric)


def _require_single_node(args, command: str) -> None:
    nodes = getattr(args, "nodes", 1) or 1
    if nodes > 1:
        raise ConfigurationError(
            f"'{command}' simulates one server, but --nodes {nodes} asks "
            f"for a cluster; drop --nodes, or use 'hybrid --nodes {nodes}' "
            f"or 'sweep --nodes {nodes}' for cluster runs")


def _build_job(args) -> TrainingJob:
    if getattr(args, "spec", None):
        from repro.jobspec import load_job

        return load_job(args.spec)
    if not args.model:
        raise ConfigurationError("either --model or --spec is required")
    model = _parse_model(args.model)
    server = _build_server(args.server)
    builders = {"pipedream": pipedream_job, "dapple": dapple_job, "gpipe": gpipe_job}
    builder = builders.get(args.pipeline)
    if builder is None:
        raise ConfigurationError(f"unknown pipeline {args.pipeline!r}")
    kwargs = {}
    if args.microbatch is not None:
        kwargs["microbatch_size"] = args.microbatch
    return builder(model, server, **kwargs)


def _default_pipeline(model_spec: str) -> str:
    return "pipedream" if model_spec.lower().startswith("bert") else "dapple"


# -- subcommands --------------------------------------------------------------


def _resolve_faults(spec: str, job: TrainingJob, horizon: float):
    """``--faults`` argument: a JSON schedule path or ``seed:N``.

    ``seed:N`` generates a random campaign over the fault-free run's
    makespan, so the injected windows land inside the training run.
    """
    from repro.faults import load_faults, random_schedule

    if spec.startswith("seed:"):
        try:
            seed = int(spec.split(":", 1)[1])
        except ValueError:
            raise ConfigurationError(f"--faults {spec!r}: seed must be an integer")
        return random_schedule(seed=seed, n_devices=job.server.n_gpus, horizon=horizon)
    try:
        return load_faults(spec)
    except OSError as error:
        raise ConfigurationError(f"--faults {spec!r}: {error}")
    except (ValueError, KeyError) as error:
        raise ConfigurationError(f"--faults {spec!r}: not a fault schedule ({error})")


def _cmd_run(args) -> int:
    import dataclasses

    from repro.core.mpress import MPress, run_system
    from repro.core.planner import baseline_config
    from repro.core.serialization import save_plan
    from repro.sim.chrome_trace import save_chrome_trace
    from repro.sim.executor import simulate

    _require_single_node(args, "run")
    job = _build_job(args)
    custom_knobs = getattr(args, "no_striping", False) or (
        getattr(args, "mapping", "auto") != "auto"
    )
    config = None
    if args.system != "none":
        config = baseline_config(args.system)
        if custom_knobs:
            config = dataclasses.replace(
                config,
                striping=not args.no_striping,
                mapping_mode=args.mapping,
            )
    if config is not None:
        result = MPress(job, config).run()
    else:
        result = run_system(job, args.system)
    status = "ok" if result.ok else "OUT OF MEMORY"
    print(f"{job.model.config.name} / {args.system} on {job.server.name}: {status}")
    if result.ok:
        print(f"  throughput: {result.tflops:.1f} TFLOPS "
              f"({result.samples_per_second:.1f} samples/s)")
        peaks = result.simulation.peak_memory_per_gpu
        print(f"  per-GPU peaks: {' '.join(fmt_bytes(p) for p in peaks)}")
        print(result.plan.summary())
    faulted = None
    faults = None
    if args.faults and result.ok:
        faults = _resolve_faults(args.faults, job, result.simulation.makespan)
        # Re-plan for the degraded machine, then train through the
        # fault campaign; the fault-free run above is the yardstick.
        if config is not None:
            faulted = MPress(job, config, faults=faults).run().simulation
        else:
            faulted = simulate(job, result.plan, strict=True, faults=faults)
        if faulted.ok and faulted.resilience is not None:
            print(f"  --- fault campaign ({args.faults}) ---")
            print("  " + faulted.resilience.summary().replace("\n", "\n  "))
            print(f"  fault-free: {result.samples_per_second:.2f} samples/s | "
                  f"goodput: "
                  f"{faulted.resilience.goodput_samples_per_second:.2f} samples/s")
        elif not faulted.ok:
            print("  fault campaign: OUT OF MEMORY")
        if args.faults_report and faulted.resilience is not None:
            with open(args.faults_report, "w") as handle:
                handle.write(faulted.resilience.to_json())
            print(f"  resilience report written to {args.faults_report}")
    if args.save_plan:
        save_plan(result.plan, args.save_plan)
        print(f"  plan written to {args.save_plan}")
    if args.chrome_trace and result.ok:
        traced = faulted if faulted is not None and faulted.ok else result.simulation
        save_chrome_trace(traced.trace, args.chrome_trace, faults=faults)
        print(f"  chrome trace written to {args.chrome_trace}")
    ok = result.ok and (faulted is None or faulted.ok)
    return 0 if ok else 1


def _cmd_profile(args) -> int:
    from repro.core.profiler import Profiler

    _require_single_node(args, "profile")
    job = _build_job(args)
    profile = Profiler(job).run()
    print(f"{job.model.config.name} on {job.server.name} ({job.system}):")
    for stage, peak in enumerate(profile.stage_peaks):
        flag = " OVER" if peak > job.server.gpu_memory else ""
        print(f"  stage {stage}: {fmt_bytes(peak)}{flag}")
    print(f"  total demand {fmt_bytes(profile.total_demand())} "
          f"vs {fmt_bytes(job.server.total_gpu_memory)} available")
    shares = profile.memory_breakdown_percent()
    print("  breakdown: " + ", ".join(f"{k} {v:.0f}%" for k, v in shares.items()))
    return 0


def _cmd_plan(args) -> int:
    from repro.core.mpress import MPress
    from repro.core.planner import PlannerConfig
    from repro.core.serialization import save_plan

    job = _build_job(args)
    placement = None
    cluster = None
    if (getattr(args, "nodes", 1) or 1) > 1 or args.tp > 1:
        from repro.parallel.cluster import ClusterConfig, plan_chain_job

        cluster = _build_cluster(args, force=True)
        config = ClusterConfig(tp=args.tp, dp=args.dp, pp=args.pp,
                               sequence_parallel=args.sp)
        job, placement = plan_chain_job(job, cluster, config)
        if not args.json:
            chain = ",".join(str(d) for d in placement.chain(0, 0))
            print(f"cluster {cluster.name}: tp={placement.tp} "
                  f"dp={placement.dp} pp={placement.pp} ({placement.mode} "
                  f"placement); planning chain [{chain}]")
    mpress = MPress(job, PlannerConfig(search=args.search))
    plan = mpress.build_plan()
    report = mpress.planner_report
    if args.json:
        from repro.units import GiB

        payload = {
            "model": job.model.config.name,
            "server": job.server.name,
            "search": args.search,
            "feasible": report.feasible,
            "minibatch_seconds": report.final_time,
            "refine_iterations": report.refine_iterations,
            "accepted_upgrades": report.accepted_upgrades,
            "n_full_sims": report.n_full_sims,
            "n_fast_path": report.n_fast_path,
            "per_gpu_peak_gib": [
                peak / GiB for peak in report.profile.stage_peaks],
            "shape": None,
        }
        if placement is not None:
            payload["shape"] = {
                "tp": placement.tp, "dp": placement.dp, "pp": placement.pp,
                "placement_mode": placement.mode,
                "cluster": cluster.name,
                "score": placement.score,
            }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(plan.summary())
        print(f"feasible: {report.feasible}; emulated minibatch "
              f"{report.final_time:.2f}s after {report.refine_iterations} "
              f"refinements")
        print(f"search={args.search}: {report.n_full_sims} full simulations, "
              f"{report.n_fast_path} candidates priced analytically")
    if args.out:
        save_plan(plan, args.out)
        if not args.json:
            print(f"plan written to {args.out}")
    return 0 if report.feasible else 1


def _cmd_autoplan(args) -> int:
    """Shape search: rank every (tp, dp, pp) the job could run with."""
    from repro.autoplan import AutoPlanConfig, autoplan

    job = _build_job(args)
    cluster = _build_cluster(args, force=True)
    config = AutoPlanConfig(
        budget_gib=args.budget_gib,
        frontier_fraction=args.frontier_fraction,
        max_frontier=args.max_frontier,
        sequence_parallel=args.sp,
    )
    runtime = _sweep_runtime(args) if (args.jobs > 1 or args.cache) else None
    report = autoplan(job, cluster, config=config, system=args.system,
                      runtime=runtime)
    if args.json:
        print(report.json_text(job))
    else:
        print(report.summary())
    best = report.best
    return 0 if best is not None and best.ok else 1


def _cmd_zero(args) -> int:
    from repro.baselines.zero import ZeroOptions, run_zero

    model = _parse_model(args.model)
    server = _build_server(args.server)
    options = ZeroOptions(
        ring_efficiency=args.ring_efficiency,
        comm_overlap=args.comm_overlap,
        comm_model=args.comm_model,
    )
    result = run_zero(model, server, args.variant, args.samples,
                      options=options)
    if not result.ok:
        print(f"ZeRO-{args.variant} cannot train {model.config.name}: {result.reason}")
        return 1
    print(f"ZeRO-{args.variant} / {model.config.name} on {server.name}: "
          f"{result.tflops:.1f} TFLOPS "
          f"(compute {result.compute_time:.2f}s, "
          f"comm exposed {result.comm_exposed:.2f}s, "
          f"offload exposed {result.offload_exposed:.2f}s)")
    return 0


def _cmd_hybrid_cluster(args) -> int:
    """3D path: TP x DP x PP over a (possibly single-server) cluster."""
    from repro.analysis.reporting import format_table
    from repro.parallel import ClusterConfig, run_cluster
    from repro.units import MiB

    job = _build_job(args)
    cluster = _build_cluster(args, force=True)
    config = ClusterConfig(
        tp=args.tp,
        dp=args.dp,
        pp=args.pp,
        sequence_parallel=args.sp,
        algorithm=args.algorithm,
        bucket_bytes=int(args.bucket_mib * MiB),
        overlap=not args.no_overlap,
        collective_mode=args.collective,
        placement_mode=args.cluster_placement,
    )
    result = run_cluster(job, cluster, config, system=args.system)
    status = "ok" if result.ok else "OUT OF MEMORY"
    print(f"{job.model.config.name} / tp={result.tp} dp={result.dp} "
          f"pp={result.pp} {args.system} on {cluster.name}: {status}")
    chains = " | ".join(
        ";".join(",".join(str(d) for d in chain) for chain in replica)
        for replica in result.placement.chains)
    print(f"  placement ({result.placement.mode}): {chains}")
    if not result.ok:
        print(f"  {result.oom}")
        return 1
    print(f"  throughput: {result.tflops:.1f} TFLOPS "
          f"({result.samples_per_second:.1f} samples/s, "
          f"{result.dp} x {job.samples_per_minibatch} samples/minibatch)")
    print(f"  minibatch: {result.minibatch_time * 1e3:.2f} ms "
          f"(chain {result.chain_minibatch_time * 1e3:.2f} ms + "
          f"TP sync {result.exposed_tp_sync * 1e3:.2f} ms + "
          f"exposed all-reduce {result.exposed_allreduce * 1e3:.2f} ms)")
    if result.tp_sync:
        rows = [
            [str(sync.stage), str(sync.n_groups),
             f"{sync.microbatch_seconds * 1e3:.3f}",
             f"{sync.minibatch_seconds * 1e3:.3f}"]
            for sync in result.tp_sync
        ]
        print(format_table(
            ["stage", "groups", "microbatch ms", "minibatch ms"],
            rows, title="tensor-parallel collectives"))
    if result.stage_allreduce:
        rows = [
            [
                str(sync.stage),
                ",".join(str(d) for d in sync.devices),
                sync.algorithm,
                fmt_bytes(sync.grad_bytes),
                str(sync.n_buckets),
                f"{sync.allreduce_seconds * 1e3:.3f}",
                f"{sync.exposed_seconds * 1e3:.3f}",
            ]
            for sync in result.stage_allreduce
        ]
        print(format_table(
            ["stage", "devices", "algorithm", "grads", "buckets",
             "all-reduce ms", "exposed ms"],
            rows, title="gradient synchronisation"))
    peaks = result.peak_memory_per_gpu()
    print(f"  per-GPU peaks: {' '.join(fmt_bytes(p) for p in peaks)}")
    return 0


def _cmd_hybrid(args) -> int:
    from repro.analysis.reporting import format_table
    from repro.parallel import HybridConfig, run_hybrid
    from repro.units import MiB

    if (getattr(args, "nodes", 1) or 1) > 1 or args.tp > 1:
        return _cmd_hybrid_cluster(args)
    job = _build_job(args)
    config = HybridConfig(
        dp=args.dp,
        algorithm=args.algorithm,
        bucket_bytes=int(args.bucket_mib * MiB),
        overlap=not args.no_overlap,
        collective_mode=args.collective,
        placement_mode=args.placement,
    )
    result = run_hybrid(job, config, system=args.system)
    status = "ok" if result.ok else "OUT OF MEMORY"
    print(f"{job.model.config.name} / dp={config.dp} x "
          f"{result.placement.stages_per_replica}-stage {args.system} "
          f"on {job.server.name}: {status}")
    groups = " | ".join(
        ",".join(str(d) for d in group) for group in result.placement.groups)
    print(f"  placement ({result.placement.mode}): {groups}")
    if not result.ok:
        print(f"  {result.oom}")
        return 1
    print(f"  throughput: {result.tflops:.1f} TFLOPS "
          f"({result.samples_per_second:.1f} samples/s, "
          f"{result.dp} x {job.samples_per_minibatch} samples/minibatch)")
    print(f"  minibatch: {result.minibatch_time * 1e3:.2f} ms "
          f"(replica {result.replica_minibatch_time * 1e3:.2f} ms + "
          f"exposed all-reduce {result.exposed_allreduce * 1e3:.2f} ms)")
    if result.stage_allreduce:
        rows = [
            [
                str(sync.stage),
                ",".join(str(d) for d in sync.devices),
                sync.algorithm,
                fmt_bytes(sync.grad_bytes),
                str(sync.n_buckets),
                f"{sync.allreduce_seconds * 1e3:.3f}",
                f"{sync.exposed_seconds * 1e3:.3f}",
            ]
            for sync in result.stage_allreduce
        ]
        print(format_table(
            ["stage", "devices", "algorithm", "grads", "buckets",
             "all-reduce ms", "exposed ms"],
            rows, title="gradient synchronisation"))
    peaks = result.peak_memory_per_gpu()
    print(f"  per-GPU peaks: {' '.join(fmt_bytes(p) for p in peaks)}")
    return 0


def _cmd_capacity(args) -> int:
    from repro.core.capacity import max_trainable_variant

    server = _build_server(args.server)
    if args.family == "bert":
        variants = {b: bert_variant(b) for b in sorted(BERT_VARIANTS)}
        builder = lambda model: pipedream_job(model, server)  # noqa: E731
    else:
        variants = {b: gpt_variant(b) for b in sorted(GPT_VARIANTS)}
        builder = lambda model: dapple_job(model, server)  # noqa: E731
    result = max_trainable_variant(variants, builder, args.system)
    if result.any_trainable:
        print(f"largest trainable {args.family} under {args.system}: "
              f"{result.largest}B (survivors: {result.survivors})")
        return 0
    print(f"no {args.family} variant trainable under {args.system}")
    return 1


def _cmd_project(args) -> int:
    from repro.analysis.projection import project

    print(project(n_devices=args.devices).summary())
    return 0


def _sweep_runtime(args):
    """Build a SweepRuntime from --jobs/--cache/--quiet flags."""
    from repro.runtime import ResultCache, RuntimeConfig, SweepRuntime

    cache = ResultCache(args.cache) if args.cache else None
    progress = None
    if not args.quiet:
        progress = lambda event: print(event.line(), file=sys.stderr)  # noqa: E731
    return SweepRuntime(RuntimeConfig(
        jobs=args.jobs, cache=cache, progress=progress,
    ))


def _cmd_sweep(args) -> int:
    from repro.analysis.reporting import format_table
    from repro.runtime import peak_gib, records_to_csv
    from repro.runtime.presets import preset_tasks

    if args.preset:
        tasks = preset_tasks(args.preset)
    else:
        if not args.models:
            raise ConfigurationError("either --preset or --models is required")
        from repro.analysis.sweep import sweep_tasks

        server = _build_server(args.server)
        builders = {"pipedream": pipedream_job, "dapple": dapple_job,
                    "gpipe": gpipe_job}
        jobs = {}
        for spec in args.models.split(","):
            spec = spec.strip()
            pipeline = args.pipeline or _default_pipeline(spec)
            jobs[spec] = builders[pipeline](_parse_model(spec), server)
        if (getattr(args, "nodes", 1) or 1) > 1:
            # Cluster sweep: the TP x DP x PP shape grid per model.
            from repro.analysis.cluster_scaling import cluster_scaling_tasks

            cluster = _build_cluster(args)
            systems = [s.strip() for s in args.systems.split(",")]
            tasks = []
            for job in jobs.values():
                for system in systems:
                    tasks.extend(cluster_scaling_tasks(job, cluster,
                                                       system=system))
        else:
            systems = [s.strip() for s in args.systems.split(",")]
            tasks = sweep_tasks(jobs, systems)

    runtime = _sweep_runtime(args)
    report = runtime.run(tasks)

    rows = []
    for outcome in report.outcomes:
        record = outcome.record
        if record is None:
            rows.append([outcome.task.label, "FAILED", "-", "-",
                         outcome.error or ""])
            continue
        status = "ok" if record["ok"] else "OOM"
        rows.append([
            record["label"],
            status,
            f"{record['tflops']:.1f}" if record["ok"] else "-",
            f"{peak_gib(record):.1f}" if record["ok"] else "-",
            outcome.source,
        ])
    print(format_table(["task", "status", "TFLOPS", "peak GiB", "source"],
                       rows, title=f"sweep ({len(tasks)} tasks)"))
    print(f"runtime: {report.summary()}")
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(records_to_csv(report.records()))
        print(f"csv written to {args.csv}")
    return 1 if report.failed else 0


def _cmd_serve_sim(args) -> int:
    """Simulate one LLM-serving episode (continuous batching + KV paging)."""
    from repro.inference import InferenceConfig, run_serving

    model = _parse_model(args.model)
    server = _build_server(args.server)
    config = InferenceConfig(
        seed=args.seed,
        n_requests=args.requests,
        arrival_rate=args.arrival_rate,
        prompt_mean=args.prompt_mean,
        output_mean=args.output_mean,
        block_tokens=args.block_tokens,
        max_batch=args.max_batch,
        pp=args.pp,
        kv_swap=args.kv_swap,
        kv_pool_mib=args.kv_pool_mib,
    )
    outcome = run_serving(model, server, config)
    metrics = outcome.metrics
    if args.json:
        print(json.dumps(metrics.to_json(), indent=2, sort_keys=True))
        return 0 if outcome.simulation.ok else 1
    status = "ok" if outcome.simulation.ok else "OUT OF MEMORY"
    print(f"{model.config.name} serving on {server.name} "
          f"(kv_swap={config.kv_swap}, pp={config.pp}): {status}")
    print(f"  {metrics.n_requests} requests, {metrics.n_iterations} "
          f"iterations, {metrics.total_output_tokens} tokens in "
          f"{metrics.makespan:.3f}s ({metrics.tokens_per_second:.1f} "
          f"tokens/sec)")
    print(f"  TTFT p50/p95/p99: {metrics.ttft_p50 * 1e3:.2f} / "
          f"{metrics.ttft_p95 * 1e3:.2f} / {metrics.ttft_p99 * 1e3:.2f} ms")
    print(f"  TPOT p50/p95/p99: {metrics.tpot_p50 * 1e3:.2f} / "
          f"{metrics.tpot_p95 * 1e3:.2f} / {metrics.tpot_p99 * 1e3:.2f} ms")
    print(f"  KV spill: {fmt_bytes(metrics.swapped_bytes)} across "
          f"{metrics.swapped_requests} requests; decode stall "
          f"{metrics.decode_stall_seconds * 1e3:.3f} ms; "
          f"{metrics.preemptions} preemptions")
    if metrics.prefix_cache_hits:
        print(f"  prefix cache: {metrics.prefix_cache_hits} hits, "
              f"{metrics.prefix_saved_tokens} prompt tokens reused")
    return 0 if outcome.simulation.ok else 1


def _cmd_cache(args) -> int:
    from repro.runtime import ResultCache
    from repro.units import MiB

    cache = ResultCache(args.cache)
    if args.action == "stats":
        if args.json:
            print(json.dumps(cache.stats_dict(), indent=2, sort_keys=True))
        else:
            print(cache.stats().summary())
        return 0
    if args.action == "evict":
        if args.max_mib is None:
            raise ConfigurationError("cache evict needs --max-mib")
        removed = cache.evict_to(int(args.max_mib * MiB))
        print(f"{args.cache}: evicted {removed} entries "
              f"(LRU, cap {args.max_mib:g} MiB)")
        return 0
    removed = cache.clear(keep_newer_than=args.keep_newer_than)
    guard = (f" (kept entries newer than {args.keep_newer_than:g}s)"
             if args.keep_newer_than is not None else "")
    print(f"{args.cache}: removed {removed} entries{guard}")
    return 0


def _cmd_serve(args) -> int:
    from repro.runtime import ResultCache
    from repro.serve import SweepServer
    from repro.units import MiB

    cache = None
    if args.cache:
        max_bytes = (int(args.cache_max_mib * MiB)
                     if args.cache_max_mib is not None else None)
        cache = ResultCache(args.cache, max_bytes=max_bytes)
    server = SweepServer(host=args.host, port=args.port, jobs=args.jobs,
                         cache=cache, retries=args.retries,
                         verbose=not args.quiet)
    server.start()
    print(f"repro serve listening on {server.url} "
          f"(jobs={args.jobs}, cache={args.cache or 'off'})", flush=True)
    server.serve_forever()
    return 0


# -- parser ----------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MPress (HPCA 2023) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_job_args(p):
        p.add_argument("--model", default=None, help="e.g. bert-0.64 or gpt-10.3")
        p.add_argument("--server", default="dgx1", choices=sorted(SERVERS))
        p.add_argument("--pipeline", default=None,
                       choices=("pipedream", "dapple", "gpipe"))
        p.add_argument("--microbatch", type=int, default=None)
        p.add_argument("--nodes", type=int, default=1, metavar="N",
                       help="server count (N>1 builds a cluster over --fabric)")
        p.add_argument("--fabric", default="ib-edr",
                       choices=("ib-edr", "ib-hdr", "eth-100g"),
                       help="inter-node link when --nodes > 1")
        p.add_argument("--spec", default=None, metavar="PATH",
                       help="JSON job spec (overrides the flags above)")

    run = sub.add_parser("run", help="simulate one training job")
    add_job_args(run)
    run.add_argument("--system", default="mpress", choices=SYSTEMS)
    run.add_argument("--no-striping", action="store_true",
                     help="disable D2D data striping (Figure 9 ablation)")
    run.add_argument("--mapping", default="auto",
                     choices=("auto", "exact", "greedy", "identity"),
                     help="device-mapping search mode")
    run.add_argument("--save-plan", default=None, metavar="PATH")
    run.add_argument("--chrome-trace", default=None, metavar="PATH")
    run.add_argument("--faults", default=None, metavar="SPEC",
                     help="fault campaign: a JSON schedule path or seed:N")
    run.add_argument("--faults-report", default=None, metavar="PATH",
                     help="write the ResilienceReport JSON here")
    run.set_defaults(func=_cmd_run)

    profile = sub.add_parser("profile", help="per-stage memory demands")
    add_job_args(profile)
    profile.set_defaults(func=_cmd_profile)

    plan = sub.add_parser("plan", help="build and save a memory-saving plan")
    add_job_args(plan)
    plan.add_argument("--tp", type=int, default=1,
                      help="tensor-parallel degree (plan one sharded chain)")
    plan.add_argument("--dp", type=int, default=1,
                      help="data-parallel degree (placement context)")
    plan.add_argument("--pp", type=int, default=0,
                      help="pipeline depth (0 = fill the replica block)")
    plan.add_argument("--sp", action="store_true",
                      help="sequence parallelism (with --tp)")
    plan.add_argument("--out", default=None, metavar="PATH")
    plan.add_argument(
        "--search",
        choices=("emulate", "coarse2fine"),
        default="emulate",
        help="refinement strategy: emulate every upgrade batch, or "
             "price candidates analytically and simulate only the "
             "frontier (docs/fastpath.md)",
    )
    plan.add_argument("--json", action="store_true",
                      help="machine-readable report (shape, score, "
                           "per-GPU peaks) instead of the summary")
    plan.set_defaults(func=_cmd_plan)

    autoplan = sub.add_parser(
        "autoplan",
        help="search the TP x DP x PP shape grid for the best shape")
    add_job_args(autoplan)
    autoplan.add_argument("--system", default="mpress", choices=SYSTEMS,
                          help="per-chain memory-saving system")
    autoplan.add_argument("--budget-gib", type=float, default=None,
                          metavar="GIB",
                          help="per-GPU memory budget (default: the "
                               "smallest GPU's memory)")
    autoplan.add_argument("--frontier-fraction", type=float, default=0.25,
                          metavar="F",
                          help="share of the valid grid to fully simulate")
    autoplan.add_argument("--max-frontier", type=int, default=None,
                          metavar="K",
                          help="hard cap on simulated shapes")
    autoplan.add_argument("--sp", action="store_true",
                          help="shard with sequence parallelism")
    autoplan.add_argument("--json", action="store_true",
                          help="machine-readable report (ranked shapes, "
                               "sync tails, per-GPU peaks, rejections)")
    autoplan.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="worker processes for the frontier")
    autoplan.add_argument("--cache", default=None, metavar="DIR",
                          help="content-addressed result cache directory")
    autoplan.add_argument("--quiet", action="store_true",
                          help="suppress per-task progress lines")
    autoplan.set_defaults(func=_cmd_autoplan)

    zero = sub.add_parser("zero", help="evaluate a ZeRO baseline")
    zero.add_argument("--model", required=True)
    zero.add_argument("--server", default="dgx1", choices=sorted(SERVERS))
    zero.add_argument("--variant", default="offload", choices=("offload", "infinity"))
    zero.add_argument("--samples", type=int, default=32)
    zero.add_argument("--ring-efficiency", type=float, default=0.8,
                      help="flat-model all-reduce efficiency (analytic mode)")
    zero.add_argument("--comm-overlap", type=float, default=0.5,
                      help="fraction of compute collectives overlap with")
    zero.add_argument("--comm-model", default="analytic",
                      choices=("analytic", "collective"),
                      help="flat-rate constants or topology-aware schedules")
    zero.set_defaults(func=_cmd_zero)

    hybrid = sub.add_parser(
        "hybrid", help="hybrid data x pipeline parallel run")
    add_job_args(hybrid)
    hybrid.add_argument("--system", default="mpress", choices=SYSTEMS,
                        help="per-replica memory-saving system")
    hybrid.add_argument("--dp", type=int, default=2,
                        help="data-parallel degree (replica count)")
    hybrid.add_argument("--tp", type=int, default=1,
                        help="tensor-parallel degree (>1 runs the 3D "
                             "cluster path, see docs/cluster.md)")
    hybrid.add_argument("--pp", type=int, default=0,
                        help="pipeline depth on the cluster path "
                             "(0 = fill each replica block)")
    hybrid.add_argument("--sp", action="store_true",
                        help="sequence parallelism (with --tp)")
    hybrid.add_argument("--cluster-placement", default="auto",
                        choices=("auto", "packed", "spread"),
                        help="replica packing across servers (cluster path)")
    hybrid.add_argument("--algorithm", default="auto",
                        choices=("auto", "ring", "tree", "hierarchical"),
                        help="gradient all-reduce algorithm")
    hybrid.add_argument("--bucket-mib", type=float, default=25.0,
                        metavar="MIB", help="gradient bucket size in MiB")
    hybrid.add_argument("--no-overlap", action="store_true",
                        help="disable backward/all-reduce overlap")
    hybrid.add_argument("--collective", default="analytic",
                        choices=("analytic", "simulate"),
                        help="price collectives analytically or via the IR")
    hybrid.add_argument("--placement", default="auto",
                        choices=("auto", "contiguous", "strided", "islands"),
                        help="replica placement over the topology")
    hybrid.set_defaults(func=_cmd_hybrid)

    capacity = sub.add_parser("capacity", help="largest trainable variant")
    capacity.add_argument("--family", required=True, choices=("bert", "gpt"))
    capacity.add_argument("--server", default="dgx1", choices=sorted(SERVERS))
    capacity.add_argument("--system", default="mpress", choices=SYSTEMS)
    capacity.set_defaults(func=_cmd_capacity)

    project = sub.add_parser("project", help="Section V superchip projection")
    project.add_argument("--devices", type=int, default=8)
    project.set_defaults(func=_cmd_project)

    sweep = sub.add_parser(
        "sweep", help="run a grid of simulations (parallel, cached)")
    sweep.add_argument("--preset", default=None,
                       help="a named grid: fig7, fig8-dgx1, fig8-dgx2, "
                            "fig9, hybrid-dgx1, cluster-2xdgx1, "
                            "serving-dgx1")
    sweep.add_argument("--models", default=None,
                       help="comma list, e.g. bert-0.64,gpt-5.3")
    sweep.add_argument("--server", default="dgx1", choices=sorted(SERVERS))
    sweep.add_argument("--nodes", type=int, default=1, metavar="N",
                       help="with --models: sweep TP x DP x PP shapes over "
                            "an N-server cluster")
    sweep.add_argument("--fabric", default="ib-edr",
                       choices=("ib-edr", "ib-hdr", "eth-100g"),
                       help="inter-node link when --nodes > 1")
    sweep.add_argument("--pipeline", default=None,
                       choices=("pipedream", "dapple", "gpipe"))
    sweep.add_argument("--systems", default="none,recomputation,mpress",
                       help="comma list of systems to sweep")
    sweep.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (1 = run inline)")
    sweep.add_argument("--cache", default=None, metavar="DIR",
                       help="content-addressed result cache directory")
    sweep.add_argument("--csv", default=None, metavar="PATH")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-task progress lines")
    sweep.set_defaults(func=_cmd_sweep)

    serve_sim = sub.add_parser(
        "serve-sim",
        help="simulate LLM serving (continuous batching, paged KV, D2D swap)")
    serve_sim.add_argument("--model", required=True, help="e.g. gpt-5.3")
    serve_sim.add_argument("--server", default="dgx1", choices=sorted(SERVERS))
    serve_sim.add_argument("--requests", type=int, default=16, metavar="N",
                           help="request count")
    serve_sim.add_argument("--seed", type=int, default=0,
                           help="workload RNG seed")
    serve_sim.add_argument("--arrival-rate", type=float, default=8.0,
                           metavar="R", help="mean arrivals per second")
    serve_sim.add_argument("--prompt-mean", type=int, default=128,
                           metavar="TOKENS")
    serve_sim.add_argument("--output-mean", type=int, default=32,
                           metavar="TOKENS")
    serve_sim.add_argument("--kv-swap", default="d2d",
                           choices=("d2d", "pcie", "none"),
                           help="KV overflow policy: stripe to spare GPUs, "
                                "spill to host, or preempt+recompute")
    serve_sim.add_argument("--pp", type=int, default=1,
                           help="pipeline stages serving the model")
    serve_sim.add_argument("--block-tokens", type=int, default=16,
                           metavar="TOKENS", help="KV page size")
    serve_sim.add_argument("--max-batch", type=int, default=8, metavar="N",
                           help="continuous-batching admission cap")
    serve_sim.add_argument("--kv-pool-mib", type=int, default=None,
                           metavar="MIB",
                           help="per-stage KV pool cap (default: all memory "
                                "left after weights)")
    serve_sim.add_argument("--json", action="store_true",
                           help="machine-readable metrics instead of the "
                                "summary")
    serve_sim.set_defaults(func=_cmd_serve_sim)

    cache = sub.add_parser("cache", help="inspect or evict the result cache")
    cache.add_argument("action", choices=("stats", "clear", "evict"))
    cache.add_argument("--cache", required=True, metavar="DIR")
    cache.add_argument("--json", action="store_true",
                       help="machine-readable stats (entries, bytes, shards, "
                            "evictions, hit_rate)")
    cache.add_argument("--keep-newer-than", type=float, default=None,
                       metavar="SECONDS",
                       help="with clear: spare entries touched within the "
                            "last SECONDS")
    cache.add_argument("--max-mib", type=float, default=None, metavar="MIB",
                       help="with evict: LRU-evict down to this size cap")
    cache.set_defaults(func=_cmd_cache)

    serve = sub.add_parser(
        "serve", help="multi-tenant sweep server (planning-as-a-service)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8787,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes / concurrent simulations")
    serve.add_argument("--cache", default=None, metavar="DIR",
                       help="shared content-addressed result cache")
    serve.add_argument("--cache-max-mib", type=float, default=None,
                       metavar="MIB",
                       help="LRU size cap for the shared cache")
    serve.add_argument("--retries", type=int, default=2,
                       help="pool retries before a task is excluded inline")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request access logs")
    serve.set_defaults(func=_cmd_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "pipeline", None) is None and getattr(args, "model", None):
        if hasattr(args, "microbatch"):
            args.pipeline = _default_pipeline(args.model)
    try:
        return args.func(args)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
