"""Per-layer model description used by partitioning and simulation.

A :class:`ModelSpec` is a flat list of :class:`LayerSpec` — embedding,
N transformer layers, and an output head — each knowing its parameter
count and how to compute its FLOPs / activation bytes for a given
microbatch size.  Pipeline partitioning (Section II-B) slices this
list into contiguous stages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError
from repro.models import costs
from repro.models.config import TransformerConfig


class LayerKind(enum.Enum):
    EMBEDDING = "embedding"
    TRANSFORMER = "transformer"
    HEAD = "head"


@dataclass(frozen=True)
class LayerSpec:
    """One layer of the model: static sizes plus per-microbatch costs."""

    index: int
    kind: LayerKind
    config: TransformerConfig

    @property
    def name(self) -> str:
        return f"{self.kind.value}{self.index}"

    @property
    def params(self) -> int:
        if self.kind is LayerKind.EMBEDDING:
            return costs.embedding_params(
                self.config.vocab, self.config.max_positions, self.config.hidden
            )
        if self.kind is LayerKind.TRANSFORMER:
            return costs.layer_params(self.config.hidden)
        # The output head ties weights with the token embedding, the
        # convention of both Bert and GPT; it owns no extra parameters.
        return 0

    def forward_flops(self, microbatch: int) -> float:
        cfg = self.config
        if self.kind is LayerKind.EMBEDDING:
            return costs.embedding_forward_flops(cfg.hidden, cfg.seq_len, microbatch)
        if self.kind is LayerKind.TRANSFORMER:
            return costs.layer_forward_flops(cfg.hidden, cfg.seq_len, microbatch)
        return costs.head_forward_flops(cfg.hidden, cfg.vocab, cfg.seq_len, microbatch)

    def backward_flops(self, microbatch: int) -> float:
        return 2.0 * self.forward_flops(microbatch)

    def activation_bytes(self, microbatch: int, bytes_per_element: int = 2) -> int:
        """Activations this layer must keep alive until its backward pass."""
        cfg = self.config
        if self.kind is LayerKind.TRANSFORMER:
            return costs.layer_activation_bytes(
                cfg.hidden, cfg.seq_len, microbatch, cfg.heads, bytes_per_element
            )
        # Embedding and head keep roughly one boundary-sized tensor.
        return costs.layer_boundary_bytes(cfg.hidden, cfg.seq_len, microbatch, bytes_per_element)

    def boundary_bytes(self, microbatch: int, bytes_per_element: int = 2) -> int:
        """Size of this layer's output tensor (what crosses stages)."""
        cfg = self.config
        return costs.layer_boundary_bytes(cfg.hidden, cfg.seq_len, microbatch, bytes_per_element)


@dataclass(frozen=True)
class ModelSpec:
    """A whole model as an ordered layer list."""

    config: TransformerConfig
    layers: List[LayerSpec]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ConfigurationError("a model needs at least one layer")
        for position, layer in enumerate(self.layers):
            if layer.index != position:
                raise ConfigurationError("layer indices must be contiguous from zero")

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def total_params(self) -> int:
        return sum(layer.params for layer in self.layers)

    def forward_flops(self, microbatch: int) -> float:
        return sum(layer.forward_flops(microbatch) for layer in self.layers)

    def backward_flops(self, microbatch: int) -> float:
        return sum(layer.backward_flops(microbatch) for layer in self.layers)

    def iteration_flops(self, batch: int) -> float:
        """FLOPs of one full forward+backward over ``batch`` samples."""
        return self.forward_flops(batch) + self.backward_flops(batch)


def build_model(config: TransformerConfig) -> ModelSpec:
    """Lay out embedding + transformer stack + head for ``config``."""
    layers = [LayerSpec(index=0, kind=LayerKind.EMBEDDING, config=config)]
    for offset in range(config.n_layers):
        layers.append(LayerSpec(index=1 + offset, kind=LayerKind.TRANSFORMER, config=config))
    layers.append(LayerSpec(index=1 + config.n_layers, kind=LayerKind.HEAD, config=config))
    return ModelSpec(config=config, layers=layers)
