"""Transformer model configuration and variant solving.

The paper scales Bert and GPT "deeper and wider by adjusting the
number of encoder layers and the value of hidden sizes" to reach the
parameter counts in Table II.  :func:`solve_hidden` performs the
width adjustment: given a depth and a parameter target, it finds the
hidden size (rounded to a multiple of the head size) whose total
parameter count lands closest to the target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.models import costs

HEAD_DIM = 64


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture of a Bert- or GPT-style transformer."""

    name: str
    n_layers: int
    hidden: int
    heads: int
    vocab: int
    seq_len: int
    max_positions: int

    def __post_init__(self) -> None:
        if self.n_layers < 1:
            raise ConfigurationError("model needs at least one layer")
        if self.hidden < self.heads or self.hidden % self.heads != 0:
            raise ConfigurationError(
                f"hidden ({self.hidden}) must be a positive multiple of heads ({self.heads})"
            )
        if self.seq_len > self.max_positions:
            raise ConfigurationError("seq_len exceeds max_positions")

    @property
    def total_params(self) -> int:
        """All trainable parameters (embeddings + transformer layers)."""
        return (
            costs.embedding_params(self.vocab, self.max_positions, self.hidden)
            + self.n_layers * costs.layer_params(self.hidden)
        )

    @property
    def billions(self) -> float:
        return self.total_params / 1e9

    def describe(self) -> str:
        return (
            f"{self.name}: {self.n_layers} layers x hidden {self.hidden} "
            f"({self.heads} heads), {self.billions:.2f}B params"
        )


def solve_hidden(
    target_params: float,
    n_layers: int,
    vocab: int,
    max_positions: int,
    head_dim: int = HEAD_DIM,
) -> int:
    """Hidden size whose model lands closest to ``target_params``.

    Scans hidden sizes in steps of ``head_dim`` (so head count stays
    integral) around the analytic estimate and returns the best fit.
    """
    if target_params <= 0:
        raise ConfigurationError("target parameter count must be positive")
    if n_layers < 1:
        raise ConfigurationError("layer count must be positive")

    # Analytic seed: target ~= n_layers * 12 h^2  =>  h ~ sqrt(target / 12L).
    seed = int((target_params / (12.0 * n_layers)) ** 0.5)
    seed = max(head_dim, (seed // head_dim) * head_dim)

    def total(hidden: int) -> int:
        return (
            costs.embedding_params(vocab, max_positions, hidden)
            + n_layers * costs.layer_params(hidden)
        )

    candidates = [seed + k * head_dim for k in range(-4, 5) if seed + k * head_dim >= head_dim]
    return min(candidates, key=lambda hidden: abs(total(hidden) - target_params))
