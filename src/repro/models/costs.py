"""Analytic cost formulas for transformer layers.

Parameter counts follow the standard accounting (attention QKV/out
projections + 4h MLP + layernorms + biases = ``12 h^2 + 13 h`` per
layer).  Activation footprints follow Korthikanti et al., "Reducing
Activation Recomputation in Large Transformer Models": a layer with
sequence length ``s``, microbatch ``b``, hidden ``h`` and ``a`` heads
stores ``s b h (34 + 5 a s / h)`` bytes at 2 bytes/element.

Memory per parameter uses mixed-precision training state accounting
(the regime both PipeDream-style and DAPPLE-style jobs in the paper
report in Table I): fp16 parameters (2 B) + fp16 gradients (2 B) +
fp32 master copy, momentum and variance (12 B) — so optimizer state
is 3x the size of parameters-plus-gradients, matching the paper's
46% vs 15% split.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

# Mixed-precision training state, bytes per parameter (the fp16
# regime: fp16 param + fp16 grad + fp32 master/momentum/variance).
PARAM_BYTES = 2
GRAD_BYTES = 2
OPTIMIZER_BYTES = 12  # fp32 master + Adam momentum + Adam variance


def state_bytes_per_param(bytes_per_element: int):
    """(param, grad, optimizer) bytes per parameter for a precision.

    fp32 training (PipeDream-era): fp32 params/grads, Adam m+v.
    fp16 mixed precision (DAPPLE-era): fp16 params/grads, fp32
    master + m + v.  Both total 16 bytes/param, but the split
    determines what weight stashing multiplies.
    """
    if bytes_per_element == 4:
        return 4, 4, 8
    if bytes_per_element == 2:
        return PARAM_BYTES, GRAD_BYTES, OPTIMIZER_BYTES
    raise ConfigurationError("bytes_per_element must be 2 (fp16) or 4 (fp32)")

# Elements stored per (token x hidden) position in one transformer
# layer's saved activations, and per (token x token x head) position
# in the attention matrices.  Two profiles, keyed by element width:
#
# * fp16 (2 B) — an optimized mixed-precision stack (DAPPLE-era):
#   the Korthikanti accounting's 17 linear elements, with fused
#   attention kernels keeping roughly one a*s^2 matrix.
# * fp32 (4 B) — an eager PyTorch-1.2-era stack (PipeDream): every
#   intermediate survives (pre/post softmax, dropout masks, GeLU
#   inputs, ...), roughly 29 linear and 4.7 attention elements.
#
# The coefficients are calibrated against the paper's Table II
# per-stage memory demands (Bert-0.64B stage 0 ~51 GB at microbatch
# 12; GPT-5.3B max stage ~28.5 GB at microbatch 2) and reproduce the
# paper's trainability boundaries in Figures 7/8.
_ACTIVATION_PROFILE = {
    2: (17.0, 1.0),
    4: (29.0, 4.7),
}


def layer_params(hidden: int) -> int:
    """Parameters in one transformer layer (attention + MLP + norms)."""
    _check_positive(hidden=hidden)
    return 12 * hidden * hidden + 13 * hidden


def embedding_params(vocab: int, max_positions: int, hidden: int) -> int:
    """Parameters in the embedding block (token + position tables)."""
    _check_positive(vocab=vocab, max_positions=max_positions, hidden=hidden)
    return (vocab + max_positions) * hidden


def layer_forward_flops(hidden: int, seq: int, microbatch: int) -> float:
    """FLOPs for one layer's forward pass over one microbatch.

    Matmul-dominated: ``24 s h^2`` for the projections/MLP plus
    ``4 s^2 h`` for attention score and context matmuls, per sample.
    """
    _check_positive(hidden=hidden, seq=seq, microbatch=microbatch)
    per_sample = 24.0 * seq * hidden * hidden + 4.0 * seq * seq * hidden
    return microbatch * per_sample


def layer_backward_flops(hidden: int, seq: int, microbatch: int) -> float:
    """Backward FLOPs, estimated as 2x forward (the paper, Sec. IV-A)."""
    return 2.0 * layer_forward_flops(hidden, seq, microbatch)


def layer_activation_split(
    hidden: int,
    seq: int,
    microbatch: int,
    heads: int,
    bytes_per_element: int = 2,
) -> tuple:
    """(linear, attention) activation bytes of one layer, one microbatch.

    Exposed separately because tensor parallelism shards the two parts
    differently: attention matrices split cleanly across heads, while
    a fraction of the linear activations stays replicated (see
    :data:`repro.sim.memory.TP_REPLICATED_LINEAR_FRACTION`).
    """
    _check_positive(hidden=hidden, seq=seq, microbatch=microbatch, heads=heads)
    if bytes_per_element not in _ACTIVATION_PROFILE:
        raise ConfigurationError("bytes_per_element must be 2 (fp16) or 4 (fp32)")
    linear_elems, attention_elems = _ACTIVATION_PROFILE[bytes_per_element]
    linear = linear_elems * seq * microbatch * hidden
    attention = attention_elems * heads * seq * seq * microbatch
    return (linear * bytes_per_element, attention * bytes_per_element)


def layer_activation_bytes(
    hidden: int,
    seq: int,
    microbatch: int,
    heads: int,
    bytes_per_element: int = 2,
) -> int:
    """Saved-for-backward activation bytes of one layer, one microbatch."""
    linear, attention = layer_activation_split(
        hidden, seq, microbatch, heads, bytes_per_element
    )
    return int(linear + attention)


def kv_cache_bytes_per_token(hidden: int, bytes_per_element: int = 2) -> int:
    """KV-cache bytes one transformer layer stores per generated token.

    Autoregressive decoding keeps the key and value projections of
    every past token resident — two ``hidden``-wide vectors per layer
    per token.  This is the quantity that makes the KV cache the
    dominant serving-time memory consumer and the tensor the
    inference D2D swap path stripes to spare-memory peers.
    """
    _check_positive(hidden=hidden, bytes_per_element=bytes_per_element)
    return 2 * hidden * bytes_per_element


def layer_decode_flops(hidden: int, context: int) -> float:
    """FLOPs for one layer's forward pass over a single decode token.

    The projections/MLP cost the same ``24 h^2`` as one position of a
    prefill pass; the attention matmuls score the new token against
    the full ``context`` of cached keys/values (``4 c h``).
    """
    _check_positive(hidden=hidden, context=context)
    return 24.0 * hidden * hidden + 4.0 * context * hidden


def layer_boundary_bytes(hidden: int, seq: int, microbatch: int, bytes_per_element: int = 2) -> int:
    """Bytes of the activation tensor crossing a layer boundary.

    This is the tensor shipped between pipeline stages — small
    relative to the saved activations, which is why inter-operator
    parallelism has the lightest communication (Section II-A).
    """
    _check_positive(hidden=hidden, seq=seq, microbatch=microbatch)
    return seq * microbatch * hidden * bytes_per_element


def embedding_forward_flops(hidden: int, seq: int, microbatch: int) -> float:
    """Embedding lookup cost: one read+add per position, negligible matmul."""
    _check_positive(hidden=hidden, seq=seq, microbatch=microbatch)
    return 2.0 * seq * microbatch * hidden


def head_forward_flops(hidden: int, vocab: int, seq: int, microbatch: int) -> float:
    """Output head (logits) matmul cost."""
    _check_positive(hidden=hidden, vocab=vocab, seq=seq, microbatch=microbatch)
    return 2.0 * seq * microbatch * hidden * vocab


def model_state_bytes(params: int) -> int:
    """Total training-state bytes for ``params`` parameters."""
    _check_positive(params=params)
    return params * (PARAM_BYTES + GRAD_BYTES + OPTIMIZER_BYTES)


# Tensor parallelism (Megatron-style).  Each sharded block ends in a
# row-parallel matmul whose partial sums must be all-reduced across
# the TP group; a transformer layer has two such blocks (attention
# out-projection and MLP down-projection), the embedding and the
# tied-weight head one each.  The backward pass mirrors the forward
# (all-reduces move to the column-parallel entry points), so the
# per-direction count is the same.  Every one of these all-reduces
# carries exactly one boundary-sized activation tensor — under
# sequence parallelism the all-reduce becomes reduce-scatter +
# all-gather, which on a ring moves identical bytes.


def tp_allreduce_count(kind: str) -> int:
    """TP all-reduces per direction (fwd or bwd) for one layer kind."""
    if kind == "transformer":
        return 2
    if kind in ("embedding", "head"):
        return 1
    raise ConfigurationError(f"unknown layer kind {kind!r}")


def tp_allreduce_bytes(hidden: int, seq: int, microbatch: int,
                       bytes_per_element: int = 2) -> int:
    """Payload of one TP all-reduce: one boundary-sized activation."""
    return layer_boundary_bytes(hidden, seq, microbatch, bytes_per_element)


def tp_layer_comm_bytes(kind: str, hidden: int, seq: int, microbatch: int,
                        bytes_per_element: int = 2) -> int:
    """Logical bytes all-reduced by one layer over fwd+bwd, one microbatch."""
    per_direction = tp_allreduce_count(kind)
    payload = tp_allreduce_bytes(hidden, seq, microbatch, bytes_per_element)
    return 2 * per_direction * payload


def _check_positive(**named_values: float) -> None:
    for name, value in named_values.items():
        if value <= 0:
            raise ConfigurationError(f"{name} must be positive, got {value}")
