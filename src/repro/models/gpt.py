"""GPT variants matching the paper's Table II parameter scales.

The paper trains GPT on Wikipedia (sequence length 1024) through
DAPPLE, with variants from 5.3B to 25.5B parameters.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigurationError
from repro.models.config import HEAD_DIM, TransformerConfig, solve_hidden
from repro.models.layers import ModelSpec, build_model

GPT_VOCAB = 50_257
GPT_SEQ_LEN = 1024
GPT_MAX_POSITIONS = 1024

# target billions of parameters -> depth used to reach it.
GPT_VARIANTS: Dict[float, int] = {
    5.3: 40,
    10.3: 52,
    15.4: 60,
    20.4: 66,
    25.5: 72,
}


def gpt_variant(billions: float) -> ModelSpec:
    """Build the GPT variant with roughly ``billions`` parameters.

    >>> round(gpt_variant(5.3).config.billions, 1)
    5.3
    """
    if billions not in GPT_VARIANTS:
        known = ", ".join(str(b) for b in sorted(GPT_VARIANTS))
        raise ConfigurationError(f"unknown GPT variant {billions}B; known: {known}")
    n_layers = GPT_VARIANTS[billions]
    hidden = solve_hidden(
        target_params=billions * 1e9,
        n_layers=n_layers,
        vocab=GPT_VOCAB,
        max_positions=GPT_MAX_POSITIONS,
    )
    config = TransformerConfig(
        name=f"GPT-{billions}B",
        n_layers=n_layers,
        hidden=hidden,
        heads=hidden // HEAD_DIM,
        vocab=GPT_VOCAB,
        seq_len=GPT_SEQ_LEN,
        max_positions=GPT_MAX_POSITIONS,
    )
    return build_model(config)
