"""Bert variants matching the paper's Table II parameter scales.

The paper trains Bert on SQuAD v1.1 (sequence length 384) through
PipeDream, growing variants from 0.35B to 6.2B parameters by
adjusting depth and hidden size (Section IV-A, following the
google-research/bert scaling recipe).
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigurationError
from repro.models.config import HEAD_DIM, TransformerConfig, solve_hidden
from repro.models.layers import ModelSpec, build_model

BERT_VOCAB = 30_522
BERT_SEQ_LEN = 384
BERT_MAX_POSITIONS = 512

# target billions of parameters -> depth used to reach it.
BERT_VARIANTS: Dict[float, int] = {
    0.35: 24,   # BERT-Large depth
    0.64: 40,
    1.67: 48,
    4.0: 64,
    6.2: 72,
}


def bert_variant(billions: float) -> ModelSpec:
    """Build the Bert variant with roughly ``billions`` parameters.

    >>> bert_variant(0.35).config.n_layers
    24
    """
    if billions not in BERT_VARIANTS:
        known = ", ".join(str(b) for b in sorted(BERT_VARIANTS))
        raise ConfigurationError(f"unknown Bert variant {billions}B; known: {known}")
    n_layers = BERT_VARIANTS[billions]
    hidden = solve_hidden(
        target_params=billions * 1e9,
        n_layers=n_layers,
        vocab=BERT_VOCAB,
        max_positions=BERT_MAX_POSITIONS,
    )
    config = TransformerConfig(
        name=f"Bert-{billions}B",
        n_layers=n_layers,
        hidden=hidden,
        heads=hidden // HEAD_DIM,
        vocab=BERT_VOCAB,
        seq_len=BERT_SEQ_LEN,
        max_positions=BERT_MAX_POSITIONS,
    )
    return build_model(config)
