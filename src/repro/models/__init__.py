"""DNN model descriptions: Bert and GPT variants.

Models are described analytically — per-layer parameter counts,
activation footprints, and FLOPs — because the simulator only needs
the quantities the paper's profiler collects (tensor sizes and
compute latencies, Table III), not real weights.
"""

from repro.models.config import TransformerConfig, solve_hidden
from repro.models.layers import LayerKind, LayerSpec, ModelSpec
from repro.models.bert import bert_variant, BERT_VARIANTS
from repro.models.gpt import gpt_variant, GPT_VARIANTS
from repro.models import costs

__all__ = [
    "TransformerConfig",
    "solve_hidden",
    "LayerKind",
    "LayerSpec",
    "ModelSpec",
    "bert_variant",
    "BERT_VARIANTS",
    "gpt_variant",
    "GPT_VARIANTS",
    "costs",
]
