"""Layer 3 of the autoplan pipeline: the frontier executor.

Orders every priced candidate by estimated throughput, then fully
simulates only the top-K frontier (``frontier_fraction`` of the valid
grid) through the existing machinery: each frontier shape becomes a
content-addressed cluster :class:`~repro.runtime.task.SimTask` —
byte-identical in key to the cells of an exhaustive
``analysis.cluster_scaling`` sweep, so the two share cache entries —
executed under :func:`~repro.parallel.cluster.shared_chain_memo` so
congruent chains across shapes lower through one ``Lowering``
skeleton family and simulate once.

The result is an :class:`AutoPlanReport`: a ranked table (simulated
frontier first, estimate-only tail after), every rejected shape with
its reason, and the pruning counters the acceptance gate reads.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.hardware.cluster import Cluster
from repro.hardware.server import Server
from repro.job import TrainingJob
from repro.parallel.cluster import ClusterConfig, shared_chain_memo
from repro.autoplan.candidates import (
    GiB,
    RejectedShape,
    ShapeCandidate,
    default_budget_bytes,
    generate_candidates,
)
from repro.autoplan.pricing import (
    CandidatePrice,
    price_candidate,
    price_to_json,
)


@dataclass(frozen=True)
class AutoPlanConfig:
    """Knobs of one shape search (hashable, cache-key material)."""

    budget_gib: Optional[float] = None    # None: smallest GPU's memory
    frontier_fraction: float = 0.25
    max_frontier: Optional[int] = None
    sequence_parallel: bool = False
    algorithm: str = "auto"
    bucket_bytes: Optional[int] = None
    placement_mode: str = "auto"
    power_of_two: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.frontier_fraction <= 1.0:
            raise ConfigurationError(
                f"frontier fraction must be in (0, 1], got "
                f"{self.frontier_fraction}")
        if self.max_frontier is not None and self.max_frontier < 1:
            raise ConfigurationError(
                f"max frontier must be >= 1, got {self.max_frontier}")
        if self.budget_gib is not None and self.budget_gib <= 0:
            raise ConfigurationError(
                f"per-GPU budget must be positive, got {self.budget_gib}")


@dataclass(frozen=True)
class RankedShape:
    """One row of the report: a priced shape, simulated or not."""

    price: CandidatePrice
    est_samples_per_second: float
    simulated: bool
    ok: Optional[bool] = None             # None until simulated
    samples_per_second: Optional[float] = None
    minibatch_time: Optional[float] = None
    peak_gib: Optional[float] = None
    tflops: Optional[float] = None
    cache_key: Optional[str] = None
    record: Optional[dict] = None         # the frontier task's raw record

    @property
    def shape(self) -> Tuple[int, int, int]:
        return self.price.shape

    @property
    def ranking_samples_per_second(self) -> float:
        """Simulated throughput when available, the estimate otherwise."""
        if self.simulated and self.samples_per_second is not None:
            return self.samples_per_second
        return self.est_samples_per_second


@dataclass
class AutoPlanReport:
    """Ranked outcome of one shape search, with pruning counters."""

    cluster_name: str
    system: str
    budget_gib: float
    config: AutoPlanConfig
    ranked: List[RankedShape] = field(default_factory=list)
    rejected: List[RejectedShape] = field(default_factory=list)
    n_enumerated: int = 0
    n_valid: int = 0
    n_rejected: int = 0
    n_priced: int = 0
    n_simulated: int = 0

    @property
    def best(self) -> Optional[RankedShape]:
        return self.ranked[0] if self.ranked else None

    @property
    def simulated_fraction(self) -> float:
        """Share of the valid grid the frontier actually simulated."""
        if self.n_valid == 0:
            return 0.0
        return self.n_simulated / self.n_valid

    def to_json(self, job: TrainingJob) -> dict:
        """Machine-readable report (``repro autoplan --json``)."""
        return {
            "cluster": self.cluster_name,
            "system": self.system,
            "budget_gib": self.budget_gib,
            "counters": {
                "n_enumerated": self.n_enumerated,
                "n_valid": self.n_valid,
                "n_rejected": self.n_rejected,
                "n_priced": self.n_priced,
                "n_simulated": self.n_simulated,
                "frontier_fraction": self.config.frontier_fraction,
                "simulated_fraction": self.simulated_fraction,
            },
            "best": self._row_json(self.best, job) if self.best else None,
            "ranked": [self._row_json(row, job) for row in self.ranked],
            "rejected": [
                {"tp": r.tp, "dp": r.dp, "pp": r.pp,
                 "sequence_parallel": r.sequence_parallel,
                 "reason": r.reason}
                for r in self.rejected
            ],
        }

    @staticmethod
    def _row_json(row: RankedShape, job: TrainingJob) -> dict:
        payload = price_to_json(row.price, job)
        payload.update({
            "simulated": row.simulated,
            "ok": row.ok,
            "samples_per_second": row.ranking_samples_per_second,
            "minibatch_time": row.minibatch_time,
            "peak_gib": row.peak_gib,
            "tflops": row.tflops,
            "cache_key": row.cache_key,
        })
        return payload

    def summary(self) -> str:
        """Human-readable ranking table."""
        lines = [
            f"autoplan over {self.cluster_name} "
            f"(system={self.system}, budget={self.budget_gib:.1f} GiB/GPU)",
            f"  grid: {self.n_enumerated} shapes enumerated, "
            f"{self.n_valid} valid, {self.n_rejected} rejected; "
            f"simulated {self.n_simulated} "
            f"({100 * self.simulated_fraction:.0f}% of valid)",
            "  rank  shape (tp,dp,pp)  mode     samples/s  "
            "sync tail  peak GiB  how",
        ]
        for rank, row in enumerate(self.ranked, start=1):
            price = row.price
            peak = (row.peak_gib if row.peak_gib is not None
                    else price.peak_demand_bytes / GiB)
            lines.append(
                f"  {rank:>4}  ({price.tp},{price.dp},{price.pp})"
                f"{'':<{max(1, 12 - len(str(price.shape)))}}"
                f"{price.placement_mode:<8} "
                f"{row.ranking_samples_per_second:>9.2f}  "
                f"{price.contended_sync_seconds * 1e3:>7.1f}ms  "
                f"{peak:>8.2f}  "
                f"{'simulated' if row.simulated else 'estimated'}")
        if self.rejected:
            lines.append(f"  rejected shapes ({len(self.rejected)}):")
            for reject in self.rejected:
                lines.append(
                    f"    ({reject.tp},{reject.dp},{reject.pp}): "
                    f"{reject.reason}")
        return "\n".join(lines)

    def json_text(self, job: TrainingJob) -> str:
        return json.dumps(self.to_json(job), indent=2, sort_keys=True)


def _as_cluster(cluster) -> Cluster:
    """Accept a Cluster or a single Server (wrapped as a 1-box cluster)."""
    if isinstance(cluster, Server):
        return Cluster(name=cluster.name, servers=(cluster,))
    return cluster


def shape_cluster_config(shape: Tuple[int, int, int],
                         config: AutoPlanConfig) -> ClusterConfig:
    """The ClusterConfig a frontier shape executes (and caches) under.

    Built with the same defaulting as
    :func:`repro.analysis.cluster_scaling.cluster_scaling_tasks`, so a
    frontier task's cache key is byte-identical to the matching cell
    of an exhaustive grid sweep — the two workloads warm each other.
    """
    tp, dp, pp = shape
    kwargs = {"tp": tp, "dp": dp, "pp": pp,
              "algorithm": config.algorithm,
              "sequence_parallel": config.sequence_parallel}
    if config.bucket_bytes is not None:
        kwargs["bucket_bytes"] = config.bucket_bytes
    if config.placement_mode != "auto":
        kwargs["placement_mode"] = config.placement_mode
    return ClusterConfig(**kwargs)


def frontier_size(n_valid: int, config: AutoPlanConfig) -> int:
    """How many top-priced shapes get the full simulation."""
    if n_valid == 0:
        return 0
    size = max(1, math.ceil(config.frontier_fraction * n_valid))
    if config.max_frontier is not None:
        size = min(size, config.max_frontier)
    return min(size, n_valid)


def autoplan(
    job: TrainingJob,
    cluster,
    budget_gib: Optional[float] = None,
    config: Optional[AutoPlanConfig] = None,
    system: str = "mpress",
    runtime=None,
) -> AutoPlanReport:
    """One search pipeline from a job to its best (tp, dp, pp) shape.

    ``cluster`` may be a :class:`~repro.hardware.cluster.Cluster` or a
    single :class:`~repro.hardware.server.Server`.  ``runtime`` (a
    ``SweepRuntime``) adds caching/parallelism to the frontier;
    ``None`` executes serially in-process.
    """
    from repro.runtime.pool import run_tasks
    from repro.runtime.task import SimTask, peak_gib

    cluster = _as_cluster(cluster)
    if config is None:
        config = AutoPlanConfig()
    if budget_gib is not None:
        config = AutoPlanConfig(**{
            **{f: getattr(config, f) for f in config.__dataclass_fields__},
            "budget_gib": budget_gib})
    budget_bytes = (int(config.budget_gib * GiB)
                    if config.budget_gib is not None
                    else default_budget_bytes(cluster))

    candidates, rejected = generate_candidates(
        job, cluster,
        budget_bytes=budget_bytes,
        sequence_parallel=config.sequence_parallel,
        placement_mode=config.placement_mode,
        bucket_bytes=config.bucket_bytes,
        power_of_two=config.power_of_two,
    )

    flat_server = cluster.as_server()
    priced: List[Tuple[ShapeCandidate, CandidatePrice]] = []
    for candidate in candidates:
        cluster_config = shape_cluster_config(candidate.shape, config)
        price = price_candidate(job, cluster, candidate, cluster_config,
                                budget_bytes, flat_server=flat_server)
        priced.append((candidate, price))
    # Estimated-throughput order; exact ties resolve on the canonical
    # ascending shape tuple so rankings are reproducible.
    priced.sort(key=lambda pair: (-pair[1].samples_per_second(job),
                                  pair[1].shape))

    k = frontier_size(len(priced), config)
    frontier = priced[:k]
    tail = priced[k:]

    tasks = [
        SimTask(
            label=(f"autoplan/{system}/{cluster.name}"
                   f"/tp={price.tp},dp={price.dp},pp={price.pp}"),
            job=job,
            system=system,
            cluster=cluster,
            cluster_config=shape_cluster_config(candidate.shape, config),
        )
        for candidate, price in frontier
    ]
    with shared_chain_memo():
        records = run_tasks(tasks, runtime).records()

    simulated_rows: List[RankedShape] = []
    for (candidate, price), task, record in zip(frontier, tasks, records):
        ok = record is not None and bool(record["ok"])
        simulated_rows.append(RankedShape(
            price=price,
            est_samples_per_second=price.samples_per_second(job),
            simulated=True,
            ok=ok,
            samples_per_second=(
                record["samples_per_second"] if record is not None else 0.0),
            minibatch_time=(
                record["minibatch_time"] if record is not None else None),
            peak_gib=peak_gib(record) if record is not None else None,
            tflops=record["tflops"] if record is not None else None,
            cache_key=task.cache_key(),
            record=record,
        ))
    # Simulated rows first, by measured throughput (failed runs sink);
    # the estimate-only tail keeps its pricing order after them.
    simulated_rows.sort(key=lambda row: (
        not (row.ok or False),
        -(row.samples_per_second or 0.0),
        row.shape))
    estimated_rows = [
        RankedShape(price=price,
                    est_samples_per_second=price.samples_per_second(job),
                    simulated=False)
        for candidate, price in tail
    ]

    report = AutoPlanReport(
        cluster_name=cluster.name,
        system=system,
        budget_gib=budget_bytes / GiB,
        config=config,
        ranked=simulated_rows + estimated_rows,
        rejected=list(rejected),
        n_enumerated=len(candidates) + len(rejected),
        n_valid=len(candidates),
        n_rejected=len(rejected),
        n_priced=len(priced),
        n_simulated=len(tasks),
    )
    return report
