"""Layer 2 of the autoplan pipeline: analytic candidate pricing.

Scores a placed shape without running a single simulation, composing
the primitives the executing layers already trust:

* **chain time** — the pipeline's classic fill-drain bound,
  ``(microbatches + pp - 1) x bottleneck-stage (fwd + bwd)`` plus the
  optimizer step, over the candidate's analytically built chain job;
* **sync planes** — :func:`repro.parallel.sync.price_sync_planes`,
  the same TP/DP accounting ``run_cluster`` reports, in the
  *contended* regime: gradient groups crossing the fabric share NIC
  lanes and the backward half of the TP traffic eats into the DP
  overlap window (the modeling gap the independent ``_tp_sync`` /
  ``_dp_sync`` pricing had);
* **memory pressure** — shapes whose resident demand exceeds the
  budget pay the cost model's PCIe round-trip primitive
  (:meth:`repro.core.cost_model.CostModel.cpu_swap_cost` at shape
  granularity) for the overflow bytes, a stand-in for whatever
  swap/recompute plan the executor will have to adopt;
* **placement score** — already folded in, since the candidate
  generator placed each shape with the scored
  :func:`~repro.parallel.cluster.cluster_placement`.

The contended price is provably >= the legacy independent price
(window shrink and lane stretch are monotone in
``exposed_allreduce_time``), so ranking by it never *hides* a sync
tail the executor would discover later.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.hardware.bandwidth import transfer_time
from repro.hardware.cluster import Cluster
from repro.job import TrainingJob
from repro.parallel.cluster import ClusterConfig
from repro.parallel.sync import SyncPricing, price_sync_planes
from repro.autoplan.candidates import GiB, ShapeCandidate


@dataclass(frozen=True)
class CandidatePrice:
    """Analytic score card of one shape (layer-2 output)."""

    tp: int
    dp: int
    pp: int
    sequence_parallel: bool
    placement_mode: str
    chain_seconds: float            # fill-drain pipeline estimate
    exposed_tp_sync: float
    exposed_allreduce: float        # contended regime
    independent_sync_seconds: float
    contended_sync_seconds: float
    crosses_fabric: bool
    pressure_seconds: float         # PCIe round trip of overflow bytes
    peak_demand_bytes: int
    fits_unaided: bool
    placement_score: float

    @property
    def shape(self) -> Tuple[int, int, int]:
        return (self.tp, self.dp, self.pp)

    @property
    def contention_seconds(self) -> float:
        """What the legacy independent pricing missed (>= 0)."""
        return max(0.0, self.contended_sync_seconds
                   - self.independent_sync_seconds)

    @property
    def minibatch_seconds(self) -> float:
        return (self.chain_seconds + self.contended_sync_seconds
                + self.pressure_seconds)

    def samples_per_second(self, job: TrainingJob) -> float:
        if self.minibatch_seconds <= 0:
            return 0.0
        return self.dp * job.samples_per_minibatch / self.minibatch_seconds


def chain_time_estimate(chain_job: TrainingJob) -> float:
    """Fill-drain bound on one chain's minibatch time.

    ``(M + pp - 1)`` slots of the bottleneck stage's forward+backward,
    plus the optimizer step — the standard synchronous-pipeline lower
    bound, evaluated on the identity stage -> device map of a freshly
    placed chain.
    """
    pp = chain_job.n_stages
    bottleneck = max(
        chain_job.forward_time(stage, stage)
        + chain_job.backward_time(stage, stage)
        for stage in range(pp)
    )
    optimizer = max(
        chain_job.optimizer_time(stage, stage) for stage in range(pp)
    )
    slots = chain_job.microbatches_per_minibatch + pp - 1
    return slots * bottleneck + optimizer


def pressure_estimate(candidate: ShapeCandidate, budget_bytes: int) -> float:
    """Seconds/minibatch of memory pressure above the budget.

    The cost model prices a CPU swap as a PCIe round trip
    (``2 x transfer_time``); at shape granularity the worst stage's
    overflow must make that trip once per minibatch.  An analytic
    stand-in, deliberately pessimistic against recompute/D2D, which
    the frontier executor's real planning then corrects.
    """
    overflow = max(
        0, max(demand - budget_bytes
               for demand in candidate.stage_demand_bytes)
    )
    if overflow <= 0:
        return 0.0
    pcie = candidate.chain_job.server.pcie
    return 2.0 * transfer_time(overflow, pcie, lanes=1)


def price_candidate(
    job: TrainingJob,
    cluster: Cluster,
    candidate: ShapeCandidate,
    cluster_config: ClusterConfig,
    budget_bytes: int,
    flat_server=None,
) -> CandidatePrice:
    """Score one placed candidate analytically (no simulation)."""
    if flat_server is None:
        flat_server = cluster.as_server()
    pricing: SyncPricing = price_sync_planes(
        candidate.placement, cluster.topology, job, cluster_config,
        flat_server, candidate.chain_job)
    return CandidatePrice(
        tp=candidate.tp,
        dp=candidate.dp,
        pp=candidate.pp,
        sequence_parallel=candidate.sequence_parallel,
        placement_mode=candidate.placement.mode,
        chain_seconds=chain_time_estimate(candidate.chain_job),
        exposed_tp_sync=pricing.exposed_tp_sync,
        exposed_allreduce=pricing.exposed_dp_contended,
        independent_sync_seconds=pricing.independent_seconds,
        contended_sync_seconds=pricing.contended_seconds,
        crosses_fabric=pricing.crosses_fabric,
        pressure_seconds=pressure_estimate(candidate, budget_bytes),
        peak_demand_bytes=candidate.peak_demand_bytes,
        fits_unaided=candidate.fits_unaided,
        placement_score=candidate.placement.score,
    )


def price_to_json(price: CandidatePrice, job: TrainingJob) -> dict:
    """Plain-JSON lowering of one score card (CLI/serve reports)."""
    return {
        "tp": price.tp,
        "dp": price.dp,
        "pp": price.pp,
        "sequence_parallel": price.sequence_parallel,
        "placement_mode": price.placement_mode,
        "chain_seconds": price.chain_seconds,
        "exposed_tp_sync": price.exposed_tp_sync,
        "exposed_allreduce": price.exposed_allreduce,
        "contention_seconds": price.contention_seconds,
        "crosses_fabric": price.crosses_fabric,
        "pressure_seconds": price.pressure_seconds,
        "minibatch_seconds": price.minibatch_seconds,
        "est_samples_per_second": price.samples_per_second(job),
        "peak_demand_gib": price.peak_demand_bytes / GiB,
        "fits_unaided": price.fits_unaided,
        "placement_score": price.placement_score,
    }
