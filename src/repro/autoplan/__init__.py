"""Unified auto-parallel planner: one search pipeline from a training
job to its best TP x DP x PP shape on a server or cluster.

Three layers (docs/planner.md):

1. :mod:`repro.autoplan.candidates` — enumerate valid
   (tp, dp, pp, sequence-parallel, placement) shapes under a per-GPU
   memory budget, heterogeneous box sizes included; every invalid
   shape carries an explicit rejection reason.
2. :mod:`repro.autoplan.pricing` — score each candidate analytically
   from the cost-model, collective and placement primitives, with
   TP/DP sync priced under shared-fabric contention.
3. :mod:`repro.autoplan.search` — simulate only the top-K frontier
   through the existing coarse-to-fine machinery as content-addressed
   cluster tasks, and rank.

``Planner`` (one chain), ``run_hybrid`` (DP x PP) and ``run_cluster``
(TP x DP x PP) remain as thin single-shape facades over the same
underlying layers.
"""

from repro.autoplan.candidates import (
    RejectedShape,
    ShapeCandidate,
    default_budget_bytes,
    generate_candidates,
    shape_grid,
)
from repro.autoplan.pricing import (
    CandidatePrice,
    chain_time_estimate,
    price_candidate,
)
from repro.autoplan.search import (
    AutoPlanConfig,
    AutoPlanReport,
    RankedShape,
    autoplan,
    frontier_size,
    shape_cluster_config,
)

__all__ = [
    "RejectedShape",
    "ShapeCandidate",
    "default_budget_bytes",
    "generate_candidates",
    "shape_grid",
    "CandidatePrice",
    "chain_time_estimate",
    "price_candidate",
    "AutoPlanConfig",
    "AutoPlanReport",
    "RankedShape",
    "autoplan",
    "frontier_size",
    "shape_cluster_config",
]
