"""Layer 1 of the autoplan pipeline: the candidate generator.

Enumerates every (tp, dp, pp, sequence_parallel) shape a job could
run with on a cluster — heterogeneous box sizes included — places
each one (``cluster_placement`` keeps chains inside a single server),
and applies the per-GPU memory budget *analytically*: the irreducible
per-stage working set (live parameters + gradients, plus the DDP
bucket staging buffers when dp > 1) must fit, because no
memory-saving technique can evict it.  Shapes whose total resident
demand exceeds the budget but whose floor fits are kept — that is
exactly the regime MPress's swap/recompute planning exists for — and
merely flagged, so the pricing layer can charge for the pressure.

Nothing is dropped silently: every enumerated shape either becomes a
:class:`ShapeCandidate` or a :class:`RejectedShape` with the reason.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError, PlanError
from repro.graph.tensor import TensorKind, tensor_classes_for
from repro.hardware.cluster import Cluster
from repro.job import TrainingJob
from repro.parallel.cluster import (
    ClusterPlacement,
    chain_server,
    cluster_placement,
)
from repro.parallel.hybrid import DEFAULT_BUCKET_BYTES
from repro.parallel.tensor import tp_shard_model

GiB = 2 ** 30


@dataclass(frozen=True)
class ShapeCandidate:
    """One valid, placed, budget-checked parallelism shape."""

    tp: int
    dp: int
    pp: int
    sequence_parallel: bool
    placement: ClusterPlacement
    chain_job: TrainingJob          # replica 0 / rank 0's analytic chain
    stage_demand_bytes: Tuple[int, ...]   # everything resident, per stage
    stage_floor_bytes: Tuple[int, ...]    # irreducible floor, per stage
    fits_unaided: bool              # demand fits without any plan

    @property
    def shape(self) -> Tuple[int, int, int]:
        return (self.tp, self.dp, self.pp)

    @property
    def peak_demand_bytes(self) -> int:
        return max(self.stage_demand_bytes)


@dataclass(frozen=True)
class RejectedShape:
    """A shape the generator ruled out, and why."""

    tp: int
    dp: int
    pp: int
    sequence_parallel: bool
    reason: str

    @property
    def shape(self) -> Tuple[int, int, int]:
        return (self.tp, self.dp, self.pp)


def _degrees(limit: int, power_of_two: bool) -> List[int]:
    if power_of_two:
        degrees, d = [], 1
        while d <= limit:
            degrees.append(d)
            d *= 2
        return degrees
    return list(range(1, limit + 1))


def default_budget_bytes(cluster: Cluster) -> int:
    """Per-GPU budget when none is given: the *smallest* GPU's memory.

    On a heterogeneous cluster a shape is only universally placeable
    if its per-GPU footprint respects the tightest box, so that is the
    conservative default.
    """
    return min(
        gpu.memory_bytes for server in cluster.servers for gpu in server.gpus
    )


def shape_grid(cluster: Cluster, power_of_two: bool = True
               ) -> List[Tuple[int, int, int]]:
    """The raw (tp, dp, pp) grid the generator enumerates.

    A replica block (``tp * pp`` GPUs) must fit inside the largest
    server — chains never straddle the fabric — and the product must
    fit on the cluster.  Validity beyond arithmetic (shardability,
    placement fit, budget) is the generator's job.
    """
    topology = cluster.topology
    largest = max(server.n_gpus for server in topology.servers)
    shapes: List[Tuple[int, int, int]] = []
    for tp in _degrees(largest, power_of_two):
        for pp in _degrees(largest, power_of_two):
            if tp * pp > largest:
                continue
            for dp in _degrees(topology.n_gpus // (tp * pp), power_of_two):
                shapes.append((tp, dp, pp))
    return shapes


def generate_candidates(
    job: TrainingJob,
    cluster: Cluster,
    budget_bytes: Optional[int] = None,
    sequence_parallel: bool = False,
    placement_mode: str = "auto",
    bucket_bytes: Optional[int] = None,
    power_of_two: bool = True,
) -> Tuple[List[ShapeCandidate], List[RejectedShape]]:
    """Enumerate, place and budget-check every shape on the grid."""
    topology = cluster.topology
    budget = default_budget_bytes(cluster) if budget_bytes is None \
        else budget_bytes
    staging_bytes = bucket_bytes if bucket_bytes is not None \
        else DEFAULT_BUCKET_BYTES
    candidates: List[ShapeCandidate] = []
    rejected: List[RejectedShape] = []

    def reject(tp: int, dp: int, pp: int, reason: str) -> None:
        rejected.append(RejectedShape(
            tp=tp, dp=dp, pp=pp,
            sequence_parallel=sequence_parallel, reason=reason))

    sharded_by_tp = {}
    for tp, dp, pp in shape_grid(cluster, power_of_two):
        if tp not in sharded_by_tp:
            try:
                sharded_by_tp[tp] = tp_shard_model(
                    job.model, tp, sequence_parallel)
            except ConfigurationError as error:
                sharded_by_tp[tp] = error
        sharded = sharded_by_tp[tp]
        if isinstance(sharded, ConfigurationError):
            reject(tp, dp, pp, str(sharded))
            continue
        try:
            placement = cluster_placement(topology, tp, dp, pp,
                                          mode=placement_mode)
        except ConfigurationError as error:
            reject(tp, dp, pp, str(error))
            continue
        chain_job = replace(
            job, model=sharded,
            server=chain_server(cluster, topology, placement.chain(0, 0)))
        try:
            classes = tensor_classes_for(
                chain_job.stage_plan, chain_job.schedule,
                chain_job.microbatch_size, chain_job.bytes_per_element)
        except (ConfigurationError, PlanError) as error:
            reject(tp, dp, pp, str(error))
            continue
        staging = 2 * staging_bytes if dp > 1 else 0
        demand = [staging] * pp
        floor = [staging] * pp
        for cls in classes:
            demand[cls.stage] += cls.peak_bytes
            if cls.kind is TensorKind.WORKING_STATE:
                floor[cls.stage] += cls.peak_bytes
        over = [stage for stage in range(pp) if floor[stage] > budget]
        if over:
            stage = over[0]
            reject(tp, dp, pp, (
                f"stage {stage} irreducible working set "
                f"{floor[stage] / GiB:.2f} GiB (+{staging / GiB:.2f} GiB DP "
                f"staging) exceeds the {budget / GiB:.2f} GiB per-GPU "
                f"budget — no memory-saving plan can fit this shape"))
            continue
        candidates.append(ShapeCandidate(
            tp=tp, dp=dp, pp=pp,
            sequence_parallel=sequence_parallel,
            placement=placement,
            chain_job=chain_job,
            stage_demand_bytes=tuple(demand),
            stage_floor_bytes=tuple(floor),
            fits_unaided=all(d <= budget for d in demand),
        ))
    return candidates, rejected
