"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A model, hardware, or plan configuration is invalid."""


class TopologyError(ConfigurationError):
    """An interconnect topology is malformed or a route does not exist."""


class PartitionError(ConfigurationError):
    """A pipeline stage partition is infeasible or malformed."""


class ScheduleError(ReproError):
    """A pipeline schedule violates its ordering constraints."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class OutOfMemoryError(SimulationError):
    """A simulated device exceeded its memory capacity.

    Mirrors the red crossed marks in the paper's Figure 7/8: training
    jobs whose per-device footprint exceeds capacity fail to run.
    """

    def __init__(self, device: str, requested: int, in_use: int, capacity: int):
        self.device = device
        self.requested = requested
        self.in_use = in_use
        self.capacity = capacity
        super().__init__(
            f"device {device}: allocation of {requested} bytes exceeds capacity "
            f"({in_use} in use of {capacity})"
        )


class PlanError(ReproError):
    """A memory-saving plan is inconsistent with the graph it rewrites."""


class MappingError(ReproError):
    """Device-mapping search failed to produce a feasible mapping."""
